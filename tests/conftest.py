"""Shared fixtures and instance-building helpers for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.budgets import BudgetSampler, BudgetVector
from repro.core.utility import UtilityModel
from repro.datasets.workload import Task, Worker
from repro.simulation.instance import ProblemInstance
from repro.spatial.geometry import Point


def build_instance(
    task_specs,
    worker_specs,
    budgets=None,
    model=None,
    seed=0,
    budget_sampler=None,
):
    """Construct a small deterministic instance from explicit specs.

    Parameters
    ----------
    task_specs:
        Sequence of ``(x, y, value)`` tuples.
    worker_specs:
        Sequence of ``(x, y, radius)`` tuples.
    budgets:
        Optional ``{(task_index, worker_index): (eps, ...)}`` overriding the
        sampled vectors for those feasible pairs.
    """
    tasks = [
        Task(id=i, location=Point(x, y), value=v)
        for i, (x, y, v) in enumerate(task_specs)
    ]
    workers = [
        Worker(id=j, location=Point(x, y), radius=r)
        for j, (x, y, r) in enumerate(worker_specs)
    ]
    instance = ProblemInstance.build(
        tasks,
        workers,
        budget_sampler=budget_sampler or BudgetSampler(),
        model=model or UtilityModel(),
        seed=seed,
    )
    if budgets:
        merged = dict(instance.budgets)
        for pair, epsilons in budgets.items():
            if pair not in merged:
                raise AssertionError(f"pair {pair} is not feasible in this instance")
            merged[pair] = BudgetVector(tuple(float(e) for e in epsilons))
        instance = ProblemInstance(
            tasks=instance.tasks,
            workers=instance.workers,
            model=instance.model,
            reachable=instance.reachable,
            distances=instance.distances,
            budgets=merged,
        )
    return instance


def line_instance(num_tasks=3, num_workers=4, spacing=1.0, value=4.5, radius=2.5, seed=0):
    """Tasks and workers interleaved on a line — a simple dense testbed."""
    task_specs = [(i * spacing, 0.0, value) for i in range(num_tasks)]
    worker_specs = [
        (j * spacing * num_tasks / max(num_workers, 1), 0.3, radius)
        for j in range(num_workers)
    ]
    return build_instance(task_specs, worker_specs, seed=seed)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_instance():
    """3 tasks x 4 workers, everyone in range of everything."""
    return build_instance(
        task_specs=[(0.0, 0.0, 5.0), (1.0, 0.0, 5.0), (2.0, 0.0, 5.0)],
        worker_specs=[(0.1, 0.2, 5.0), (0.9, -0.2, 5.0), (2.1, 0.1, 5.0), (1.5, 0.5, 5.0)],
        seed=42,
    )


@pytest.fixture
def medium_instance():
    """A generated 60x120 normal batch for solver-level tests."""
    from repro.datasets.synthetic import NormalGenerator

    return NormalGenerator(num_tasks=60, num_workers=120, seed=9).instance(
        task_value=4.5, worker_range=1.4
    )
