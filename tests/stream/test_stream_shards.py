"""Unit tests for the sharded flush executor and its stream wiring."""

import os

import pytest

from repro.core.registry import make_solver
from repro.core.workspace import shm_available
from repro.datasets.synthetic import NormalGenerator
from repro.datasets.workload import Task, Worker
from repro.errors import ConfigurationError, InvalidInstanceError
from repro.simulation.instance import ProblemInstance
from repro.spatial.geometry import Point
from repro.stream import (
    PoissonProcess,
    StreamConfig,
    StreamRunner,
    StreamWorkload,
)
from repro.stream.shards import (
    _WARM_POOLS,
    _warm_pool,
    ShardedFlushExecutor,
    ShardSeedSchedule,
    build_shard_instance,
    cut_flush,
    merge_shard_results,
    shutdown_warm_pools,
)


def two_cluster_instance(gap=100.0):
    """Two spatially separated clusters -> exactly two components."""
    tasks = [
        Task(id=0, location=Point(0.0, 0.0), value=4.5),
        Task(id=1, location=Point(1.0, 0.0), value=4.5),
        Task(id=2, location=Point(gap, 0.0), value=4.5),
        Task(id=3, location=Point(gap + 1.0, 0.0), value=4.5),
    ]
    workers = [
        Worker(id=10, location=Point(0.5, 0.0), radius=2.0),
        Worker(id=11, location=Point(gap + 0.5, 0.0), radius=2.0),
    ]
    return ProblemInstance.build(tasks, workers, seed=0)


class TestCut:
    def test_two_clusters_two_components(self):
        instance = two_cluster_instance()
        cut = cut_flush(instance, min_shard_pairs=0)
        assert cut.num_components == 2
        assert cut.components[0].workers == (0,)
        assert cut.components[1].workers == (1,)
        assert cut.components[0].tasks == (0, 1)
        assert cut.components[1].tasks == (2, 3)
        assert cut.orphan_tasks == ()
        assert cut.orphan_workers == ()

    def test_coalescing_folds_dust_into_one_unit(self):
        instance = two_cluster_instance()
        cut = cut_flush(instance)  # default threshold far above 4 pairs
        assert cut.num_components == 1
        only = cut.components[0]
        assert only.tasks == (0, 1, 2, 3)
        assert only.workers == (0, 1)
        assert only.pair_count == instance.num_feasible_pairs

    def test_at_threshold_component_stands_alone(self):
        """Dust never merges into a component that meets the threshold."""
        tasks = [
            Task(id=0, location=Point(0.0, 0.0), value=4.5),
            Task(id=1, location=Point(1.0, 0.0), value=4.5),
            Task(id=2, location=Point(200.0, 0.0), value=4.5),
            Task(id=3, location=Point(201.0, 0.0), value=4.5),
        ]
        workers = [
            Worker(id=10, location=Point(0.5, 0.0), radius=2.0),  # 2 pairs: dust
            Worker(id=11, location=Point(200.3, 0.0), radius=2.0),
            Worker(id=12, location=Point(200.7, 0.0), radius=2.0),
        ]
        instance = ProblemInstance.build(tasks, workers, seed=0)
        cut = cut_flush(instance, min_shard_pairs=3)
        # Cluster B (workers 1+2, 4 pairs) meets the threshold alone; the
        # leading dust (worker 0, 2 pairs) forms its own unit.
        assert [c.workers for c in cut.components] == [(0,), (1, 2)]
        assert [c.pair_count for c in cut.components] == [2, 4]

    def test_component_key_is_min_global_worker_index(self):
        instance = two_cluster_instance()
        cut = cut_flush(instance, min_shard_pairs=0)
        assert [c.key for c in cut.components] == [0, 1]

    def test_orphans_belong_to_no_shard(self):
        tasks = [
            Task(id=0, location=Point(0.0, 0.0), value=4.5),
            Task(id=1, location=Point(500.0, 0.0), value=4.5),  # unreachable
        ]
        workers = [
            Worker(id=0, location=Point(0.2, 0.0), radius=1.0),
            Worker(id=1, location=Point(900.0, 0.0), radius=1.0),  # reaches nothing
        ]
        instance = ProblemInstance.build(tasks, workers, seed=0)
        cut = cut_flush(instance, min_shard_pairs=0)
        assert cut.orphan_tasks == (1,)
        assert cut.orphan_workers == (1,)
        assert cut.num_components == 1

    def test_empty_instance_has_no_components(self):
        instance = ProblemInstance.build([], [], seed=0)
        cut = cut_flush(instance)
        assert cut.num_components == 0


class TestSubInstances:
    def test_sub_instance_keeps_global_ids(self):
        instance = two_cluster_instance()
        cut = cut_flush(instance, min_shard_pairs=0)
        sub = build_shard_instance(instance, cut.components[1])
        assert [t.id for t in sub.tasks] == [2, 3]
        assert [w.id for w in sub.workers] == [11]
        assert sub.num_feasible_pairs == cut.components[1].pair_count

    def test_subset_rejects_unclosed_worker_selection(self):
        instance = two_cluster_instance()
        with pytest.raises(InvalidInstanceError, match="not task-closed"):
            # Worker 0 reaches tasks 0/1, but only task 0 is selected.
            instance.pairs.subset([0], [0])


class TestExecutor:
    def test_invalid_parameters(self):
        solver = make_solver("UCE")
        with pytest.raises(ConfigurationError):
            ShardedFlushExecutor(solver, num_shards=0)
        with pytest.raises(ConfigurationError):
            ShardedFlushExecutor(solver, parallel="fork-bomb")

    def test_empty_flush_solves_to_empty_result(self):
        instance = ProblemInstance.build([], [], seed=0)
        executor = ShardedFlushExecutor(make_solver("PUCE"))
        result = executor.solve(instance, ShardSeedSchedule((0,)))
        assert result.matched_count == 0
        assert result.publishes == 0
        assert result.total_privacy_spend == 0.0

    def test_merged_result_aggregates_counters(self):
        instance = two_cluster_instance()
        solver = make_solver("PUCE")
        executor = ShardedFlushExecutor(solver, num_shards=2, min_shard_pairs=0)
        merged, cut = executor.solve_with_cut(instance, ShardSeedSchedule((0,)))
        assert cut.num_components == 2
        parts = [
            solver.solve(
                build_shard_instance(instance, component),
                seed=ShardSeedSchedule((0,)).generator(component.key),
            )
            for component in cut.components
        ]
        assert merged.publishes == sum(p.publishes for p in parts)
        assert merged.rounds == max(p.rounds for p in parts)
        assert dict(merged.matching) == {
            t: w for p in parts for t, w in p.matching
        }

    def test_merge_orders_ledger_by_component_key(self):
        instance = two_cluster_instance()
        solver = make_solver("PUCE")
        executor = ShardedFlushExecutor(solver, num_shards=2, min_shard_pairs=0)
        merged, cut = executor.solve_with_cut(instance, ShardSeedSchedule((0,)))
        schedule = ShardSeedSchedule((0,))
        keyed = [
            (
                component.key,
                solver.solve(
                    build_shard_instance(instance, component),
                    seed=schedule.generator(component.key),
                ),
            )
            for component in cut.components
        ]
        rebuilt = merge_shard_results(instance, solver.name, keyed[::-1], 0.0)
        assert list(rebuilt.ledger.events()) == list(merged.ledger.events())

    @pytest.mark.parametrize("method", ["PUCE", "PDCE", "UCE", "DCE"])
    def test_single_unit_fast_path_matches_sub_instance_solve(self, method):
        """The fast path (full instance, orphans and all) is bit-identical
        to solving the unit's sub-instance — the engine draws noise per
        pair in CSR order, so orphan tasks/workers cannot shift it."""
        instance = NormalGenerator(num_tasks=30, num_workers=60, seed=4).instance(
            task_value=4.5, worker_range=1.4
        )
        solver = make_solver(method)
        executor = ShardedFlushExecutor(solver, num_shards=4)
        schedule = ShardSeedSchedule((4, 1))
        merged, cut = executor.solve_with_cut(instance, schedule)
        assert cut.num_components == 1
        assert cut.orphan_workers  # the interesting case: orphans present
        component = cut.components[0]
        slow = solver.solve(
            build_shard_instance(instance, component),
            seed=schedule.generator(component.key),
        )
        assert dict(merged.matching) == dict(slow.matching)
        assert list(merged.ledger.events()) == list(slow.ledger.events())
        assert merged.publishes == slow.publishes
        assert set(merged.release_board) == set(slow.release_board)

    def test_matched_pairs_evaluate_on_the_full_instance(self):
        instance = two_cluster_instance()
        executor = ShardedFlushExecutor(make_solver("UCE"), num_shards=2)
        merged = executor.solve(instance, ShardSeedSchedule((0,)))
        full = make_solver("UCE").solve(instance, seed=0)
        assert {
            (p.task_id, p.worker_id, p.distance, p.utility)
            for p in merged.matched_pairs()
        } == {
            (p.task_id, p.worker_id, p.distance, p.utility)
            for p in full.matched_pairs()
        }


class TestStreamWiring:
    def _workload(self, seed=0):
        return StreamWorkload(
            task_process=PoissonProcess(rate=60.0, horizon=1.5),
            worker_process=PoissonProcess(rate=20.0, horizon=1.5),
            spatial=NormalGenerator(num_tasks=200, num_workers=400, seed=seed),
            initial_workers=40,
            task_deadline=1.0,
            worker_budget=40.0,
            seed=seed,
        )

    def test_stream_stats_identical_across_shard_counts(self):
        workload = self._workload()
        events = workload.events(seed=0)
        outcomes = []
        for shards in (1, 2, 8):
            config = StreamConfig(max_batch_size=25, max_wait=0.2, shards=shards)
            report = StreamRunner(["PUCE"], config=config).run(events, seed=0)
            stats = report["PUCE"]
            outcomes.append(
                (
                    stats.assigned,
                    stats.expired,
                    tuple(stats.latencies),
                    stats.total_privacy_spend,
                    tuple(sorted(stats.per_worker_spend.items())),
                )
            )
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_flush_records_report_shards_and_batch_limit(self):
        workload = self._workload()
        config = StreamConfig(max_batch_size=25, max_wait=0.2, shards=2)
        report = StreamRunner(["UCE"], config=config).run(workload.events(seed=0), seed=0)
        records = report["UCE"].flushes
        assert records
        assert all(f.shards >= 1 for f in records)
        assert all(f.batch_limit == 25 for f in records)

    def test_parallel_requires_shards(self):
        # Under shards="auto" (the default) parallel merely constrains the
        # planner; only a forced-unsharded config rejects a parallel mode.
        with pytest.raises(ConfigurationError, match="requires shards"):
            StreamConfig(shards=0, parallel="thread")
        with pytest.raises(ConfigurationError, match="parallel mode"):
            StreamConfig(shards=2, parallel="bogus")
        StreamConfig(parallel="thread")  # auto: valid, restricts the planner

    def test_adaptive_shrinks_to_floor_under_impossible_target(self):
        """A target no flush can meet walks the limit down to the floor."""
        workload = self._workload()
        config = StreamConfig(
            max_batch_size=25,
            max_wait=0.2,
            adaptive=True,
            target_flush_seconds=1e-9,
            adaptive_min_batch=4,
        )
        report = StreamRunner(["UCE"], config=config).run(workload.events(seed=0), seed=0)
        records = report["UCE"].flushes
        limits = [f.batch_limit for f in records]
        assert limits[0] == 25
        assert all(a >= b for a, b in zip(limits, limits[1:]))
        assert limits[-1] == 4

    def test_adaptive_off_keeps_limit_fixed(self):
        workload = self._workload()
        config = StreamConfig(max_batch_size=25, max_wait=0.2)
        report = StreamRunner(["UCE"], config=config).run(workload.events(seed=0), seed=0)
        assert {f.batch_limit for f in report["UCE"].flushes} == {25}


class _ExplodingSolver:
    """Picklable stand-in that raises inside the pool worker."""

    name = "EXPLODE"
    is_private = False

    def solve(self, instance, seed=None, **kwargs):
        raise RuntimeError("shard solver exploded")


class _WorkerKillingSolver:
    """Picklable UCE wrapper that kills any pool worker it runs in.

    In the parent process it solves normally — the shape of a crash
    that is environmental (a worker OOM-killed, a poisoned pool) rather
    than a deterministic solver bug, which is exactly the case the
    degradation ladder exists to absorb.
    """

    name = "UCE"
    is_private = False

    def solve(self, instance, seed=None, **kwargs):
        import multiprocessing as _mp
        import os as _os

        if _mp.parent_process() is not None:
            _os._exit(1)
        return make_solver("UCE").solve(instance, seed=seed, **kwargs)


class TestTransportAndFailurePaths:
    """The zero-copy transport's lifecycle guarantees (ISSUE 7)."""

    def test_invalid_transport_rejected(self):
        with pytest.raises(ConfigurationError, match="shard transport"):
            ShardedFlushExecutor(make_solver("UCE"), transport="carrier-pigeon")

    @pytest.mark.skipif(not shm_available(), reason="no shared memory on host")
    def test_pooled_failure_unlinks_shm_and_shuts_pool_down(self):
        """A raising shard solve leaks neither /dev/shm space nor a pool."""
        instance = two_cluster_instance()
        before = set(os.listdir("/dev/shm"))
        pool = _warm_pool("process", 2)  # pre-warm so the discard is observable
        executor = ShardedFlushExecutor(
            _ExplodingSolver(),
            num_shards=2,
            parallel="process",
            max_workers=2,
            min_shard_pairs=1,
            transport="shm",
        )
        with pytest.raises(RuntimeError, match="exploded"):
            executor.solve(instance, ShardSeedSchedule((3,)))
        # The arena staged planes (the failure happened mid-solve) and the
        # failure path unlinked its segment again.
        assert executor._arena is not None
        assert executor._arena.segment_name is None
        assert set(os.listdir("/dev/shm")) <= before
        # The possibly-poisoned pool left the warm registry, shut down.
        assert ("process", 2) not in _WARM_POOLS
        with pytest.raises(RuntimeError):
            pool.submit(int)

    def test_worker_crash_respawns_then_degrades_to_sequential(self):
        """A persistently dying pool walks the ladder and still flushes.

        Every submit breaks the pool, so the executor burns its capped
        respawn attempts (each one traced), gives the pooled rung up,
        and re-runs the same cut sequentially in-process — bit-identical
        to a clean single-shard solve, with the walk recorded in
        ``last_degraded``.
        """
        from repro.obs.tracer import Tracer

        instance = two_cluster_instance()
        schedule = ShardSeedSchedule((3,))
        reference = ShardedFlushExecutor(
            make_solver("UCE"), num_shards=1, min_shard_pairs=1
        ).solve(instance, schedule)
        tracer = Tracer()
        executor = ShardedFlushExecutor(
            _WorkerKillingSolver(),
            num_shards=2,
            parallel="process",
            max_workers=2,
            min_shard_pairs=1,
            transport="pickle",
            tracer=tracer,
        )
        merged = executor.solve(instance, schedule)
        respawns = [s for s in tracer.spans if s.name == "pool.respawn"]
        assert len(respawns) == ShardedFlushExecutor.POOL_RESPAWN_ATTEMPTS
        assert executor.last_degraded is not None
        assert executor.last_degraded.startswith("proc")
        assert executor.last_degraded.endswith("seq")
        assert ("process", 2) not in _WARM_POOLS
        assert dict(merged.matching) == dict(reference.matching)
        assert list(merged.ledger.events()) == list(reference.ledger.events())

    def test_forced_shm_falls_back_to_pickle_when_unavailable(self, monkeypatch):
        """transport='shm' on a host without shm degrades, bit-identically."""
        import repro.stream.shards as shards_module

        instance = two_cluster_instance()
        schedule = ShardSeedSchedule((5,))
        solver = make_solver("PUCE")
        reference = ShardedFlushExecutor(
            solver, num_shards=1, min_shard_pairs=1
        ).solve(instance, schedule)
        monkeypatch.setattr(shards_module, "shm_available", lambda: False)
        with ShardedFlushExecutor(
            solver,
            num_shards=2,
            parallel="process",
            max_workers=2,
            min_shard_pairs=1,
            transport="shm",
        ) as executor:
            merged = executor.solve(instance, schedule)
        assert executor._arena is None  # nothing was ever staged
        assert dict(merged.matching) == dict(reference.matching)
        assert list(merged.ledger.events()) == list(reference.ledger.events())

    def test_close_keeps_the_pool_warm_for_the_next_stream(self):
        instance = two_cluster_instance()
        schedule = ShardSeedSchedule((7,))
        kwargs = dict(
            num_shards=2, parallel="process", max_workers=2, min_shard_pairs=1
        )
        with ShardedFlushExecutor(make_solver("UCE"), **kwargs) as first:
            first.solve(instance, schedule)
        pool = _WARM_POOLS.get(("process", 2))
        assert pool is not None  # close() left it warm
        with ShardedFlushExecutor(make_solver("UCE"), **kwargs) as second:
            second.solve(instance, schedule)
        assert _WARM_POOLS.get(("process", 2)) is pool  # reused, not respawned
        shutdown_warm_pools()
        assert not _WARM_POOLS
