"""Unit tests for micro-batching and cross-flush budget accounting."""

import pytest

from repro.core.budgets import BudgetSampler
from repro.datasets.workload import Task, Worker
from repro.errors import ConfigurationError, FlushBudgetError
from repro.privacy.accountant import PrivacyLedger
from repro.spatial.geometry import Point
from repro.stream.batcher import (
    AdaptiveBatchController,
    MicroBatcher,
    WorkerBudgetTracker,
)
from repro.stream.events import OpenTask


def open_task(task_id, x=0.0, y=0.0, arrival=0.0, deadline=10.0):
    return OpenTask(
        task=Task(id=task_id, location=Point(x, y), value=4.5),
        arrival_time=arrival,
        deadline=deadline,
    )


def worker(worker_id, x=0.0, y=0.0, radius=5.0):
    return Worker(id=worker_id, location=Point(x, y), radius=radius)


class TestTriggers:
    def test_size_trigger(self):
        batcher = MicroBatcher(max_batch_size=3, max_wait=100.0)
        for i in range(2):
            batcher.add(open_task(i))
        assert not batcher.should_flush(now=0.0)
        batcher.add(open_task(2))
        assert batcher.should_flush(now=0.0)

    def test_wait_trigger_follows_oldest(self):
        batcher = MicroBatcher(max_batch_size=100, max_wait=0.5)
        batcher.add(open_task(0, arrival=1.0))
        batcher.add(open_task(1, arrival=2.0))
        assert batcher.flush_deadline() == pytest.approx(1.5)
        assert not batcher.should_flush(now=1.4)
        assert batcher.should_flush(now=1.5)

    def test_restore_restarts_wait_clock(self):
        batcher = MicroBatcher(max_batch_size=100, max_wait=0.5)
        loser = open_task(0, arrival=1.0)
        batcher.add(loser)
        taken = batcher.take_batch()
        assert not len(batcher)
        batcher.restore(taken, now=3.0)
        # Latency still measures from arrival, but the flush clock reset.
        assert loser.arrival_time == 1.0
        assert batcher.flush_deadline() == pytest.approx(3.5)

    def test_expire_drops_past_deadline(self):
        batcher = MicroBatcher()
        batcher.add(open_task(0, deadline=1.0))
        batcher.add(open_task(1, deadline=5.0))
        expired = batcher.expire(now=2.0)
        assert [t.task.id for t in expired] == [0]
        assert [t.task.id for t in batcher.pending] == [1]

    def test_take_batch_oldest_first_capped(self):
        batcher = MicroBatcher(max_batch_size=2, max_wait=1.0)
        batcher.add(open_task(0, arrival=3.0))
        batcher.add(open_task(1, arrival=1.0))
        batcher.add(open_task(2, arrival=2.0))
        batch = batcher.take_batch()
        assert [t.task.id for t in batch] == [1, 2]
        assert [t.task.id for t in batcher.pending] == [0]

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(max_batch_size=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(max_wait=0.0)


class TestWorkerBudgetTracker:
    def test_remaining_decreases_with_charges(self):
        tracker = WorkerBudgetTracker()
        tracker.register(7, 5.0)
        ledger = PrivacyLedger()
        ledger.record(7, 0, 1.5)
        ledger.record(7, 1, 2.0)
        tracker.charge(ledger)
        assert tracker.spent(7) == pytest.approx(3.5)
        assert tracker.remaining(7) == pytest.approx(1.5)
        assert not tracker.exhausted(7)
        assert tracker.exhausted(7, floor=1.5)

    def test_unregistered_worker_is_unlimited(self):
        tracker = WorkerBudgetTracker()
        assert tracker.remaining(3) == float("inf")
        assert not tracker.exhausted(3)

    def test_overspend_raises(self):
        tracker = WorkerBudgetTracker()
        tracker.register(7, 1.0)
        ledger = PrivacyLedger()
        ledger.record(7, 0, 2.0)
        with pytest.raises(ConfigurationError, match="exceeded shift budget"):
            tracker.charge(ledger)

    def test_overspend_error_carries_context(self):
        """The typed error names the worker and the numbers involved."""
        tracker = WorkerBudgetTracker()
        tracker.register(7, 1.0)
        ledger = PrivacyLedger()
        ledger.record(7, 0, 2.5)
        with pytest.raises(FlushBudgetError) as excinfo:
            tracker.charge(ledger)
        error = excinfo.value
        assert error.worker_id == 7
        assert error.spend == pytest.approx(2.5)
        assert error.remaining == pytest.approx(-1.5)

    def test_charges_accumulate_across_flushes(self):
        tracker = WorkerBudgetTracker()
        tracker.register(7, 10.0)
        for _ in range(3):
            ledger = PrivacyLedger()
            ledger.record(7, 0, 2.0)
            tracker.charge(ledger)
        assert tracker.spent(7) == pytest.approx(6.0)
        assert tracker.total_spend() == pytest.approx(6.0)


class TestBudgetCappedInstances:
    def setup_method(self):
        self.batcher = MicroBatcher(
            budget_sampler=BudgetSampler(low=1.0, high=1.0, group_size=3)
        )
        self.tasks = [open_task(0, x=0.0), open_task(1, x=1.0)]
        self.workers = [worker(0, x=0.5)]

    def test_uncapped_when_tracker_is_none(self):
        instance = self.batcher.build_instance(self.tasks, self.workers, None, seed=0)
        assert instance.reachable[0] == (0, 1)
        # Both pairs keep their full Z=3 vectors (3.0 each, 6.0 total).
        assert instance.budget_vector(0, 0).total == pytest.approx(3.0)

    def test_worst_case_spend_fits_remaining(self):
        tracker = WorkerBudgetTracker()
        tracker.register(0, 4.0)
        instance = self.batcher.build_instance(
            self.tasks, self.workers, tracker, seed=0
        )
        total = sum(
            instance.budget_vector(i, j).total for i, j in instance.feasible_pairs()
        )
        assert total <= 4.0 + 1e-9
        # First pair affordable in full, second truncated to the remainder.
        assert instance.budget_vector(0, 0).total == pytest.approx(3.0)
        assert instance.budget_vector(1, 0).total == pytest.approx(1.0)

    def test_exhausted_worker_loses_all_pairs(self):
        tracker = WorkerBudgetTracker()
        tracker.register(0, 0.5)  # below the cheapest single element
        instance = self.batcher.build_instance(
            self.tasks, self.workers, tracker, seed=0
        )
        assert instance.reachable[0] == ()
        assert instance.num_feasible_pairs == 0

    def test_partial_spend_carries_forward(self):
        tracker = WorkerBudgetTracker()
        tracker.register(0, 4.0)
        ledger = PrivacyLedger()
        ledger.record(0, 0, 2.5)
        tracker.charge(ledger)
        instance = self.batcher.build_instance(
            self.tasks, self.workers, tracker, seed=0
        )
        assert tracker.remaining(0) == pytest.approx(1.5)
        total = sum(
            instance.budget_vector(i, j).total for i, j in instance.feasible_pairs()
        )
        assert total <= tracker.remaining(0) + 1e-9


class TestTruncationFastPath:
    """The vectorized fits-remainder shortcut vs the reference loop.

    The fast path may only fire where the sequential reference loop
    provably keeps every element; remainders anywhere near the worker's
    total — including within float-rounding distance of it — must fall
    through to the exact loop and truncate identically.
    """

    def _reference_keep_len(self, instance, remaining_by_worker):
        import numpy as np

        pairs = instance.pairs
        keep = []
        for j in range(instance.num_workers):
            lo, hi = int(pairs.offsets[j]), int(pairs.offsets[j + 1])
            remaining = remaining_by_worker[j]
            for p in range(lo, hi):
                z = int(pairs.budget_len[p])
                k = int(
                    np.count_nonzero(
                        pairs.budget_prefix[p, 1 : z + 1] <= remaining + 1e-12
                    )
                )
                keep.append(k)
                if k:
                    remaining -= pairs.budget_prefix[p, k]
        return keep

    @pytest.mark.parametrize(
        "offset",
        [0.0, -1e-13, 1e-13, -1e-9, 1e-9, -0.5, 0.5, -2.9, 10.0],
        ids=lambda o: f"total{o:+g}",
    )
    def test_matches_reference_loop_at_and_near_the_cap(self, offset):
        import numpy as np

        batcher = MicroBatcher(
            budget_sampler=BudgetSampler(low=0.5, high=1.75, group_size=3)
        )
        tasks = [open_task(i, x=float(i) * 0.4) for i in range(4)]
        fleet = [worker(0, x=0.5), worker(1, x=1.0)]
        uncapped = batcher.build_instance(tasks, fleet, None, seed=7)
        pairs = uncapped.pairs
        totals = [
            sum(
                float(pairs.budget_prefix[p, int(pairs.budget_len[p])])
                for p in range(int(pairs.offsets[j]), int(pairs.offsets[j + 1]))
            )
            for j in range(2)
        ]
        tracker = WorkerBudgetTracker()
        remaining = [totals[0] + offset, totals[1] + offset]
        for j in (0, 1):
            if remaining[j] > 0:
                tracker.register(j, remaining[j])
        capped = batcher.build_instance(tasks, fleet, tracker, seed=7)
        expected = self._reference_keep_len(
            uncapped, [tracker.remaining(j) for j in (0, 1)]
        )
        kept = []
        table = capped.budgets
        for i, j in uncapped.feasible_pairs():
            vector = table.get((i, j))
            kept.append(len(vector) if vector is not None else 0)
        assert kept == [k for k in expected], (offset, totals)
        # The cap invariant itself (one home, asserted in build_instance)
        # held or we would not be here; double-check the totals anyway.
        spent = [0.0, 0.0]
        for (i, j), vector in table.items():
            spent[j] += vector.total
        for j in (0, 1):
            assert spent[j] <= tracker.remaining(j) + 1e-9
        assert np.all(capped.pairs.budget_len >= 1)


class TestCappedArraySlicing:
    """The vectorized truncation must leave coherent CSR pair arrays."""

    def test_sliced_arrays_stay_consistent(self):
        batcher = MicroBatcher(
            budget_sampler=BudgetSampler(low=1.0, high=1.0, group_size=3)
        )
        tasks = [open_task(0, x=0.0), open_task(1, x=1.0), open_task(2, x=2.0)]
        workers = [worker(0, x=0.5), worker(1, x=1.5), worker(2, x=2.5)]
        tracker = WorkerBudgetTracker()
        tracker.register(0, 4.0)   # truncates worker 0's second pair
        tracker.register(1, 0.5)   # drops worker 1 entirely
        # worker 2 unregistered: infinite capacity, untouched vectors
        instance = batcher.build_instance(tasks, workers, tracker, seed=0)

        assert instance.reachable[1] == ()
        pairs = instance.pairs
        for j in range(instance.num_workers):
            sl = pairs.worker_slice(j)
            assert tuple(pairs.task[sl].tolist()) == instance.reachable[j]
        # Every retained vector is the exact prefix of the sampled one and
        # worst-case spend fits each worker's remaining budget.
        for (i, j) in instance.feasible_pairs():
            vector = instance.budget_vector(i, j)
            assert all(e == 1.0 for e in vector.epsilons)
        spend_w0 = sum(
            instance.budget_vector(i, j).total
            for (i, j) in instance.feasible_pairs()
            if j == 0
        )
        assert spend_w0 <= 4.0 + 1e-9

    def test_cap_invariant_has_single_home(self):
        """A tracker reporting negative remaining trips the cap check."""
        batcher = MicroBatcher(
            budget_sampler=BudgetSampler(low=1.0, high=1.0, group_size=1)
        )

        class BrokenTracker(WorkerBudgetTracker):
            def remaining(self, worker_id):
                return float("nan")  # poisons every comparison

        # NaN remaining keeps no budget elements, and the one-home cap
        # check rejects the poisoned comparison loudly instead of handing
        # the solver an uncapped instance.
        with pytest.raises(FlushBudgetError, match="flush cap") as excinfo:
            batcher.build_instance([open_task(0)], [worker(0)], BrokenTracker(), seed=0)
        assert excinfo.value.worker_id == 0
        assert excinfo.value.spend is not None


class TestAdaptiveBatchController:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            AdaptiveBatchController(target_seconds=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveBatchController(min_size=10, max_size=5)
        with pytest.raises(ConfigurationError):
            AdaptiveBatchController(growth=1.0)
        with pytest.raises(ConfigurationError):
            AdaptiveBatchController(headroom=0.0)

    def test_slow_flush_shrinks_proportionally(self):
        controller = AdaptiveBatchController(target_seconds=0.01, min_size=4)
        # 4x over target -> size drops toward a quarter.
        assert controller.next_size(100, 0.04, 100) == 25
        # Never below the floor.
        assert controller.next_size(5, 10.0, 5) == 4

    def test_fast_full_flush_grows(self):
        controller = AdaptiveBatchController(target_seconds=0.01, max_size=120)
        assert controller.next_size(50, 0.001, 50) == 75
        # Growth clamps at the ceiling.
        assert controller.next_size(100, 0.001, 100) == 120

    def test_underfilled_fast_flush_holds(self):
        """A wait-triggered trickle flush is no evidence for growth."""
        controller = AdaptiveBatchController(target_seconds=0.01)
        assert controller.next_size(50, 0.001, 12) == 50

    def test_in_band_flush_holds(self):
        controller = AdaptiveBatchController(target_seconds=0.01, headroom=0.5)
        assert controller.next_size(50, 0.007, 50) == 50

    def test_batcher_observe_flush_drives_the_limit(self):
        batcher = MicroBatcher(
            max_batch_size=50,
            controller=AdaptiveBatchController(target_seconds=0.01, min_size=4),
        )
        assert batcher.observe_flush(0.04, 50) == 12
        assert batcher.max_batch_size == 12
        assert batcher.observe_flush(0.001, 12) == 18

    def test_observe_flush_without_controller_is_a_noop(self):
        batcher = MicroBatcher(max_batch_size=50)
        assert batcher.observe_flush(10.0, 50) == 50
        assert batcher.max_batch_size == 50

    def test_initial_limit_clamped_into_controller_bounds(self):
        batcher = MicroBatcher(
            max_batch_size=5000,
            controller=AdaptiveBatchController(max_size=100),
        )
        assert batcher.max_batch_size == 100
