"""The flush-fingerprint solver cache in the streaming stack."""

import pytest

from repro.api.options import SolveOptions
from repro.api.scenario import ScenarioSpec
from repro.core.nonprivate import UCESolver
from repro.errors import ConfigurationError
from repro.stream.cache import FlushSolverCache, cache_profile, flush_fingerprint
from repro.stream.runner import StreamRunner
from tests.conftest import line_instance


class TestFlushSolverCache:
    def test_lru_eviction_keeps_the_most_recent(self):
        cache = FlushSolverCache(max_entries=2)
        instance = line_instance(num_tasks=2, num_workers=3, seed=0)
        result = UCESolver().solve(instance, seed=0)
        cache.store("a", result, 1)
        cache.store("b", result, 1)
        assert cache.lookup("a", instance) is not None  # refreshes "a"
        cache.store("c", result, 1)  # evicts "b", the LRU entry
        assert cache.lookup("b", instance) is None
        assert cache.lookup("a", instance) is not None
        assert cache.lookup("c", instance) is not None
        assert len(cache) == 2

    def test_counters_and_hit_rate(self):
        cache = FlushSolverCache()
        instance = line_instance(num_tasks=2, num_workers=3, seed=0)
        assert cache.hit_rate == 0.0
        assert cache.lookup("a", instance) is None
        cache.store("a", UCESolver().solve(instance, seed=0), 1)
        assert cache.lookup("a", instance) is not None
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_hits_rebind_to_the_fresh_instance_when_given(self):
        cache = FlushSolverCache()
        instance = line_instance(num_tasks=2, num_workers=3, seed=0)
        twin = line_instance(num_tasks=2, num_workers=3, seed=0)
        cache.store("a", UCESolver().solve(instance, seed=0), 3)
        hit, shards = cache.lookup("a", twin)
        assert hit.instance is twin
        assert shards == 3
        assert hit.elapsed_seconds == 0.0
        # The zero-rebuild path looks up before any instance exists.
        bare, _ = cache.lookup("a")
        assert bare.instance is instance
        assert bare.elapsed_seconds == 0.0

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigurationError, match="max_entries"):
            FlushSolverCache(max_entries=0)

    def test_clear_drops_entries_not_counters(self):
        cache = FlushSolverCache()
        instance = line_instance(num_tasks=2, num_workers=3, seed=0)
        cache.store("a", UCESolver().solve(instance, seed=0), 1)
        cache.lookup("a", instance)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1


class TestFingerprintContent:
    def test_public_ids_are_part_of_the_key(self):
        instance = line_instance(num_tasks=3, num_workers=4, seed=1)
        relabeled = type(instance)(
            tasks=[
                type(t)(id=t.id + 100, location=t.location, value=t.value)
                for t in instance.tasks
            ],
            workers=instance.workers,
            model=instance.model,
            reachable=instance.reachable,
            pairs=instance.pairs,
        )
        profile = cache_profile(UCESolver())
        assert flush_fingerprint(instance, profile) != flush_fingerprint(
            relabeled, profile
        )

    def test_method_configuration_is_part_of_the_key(self):
        instance = line_instance(num_tasks=3, num_workers=4, seed=1)
        a = flush_fingerprint(instance, cache_profile(UCESolver()))
        b = flush_fingerprint(instance, cache_profile(UCESolver(max_rounds=7)))
        c = flush_fingerprint(
            instance, cache_profile(UCESolver(), shard_key="cut(min_pairs=192)")
        )
        assert len({a, b, c}) == 3


class TestPlannedCutInTheKey:
    def test_simulator_cache_key_carries_the_cut_config(self):
        """Two streams differing only in the cut's coalescing floor must
        never alias: the simulator bakes ``cut(min_pairs=N)`` into the
        cache profile (the plan's mode/slots/transport stay out — results
        are invariant to them)."""
        from repro.stream.simulator import DispatchSimulator, StreamConfig

        simulator = DispatchSimulator(
            UCESolver(),
            config=StreamConfig(cache=True),
        )
        floor = simulator._shard_executor.min_shard_pairs
        assert f"cut(min_pairs={floor})" in simulator._cache_profile.method_key
        a = cache_profile(UCESolver(), shard_key="cut(min_pairs=192)")
        b = cache_profile(UCESolver(), shard_key="cut(min_pairs=64)")
        assert a.method_key != b.method_key


class TestDutyCycleScenario:
    """The checked-in duty-cycle artifact must exercise the cache."""

    def test_duty_cycle_scenario_hits_the_cache(self):
        spec = ScenarioSpec.from_file("examples/scenario_duty_cycle.json")
        assert spec.options.cache is True
        report = spec.run()
        uce = report["UCE"]
        # The smoke assertion CI relies on: a duty-cycle fleet re-flushes
        # recurring loser sets, so the pure methods must hit (>0%).
        assert uce.cache_hits > 0
        assert uce.cache_hit_rate > 0.0
        assert uce.cache_hits + uce.cache_misses == len(uce.flushes)
        hit_flags = [f.cache_hit for f in uce.flushes]
        assert all(flag in (True, False) for flag in hit_flags)
        assert sum(hit_flags) == uce.cache_hits
        # Private methods key on the per-flush noise schedule: inside a
        # single stream their fingerprints can provably never repeat, so
        # the per-stream cache skips the machinery entirely (no hits, no
        # misses, no stored entries — and no fingerprint overhead).
        puce = report["PUCE"]
        assert puce.cache_hits == 0
        assert puce.cache_misses == 0
        assert all(f.cache_hit is None for f in puce.flushes)

    def test_rush_hour_scenario_enables_the_cache(self):
        spec = ScenarioSpec.from_file("examples/scenario_rush_hour.json")
        assert spec.options.cache is True
        assert spec.options.workspace is True


class TestCacheOffByDefault:
    def test_default_stream_runs_leave_cache_fields_untouched(self):
        from repro.datasets.synthetic import NormalGenerator
        from repro.stream.arrivals import PoissonProcess, StreamWorkload

        workload = StreamWorkload(
            task_process=PoissonProcess(rate=15.0, horizon=0.5),
            worker_process=PoissonProcess(rate=5.0, horizon=0.5),
            spatial=NormalGenerator(num_tasks=40, num_workers=80, seed=2),
            initial_workers=10,
            seed=2,
        )
        stats = StreamRunner(
            ["UCE"], options=SolveOptions(max_batch_size=8, max_wait=0.1)
        ).run_workload(workload, seed=2)["UCE"]
        assert stats.cache_hits == stats.cache_misses == 0
        assert all(f.cache_hit is None for f in stats.flushes)
