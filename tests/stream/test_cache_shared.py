"""The shared cache under service duty: bounds, threads, snapshots."""

import json
import threading

import pytest

from repro.core.nonprivate import GreedySolver, UCESolver
from repro.errors import ConfigurationError
from repro.stream.cache import FlushSolverCache
from repro.stream.persist import (
    SNAPSHOT_VERSION,
    SnapshotError,
    decode_result,
    encode_result,
)
from tests.conftest import line_instance


def solved(seed=0, num_tasks=2, num_workers=3):
    instance = line_instance(
        num_tasks=num_tasks, num_workers=num_workers, seed=seed
    )
    return instance, UCESolver().solve(instance, seed=seed)


def _board(result):
    """release_board keyed to comparable tuples (ReleaseSet has no __eq__)."""
    return {
        key: releases.releases for key, releases in result.release_board.items()
    }


class TestEvictionBounds:
    def test_entry_bound_holds_under_overfill(self):
        cache = FlushSolverCache(max_entries=3)
        _, result = solved()
        for i in range(10):
            cache.store(f"k{i}", result, 1)
        assert len(cache) == 3
        assert cache.evictions == 7
        # The survivors are the three most recently stored.
        assert cache.lookup("k9") is not None
        assert cache.lookup("k0") is None

    def test_byte_bound_evicts_oldest_first(self):
        _, result = solved()
        cache = FlushSolverCache(max_entries=100, max_bytes=1)
        cache.store("a", result, 1)
        # The newest entry always survives, even over the byte bound:
        # an empty cache defeats its purpose.
        assert len(cache) == 1
        cache.store("b", result, 1)
        assert len(cache) == 1
        assert cache.lookup("b") is not None
        assert cache.lookup("a") is None

    def test_total_bytes_tracks_entries(self):
        _, result = solved()
        cache = FlushSolverCache()
        assert cache.total_bytes == 0
        cache.store("a", result, 1)
        one = cache.total_bytes
        assert one > 0
        cache.store("b", result, 1)
        assert cache.total_bytes == 2 * one
        cache.clear()
        assert cache.total_bytes == 0

    def test_restore_does_not_double_count(self):
        _, result = solved()
        cache = FlushSolverCache()
        cache.store("a", result, 1)
        one = cache.total_bytes
        cache.store("a", result, 2)  # same key: replaces, not accumulates
        assert cache.total_bytes == one

    def test_bad_byte_bound_rejected(self):
        with pytest.raises(ConfigurationError, match="max_bytes"):
            FlushSolverCache(max_bytes=0)


class TestThreadSafety:
    def test_interleaved_get_store_under_threads(self):
        """Many sessions hammering one cache: no lost updates, no tears.

        The dict invariants (len <= bound, bytes consistent) must hold
        after arbitrary interleavings of store/lookup/clear.
        """
        _, result = solved()
        cache = FlushSolverCache(max_entries=8)
        errors = []

        def worker(tid):
            try:
                for i in range(200):
                    key = f"t{tid}-{i % 12}"
                    cache.store(key, result, 1)
                    hit = cache.lookup(key)
                    if hit is not None:
                        got, shards = hit
                        assert shards == 1
                        assert got.matched_count == result.matched_count
                    cache.lookup(f"t{(tid + 1) % 4}-{i % 12}")
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(cache) <= 8
        recount = sum(
            entry.nbytes for entry in cache._entries.values()
        )
        assert cache.total_bytes == recount

    def test_concurrent_sessions_share_hits(self):
        """Two identical session workloads through one shared cache: the
        second wave of flushes must hit what the first stored."""
        from repro.api.options import SolveOptions
        from repro.api.session import DispatchSession, SessionConfig
        from repro.datasets.synthetic import NormalGenerator
        from repro.stream.arrivals import PoissonProcess, StreamWorkload

        workload = StreamWorkload(
            task_process=PoissonProcess(rate=20.0, horizon=0.6),
            worker_process=PoissonProcess(rate=6.0, horizon=0.6),
            spatial=NormalGenerator(num_tasks=60, num_workers=120, seed=3),
            initial_workers=15,
            seed=3,
        )
        events = list(workload.events(seed=3))
        shared = FlushSolverCache()
        options = SolveOptions(max_batch_size=10, max_wait=0.12)
        runs = []
        for _ in range(2):
            session = DispatchSession(
                "UCE",
                SessionConfig(
                    options=options, record_assignments=False, cache=shared
                ),
            )
            runs.append(session.run(events))
        assert runs[1].cache_hits == len(runs[1].flushes)
        assert runs[0].total_utility == runs[1].total_utility
        assert runs[0].latencies == runs[1].latencies


class TestResultCodec:
    def test_round_trip_is_bit_identical(self):
        instance, result = solved(seed=4, num_tasks=3, num_workers=4)
        payload = json.loads(json.dumps(encode_result(result)))
        back = decode_result(payload)
        assert back.instance == instance
        assert back.matching.pairs == result.matching.pairs
        assert list(back.ledger.events()) == list(result.ledger.events())
        assert _board(back) == _board(result)
        assert back.method == result.method
        assert back.rounds == result.rounds
        assert back.publishes == result.publishes

    def test_private_result_round_trips_the_ledger(self):
        from repro.core.puce import PUCESolver

        instance = line_instance(num_tasks=3, num_workers=4, seed=7)
        result = PUCESolver().solve(instance, seed=7)
        payload = json.loads(json.dumps(encode_result(result)))
        back = decode_result(payload)
        assert list(back.ledger.events()) == list(result.ledger.events())
        assert back.ledger.total_spend() == result.ledger.total_spend()
        assert _board(back) == _board(result)

    def test_wrong_version_is_refused(self):
        _, result = solved()
        payload = encode_result(result)
        payload["v"] = SNAPSHOT_VERSION + 1
        with pytest.raises(SnapshotError, match="version"):
            decode_result(payload)


class TestSnapshotPersistence:
    def test_save_load_round_trip_preserves_lookups(self, tmp_path):
        instance, result = solved(seed=1)
        other_instance, other = solved(seed=2)
        cache = FlushSolverCache(max_entries=16)
        cache.store("one", result, 1)
        cache.store("two", other, 3)
        path = tmp_path / "cache.json"
        assert cache.save(path) == 2
        loaded = FlushSolverCache.load(path)
        assert len(loaded) == 2
        got, shards = loaded.lookup("two")
        assert shards == 3
        assert got.instance == other_instance
        assert got.matching.pairs == other.matching.pairs
        # LRU order survives: "one" is still the eviction candidate.
        loaded.store("three", result, 1)
        small = FlushSolverCache.from_snapshot(
            cache.to_snapshot(), max_entries=1
        )
        assert len(small) == 1
        assert small.lookup("two") is not None
        assert small.lookup("one") is None

    def test_snapshot_is_plain_json(self, tmp_path):
        _, result = solved()
        cache = FlushSolverCache()
        cache.store("a", result, 1)
        path = tmp_path / "snap.json"
        cache.save(path)
        payload = json.loads(path.read_text())
        assert payload["v"] == SNAPSHOT_VERSION
        assert payload["skipped"] == 0
        assert [e["fingerprint"] for e in payload["entries"]] == ["a"]

    def test_unencodable_entries_are_skipped_not_fatal(self):
        import dataclasses

        from repro.core.utility import UtilityModel

        class WeirdValue:
            def __call__(self, x):
                return 1.0

        instance, result = solved()
        weird_instance = type(instance)(
            tasks=instance.tasks,
            workers=instance.workers,
            model=UtilityModel(f_d=WeirdValue()),
            reachable=instance.reachable,
            pairs=instance.pairs,
        )
        weird = dataclasses.replace(result, instance=weird_instance)
        cache = FlushSolverCache()
        cache.store("fine", result, 1)
        cache.store("weird", weird, 1)
        snapshot = cache.to_snapshot()
        assert snapshot["skipped"] == 1
        assert [e["fingerprint"] for e in snapshot["entries"]] == ["fine"]

    def test_greedy_results_round_trip_too(self, tmp_path):
        instance = line_instance(num_tasks=3, num_workers=3, seed=5)
        result = GreedySolver().solve(instance, seed=5)
        cache = FlushSolverCache()
        cache.store("g", result, 1)
        path = tmp_path / "g.json"
        cache.save(path)
        loaded = FlushSolverCache.load(path)
        got, _ = loaded.lookup("g")
        assert got.matching.pairs == result.matching.pairs

    def test_wrong_snapshot_version_is_refused(self):
        with pytest.raises(ConfigurationError, match="version"):
            FlushSolverCache.from_snapshot(
                {"v": SNAPSHOT_VERSION + 1, "entries": []}
            )
