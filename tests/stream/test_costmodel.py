"""Unit tests for the flush cost model and planner (the planning layer).

Predicted *seconds* are host-dependent; what these tests pin is the
host-independent structure: the per-mode term taxonomy, the calibration
algebra (a least-squares fit recovers planted constants from exact
samples), the symmetric geomean error measure, planner determinism, and
the forced-config / transport rules the sharded executor relies on.
"""

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.stream.costmodel import (
    DEFAULT_CONSTANTS,
    SHM_MIN_PAIRS,
    FlushCostModel,
    FlushPlan,
    FlushPlanner,
    geomean_ratio,
)


class TestCostModel:
    def test_unknown_constant_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown cost-model constant"):
            FlushCostModel({"warp_drive_fixed": 1.0})

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown plan mode"):
            FlushCostModel().phase_terms("fork", pairs=10, units=1)

    def test_phase_taxonomy_per_mode(self):
        """Each mode emits exactly the phases the executor traces for it."""
        model = FlushCostModel()
        assert set(model.phase_terms("unsharded", 500, 1)) == {"plan", "cut", "solve"}
        assert set(model.phase_terms("seq", 500, 4)) == {
            "plan", "cut", "build", "solve", "merge",
        }
        pickle_terms = model.phase_terms(
            "process", 500, 4, shards=2, cores=2, transport="pickle"
        )
        assert set(pickle_terms) == {"plan", "cut", "build", "solve", "merge"}
        assert "pickle_per_pair" in pickle_terms["solve"]
        # shm folds the build into the workers' parallel section: no main-
        # process build phase, staging terms ride in solve instead.
        shm_terms = model.phase_terms(
            "process", 500, 4, shards=2, cores=2, transport="shm"
        )
        assert set(shm_terms) == {"plan", "cut", "solve", "merge"}
        assert "shm_fixed" in shm_terms["solve"]
        assert "pickle_per_pair" not in shm_terms["solve"]

    def test_micro_cut_term_switches_at_threshold(self):
        model = FlushCostModel()
        at = model.phase_terms("unsharded", 192, 1, min_shard_pairs=192)["cut"]
        above = model.phase_terms("unsharded", 193, 1, min_shard_pairs=192)["cut"]
        assert set(at) == {"cut_micro_fixed"}
        assert set(above) == {"cut_fixed", "cut_per_pair"}

    def test_predict_is_sum_of_phases_and_monotone_in_pairs(self):
        model = FlushCostModel()
        phases = model.predict_phases("seq", 1000, 3)
        assert model.predict("seq", 1000, 3) == pytest.approx(sum(phases.values()))
        assert model.predict("seq", 2000, 3) > model.predict("seq", 1000, 3)

    def test_fit_recovers_planted_constants(self):
        """Exact per-phase samples from known constants fit back exactly.

        Per-*phase* rows are the calibration scheme: a whole-flush row
        would alias e.g. ``build_per_pair`` with ``solve_per_pair``
        (both scale with pairs), but within a phase the terms are
        linearly independent once pairs and units vary.
        """
        truth = FlushCostModel({"solve_per_pair": 3.3e-6, "solve_unit_fixed": 2.5e-4})
        samples = []
        for pairs in (50, 200, 800, 3200):
            for units in (1, 3, 9):
                terms = truth.phase_terms("seq", pairs, units)
                phases = truth.predict_phases("seq", pairs, units)
                samples.extend(
                    (term, phases[phase]) for phase, term in terms.items()
                )
        fitted = FlushCostModel().fit(samples)
        assert fitted.constants["solve_per_pair"] == pytest.approx(3.3e-6, rel=1e-6)
        assert fitted.constants["solve_unit_fixed"] == pytest.approx(2.5e-4, rel=1e-6)
        # Constants absent from every sample keep their defaults.
        assert fitted.constants["shm_fixed"] == DEFAULT_CONSTANTS["shm_fixed"]

    def test_fit_empty_samples_is_identity(self):
        model = FlushCostModel({"solve_per_pair": 9e-6})
        assert model.fit([]).constants == model.constants

    def test_max_pairs_within_monotone_with_zero_floor(self):
        model = FlushCostModel()
        assert model.max_pairs_within(1e-12) == 0.0
        small = model.max_pairs_within(0.005)
        large = model.max_pairs_within(0.05)
        assert 0.0 < small < large

    def test_from_bench_dir_reads_shards_constants(self, tmp_path):
        payload = {"constants": {"solve_per_pair": 7.5e-6, "not_a_constant": 1.0}}
        (tmp_path / "BENCH_shards.json").write_text(json.dumps(payload))
        model = FlushCostModel.from_bench_dir(tmp_path)
        assert model.constants["solve_per_pair"] == pytest.approx(7.5e-6)
        assert "not_a_constant" not in model.constants

    def test_from_bench_dir_missing_files_keeps_defaults(self, tmp_path):
        assert FlushCostModel.from_bench_dir(tmp_path).constants == DEFAULT_CONSTANTS


class TestGeomeanRatio:
    def test_perfect_prediction_is_one(self):
        assert geomean_ratio([1.0, 0.5], [1.0, 0.5]) == pytest.approx(1.0)

    def test_symmetric_over_and_under_prediction(self):
        assert geomean_ratio([2.0], [1.0]) == pytest.approx(
            geomean_ratio([1.0], [2.0])
        )
        assert geomean_ratio([2.0, 0.5], [1.0, 1.0]) == pytest.approx(2.0)

    def test_nonpositive_pairs_skipped(self):
        assert geomean_ratio([0.0, 3.0], [1.0, 1.0]) == pytest.approx(3.0)

    def test_empty_is_inf(self):
        assert geomean_ratio([], []) == math.inf
        assert geomean_ratio([0.0], [1.0]) == math.inf


class TestFlushPlanLabel:
    def test_labels(self):
        assert FlushPlan(mode="unsharded").label == "uns"
        assert FlushPlan(mode="seq").label == "seq"
        assert FlushPlan(mode="thread", shards=2).label == "thr:2"
        assert FlushPlan(mode="process", shards=4, transport="shm").label == "proc:4+shm"
        assert FlushPlan(mode="process", shards=2, transport="pickle").label == "proc:2"


class TestPlanner:
    def test_plan_is_deterministic(self):
        planner = FlushPlanner(cores=4)
        plans = {planner.plan(5000, 6, False) for _ in range(5)}
        assert len(plans) == 1

    def test_single_unit_direct_is_unsharded(self):
        plan = FlushPlanner(cores=8).plan(10_000, 1, True)
        assert plan.mode == "unsharded"
        assert plan.transport == "inline"
        assert plan.predicted_seconds > 0.0

    def test_forced_shards_pins_slots_but_still_predicts(self):
        planner = FlushPlanner(cores=8, parallel="off", forced_shards=3)
        plan = planner.plan(5000, 6, False)
        assert plan.mode == "seq" and plan.shards == 3
        assert plan.predicted_seconds > 0.0
        forced = FlushPlanner(cores=8, parallel="process", forced_shards=3)
        assert forced.plan(5000, 6, False).mode == "process"

    def test_parallel_restricts_the_pool_family(self):
        plan = FlushPlanner(cores=4, parallel="process").plan(50, 4, False)
        assert plan.mode == "process"
        plan = FlushPlanner(cores=4, parallel="thread").plan(50, 4, False)
        assert plan.mode == "thread"

    def test_one_core_free_planner_never_goes_parallel(self):
        """With one core there is no speedup to buy: seq wins outright."""
        planner = FlushPlanner(cores=1)
        for pairs in (10, 1000, 100_000):
            assert planner.plan(pairs, 8, False).mode == "seq"

    def test_transport_rules(self):
        planner = FlushPlanner(cores=4, parallel="process", shm_ok=True)
        assert planner.plan(SHM_MIN_PAIRS, 4, False).transport == "shm"
        assert planner.plan(SHM_MIN_PAIRS - 1, 4, False).transport == "pickle"
        no_shm = FlushPlanner(cores=4, parallel="process", shm_ok=False)
        assert no_shm.plan(10 * SHM_MIN_PAIRS, 4, False).transport == "pickle"
        assert FlushPlanner(cores=4, parallel="thread").plan(
            10 * SHM_MIN_PAIRS, 4, False
        ).transport == "inline"

    def test_invalid_forced_shards_rejected(self):
        with pytest.raises(ConfigurationError, match="forced_shards"):
            FlushPlanner(forced_shards=0)
