"""Planner-on streams == forced-unsharded streams, event for event.

The cost model only ever chooses among result-identical execution
strategies (the cut, not the plan, defines every noise stream), so a
``shards="auto"`` run of a committed scenario spec must reproduce the
forced ``shards=0`` run exactly — assignments, latencies, per-worker
spend, and the whole flush timeline.  These are the acceptance runs of
ISSUE 7, pinned against the shipped example scenarios.
"""

import dataclasses
from pathlib import Path

import pytest

from repro.api import ScenarioSpec

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(spec_path, shards):
    spec = ScenarioSpec.from_file(spec_path)
    spec = dataclasses.replace(
        spec, options=dataclasses.replace(spec.options, shards=shards)
    )
    return spec.run()


def _fingerprint(report):
    """Everything observable about a run except wall-clock and the plan."""
    out = {}
    for method in report.methods():
        stats = report[method]
        out[method] = (
            stats.arrived_tasks,
            stats.arrived_workers,
            stats.assigned,
            stats.expired,
            stats.leftover,
            stats.total_utility,
            stats.total_distance,
            tuple(stats.latencies),
            stats.total_privacy_spend,
            tuple(sorted(stats.per_worker_spend.items())),
            tuple(stats.privacy_timeline),
            tuple(
                (
                    f.index,
                    f.time,
                    f.pending_tasks,
                    f.idle_workers,
                    f.matched,
                    f.cumulative_privacy_spend,
                    f.shards,
                    f.pairs,
                )
                for f in stats.flushes
            ),
        )
    return out


class TestPlannerEquivalence:
    @pytest.mark.parametrize(
        "scenario", ["scenario_duty_cycle.json", "scenario_rush_hour.json"]
    )
    def test_planner_on_matches_forced_unsharded(self, scenario):
        path = EXAMPLES / scenario
        assert _fingerprint(_run(path, "auto")) == _fingerprint(_run(path, 0))


class TestPlanRecords:
    def test_auto_flush_records_carry_the_plan(self):
        report = _run(EXAMPLES / "scenario_duty_cycle.json", "auto")
        for method in report.methods():
            stats = report[method]
            assert stats.flushes
            for record in stats.flushes:
                assert record.planned_mode != ""
                if record.planned_mode != "cache":
                    assert record.predicted_seconds > 0.0
                    assert record.pairs >= 0
            assert stats.plan_summary != "-"

    def test_cache_served_flushes_are_labelled_cache(self):
        # duty_cycle ships with cache=true and UCE is cache-eligible.
        report = _run(EXAMPLES / "scenario_duty_cycle.json", "auto")
        stats = report["UCE"]
        assert stats.cache_hits > 0
        assert any(f.planned_mode == "cache" for f in stats.flushes)
        assert "cache" in stats.plan_summary

    def test_plan_summary_counts_by_first_seen_mode(self):
        from repro.stream.metrics import FlushRecord, StreamStats

        stats = StreamStats(method="UCE")
        base = dict(
            time=0.0, pending_tasks=1, idle_workers=1, matched=0,
            solver_seconds=0.0, cumulative_privacy_spend=0.0,
        )
        for index, mode in enumerate(["uns", "uns", "seq", "uns"]):
            stats.flushes.append(
                FlushRecord(index=index, planned_mode=mode, **base)
            )
        assert stats.plan_summary == "uns:3 seq:1"
        assert StreamStats(method="UCE").plan_summary == "-"
