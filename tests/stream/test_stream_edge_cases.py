"""Stream edge cases: empty streams, mass expiry, drained fleets, budgets."""

from repro.datasets.synthetic import NormalGenerator
from repro.stream.arrivals import PoissonProcess, StreamWorkload
from repro.stream.runner import StreamRunner
from repro.stream.simulator import StreamConfig


def _spatial(seed=1):
    return NormalGenerator(num_tasks=100, num_workers=200, seed=seed)


def _run(workload, methods=("PUCE",), config=None, seed=0):
    runner = StreamRunner(list(methods), config=config or StreamConfig())
    return runner.run_workload(workload, seed=seed)


class TestZeroArrivals:
    def test_empty_stream_is_a_clean_noop(self):
        workload = StreamWorkload(
            task_process=PoissonProcess(rate=0.0, horizon=2.0),
            worker_process=PoissonProcess(rate=0.0, horizon=2.0),
            spatial=_spatial(),
            initial_workers=0,
        )
        stats = _run(workload)["PUCE"]
        assert stats.arrived_tasks == 0
        assert stats.arrived_workers == 0
        assert stats.assigned == stats.expired == stats.leftover == 0
        assert stats.flushes == []
        assert stats.total_privacy_spend == 0.0
        assert stats.latency_p50 == stats.latency_p95 == 0.0
        assert stats.expiry_rate == 0.0

    def test_workers_but_no_tasks(self):
        workload = StreamWorkload(
            task_process=PoissonProcess(rate=0.0, horizon=2.0),
            worker_process=PoissonProcess(rate=5.0, horizon=2.0),
            spatial=_spatial(),
            initial_workers=3,
        )
        stats = _run(workload)["PUCE"]
        assert stats.arrived_workers > 0
        assert stats.arrived_tasks == 0
        assert stats.flushes == []


class TestMassExpiry:
    def test_all_tasks_expire_before_the_first_flush(self):
        # Patience far below the flush wait: every task dies in the buffer.
        workload = StreamWorkload(
            task_process=PoissonProcess(rate=20.0, horizon=1.0),
            worker_process=PoissonProcess(rate=0.0, horizon=1.0),
            spatial=_spatial(),
            initial_workers=10,
            task_deadline=0.01,
        )
        stats = _run(
            workload, config=StreamConfig(max_batch_size=1000, max_wait=5.0)
        )["PUCE"]
        assert stats.arrived_tasks > 0
        assert stats.assigned == 0
        assert stats.expired == stats.arrived_tasks
        assert stats.expiry_rate == 1.0
        assert all(flush.matched == 0 for flush in stats.flushes)

    def test_no_workers_ever_tasks_expire_inside_horizon(self):
        workload = StreamWorkload(
            task_process=PoissonProcess(rate=15.0, horizon=2.0),
            worker_process=PoissonProcess(rate=0.0, horizon=2.0),
            spatial=_spatial(),
            initial_workers=0,
            task_deadline=0.2,
        )
        stats = _run(workload, config=StreamConfig(max_wait=0.1))["PUCE"]
        assert stats.arrived_tasks > 0
        assert stats.assigned == 0
        # The deadline sweep records expiry even with no fleet at all.
        assert stats.expired == stats.arrived_tasks
        assert stats.leftover == 0


class TestFleetDrain:
    def test_pool_drains_to_empty_and_recovers_nothing(self):
        # Two workers, near-zero travel speed: each win occupies a worker
        # for far longer than the stream, so the pool drains permanently.
        workload = StreamWorkload(
            task_process=PoissonProcess(rate=25.0, horizon=1.5),
            worker_process=PoissonProcess(rate=0.0, horizon=1.5),
            spatial=_spatial(),
            initial_workers=2,
            task_deadline=0.3,
        )
        config = StreamConfig(max_batch_size=5, max_wait=0.05, speed=1e-6)
        stats = _run(workload, config=config)["PUCE"]
        assert 0 < stats.assigned <= 2
        assert stats.expired > 0
        assert stats.arrived_tasks == stats.assigned + stats.expired + stats.leftover


class TestBudgetExhaustion:
    def test_private_solver_starves_when_budget_runs_out(self):
        # Tiny shift budgets: private workers burn out mid-stream, while the
        # non-private counterpart (which never publishes) keeps dispatching.
        # Full coverage + instant service make budget the *only* constraint.
        workload = StreamWorkload(
            task_process=PoissonProcess(rate=30.0, horizon=2.0),
            worker_process=PoissonProcess(rate=0.0, horizon=2.0),
            spatial=_spatial(seed=6),
            initial_workers=12,
            worker_range=50.0,
            task_deadline=0.5,
            worker_budget=3.0,
            seed=6,
        )
        config = StreamConfig(
            max_batch_size=20, max_wait=0.1, speed=1e9, min_service=0.0
        )
        report = _run(workload, methods=("PUCE", "UCE"), config=config, seed=6)

        puce, uce = report["PUCE"], report["UCE"]
        assert puce.total_privacy_spend > 0.0
        for worker_id, spend in puce.per_worker_spend.items():
            assert spend <= 3.0 + 1e-9, (worker_id, spend)
        # Exhaustion bites: the private method completes strictly fewer
        # assignments than its unconstrained counterpart.
        assert puce.assigned < uce.assigned
        # Spend saturates: the last flushes add (almost) nothing.
        timeline = [spend for _, spend in puce.privacy_timeline]
        assert timeline[-1] <= 12 * 3.0 + 1e-9

    def test_budget_floor_below_cheapest_element_blocks_all_publishing(self):
        # Capacity below the cheapest possible epsilon: no private worker
        # can ever afford a single release, so nothing is ever assigned.
        workload = StreamWorkload(
            task_process=PoissonProcess(rate=10.0, horizon=1.0),
            worker_process=PoissonProcess(rate=0.0, horizon=1.0),
            spatial=_spatial(),
            initial_workers=8,
            worker_range=50.0,
            task_deadline=0.5,
            worker_budget=0.2,  # BudgetSampler default low is 0.5
        )
        config = StreamConfig(speed=1e9, min_service=0.0)
        report = _run(workload, methods=("PUCE", "UCE"), config=config)
        assert report["PUCE"].assigned == 0
        assert report["PUCE"].total_privacy_spend == 0.0
        assert report["UCE"].assigned > 0
