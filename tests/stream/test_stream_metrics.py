"""Unit tests for the streaming measures added by the observability PR.

Pins the ``latency_percentile`` fix (matched-only is a *conditional*
statistic; the expiry-adjusted variant charges expiries as infinite
latency), the ``update()`` event protocol, and the tracer-derived phase
breakdowns on :class:`FlushRecord` / :class:`StreamStats`.
"""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stream.events import Assignment
from repro.stream.metrics import FlushRecord, StreamStats


def flush_record(index=0, **overrides):
    defaults = dict(
        index=index,
        time=0.1 * (index + 1),
        pending_tasks=1,
        idle_workers=2,
        matched=1,
        solver_seconds=0.001,
        cumulative_privacy_spend=0.5 * (index + 1),
    )
    defaults.update(overrides)
    return FlushRecord(**defaults)


class TestExpiryAdjustedPercentile:
    def test_matched_only_percentile_is_unchanged_by_expiries(self):
        stats = StreamStats("UCE")
        stats.latencies = [0.1, 0.2, 0.3, 0.4]
        stats.expired = 100
        assert stats.latency_p95 == pytest.approx(
            float(np.percentile(stats.latencies, 95))
        )

    def test_high_expiry_deflation_is_fixed_by_the_adjusted_variant(self):
        # 60% of resolved tasks expired: matched-only p95 looks tiny,
        # the adjusted p95 says the truth — the 95th task never finished
        stats = StreamStats("UCE")
        stats.latencies = [0.1, 0.2, 0.3, 0.4]
        stats.expired = 6
        assert stats.latency_percentile(95) <= 0.4
        assert stats.expiry_adjusted_percentile(95) == math.inf

    def test_matches_numpy_with_inf_padding_in_the_matched_mass(self):
        stats = StreamStats("UCE")
        stats.latencies = [0.3, 0.1, 0.5, 0.2, 0.4]
        stats.expired = 3
        padded = sorted(stats.latencies) + [math.inf] * stats.expired
        for q in (0, 10, 25, 50, 62.5):
            expected = float(np.percentile(padded, q))
            assert stats.expiry_adjusted_percentile(q) == pytest.approx(expected)

    def test_interpolation_into_the_expired_mass_is_inf_not_nan(self):
        stats = StreamStats("UCE")
        stats.latencies = [0.1, 0.2]
        stats.expired = 2
        # q=50 interpolates between the last matched value and inf
        assert stats.expiry_adjusted_percentile(50) == math.inf
        # q deep inside the expired mass (numpy would give nan: inf-inf)
        assert stats.expiry_adjusted_percentile(90) == math.inf

    def test_no_expiries_means_both_variants_agree(self):
        stats = StreamStats("UCE")
        stats.latencies = [0.4, 0.1, 0.3]
        for q in (0, 50, 95, 100):
            assert stats.expiry_adjusted_percentile(q) == pytest.approx(
                stats.latency_percentile(q)
            )

    def test_empty_stats_report_zero(self):
        stats = StreamStats("UCE")
        assert stats.latency_percentile(95) == 0.0
        assert stats.expiry_adjusted_percentile(95) == 0.0
        stats.expired = 5
        assert stats.expiry_adjusted_percentile(95) == math.inf

    def test_bad_percentile_rejected(self):
        stats = StreamStats("UCE")
        with pytest.raises(ConfigurationError):
            stats.expiry_adjusted_percentile(101)


class TestUpdateProtocol:
    def test_update_dispatches_flush_records(self):
        stats = StreamStats("UCE")
        stats.update(flush_record(0, cache_hit=True))
        assert len(stats.flushes) == 1
        assert stats.cache_hits == 1
        assert stats.online.expiry.count == 1

    def test_update_dispatches_assignments(self):
        stats = StreamStats("UCE")
        stats.update(
            Assignment(
                time=0.5, flush_index=0, task_id=1, worker_id=2,
                distance=0.1, utility=3.0, latency=0.25, method="UCE",
            )
        )
        assert stats.latencies == [0.25]
        assert stats.online.latency.count == 1

    def test_update_rejects_unknown_events(self):
        with pytest.raises(ConfigurationError, match="unknown stream stats event"):
            StreamStats("UCE").update("not an event")

    def test_throughput_skips_cache_served_flushes(self):
        stats = StreamStats("UCE")
        stats.update(flush_record(0, matched=10, solver_seconds=0.01, cache_hit=False))
        before = stats.online.throughput.count
        stats.update(flush_record(1, matched=10, solver_seconds=1e-7, cache_hit=True))
        assert stats.online.throughput.count == before


class TestPhaseBreakdowns:
    def test_flush_record_top_phase(self):
        record = flush_record(0, phase_seconds={"solve": 0.7, "build": 0.2, "commit": 0.1})
        assert record.top_phase == "solve 70%"
        assert flush_record(1).top_phase == "-"
        assert flush_record(2, phase_seconds={}).top_phase == "-"

    def test_stats_phase_totals_sum_across_flushes(self):
        stats = StreamStats("UCE")
        stats.update(flush_record(0, phase_seconds={"solve": 0.5, "build": 0.1}))
        stats.update(flush_record(1, phase_seconds={"solve": 0.2, "commit": 0.3}))
        stats.update(flush_record(2))  # untraced flush contributes nothing
        assert stats.phase_totals == pytest.approx(
            {"solve": 0.7, "build": 0.1, "commit": 0.3}
        )
        assert stats.top_phase == "solve 64%"

    def test_untraced_run_top_phase_is_dash(self):
        stats = StreamStats("UCE")
        stats.update(flush_record(0))
        assert stats.top_phase == "-"
