"""Deterministic fault injection: plan semantics, the flush degradation
ladder, worker churn, and corrupt-snapshot tolerance.

The load-bearing invariant throughout: every *masked* fault kind
(``MASKED_FAULT_KINDS``) changes only latency, never results — the cut
defines all noise streams, so each ladder rung solves the exact same
problem.  ``worker_departure`` is the deliberate exception.
"""

import numpy as np
import pytest

from repro.core.nonprivate import UCESolver
from repro.core.registry import make_solver
from repro.core.workspace import shm_available
from repro.datasets.synthetic import NormalGenerator
from repro.datasets.workload import Task, Worker
from repro.errors import ConfigurationError, InjectedFault
from repro.faults import (
    FAULT_KINDS,
    MASKED_FAULT_KINDS,
    FaultPlan,
    active_fault_plan,
    fault_injection,
    plan_from_env,
    set_fault_plan,
    smoke_plan,
)
from repro.simulation.instance import ProblemInstance
from repro.spatial.geometry import Point
from repro.stream.arrivals import PoissonProcess, StreamWorkload
from repro.stream.cache import FlushSolverCache
from repro.stream.events import TaskArrival, WorkerArrival, WorkerDeparture
from repro.stream.shards import ShardedFlushExecutor, ShardSeedSchedule
from repro.stream.simulator import DispatchSimulator, StreamConfig
from tests.conftest import line_instance


class TestFaultPlan:
    def test_resolve_accepts_every_spec_form(self):
        plan = FaultPlan(seed=7, rates={"pool_crash": 0.5})
        assert FaultPlan.resolve(None) is None
        assert FaultPlan.resolve(plan) is plan
        assert FaultPlan.resolve(plan.to_dict()) == plan
        assert FaultPlan.resolve("smoke") == smoke_plan()
        for off in ("", "off", "none", "  off  "):
            assert FaultPlan.resolve(off) is None
        assert FaultPlan.resolve('{"seed": 7, "rates": {"pool_crash": 0.5}}') == plan

    def test_resolve_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.resolve("chaos-monkey")
        with pytest.raises(ConfigurationError):
            FaultPlan.resolve("{not json")
        with pytest.raises(ConfigurationError):
            FaultPlan.resolve(42)
        with pytest.raises(ConfigurationError):
            FaultPlan.resolve({"seed": 1, "turbo": True})

    def test_rates_validate(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(rates={"meteor_strike": 0.1})
        with pytest.raises(ConfigurationError):
            FaultPlan(rates={"pool_crash": 1.5})
        with pytest.raises(ConfigurationError):
            FaultPlan().should_fire("meteor_strike")

    def test_firing_is_deterministic(self):
        plan = FaultPlan(seed=3, rates={"pool_crash": 0.5})
        twin = FaultPlan(seed=3, rates={"pool_crash": 0.5})
        draws = [
            plan.should_fire("pool_crash", key=(k,), site="pool.submit")
            for k in range(64)
        ]
        assert draws == [
            plan.should_fire("pool_crash", key=(k,), site="pool.submit")
            for k in range(64)
        ]
        assert draws == [
            twin.should_fire("pool_crash", key=(k,), site="pool.submit")
            for k in range(64)
        ]
        # ~0.5 rate actually fires sometimes and spares sometimes.
        assert any(draws) and not all(draws)
        # A different seed sees a different schedule.
        other = FaultPlan(seed=4, rates={"pool_crash": 0.5})
        assert draws != [
            other.should_fire("pool_crash", key=(k,), site="pool.submit")
            for k in range(64)
        ]

    def test_sites_and_kinds_are_independent_draws(self):
        plan = FaultPlan(seed=0, rates={"pool_crash": 0.5, "shm_attach": 0.5})
        submit = [plan.should_fire("pool_crash", (k,), "pool.submit") for k in range(64)]
        watchdog = [
            plan.should_fire("pool_crash", (k,), "pool.watchdog") for k in range(64)
        ]
        shm = [plan.should_fire("shm_attach", (k,), "pool.submit") for k in range(64)]
        assert submit != watchdog
        assert submit != shm

    def test_rate_endpoints(self):
        never = FaultPlan(seed=0, rates={"pool_crash": 0.0})
        always = FaultPlan(seed=0, rates={"pool_crash": 1.0})
        assert not any(never.should_fire("pool_crash", (k,)) for k in range(32))
        assert all(always.should_fire("pool_crash", (k,)) for k in range(32))
        # Unrated kinds never fire.
        assert not always.should_fire("shm_attach", (0,))

    def test_fire_raises_typed_fault(self):
        plan = FaultPlan(rates={"shm_attach": 1.0})
        with pytest.raises(InjectedFault) as err:
            plan.fire("shm_attach", key=(1, 2), site="arena.attach")
        assert err.value.kind == "shm_attach"
        assert err.value.site == "arena.attach"
        plan.fire("pool_crash")  # unrated: no-op

    def test_env_and_explicit_activation(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        set_fault_plan(None)
        assert active_fault_plan() is None
        monkeypatch.setenv("REPRO_FAULTS", "smoke")
        assert plan_from_env() == smoke_plan()
        assert active_fault_plan() == smoke_plan()
        # Explicit activation wins over the environment...
        explicit = FaultPlan(seed=9, rates={"queue_stall": 1.0})
        with fault_injection(explicit) as scoped:
            assert scoped is explicit
            assert active_fault_plan() is explicit
        # ...and the context manager restores what was there before.
        assert active_fault_plan() == smoke_plan()
        set_fault_plan({"seed": 5, "rates": {}})
        assert active_fault_plan() == FaultPlan(seed=5)
        set_fault_plan(None)
        assert active_fault_plan() == smoke_plan()  # env visible again

    def test_smoke_plan_is_masked_kinds_only(self):
        assert set(smoke_plan().rates) <= set(MASKED_FAULT_KINDS)
        assert "worker_departure" in FAULT_KINDS
        assert "worker_departure" not in MASKED_FAULT_KINDS


def clustered_instance(num_clusters=4, tasks_per=8, workers_per=5):
    """Well-separated clusters -> a multi-component cut even at floor 0."""
    rng = np.random.default_rng(0)
    tasks, workers = [], []
    for cluster in range(num_clusters):
        cx = 100.0 * cluster
        for _ in range(tasks_per):
            x, y = rng.uniform(-2.0, 2.0, size=2)
            tasks.append(
                Task(id=len(tasks), location=Point(cx + x, y), value=4.5)
            )
        for _ in range(workers_per):
            x, y = rng.uniform(-2.0, 2.0, size=2)
            workers.append(
                Worker(id=1000 + len(workers), location=Point(cx + x, y), radius=6.0)
            )
    return ProblemInstance.build(tasks, workers, seed=0)


def ladder_executor(fault_plan=None, transport="auto", flush_timeout=None):
    return ShardedFlushExecutor(
        make_solver("PUCE"),
        num_shards=4,
        parallel="process",
        min_shard_pairs=0,
        transport=transport,
        flush_timeout=flush_timeout,
        fault_plan=fault_plan,
    )


class TestDegradationLadder:
    """Every rung solves the same cut: results are bit-identical."""

    @pytest.fixture(scope="class")
    def baseline(self):
        instance = clustered_instance()
        schedule = ShardSeedSchedule(base=(3, 0, 7))
        with ladder_executor() as executor:
            result = executor.solve(instance, schedule)
            assert executor.last_degraded is None
        return instance, schedule, dict(result.matching), list(result.ledger.events())

    def check_identical(self, baseline, executor):
        instance, schedule, matching, events = baseline
        with executor:
            result = executor.solve(instance, schedule)
            chain = executor.last_degraded
        assert dict(result.matching) == matching
        assert list(result.ledger.events()) == events
        return chain

    def test_pool_crash_degrades_to_sequential_bit_identically(self, baseline):
        plan = FaultPlan(seed=1, rates={"pool_crash": 1.0})
        chain = self.check_identical(baseline, ladder_executor(fault_plan=plan))
        assert chain is not None
        assert chain.startswith("proc:") and chain.endswith("seq")

    def test_solver_timeout_degrades_bit_identically(self, baseline):
        plan = FaultPlan(seed=1, rates={"solver_timeout": 1.0})
        chain = self.check_identical(baseline, ladder_executor(fault_plan=plan))
        assert chain is not None and chain.endswith("seq")

    @pytest.mark.skipif(not shm_available(), reason="no shared memory")
    def test_shm_attach_falls_back_to_pickle_bit_identically(self, baseline):
        plan = FaultPlan(seed=1, rates={"shm_attach": 1.0})
        chain = self.check_identical(
            baseline, ladder_executor(fault_plan=plan, transport="shm")
        )
        assert chain is not None
        assert "+shm" in chain.split("->")[0]
        assert "+shm" not in chain.split("->")[1]

    def test_sparse_faults_recover_without_degrading_everything(self, baseline):
        # A low-rate plan: some flushes hit the respawn path, yet the
        # result never changes and the ladder only walks where needed.
        plan = FaultPlan(seed=2, rates={"pool_crash": 0.3})
        self.check_identical(baseline, ladder_executor(fault_plan=plan))


def churn_stream_config(**overrides):
    defaults = dict(max_batch_size=8, max_wait=0.05, workspace=False)
    defaults.update(overrides)
    return StreamConfig(**defaults)


class TestWorkerChurn:
    def worker(self, wid, x=0.0):
        return Worker(id=wid, location=Point(x, 0.0), radius=5.0)

    def task(self, tid, x=0.0):
        return Task(id=tid, location=Point(x, 0.0), value=4.5)

    def test_idle_departure_leaves_the_pool(self):
        sim = DispatchSimulator(
            UCESolver(), config=churn_stream_config(), record_assignments=True
        )
        events = [
            WorkerArrival(time=0.0, worker=self.worker(1)),
            WorkerArrival(time=0.0, worker=self.worker(2, x=0.5)),
            WorkerDeparture(time=0.01, worker_id=2),
            TaskArrival(time=0.02, task=self.task(0), deadline=1.0),
        ]
        stats = sim.run(events)
        assert stats.departed_workers == 1
        assert stats.assigned == 1
        assert sim.assignment_log[0].worker_id == 1

    def test_unknown_or_repeated_departure_is_a_no_op(self):
        sim = DispatchSimulator(UCESolver(), config=churn_stream_config())
        events = [
            WorkerArrival(time=0.0, worker=self.worker(1)),
            WorkerDeparture(time=0.01, worker_id=999),
            WorkerDeparture(time=0.02, worker_id=1),
            WorkerDeparture(time=0.03, worker_id=1),
            TaskArrival(time=0.04, task=self.task(0), deadline=0.2),
        ]
        stats = sim.run(events)
        assert stats.departed_workers == 1
        assert stats.expired == 1  # nobody left to serve the task

    def test_busy_departure_keeps_assignment_but_never_rejoins(self):
        sim = DispatchSimulator(
            UCESolver(),
            config=churn_stream_config(min_service=0.5),
            record_assignments=True,
        )
        events = [
            WorkerArrival(time=0.0, worker=self.worker(1)),
            TaskArrival(time=0.01, task=self.task(0), deadline=1.0),
            # Busy serving task 0 by now; the committed match survives.
            WorkerDeparture(time=0.2, worker_id=1),
            TaskArrival(time=0.3, task=self.task(1), deadline=0.55),
        ]
        stats = sim.run(events)
        assert stats.assigned == 1
        assert stats.departed_workers == 1
        assert stats.expired == 1  # the departed worker never came back

    def test_departure_time_validates(self):
        with pytest.raises(ConfigurationError):
            WorkerDeparture(time=-1.0, worker_id=0)

    def test_injected_departure_fault_changes_results_deterministically(self):
        def run(faults):
            sim = DispatchSimulator(
                UCESolver(),
                config=churn_stream_config(faults=faults),
                record_assignments=True,
            )
            events = [
                WorkerArrival(time=0.0, worker=self.worker(w, x=0.4 * w))
                for w in range(1, 5)
            ] + [
                TaskArrival(time=0.1 * (1 + t), task=self.task(t, x=0.3 * t), deadline=2.0)
                for t in range(6)
            ]
            stats = sim.run(events)
            return stats, list(sim.assignment_log)

        plan = FaultPlan(seed=5, rates={"worker_departure": 1.0})
        faulty_stats, faulty_log = run(plan)
        again_stats, again_log = run(plan)
        clean_stats, clean_log = run(None)
        assert faulty_stats.departed_workers > 0
        assert clean_stats.departed_workers == 0
        # The one unmasked kind: results change, but reproducibly.
        assert faulty_log == again_log
        assert faulty_stats.assigned == again_stats.assigned
        assert faulty_log != clean_log


class TestDegradedFlushRecords:
    def test_flush_record_carries_the_ladder_walk(self):
        plan = FaultPlan(seed=1, rates={"pool_crash": 1.0})

        def run(fault_plan):
            sim = DispatchSimulator(
                UCESolver(),
                config=churn_stream_config(
                    max_batch_size=64, shards=4, parallel="process"
                ),
                record_assignments=True,
            )
            # The stock executor's coalescing floor folds a test-sized
            # flush into one unit (no pool, no fault sites); re-arm it
            # with floor 0 so the ladder actually engages.
            sim._shard_executor = ShardedFlushExecutor(
                sim.solver,
                num_shards=4,
                parallel="process",
                min_shard_pairs=0,
                fault_plan=fault_plan,
            )
            instance = clustered_instance(num_clusters=3, tasks_per=4, workers_per=3)
            events = [
                WorkerArrival(time=0.0, worker=w) for w in instance.workers
            ] + [
                TaskArrival(time=0.01, task=t, deadline=1.0) for t in instance.tasks
            ]
            stats = sim.run(events)
            return stats, list(sim.assignment_log)

        faulty_stats, faulty_log = run(plan)
        clean_stats, clean_log = run(None)
        degraded = [f.degraded for f in faulty_stats.flushes if f.degraded]
        assert degraded and all(chain.endswith("seq") for chain in degraded)
        assert all(f.degraded is None for f in clean_stats.flushes)
        # Masked fault: the dispatch outcome is bit-identical.
        assert faulty_log == clean_log
        assert faulty_stats.assigned == clean_stats.assigned
        assert faulty_stats.total_privacy_spend == clean_stats.total_privacy_spend


class TestDeparturesKnob:
    def workload(self, departures):
        return StreamWorkload(
            task_process=PoissonProcess(rate=10.0, horizon=1.0),
            worker_process=PoissonProcess(rate=6.0, horizon=1.0),
            spatial=NormalGenerator(num_tasks=40, num_workers=60, seed=4),
            initial_workers=8,
            task_deadline=0.6,
            seed=4,
            departures=departures,
        )

    def test_zero_departures_is_the_historical_stream(self):
        base = list(self.workload(0.0).events(seed=9))
        assert not any(isinstance(e, WorkerDeparture) for e in base)
        # The departures RNG is spawned after the historical four, so
        # enabling churn changes nothing about arrivals themselves.
        churned = list(self.workload(0.5).events(seed=9))
        assert [e for e in churned if not isinstance(e, WorkerDeparture)] == base

    def test_departures_are_deterministic_and_ordered(self):
        churned = list(self.workload(0.5).events(seed=9))
        assert churned == list(self.workload(0.5).events(seed=9))
        leaves = [e for e in churned if isinstance(e, WorkerDeparture)]
        assert leaves
        arrivals = {
            e.worker.id: e.time for e in churned if isinstance(e, WorkerArrival)
        }
        for leave in leaves:
            assert leave.time >= arrivals[leave.worker_id]
        assert [e.time for e in churned] == sorted(e.time for e in churned)

    def test_departures_validate(self):
        with pytest.raises(ConfigurationError):
            self.workload(1.5)


class TestSnapshotCorruption:
    def snapshot(self, tmp_path):
        instance = line_instance(num_tasks=2, num_workers=3, seed=0)
        cache = FlushSolverCache()
        cache.store("fp", UCESolver().solve(instance, seed=0), 1)
        path = tmp_path / "cache.json"
        cache.save(path)
        return path

    def test_bit_flipped_snapshot_starts_cold_with_a_warning(self, tmp_path):
        path = self.snapshot(tmp_path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.warns(UserWarning, match="starting cold"):
            cache = FlushSolverCache.load(path, max_entries=7)
        assert len(cache) == 0
        assert cache.max_entries == 7

    def test_strict_load_still_raises(self, tmp_path):
        path = self.snapshot(tmp_path)
        path.write_text("{broken")
        with pytest.raises(Exception):
            FlushSolverCache.load(path, strict=True)

    def test_missing_snapshot_is_not_demoted(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FlushSolverCache.load(tmp_path / "nope.json")

    def test_injected_snapshot_corrupt_fault(self, tmp_path):
        path = self.snapshot(tmp_path)
        plan = FaultPlan(seed=0, rates={"snapshot_corrupt": 1.0})
        with fault_injection(plan):
            with pytest.warns(UserWarning, match="starting cold"):
                cache = FlushSolverCache.load(path)
            assert len(cache) == 0
            with pytest.raises(InjectedFault):
                FlushSolverCache.load(path, strict=True)
        # Plan gone: the same snapshot loads fine.
        assert len(FlushSolverCache.load(path)) == 1
