"""Stream-layer tests for sliding-window accounting: regain, merges, caps."""

import dataclasses
import math

import pytest

from repro.api.scenario import ScenarioSpec
from repro.errors import ConfigurationError, FlushBudgetError
from repro.privacy.accountant import PrivacyLedger
from repro.privacy.horizon import GlobalAccountant, HorizonPolicy, WindowAccountant
from repro.stream.batcher import WorkerBudgetTracker
from repro.stream.metrics import FlushRecord, StreamStats

LONG_HORIZON = "examples/scenario_long_horizon.json"


def windowed_tracker(window=10.0, budget=1.0, **policy_kwargs):
    policy = HorizonPolicy(
        window_seconds=window, window_budget=budget, **policy_kwargs
    )
    return WorkerBudgetTracker(accountant=WindowAccountant(policy))


def flush_ledger(*events):
    ledger = PrivacyLedger()
    for worker_id, task_id, eps in events:
        ledger.record(worker_id, task_id, eps)
    return ledger


class TestExhaustThenRegain:
    def test_worker_regains_eligibility_across_duty_cycles(self):
        tracker = windowed_tracker(window=10.0, budget=1.0)
        tracker.register(0, 1.0)

        # Duty cycle 1: spend the whole window budget, retire.
        tracker.observe(0.0)
        tracker.charge(flush_ledger((0, 100, 0.6), (0, 101, 0.4)))
        assert tracker.exhausted(0)
        assert tracker.remaining(0) == pytest.approx(0.0)

        # Off duty: the window slides past both releases -> full regain.
        tracker.observe(11.0)
        assert not tracker.exhausted(0)
        assert tracker.remaining(0) == pytest.approx(1.0)

        # Duty cycle 2: the regained budget is spendable again.
        tracker.charge(flush_ledger((0, 200, 1.0)))
        assert tracker.exhausted(0)
        tracker.observe(22.0)
        assert not tracker.exhausted(0)

        # The audit totals never regenerate: Theorem V.2 sums everything.
        assert tracker.spent(0) == pytest.approx(2.0)
        assert tracker.total_spend() == pytest.approx(2.0)
        assert tracker.window_spend(0) == pytest.approx(0.0)

    def test_partial_regain_as_releases_age_one_by_one(self):
        tracker = windowed_tracker(window=10.0, budget=1.0)
        tracker.register(0, 1.0)
        tracker.observe(0.0)
        tracker.charge(flush_ledger((0, 1, 0.5)))
        tracker.observe(5.0)
        tracker.charge(flush_ledger((0, 2, 0.5)))
        assert tracker.exhausted(0)
        tracker.observe(11.0)  # only the t=0 release has expired
        assert tracker.remaining(0) == pytest.approx(0.5)
        tracker.observe(16.0)
        assert tracker.remaining(0) == pytest.approx(1.0)

    def test_global_tracker_never_regains(self):
        tracker = WorkerBudgetTracker()
        tracker.register(0, 1.0)
        tracker.observe(0.0)
        tracker.charge(flush_ledger((0, 1, 1.0)))
        assert tracker.exhausted(0)
        tracker.observe(1e9)
        assert tracker.exhausted(0)
        assert not tracker.windowed

    def test_overdraw_still_raises_under_window(self):
        tracker = windowed_tracker(window=10.0, budget=1.0)
        tracker.register(0, 1.0)
        tracker.observe(0.0)
        with pytest.raises(FlushBudgetError, match="exceeded shift budget"):
            tracker.charge(flush_ledger((0, 1, 1.5)))


class TestShardMergeConsistency:
    """PrivacyLedger.merge (sharded flushes) must agree with the accountant."""

    SHARD_A = ((0, 10, 0.3), (1, 11, 0.2), (0, 12, 0.1))
    SHARD_B = ((0, 20, 0.25), (2, 21, 0.4))

    @pytest.mark.parametrize("make_tracker", [WorkerBudgetTracker, windowed_tracker])
    def test_merged_charge_matches_ledger_totals(self, make_tracker):
        tracker = make_tracker()
        tracker.observe(1.0)
        merged = flush_ledger(*self.SHARD_A).merge(flush_ledger(*self.SHARD_B))
        tracker.charge(merged)
        for worker_id in merged.workers():
            assert tracker.spent(worker_id) == pytest.approx(
                merged.worker_spend(worker_id)
            )
            assert tracker.ledger.worker_spend(worker_id) == pytest.approx(
                merged.worker_spend(worker_id)
            )
        assert tracker.total_spend() == pytest.approx(merged.total_spend())

    def test_per_shard_and_merged_charges_agree(self):
        # Charging shard ledgers one by one (the sequential executor) and
        # charging their merge (the sharded executor) must leave both the
        # audit ledger and the accountant in the same state.
        sequential = windowed_tracker(window=50.0, budget=10.0)
        merged = windowed_tracker(window=50.0, budget=10.0)
        for tracker in (sequential, merged):
            tracker.observe(1.0)
        sequential.charge(flush_ledger(*self.SHARD_A))
        sequential.charge(flush_ledger(*self.SHARD_B))
        merged.charge(
            flush_ledger(*self.SHARD_A).merge(flush_ledger(*self.SHARD_B))
        )
        for worker_id in (0, 1, 2):
            assert sequential.spent(worker_id) == pytest.approx(
                merged.spent(worker_id)
            )
            assert sequential.window_spend(worker_id) == pytest.approx(
                merged.window_spend(worker_id)
            )
        assert sequential.total_spend() == pytest.approx(merged.total_spend())


def make_flush(index, time, cumulative, window_spend=None):
    return FlushRecord(
        index=index,
        time=time,
        pending_tasks=0,
        idle_workers=0,
        matched=0,
        solver_seconds=0.0,
        cumulative_privacy_spend=cumulative,
        window_spend=window_spend,
    )


class TestTimelineCap:
    def test_unbounded_by_default(self):
        stats = StreamStats(method="PUCE")
        for i in range(500):
            stats.record_flush(make_flush(i, float(i), float(i)))
        assert len(stats.privacy_timeline) == 500

    def test_cap_decimates_but_keeps_endpoints_and_total(self):
        stats = StreamStats(method="PUCE", timeline_limit=16)
        for i in range(500):
            stats.record_flush(make_flush(i, float(i), float(i), window_spend=1.0))
        assert len(stats.privacy_timeline) <= 16
        assert len(stats.window_timeline) <= 16
        assert stats.privacy_timeline[0] == (0.0, 0.0)
        assert stats.privacy_timeline[-1] == (499.0, 499.0)
        assert stats.total_privacy_spend == pytest.approx(499.0)
        assert stats.current_window_spend == pytest.approx(1.0)
        # Still monotone after decimation.
        spends = [s for _, s in stats.privacy_timeline]
        assert spends == sorted(spends)

    def test_monotone_check_survives_decimation(self):
        stats = StreamStats(method="PUCE", timeline_limit=4)
        for i in range(100):
            stats.record_flush(make_flush(i, float(i), float(i)))
        with pytest.raises(ConfigurationError, match="backwards"):
            stats.record_flush(make_flush(100, 100.0, 50.0))

    @pytest.mark.parametrize("limit", [3, 0, -1, True])
    def test_bad_limit_rejected(self, limit):
        with pytest.raises(ConfigurationError):
            StreamStats(method="PUCE", timeline_limit=limit)


class TestWindowedStreamEndToEnd:
    @pytest.fixture(scope="class")
    def reports(self):
        # 8h of the 24h example: >1 window-width, so spends visibly age out.
        spec = dataclasses.replace(
            ScenarioSpec.from_file(LONG_HORIZON), horizon=8.0
        )
        stripped = spec.options.replace(
            window_seconds=None, window_budget=None, timeline_limit=None
        )
        return {
            "window": spec.run()["PUCE"],
            "global": dataclasses.replace(spec, options=stripped).run()["PUCE"],
        }

    def test_window_run_records_the_window_series(self, reports):
        stats = reports["window"]
        assert stats.window_timeline
        assert stats.window_invariant_ok
        assert stats.window_peak_spend > 0.0
        assert all(f.window_spend is not None for f in stats.flushes)
        assert stats.online.window_spend_ewma > 0.0
        assert len(stats.privacy_timeline) <= 64  # the example's cap

    def test_global_run_records_no_window_series(self, reports):
        stats = reports["global"]
        assert stats.window_timeline == []
        assert all(f.window_spend is None for f in stats.flushes)
        assert stats.current_window_spend == 0.0

    def test_window_run_outlives_the_starved_global_run(self, reports):
        assert reports["window"].assigned > reports["global"].assigned

    def test_window_spend_is_not_monotone(self, reports):
        spends = [s for _, s in reports["window"].window_timeline]
        assert any(b < a for a, b in zip(spends, spends[1:]))

    def test_lifetime_audit_total_matches_ledger(self, reports):
        stats = reports["window"]
        assert stats.total_privacy_spend == pytest.approx(
            sum(stats.per_worker_spend.values())
        )
