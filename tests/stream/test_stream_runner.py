"""End-to-end streaming runs: multiple solvers over shared timelines."""

import pytest

from repro.datasets.chengdu import ChengduLikeGenerator
from repro.datasets.synthetic import NormalGenerator
from repro.errors import ConfigurationError
from repro.stream.arrivals import PoissonProcess, StreamWorkload, TraceProcess
from repro.stream.runner import StreamRunner
from repro.stream.simulator import StreamConfig

WORKER_BUDGET = 25.0
DEADLINE = 1.0


@pytest.fixture(scope="module")
def poisson_workload():
    return StreamWorkload(
        task_process=PoissonProcess(rate=30.0, horizon=2.0),
        worker_process=PoissonProcess(rate=10.0, horizon=2.0),
        spatial=NormalGenerator(num_tasks=150, num_workers=300, seed=3),
        initial_workers=40,
        task_deadline=DEADLINE,
        worker_budget=WORKER_BUDGET,
        seed=5,
    )


@pytest.fixture(scope="module")
def poisson_report(poisson_workload):
    runner = StreamRunner(
        ["PUCE", "UCE", "GRD"],
        config=StreamConfig(max_batch_size=25, max_wait=0.2),
    )
    return runner.run_workload(poisson_workload, seed=7)


@pytest.fixture(scope="module")
def trace_report():
    generator = ChengduLikeGenerator(num_tasks=80, num_workers=160, seed=2)
    workload = StreamWorkload(
        task_process=TraceProcess.from_chengdu(generator, seed=2),
        worker_process=PoissonProcess(rate=2.0, horizon=24.0),
        spatial=generator,
        initial_workers=40,
        task_deadline=2.0,
        worker_budget=WORKER_BUDGET,
        seed=2,
    )
    runner = StreamRunner(
        ["PUCE", "UCE"], config=StreamConfig(max_batch_size=30, max_wait=0.4)
    )
    return runner.run_workload(workload, seed=2)


def _check_stream_invariants(stats, deadline, budget):
    # Conservation: every released task has exactly one outcome.
    assert stats.arrived_tasks == stats.assigned + stats.expired + stats.leftover
    # An expired task is never assigned: an assignment at latency > patience
    # would mean the flush served a task past its deadline.
    for latency in stats.latencies:
        assert 0.0 <= latency <= deadline + 1e-9
    # Cumulative privacy spend is monotone across micro-batches...
    timeline = [spend for _, spend in stats.privacy_timeline]
    assert all(b >= a - 1e-9 for a, b in zip(timeline, timeline[1:]))
    # ...and no worker ever exceeds their configured shift budget.
    for worker_id, spend in stats.per_worker_spend.items():
        assert spend <= budget + 1e-9, (worker_id, spend)


class TestPoissonStream:
    def test_methods_all_process_the_same_arrivals(self, poisson_report):
        arrivals = {
            poisson_report[m].arrived_tasks for m in poisson_report.methods()
        }
        workers = {
            poisson_report[m].arrived_workers for m in poisson_report.methods()
        }
        assert len(arrivals) == 1 and arrivals != {0}
        assert len(workers) == 1

    def test_stream_invariants_hold_for_every_method(self, poisson_report):
        for method in poisson_report.methods():
            _check_stream_invariants(
                poisson_report[method], DEADLINE, WORKER_BUDGET
            )

    def test_meaningful_dispatch_happened(self, poisson_report):
        for method in poisson_report.methods():
            stats = poisson_report[method]
            assert stats.assigned > 0
            assert len(stats.flushes) > 1
            assert stats.throughput_tasks_per_sec > 0
            assert 0.0 <= stats.latency_p50 <= stats.latency_p95

    def test_private_method_spends_nonprivate_does_not(self, poisson_report):
        assert poisson_report["PUCE"].total_privacy_spend > 0.0
        assert poisson_report["UCE"].total_privacy_spend == 0.0
        assert poisson_report["GRD"].total_privacy_spend == 0.0

    def test_privacy_costs_utility_online(self, poisson_report):
        # The streaming analogue of U_RD > 0: the non-private counterpart
        # achieves at least the private method's average utility.
        assert (
            poisson_report["UCE"].average_utility
            >= poisson_report["PUCE"].average_utility
        )

    def test_reproducible_per_seed(self, poisson_workload):
        runner = StreamRunner(
            ["PUCE"], config=StreamConfig(max_batch_size=25, max_wait=0.2)
        )
        first = runner.run_workload(poisson_workload, seed=7)["PUCE"]
        second = runner.run_workload(poisson_workload, seed=7)["PUCE"]
        assert first.assigned == second.assigned
        assert first.latencies == second.latencies
        assert first.privacy_timeline == second.privacy_timeline
        assert first.total_utility == pytest.approx(second.total_utility)


class TestTraceStream:
    def test_stream_invariants_hold(self, trace_report):
        for method in trace_report.methods():
            _check_stream_invariants(trace_report[method], 2.0, WORKER_BUDGET)

    def test_both_solvers_dispatch_over_the_day(self, trace_report):
        for method in trace_report.methods():
            stats = trace_report[method]
            assert stats.assigned > 0
            # Activity spans the day; trailing deadline sweeps and service
            # legs may run a little past the 24h arrival horizon.
            assert 12.0 <= stats.sim_duration <= 27.0
            assert len(stats.flushes) > 1


class TestStreamReport:
    def test_unknown_method_raises(self, poisson_report):
        with pytest.raises(ConfigurationError, match="not in report"):
            poisson_report["nope"]

    def test_runner_rejects_empty_and_duplicates(self):
        with pytest.raises(ConfigurationError):
            StreamRunner([])
        with pytest.raises(ConfigurationError):
            StreamRunner(["PUCE", "PUCE"])
