"""Unit tests for the arrival processes and workload materialisation."""

import numpy as np
import pytest

from repro.datasets.chengdu import ChengduLikeGenerator
from repro.datasets.synthetic import NormalGenerator
from repro.errors import ConfigurationError
from repro.stream.arrivals import (
    BurstyProcess,
    PoissonProcess,
    RushHourProcess,
    StreamWorkload,
    TraceProcess,
)
from repro.stream.events import TaskArrival, WorkerArrival


@pytest.fixture
def rng():
    return np.random.default_rng(77)


class TestPoisson:
    def test_times_sorted_within_horizon(self, rng):
        process = PoissonProcess(rate=30.0, horizon=5.0)
        times = process.times(rng)
        assert np.all(np.diff(times) >= 0)
        assert np.all((times >= 0) & (times < 5.0))

    def test_count_tracks_rate(self, rng):
        process = PoissonProcess(rate=100.0, horizon=10.0)
        count = len(process.times(rng))
        # 1000 expected, sd ~32; 5 sigma keeps the test deterministic-safe.
        assert abs(count - 1000) < 160
        assert process.expected_count() == pytest.approx(1000.0)

    def test_zero_rate_means_zero_arrivals(self, rng):
        assert len(PoissonProcess(rate=0.0, horizon=5.0).times(rng)) == 0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PoissonProcess(rate=-1.0, horizon=5.0)
        with pytest.raises(ConfigurationError):
            PoissonProcess(rate=1.0, horizon=0.0)


class TestRushHour:
    def test_mass_concentrates_at_peak(self, rng):
        process = RushHourProcess(
            base_rate=2.0, peak_rate=80.0, horizon=24.0, peaks=(8.5,), width=1.0
        )
        times = process.times(rng)
        near_peak = np.sum(np.abs(times - 8.5) < 2.0)
        far_window = np.sum(np.abs(times - 20.0) < 2.0)
        assert near_peak > 5 * max(far_window, 1)

    def test_rate_function_peaks(self):
        process = RushHourProcess(
            base_rate=1.0, peak_rate=10.0, horizon=24.0, peaks=(8.5, 18.0)
        )
        assert process.rate_at(8.5) > process.rate_at(13.0)
        assert process.rate_at(18.0) > process.rate_at(23.0)

    def test_expected_count_close_to_sampled_mean(self):
        process = RushHourProcess(
            base_rate=5.0, peak_rate=40.0, horizon=24.0, peaks=(8.5, 18.0)
        )
        counts = [
            len(process.times(np.random.default_rng(s))) for s in range(20)
        ]
        assert np.mean(counts) == pytest.approx(process.expected_count(), rel=0.15)


class TestBursty:
    def test_arrivals_cluster(self, rng):
        process = BurstyProcess(
            burst_rate=3.0, mean_burst_size=10.0, horizon=10.0, burst_span=0.02
        )
        times = process.times(rng)
        assert len(times) > 30
        gaps = np.diff(times)
        # Most consecutive gaps sit inside a burst span, not between bursts.
        assert np.mean(gaps < 0.05) > 0.5

    def test_times_inside_horizon(self, rng):
        process = BurstyProcess(burst_rate=5.0, mean_burst_size=4.0, horizon=2.0)
        times = process.times(rng)
        assert np.all((times >= 0) & (times < 2.0))
        assert np.all(np.diff(times) >= 0)


class TestTrace:
    def test_replays_given_times(self, rng):
        process = TraceProcess([3.0, 1.0, 2.0])
        assert process.times(rng).tolist() == [1.0, 2.0, 3.0]
        assert process.expected_count() == 3.0

    def test_horizon_clips(self, rng):
        process = TraceProcess([0.5, 1.5, 2.5], horizon=2.0)
        assert process.times(rng).tolist() == [0.5, 1.5]

    def test_from_chengdu_replays_release_times(self):
        generator = ChengduLikeGenerator(num_tasks=50, num_workers=100, seed=4)
        process = TraceProcess.from_chengdu(generator, seed=4)
        reference = sorted(
            t.release_time for t in generator.tasks(4.5, np.random.default_rng(4))
        )
        assert process.horizon == 24.0
        assert process.times(np.random.default_rng(0)).tolist() == pytest.approx(
            reference
        )

    def test_from_chengdu_horizon_clips_the_day(self):
        generator = ChengduLikeGenerator(num_tasks=50, num_workers=100, seed=4)
        rng = np.random.default_rng(0)
        full = TraceProcess.from_chengdu(generator, seed=4).times(rng).tolist()
        morning = TraceProcess.from_chengdu(generator, seed=4, horizon=12.0)
        assert morning.horizon == 12.0
        assert morning.times(rng).tolist() == [t for t in full if t < 12.0]


class TestStreamWorkload:
    @pytest.fixture
    def workload(self):
        return StreamWorkload(
            task_process=PoissonProcess(rate=20.0, horizon=2.0),
            worker_process=PoissonProcess(rate=10.0, horizon=2.0),
            spatial=NormalGenerator(num_tasks=100, num_workers=200, seed=1),
            initial_workers=5,
            task_deadline=0.5,
            worker_budget=12.0,
            seed=9,
        )

    def test_timeline_is_time_ordered(self, workload):
        events = workload.events()
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_initial_fleet_at_time_zero(self, workload):
        events = workload.events()
        at_zero = [e for e in events if isinstance(e, WorkerArrival) and e.time == 0.0]
        assert len(at_zero) >= 5

    def test_ids_unique_and_payloads_consistent(self, workload):
        events = workload.events()
        task_ids = [e.task.id for e in events if isinstance(e, TaskArrival)]
        worker_ids = [e.worker.id for e in events if isinstance(e, WorkerArrival)]
        assert len(set(task_ids)) == len(task_ids)
        assert len(set(worker_ids)) == len(worker_ids)
        for event in events:
            if isinstance(event, TaskArrival):
                assert event.deadline == pytest.approx(event.time + 0.5)
                assert event.task.release_time == pytest.approx(event.time)
            else:
                assert event.budget_capacity == 12.0
                assert event.worker.radius == 1.4

    def test_deterministic_per_seed(self, workload):
        first = workload.events(seed=3)
        second = workload.events(seed=3)
        different = workload.events(seed=4)
        assert [(e.time, type(e).__name__) for e in first] == [
            (e.time, type(e).__name__) for e in second
        ]
        assert [(e.time, type(e).__name__) for e in first] != [
            (e.time, type(e).__name__) for e in different
        ]
