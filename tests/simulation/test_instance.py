"""Unit tests for ProblemInstance construction and queries."""

import pytest

from repro.core.budgets import BudgetSampler
from repro.datasets.workload import Task, Worker
from repro.errors import InvalidInstanceError
from repro.simulation.instance import ProblemInstance
from repro.spatial.geometry import Point
from tests.conftest import build_instance


class TestBuild:
    def test_reachability_respects_radius(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 1.0), (5.0, 0.0, 1.0)],
            worker_specs=[(0.5, 0.0, 1.0)],
        )
        assert instance.reachable[0] == (0,)
        assert instance.num_feasible_pairs == 1

    def test_distances_are_euclidean(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 1.0)],
            worker_specs=[(3.0, 4.0, 10.0)],
        )
        assert instance.distance(0, 0) == pytest.approx(5.0)

    def test_budget_vectors_per_feasible_pair(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 1.0), (1.0, 0.0, 1.0)],
            worker_specs=[(0.5, 0.0, 2.0)],
            budget_sampler=BudgetSampler(group_size=5),
        )
        for pair in instance.feasible_pairs():
            assert len(instance.budget_vector(*pair)) == 5

    def test_candidates_is_reachability_inverse(self, small_instance):
        for j, tasks in enumerate(small_instance.reachable):
            for i in tasks:
                assert j in small_instance.candidates[i]
        for i, workers in enumerate(small_instance.candidates):
            for j in workers:
                assert i in small_instance.reachable[j]

    def test_duplicate_task_ids_rejected(self):
        tasks = [
            Task(id=0, location=Point(0, 0), value=1.0),
            Task(id=0, location=Point(1, 0), value=1.0),
        ]
        workers = [Worker(id=0, location=Point(0, 0), radius=1.0)]
        with pytest.raises(InvalidInstanceError, match="task ids"):
            ProblemInstance.build(tasks, workers)

    def test_duplicate_worker_ids_rejected(self):
        tasks = [Task(id=0, location=Point(0, 0), value=1.0)]
        workers = [
            Worker(id=0, location=Point(0, 0), radius=1.0),
            Worker(id=0, location=Point(1, 0), radius=1.0),
        ]
        with pytest.raises(InvalidInstanceError, match="worker ids"):
            ProblemInstance.build(tasks, workers)

    def test_empty_instance(self):
        instance = build_instance(task_specs=[], worker_specs=[])
        assert instance.num_tasks == 0
        assert instance.num_feasible_pairs == 0
        assert instance.mean_tasks_per_worker() == 0.0


class TestQueries:
    def test_infeasible_distance_raises(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 1.0)],
            worker_specs=[(5.0, 0.0, 1.0)],
        )
        with pytest.raises(InvalidInstanceError, match="not feasible"):
            instance.distance(0, 0)

    def test_infeasible_budget_raises(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 1.0)],
            worker_specs=[(5.0, 0.0, 1.0)],
        )
        with pytest.raises(InvalidInstanceError, match="not feasible"):
            instance.budget_vector(0, 0)

    def test_base_utility(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 5.0)],
            worker_specs=[(1.0, 0.0, 2.0)],
        )
        assert instance.base_utility(0, 0) == pytest.approx(4.0)

    def test_mean_tasks_per_worker(self, small_instance):
        expected = sum(len(r) for r in small_instance.reachable) / 4
        assert small_instance.mean_tasks_per_worker() == pytest.approx(expected)

    def test_budget_seed_reproducible(self):
        a = build_instance([(0, 0, 1.0)], [(0.5, 0, 1.0)], seed=3)
        b = build_instance([(0, 0, 1.0)], [(0.5, 0, 1.0)], seed=3)
        assert a.budgets == b.budgets

    def test_from_batch(self):
        from repro.datasets.workload import Batch

        batch = Batch(
            0,
            (Task(id=0, location=Point(0, 0), value=2.0),),
            (Worker(id=0, location=Point(0.5, 0), radius=1.0),),
        )
        instance = ProblemInstance.from_batch(batch, seed=0)
        assert instance.num_tasks == 1
        assert instance.num_feasible_pairs == 1
