"""Unit tests for the multi-method batch runner."""

import pytest

from repro.datasets.synthetic import NormalGenerator
from repro.errors import ConfigurationError
from repro.simulation.runner import BatchRunner


@pytest.fixture(scope="module")
def instances():
    return NormalGenerator(40, 80, seed=11).instances(2)


class TestBatchRunner:
    def test_runs_all_methods(self, instances):
        report = BatchRunner(["UCE", "GRD"]).run(instances)
        assert set(report.methods()) == {"UCE", "GRD"}
        assert report["UCE"].batches == 2

    def test_solver_objects_accepted(self, instances):
        from repro.core.nonprivate import GreedySolver

        report = BatchRunner([GreedySolver()]).run(instances)
        assert report["GRD"].matched > 0

    def test_requires_methods(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            BatchRunner([])

    def test_duplicate_methods_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            BatchRunner(["UCE", "UCE"])

    def test_unknown_method_in_report(self, instances):
        report = BatchRunner(["UCE"]).run(instances)
        with pytest.raises(ConfigurationError, match="not in report"):
            report["PGT"]

    def test_deviations_need_counterpart_in_run(self, instances):
        report = BatchRunner(["PUCE", "UCE"]).run(instances)
        deviation = report.utility_deviation("PUCE")
        assert 0.0 < deviation < 1.0

    def test_deviation_without_counterpart_raises(self, instances):
        report = BatchRunner(["UCE"]).run(instances)
        with pytest.raises(ConfigurationError, match="counterpart"):
            report.utility_deviation("UCE")

    def test_reproducible_given_seed(self, instances):
        a = BatchRunner(["PUCE"]).run(instances, seed=5)
        b = BatchRunner(["PUCE"]).run(instances, seed=5)
        assert a["PUCE"].total_utility == b["PUCE"].total_utility

    def test_seed_changes_private_outcomes(self, instances):
        a = BatchRunner(["PUCE"]).run(instances, seed=5)
        b = BatchRunner(["PUCE"]).run(instances, seed=6)
        assert a["PUCE"].total_privacy_spend != b["PUCE"].total_privacy_spend
