"""Unit tests for batch aggregation and relative deviations."""

import pytest

from repro.core.result import AssignmentResult
from repro.errors import ConfigurationError
from repro.matching.bipartite import Matching
from repro.privacy.accountant import PrivacyLedger
from repro.simulation.metrics import (
    MethodStats,
    relative_distance_deviation,
    relative_utility_deviation,
)
from tests.conftest import build_instance


def result_with(instance, pairs, method="X", elapsed=0.1):
    return AssignmentResult(
        method,
        instance,
        Matching(pairs),
        PrivacyLedger(),
        rounds=1,
        publishes=0,
        elapsed_seconds=elapsed,
    )


@pytest.fixture
def instance():
    return build_instance(
        task_specs=[(0.0, 0.0, 5.0), (2.0, 0.0, 5.0)],
        worker_specs=[(1.0, 0.0, 3.0), (2.5, 0.0, 3.0)],
    )


class TestMethodStats:
    def test_accumulates_over_batches(self, instance):
        stats = MethodStats(method="X")
        stats.add(result_with(instance, {0: 0}))
        stats.add(result_with(instance, {0: 0, 1: 1}))
        assert stats.batches == 2
        assert stats.matched == 3
        assert stats.average_utility == pytest.approx((4.0 + 4.0 + 4.5) / 3)

    def test_rejects_method_mismatch(self, instance):
        stats = MethodStats(method="X")
        with pytest.raises(ConfigurationError, match="cannot add"):
            stats.add(result_with(instance, {}, method="Y"))

    def test_empty_stats(self):
        stats = MethodStats(method="X")
        assert stats.average_utility == 0.0
        assert stats.average_distance == 0.0
        assert stats.elapsed_ms_per_batch == 0.0

    def test_elapsed_ms(self, instance):
        stats = MethodStats(method="X")
        stats.add(result_with(instance, {0: 0}, elapsed=0.25))
        assert stats.elapsed_ms_per_batch == pytest.approx(250.0)


class TestRelativeDeviations:
    def _stats(self, instance, pairs, method):
        stats = MethodStats(method=method)
        stats.add(result_with(instance, pairs, method=method))
        return stats

    def test_utility_deviation_definition(self, instance):
        non_private = self._stats(instance, {0: 0, 1: 1}, "NP")  # U_avg 4.25
        private = self._stats(instance, {0: 0}, "P")  # U_avg 4.0
        deviation = relative_utility_deviation(non_private, private)
        assert deviation == pytest.approx((4.25 - 4.0) / 4.25)

    def test_distance_deviation_definition(self, instance):
        non_private = self._stats(instance, {0: 0}, "NP")  # D 1.0
        private = self._stats(instance, {0: 1}, "P")  # D 2.5
        deviation = relative_distance_deviation(non_private, private)
        assert deviation == pytest.approx((2.5 - 1.0) / 1.0)

    def test_zero_reference_utility_raises(self, instance):
        empty = MethodStats(method="NP")
        private = self._stats(instance, {0: 0}, "P")
        with pytest.raises(ConfigurationError, match="U_RD undefined"):
            relative_utility_deviation(empty, private)

    def test_zero_reference_distance_raises(self, instance):
        empty = MethodStats(method="NP")
        private = self._stats(instance, {0: 0}, "P")
        with pytest.raises(ConfigurationError, match="D_RD undefined"):
            relative_distance_deviation(empty, private)
