"""Unit tests for the untrusted-server model."""

import pytest

from repro.errors import InvalidInstanceError
from repro.simulation.server import Server
from tests.conftest import build_instance


@pytest.fixture
def server_and_instance():
    instance = build_instance(
        task_specs=[(0.0, 0.0, 5.0), (1.0, 0.0, 5.0)],
        worker_specs=[(0.5, 0.0, 3.0), (0.6, 0.0, 3.0)],
    )
    return Server(instance), instance


class TestReleaseBoard:
    def test_publish_and_effective_pair(self, server_and_instance):
        server, _ = server_and_instance
        server.publish(0, 0, 1.2, 0.5)
        pair = server.effective_pair(0, 0)
        assert pair.distance == 1.2
        assert pair.epsilon == 0.5

    def test_effective_pair_without_releases_raises(self, server_and_instance):
        server, _ = server_and_instance
        with pytest.raises(InvalidInstanceError, match="no releases"):
            server.effective_pair(0, 0)

    def test_has_releases(self, server_and_instance):
        server, _ = server_and_instance
        assert not server.has_releases(0, 0)
        server.publish(0, 0, 1.0, 0.5)
        assert server.has_releases(0, 0)

    def test_publish_feeds_ledger(self, server_and_instance):
        server, instance = server_and_instance
        server.publish(0, 1, 1.0, 0.5)
        server.publish(1, 1, 2.0, 0.7)
        worker_id = instance.workers[1].id
        assert server.ledger.worker_spend(worker_id) == pytest.approx(1.2)
        assert server.worker_spend(1) == pytest.approx(1.2)
        assert server.publish_count == 2

    def test_release_set_accumulates(self, server_and_instance):
        server, _ = server_and_instance
        server.publish(0, 0, 1.0, 0.5)
        server.publish(0, 0, 1.4, 0.9)
        assert len(server.release_set(0, 0)) == 2

    def test_reads_never_insert_board_entries(self, server_and_instance):
        server, _ = server_and_instance
        # Heavy query traffic over unpublished pairs must not bloat the
        # board: only publish() may create entries.
        for task_index in range(2):
            for worker_index in range(2):
                assert len(server.release_set(task_index, worker_index)) == 0
                assert not server.has_releases(task_index, worker_index)
        assert server.board() == {}
        assert server._board == {}
        server.publish(1, 1, 2.0, 0.6)
        assert set(server._board) == {(1, 1)}


class TestAllocationList:
    def test_assign_and_winner(self, server_and_instance):
        server, _ = server_and_instance
        assert server.winner(0) is None
        server.assign(0, 1)
        assert server.winner(0) == 1
        assert server.task_of(1) == 0

    def test_assign_returns_displaced(self, server_and_instance):
        server, _ = server_and_instance
        server.assign(0, 0)
        displaced = server.assign(0, 1)
        assert displaced == 0
        assert server.task_of(0) is None

    def test_reassign_same_worker_is_noop(self, server_and_instance):
        server, _ = server_and_instance
        server.assign(0, 0)
        assert server.assign(0, 0) is None
        assert server.winner(0) == 0

    def test_worker_moving_vacates_old_task(self, server_and_instance):
        server, _ = server_and_instance
        server.assign(0, 0)
        server.assign(1, 0)
        assert server.winner(0) is None
        assert server.winner(1) == 0

    def test_unassign(self, server_and_instance):
        server, _ = server_and_instance
        server.assign(0, 0)
        assert server.unassign(0) == 0
        assert server.winner(0) is None
        assert server.task_of(0) is None
        assert server.unassign(0) is None

    def test_allocation_tuple(self, server_and_instance):
        server, _ = server_and_instance
        server.assign(1, 0)
        assert server.allocation() == (None, 0)

    def test_matching_uses_public_ids(self, server_and_instance):
        server, instance = server_and_instance
        server.assign(0, 1)
        matching = server.matching()
        assert dict(matching.pairs) == {instance.tasks[0].id: instance.workers[1].id}

    def test_one_to_one_maintained_under_churn(self, server_and_instance):
        server, _ = server_and_instance
        server.assign(0, 0)
        server.assign(1, 1)
        server.assign(0, 1)  # w1 moves from t1 to t0, displacing w0
        assert server.winner(1) is None
        assert server.winner(0) == 1
        assert server.task_of(0) is None
        matching = server.matching()  # must not raise
        assert len(matching) == 1


class TestAssignedCount:
    def test_tracks_churn_incrementally(self, server_and_instance):
        server, _ = server_and_instance
        assert server.assigned_count == 0
        server.assign(0, 0)
        assert server.assigned_count == 1
        server.assign(1, 1)
        assert server.assigned_count == 2
        server.assign(0, 1)  # w1 moves t1 -> t0, displacing w0
        assert server.assigned_count == 1
        server.unassign(0)
        assert server.assigned_count == 0
        server.unassign(0)  # idempotent on an empty task
        assert server.assigned_count == 0

    def test_matches_allocation_scan(self, server_and_instance):
        server, _ = server_and_instance
        server.assign(0, 1)
        server.assign(1, 0)
        scanned = sum(1 for w in server.allocation() if w is not None)
        assert server.assigned_count == scanned

    def test_array_snapshots_match_state(self, server_and_instance):
        server, _ = server_and_instance
        server.assign(1, 0)
        assert server.allocation_array().tolist() == [-1, 0]
        assert server.holding_array()[0] == 1
