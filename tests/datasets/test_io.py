"""Unit tests for workload CSV import/export."""

import pytest

from repro.datasets.io import load_tasks, load_workers, save_tasks, save_workers
from repro.datasets.synthetic import NormalGenerator
from repro.errors import DatasetError


class TestRoundTrip:
    def test_tasks_round_trip(self, tmp_path, rng):
        generator = NormalGenerator(25, 10, seed=4)
        tasks = generator.tasks(task_value=4.5, rng=rng)
        path = tmp_path / "tasks.csv"
        save_tasks(tasks, path)
        loaded = load_tasks(path)
        assert loaded == tasks

    def test_workers_round_trip(self, tmp_path, rng):
        generator = NormalGenerator(10, 25, seed=4)
        workers = generator.workers(worker_range=1.4, rng=rng)
        path = tmp_path / "workers.csv"
        save_workers(workers, path)
        assert load_workers(path) == workers

    def test_loaded_workload_builds_instances(self, tmp_path, rng):
        generator = NormalGenerator(20, 40, seed=4)
        save_tasks(generator.tasks(4.5, rng), tmp_path / "t.csv")
        save_workers(generator.workers(1.4, rng), tmp_path / "w.csv")
        from repro.simulation.instance import ProblemInstance

        instance = ProblemInstance.build(
            load_tasks(tmp_path / "t.csv"), load_workers(tmp_path / "w.csv"), seed=0
        )
        assert instance.num_tasks == 20

    def test_empty_workload(self, tmp_path):
        save_tasks([], tmp_path / "t.csv")
        assert load_tasks(tmp_path / "t.csv") == []


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            load_tasks(tmp_path / "nope.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        with pytest.raises(DatasetError, match="empty file"):
            load_tasks(path)

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("id,x,y\n1,0,0\n")
        with pytest.raises(DatasetError, match="missing columns"):
            load_tasks(path)

    def test_bad_number_reports_line(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("id,x,y,value,release_time\n1,0,0,4.5,0\n2,oops,0,4.5,0\n")
        with pytest.raises(DatasetError, match=r"t\.csv:3.*'x'"):
            load_tasks(path)

    def test_bad_id(self, tmp_path):
        path = tmp_path / "w.csv"
        path.write_text("id,x,y,radius\nabc,0,0,1\n")
        with pytest.raises(DatasetError, match="integer"):
            load_workers(path)

    def test_duplicate_ids(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("id,x,y,value,release_time\n1,0,0,4.5,0\n1,1,0,4.5,0\n")
        with pytest.raises(DatasetError, match="duplicate task id"):
            load_tasks(path)

    def test_invariants_enforced_on_load(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("id,x,y,value,release_time\n1,0,0,-4.5,0\n")
        with pytest.raises(DatasetError, match="negative value"):
            load_tasks(path)

    def test_negative_radius_rejected(self, tmp_path):
        path = tmp_path / "w.csv"
        path.write_text("id,x,y,radius\n1,0,0,-1\n")
        with pytest.raises(DatasetError, match="negative radius"):
            load_workers(path)
