"""Unit tests for the simulated Chengdu taxi workload."""

import numpy as np
import pytest

from repro.datasets.chengdu import ChengduLikeGenerator
from repro.datasets.synthetic import NormalGenerator
from repro.errors import DatasetError


class TestChengduLikeGenerator:
    def test_population_counts(self):
        instance = ChengduLikeGenerator(100, 200, seed=1).instance()
        assert instance.num_tasks == 100
        assert instance.num_workers == 200

    def test_orders_in_paper_frame(self):
        gen = ChengduLikeGenerator(1000, 10, seed=1)
        instance = gen.instance()
        xs = np.array([t.location.x for t in instance.tasks])
        ys = np.array([t.location.y for t in instance.tasks])
        # Figure 3a frame: roughly x in [340,460], y in [3340,3440]; allow
        # gaussian tails a margin.
        assert 300 < xs.mean() < 500
        assert 3300 < ys.mean() < 3500

    def test_release_times_in_day(self):
        instance = ChengduLikeGenerator(500, 10, seed=1).instance()
        times = [t.release_time for t in instance.tasks]
        assert all(0.0 <= h < 24.0 for h in times)

    def test_release_times_rush_hour_peaks(self):
        instance = ChengduLikeGenerator(4000, 10, seed=1).instance()
        times = np.array([t.release_time for t in instance.tasks])
        rush = np.mean((np.abs(times - 8.5) < 1.5) | (np.abs(times - 18.0) < 1.5))
        flat = 6.0 / 24.0  # a uniform day would put ~25% in those windows
        assert rush > 1.8 * flat

    def test_sparser_than_normal_dataset(self):
        # Section VII-D.2's explanation of PGT's chengdu results: fewer
        # tasks per service circle than the normal dataset.
        chengdu = ChengduLikeGenerator(500, 1000, seed=2).instance(worker_range=1.4)
        normal = NormalGenerator(500, 1000, seed=2).instance(worker_range=1.4)
        assert chengdu.mean_tasks_per_worker() < 0.6 * normal.mean_tasks_per_worker()

    def test_some_density_exists(self):
        chengdu = ChengduLikeGenerator(500, 1000, seed=2).instance(worker_range=1.4)
        assert chengdu.mean_tasks_per_worker() > 0.2

    def test_road_network_fixed_per_generator(self):
        gen = ChengduLikeGenerator(100, 100, seed=7)
        assert gen._roads.shape == (12, 4)
        roads_again = ChengduLikeGenerator(100, 100, seed=7)._roads
        assert np.allclose(gen._roads, roads_again)

    def test_taxis_spread_wider_than_orders(self):
        gen = ChengduLikeGenerator(2000, 2000, seed=3)
        instance = gen.instance()
        order_spread = np.std([t.location.x for t in instance.tasks])
        taxi_spread = np.std([w.location.x for w in instance.workers])
        assert taxi_spread > order_spread

    def test_invalid_mixture(self):
        with pytest.raises(DatasetError, match="<= 1"):
            ChengduLikeGenerator(10, 10, core_fraction=0.8, road_fraction=0.5)
        with pytest.raises(DatasetError, match="num_roads"):
            ChengduLikeGenerator(10, 10, num_roads=0)

    def test_reproducible(self):
        a = ChengduLikeGenerator(50, 100, seed=9).instance(batch=1)
        b = ChengduLikeGenerator(50, 100, seed=9).instance(batch=1)
        assert [t.location for t in a.tasks] == [t.location for t in b.tasks]
