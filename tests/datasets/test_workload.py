"""Unit tests for tasks, workers, batching, and worker-group cycling."""

import pytest

from repro.datasets.workload import Batch, Task, Worker, WorkerGroupCycle, split_batches
from repro.errors import DatasetError
from repro.spatial.geometry import Point


def make_workers(count, radius=1.0):
    return [Worker(id=j, location=Point(float(j), 0.0), radius=radius) for j in range(count)]


class TestTaskWorker:
    def test_task_location_coerced(self):
        task = Task(id=0, location=(1.0, 2.0), value=3.0)  # type: ignore[arg-type]
        assert isinstance(task.location, Point)

    def test_negative_value_rejected(self):
        with pytest.raises(DatasetError, match="negative value"):
            Task(id=0, location=Point(0, 0), value=-1.0)

    def test_negative_radius_rejected(self):
        with pytest.raises(DatasetError, match="negative radius"):
            Worker(id=0, location=Point(0, 0), radius=-1.0)

    def test_can_reach(self):
        worker = Worker(id=0, location=Point(0, 0), radius=1.0)
        assert worker.can_reach(Task(id=0, location=Point(1.0, 0.0), value=1.0))
        assert not worker.can_reach(Task(id=1, location=Point(1.1, 0.0), value=1.0))


class TestBatch:
    def test_worker_task_ratio(self):
        batch = Batch(
            0,
            tuple(Task(id=i, location=Point(0, 0), value=1.0) for i in range(2)),
            tuple(make_workers(4)),
        )
        assert batch.worker_task_ratio == 2.0

    def test_ratio_requires_tasks(self):
        batch = Batch(0, (), tuple(make_workers(2)))
        with pytest.raises(DatasetError, match="no tasks"):
            batch.worker_task_ratio


class TestSplitBatches:
    def _tasks(self, count):
        return [
            Task(id=i, location=Point(0, 0), value=1.0, release_time=float(count - i))
            for i in range(count)
        ]

    def test_batches_ordered_by_release_time(self):
        tasks = self._tasks(10)
        cycle = WorkerGroupCycle.split(make_workers(4), 2)
        batches = split_batches(tasks, batch_size=4, workers=cycle)
        times = [t.release_time for b in batches for t in b.tasks]
        assert times == sorted(times)

    def test_batch_sizes(self):
        cycle = WorkerGroupCycle.split(make_workers(4), 2)
        batches = split_batches(self._tasks(10), batch_size=4, workers=cycle)
        assert [len(b.tasks) for b in batches] == [4, 4, 2]

    def test_groups_cycle(self):
        cycle = WorkerGroupCycle.split(make_workers(4), 2)
        batches = split_batches(self._tasks(6), batch_size=2, workers=cycle)
        # Three batches over two groups: 0, 1, 0.
        assert batches[0].workers == batches[2].workers
        assert batches[0].workers != batches[1].workers

    def test_invalid_batch_size(self):
        cycle = WorkerGroupCycle.split(make_workers(2), 1)
        with pytest.raises(DatasetError, match="batch_size"):
            split_batches(self._tasks(3), batch_size=0, workers=cycle)

    def test_empty_tasks_no_batches(self):
        cycle = WorkerGroupCycle.split(make_workers(2), 1)
        assert split_batches([], batch_size=5, workers=cycle) == []


class TestWorkerGroupCycle:
    def test_split_even(self):
        cycle = WorkerGroupCycle.split(make_workers(30), 10)
        assert len(cycle.groups) == 10
        assert all(len(g) == 3 for g in cycle.groups)

    def test_split_remainder_in_last_group(self):
        cycle = WorkerGroupCycle.split(make_workers(10), 3)
        assert [len(g) for g in cycle.groups] == [3, 3, 4]

    def test_next_group_wraps(self):
        cycle = WorkerGroupCycle.split(make_workers(4), 2)
        first = cycle.next_group()
        second = cycle.next_group()
        third = cycle.next_group()
        assert first != second
        assert first == third

    def test_too_many_groups(self):
        with pytest.raises(DatasetError, match="cannot split"):
            WorkerGroupCycle.split(make_workers(2), 3)

    def test_no_groups_rejected(self):
        with pytest.raises(DatasetError, match="num_groups"):
            WorkerGroupCycle.split(make_workers(2), 0)

    def test_paper_protocol_shape(self):
        # 30000 taxis into ten groups of 3000 (Section VII-B), miniature.
        cycle = WorkerGroupCycle.split(make_workers(300), 10)
        assert all(len(g) == 30 for g in cycle.groups)
