"""Unit tests for the uniform/normal generators and density preservation."""

import math

import numpy as np
import pytest

from repro.datasets.synthetic import NormalGenerator, UniformGenerator
from repro.errors import DatasetError


class TestGeneratorBasics:
    def test_population_counts(self):
        gen = UniformGenerator(num_tasks=50, num_workers=120, seed=1)
        instance = gen.instance()
        assert instance.num_tasks == 50
        assert instance.num_workers == 120

    def test_invalid_populations(self):
        with pytest.raises(DatasetError, match="num_tasks"):
            UniformGenerator(num_tasks=0, num_workers=10)
        with pytest.raises(DatasetError, match="num_workers"):
            UniformGenerator(num_tasks=10, num_workers=0)

    def test_task_values_constant_by_default(self):
        instance = UniformGenerator(30, 30, seed=2).instance(task_value=4.5)
        assert all(t.value == 4.5 for t in instance.tasks)

    def test_value_jitter(self):
        gen = UniformGenerator(200, 10, seed=2)
        instance = gen.instance(task_value=4.5, value_jitter=1.0)
        values = [t.value for t in instance.tasks]
        assert min(values) >= 3.5 - 1e-12
        assert max(values) <= 5.5 + 1e-12
        assert len(set(values)) > 100

    def test_invalid_task_value(self):
        gen = UniformGenerator(10, 10, seed=1)
        with pytest.raises(DatasetError, match="task_value"):
            gen.instance(task_value=0.0)

    def test_worker_radius_applied(self):
        instance = UniformGenerator(10, 10, seed=1).instance(worker_range=2.2)
        assert all(w.radius == 2.2 for w in instance.workers)

    def test_reproducible_batches(self):
        a = UniformGenerator(40, 80, seed=5).instance(batch=3)
        b = UniformGenerator(40, 80, seed=5).instance(batch=3)
        assert [t.location for t in a.tasks] == [t.location for t in b.tasks]
        assert a.budgets == b.budgets

    def test_distinct_batches_differ(self):
        gen = UniformGenerator(40, 80, seed=5)
        a, b = gen.instance(batch=0), gen.instance(batch=1)
        assert [t.location for t in a.tasks] != [t.location for t in b.tasks]

    def test_instances_helper(self):
        batches = UniformGenerator(20, 40, seed=5).instances(3)
        assert len(batches) == 3

    def test_invalid_num_batches(self):
        with pytest.raises(DatasetError, match="num_batches"):
            UniformGenerator(20, 40, seed=5).instances(0)


class TestDensityPreservation:
    def test_uniform_frame_scales_with_sqrt_tasks(self):
        small = UniformGenerator(250, 500, seed=1)
        paper = UniformGenerator(1000, 2000, seed=1)
        assert small.frame == pytest.approx(paper.frame / 2.0)
        assert paper.frame == pytest.approx(100.0)

    def test_normal_std_scales(self):
        small = NormalGenerator(250, 500, seed=1)
        paper = NormalGenerator(1000, 2000, seed=1)
        assert paper.std == pytest.approx(math.sqrt(150.0))
        assert small.std == pytest.approx(paper.std / 2.0)

    @pytest.mark.parametrize("generator_cls", [UniformGenerator, NormalGenerator])
    def test_tasks_per_circle_stable_across_scale(self, generator_cls):
        # The statistic that drives every figure must not move with batch
        # size: compare mean |R_j| at 150 vs 600 tasks.
        small = generator_cls(150, 300, seed=3).instance(worker_range=1.4)
        large = generator_cls(600, 1200, seed=3).instance(worker_range=1.4)
        assert small.mean_tasks_per_worker() == pytest.approx(
            large.mean_tasks_per_worker(), rel=0.35
        )

    def test_normal_denser_than_uniform(self):
        # The paper's core contrast: workers see more tasks on normal.
        normal = NormalGenerator(400, 800, seed=3).instance(worker_range=1.4)
        uniform = UniformGenerator(400, 800, seed=3).instance(worker_range=1.4)
        assert normal.mean_tasks_per_worker() > 2 * uniform.mean_tasks_per_worker()


class TestDistributionShapes:
    def test_uniform_points_inside_frame(self):
        gen = UniformGenerator(500, 10, seed=4)
        instance = gen.instance()
        for task in instance.tasks:
            assert 0.0 <= task.location.x <= gen.frame
            assert 0.0 <= task.location.y <= gen.frame

    def test_normal_points_centred(self):
        gen = NormalGenerator(2000, 10, seed=4)
        instance = gen.instance()
        xs = np.array([t.location.x for t in instance.tasks])
        ys = np.array([t.location.y for t in instance.tasks])
        assert abs(xs.mean()) < gen.std / 5
        assert abs(ys.mean()) < gen.std / 5
        assert xs.std() == pytest.approx(gen.std, rel=0.1)
