"""Unit tests for generic best-response dynamics (Theorem VI.2)."""

import pytest

from repro.errors import ConfigurationError

from repro.errors import ConvergenceError
from repro.game.best_response import best_response_dynamics
from repro.game.strategic import NormalFormGame
from tests.game.test_potential import congestion_game


class TestBestResponseDynamics:
    def test_converges_on_congestion_game(self):
        game, potential = congestion_game()
        path = best_response_dynamics(game, ("A", "A"))
        assert path.converged
        assert game.is_nash(path.final)

    def test_potential_monotone_along_path(self):
        game, potential = congestion_game()
        path = best_response_dynamics(game, ("A", "A"))
        values = [potential(p) for p in path.profiles]
        assert all(a < b + 1e-12 for a, b in zip(values, values[1:]))

    def test_gains_match_potential_steps(self):
        game, potential = congestion_game()
        path = best_response_dynamics(game, ("A", "A"))
        for k, (_, _, gain) in enumerate(path.moves):
            step = potential(path.profiles[k + 1]) - potential(path.profiles[k])
            assert gain == pytest.approx(step)

    def test_nash_start_is_fixed_point(self):
        game, _ = congestion_game()
        path = best_response_dynamics(game, ("A", "B"))
        assert path.num_moves == 0
        assert path.final == ("A", "B")

    def test_matching_pennies_cycles(self):
        def utility(p, profile):
            same = profile[0] == profile[1]
            return (1.0 if same else -1.0) * (1 if p == 0 else -1)

        game = NormalFormGame(strategy_sets=(("H", "T"), ("H", "T")), utility=utility)
        with pytest.raises(ConvergenceError, match="converge"):
            best_response_dynamics(game, ("H", "H"), max_passes=50)

    def test_profile_length_validated(self):
        game, _ = congestion_game()
        with pytest.raises(ConfigurationError, match="entries"):
            best_response_dynamics(game, ("A",))

    def test_convergence_bounded_by_potential_range(self):
        # Theorem VI.2's shape: with an integer-scaled potential, moves are
        # bounded by the potential's range.
        game, potential = congestion_game()
        path = best_response_dynamics(game, ("A", "A"))
        scaled_range = 2 * (max(potential(p) for p in game.profiles())
                            - min(potential(p) for p in game.profiles()))
        assert path.num_moves <= scaled_range
