"""Unit tests for exact-potential verification (Definition 7 / Thm. VI.1)."""

import pytest

from repro.core.pgt import PGTSolver
from repro.game.potential import allocation_potential, is_exact_potential, result_potential
from repro.game.strategic import NormalFormGame
from tests.conftest import build_instance


def congestion_game():
    """Two players, two roads; cost = number of users on the chosen road.

    A textbook exact potential game with potential = -sum of marginal
    congestion.
    """

    def utility(p, profile):
        load = profile.count(profile[p])
        return -float(load)

    def potential(profile):
        total = 0.0
        for road in set(profile):
            k = profile.count(road)
            total -= k * (k + 1) / 2.0
        return total

    game = NormalFormGame(strategy_sets=(("A", "B"), ("A", "B")), utility=utility)
    return game, potential


def paata_game(instance):
    """A one-shot PAA-TA: strategies are tasks (or None), best bid wins.

    With exact distances and no budget spend the paper's potential (total
    matched utility) is exact for *non-overlapping* deviations; we build a
    1-worker-per-task-candidate version where it is exact everywhere.
    """
    model = instance.model

    def winner_of(task, profile):
        bidders = [j for j, choice in enumerate(profile) if choice == task]
        if not bidders:
            return None
        return min(bidders, key=lambda j: (instance.distance(task, j), j))

    def utility(p, profile):
        task = profile[p]
        if task is None or winner_of(task, profile) != p:
            return 0.0
        return model.utility(instance.tasks[task].value, instance.distance(task, p))

    def potential(profile):
        return sum(utility(p, profile) for p in range(instance.num_workers))

    strategy_sets = tuple(
        tuple([None, *instance.reachable[j]]) for j in range(instance.num_workers)
    )
    return NormalFormGame(strategy_sets=strategy_sets, utility=utility), potential


class TestIsExactPotential:
    def test_congestion_game_is_potential(self):
        game, potential = congestion_game()
        assert is_exact_potential(game, potential)

    def test_wrong_potential_rejected(self):
        game, _ = congestion_game()
        assert not is_exact_potential(game, lambda profile: 0.0)

    def test_matching_pennies_not_potential(self):
        def utility(p, profile):
            same = profile[0] == profile[1]
            return (1.0 if same else -1.0) * (1 if p == 0 else -1)

        game = NormalFormGame(strategy_sets=(("H", "T"), ("H", "T")), utility=utility)
        # No function can be an exact potential for matching pennies; the
        # welfare certainly is not.
        assert not is_exact_potential(game, game.welfare)

    def test_disjoint_paata_game_is_potential(self):
        # Workers with disjoint reachable tasks never interact: the total
        # utility is an exact potential.
        instance = build_instance(
            task_specs=[(0.0, 0.0, 5.0), (10.0, 0.0, 5.0)],
            worker_specs=[(0.5, 0.0, 1.0), (10.5, 0.0, 1.0)],
        )
        game, potential = paata_game(instance)
        assert is_exact_potential(game, potential)


class TestAllocationPotential:
    def test_direct_evaluation(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 5.0), (2.0, 0.0, 4.0)],
            worker_specs=[(1.0, 0.0, 3.0), (2.5, 0.0, 3.0)],
        )
        phi = allocation_potential(
            instance,
            {0: 0, 1: 1},
            effective_distance=lambda i, j: instance.distance(i, j),
            total_spend=1.5,
        )
        assert phi == pytest.approx((5 - 1.0) + (4 - 0.5) - 1.5)

    def test_pgt_moves_increase_potential(self, medium_instance):
        # Theorem VI.1's operative content: every accepted move's UT > 0
        # equals the potential increase, so all recorded gains are positive
        # and their sum is the total potential climb.
        _, stats = PGTSolver().solve_with_stats(medium_instance, seed=2)
        assert stats.moves > 0
        assert all(g > 0 for g in stats.move_gains)

    def test_result_potential_consistency(self, medium_instance):
        result = PGTSolver().solve(medium_instance, seed=2)
        phi = result_potential(result)
        matched_value = sum(
            medium_instance.tasks[p.task_index].value
            - medium_instance.model.f_d(p.distance)
            for p in result.matched_pairs()
        )
        assert phi == pytest.approx(matched_value - result.ledger.total_spend())
