"""Unit tests for Nash enumeration, PoA/PoS, and Theorem VI.3 bounds."""

import pytest

from repro.errors import ConfigurationError
from repro.game.equilibrium import (
    price_of_anarchy,
    price_of_stability,
    pure_nash_equilibria,
    theorem_vi3_bounds,
)
from repro.game.strategic import NormalFormGame
from tests.conftest import build_instance


def coordination_game():
    # Two equilibria: (A, A) welfare 4, (B, B) welfare 2.
    payoffs = {
        ("A", "A"): (2, 2),
        ("A", "B"): (0, 0),
        ("B", "A"): (0, 0),
        ("B", "B"): (1, 1),
    }
    return NormalFormGame(
        strategy_sets=(("A", "B"), ("A", "B")),
        utility=lambda p, profile: payoffs[profile][p],
    )


class TestEquilibria:
    def test_enumeration(self):
        equilibria = pure_nash_equilibria(coordination_game())
        assert set(equilibria) == {("A", "A"), ("B", "B")}

    def test_poa_and_pos(self):
        game = coordination_game()
        assert price_of_anarchy(game) == pytest.approx(4 / 2)
        assert price_of_stability(game) == pytest.approx(4 / 4)

    def test_pos_never_exceeds_poa(self):
        game = coordination_game()
        assert price_of_stability(game) <= price_of_anarchy(game)

    def test_no_equilibrium_raises(self):
        def utility(p, profile):
            same = profile[0] == profile[1]
            return (1.0 if same else -1.0) * (1 if p == 0 else -1)

        game = NormalFormGame(strategy_sets=(("H", "T"), ("H", "T")), utility=utility)
        with pytest.raises(ConfigurationError, match="no pure Nash"):
            price_of_anarchy(game)


class TestTheoremVI3:
    def test_bounds_structure(self, medium_instance):
        epoa_lower, epos_upper = theorem_vi3_bounds(medium_instance)
        assert epos_upper == 1.0
        assert 0.0 <= epoa_lower <= 1.0

    def test_bound_on_simple_instance(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 50.0)],
            worker_specs=[(1.0, 0.0, 2.0)],
            budgets={(0, 0): (0.5, 0.5)},
        )
        epoa_lower, _ = theorem_vi3_bounds(instance)
        # U_L = 50 - 1 - 1.0 = 48; U_H = 50 - 1 - 0.5 = 48.5.
        assert epoa_lower == pytest.approx(48.0 / 48.5)

    def test_worthless_tasks_raise(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 0.1)],
            worker_specs=[(1.0, 0.0, 2.0)],
        )
        with pytest.raises(ConfigurationError, match="undefined"):
            theorem_vi3_bounds(instance)

    def test_pgt_outcome_within_bounds(self, medium_instance):
        # The realised PGT/GT utilities sandwich inside the theorem's
        # EPoA-bound statement: GT (non-private equilibrium welfare) is at
        # least the lower bound times the best achievable sum.
        from repro.core.optimal import OptimalSolver
        from repro.core.pgt import GTSolver

        epoa_lower, _ = theorem_vi3_bounds(medium_instance)
        gt = GTSolver().solve(medium_instance).total_utility
        opt = OptimalSolver().solve(medium_instance).total_utility
        assert gt <= opt + 1e-9
        # The bound concerns worst-case equilibria of the private game;
        # the measured non-private equilibrium must clear it comfortably.
        assert gt >= epoa_lower * opt - 1e-9
