"""Unit tests for the normal-form game container."""

import pytest

from repro.errors import ConfigurationError
from repro.game.strategic import NormalFormGame


def prisoners_dilemma():
    # (C, C) -> (3, 3); (D, D) -> (1, 1); defector exploits cooperator.
    payoffs = {
        ("C", "C"): (3, 3),
        ("C", "D"): (0, 5),
        ("D", "C"): (5, 0),
        ("D", "D"): (1, 1),
    }
    return NormalFormGame(
        strategy_sets=(("C", "D"), ("C", "D")),
        utility=lambda p, profile: payoffs[profile][p],
    )


def matching_pennies():
    def utility(p, profile):
        same = profile[0] == profile[1]
        return (1.0 if same else -1.0) * (1 if p == 0 else -1)

    return NormalFormGame(strategy_sets=(("H", "T"), ("H", "T")), utility=utility)


class TestNormalFormGame:
    def test_profile_enumeration(self):
        game = prisoners_dilemma()
        assert game.num_profiles() == 4
        assert len(list(game.profiles())) == 4

    def test_deviate(self):
        game = prisoners_dilemma()
        assert game.deviate(("C", "C"), 1, "D") == ("C", "D")

    def test_best_responses_pd(self):
        game = prisoners_dilemma()
        # Defect dominates.
        assert game.best_responses(0, ("C", "C")) == ("D",)
        assert game.best_responses(0, ("C", "D")) == ("D",)

    def test_nash_pd(self):
        game = prisoners_dilemma()
        assert game.is_nash(("D", "D"))
        assert not game.is_nash(("C", "C"))

    def test_no_pure_nash_in_matching_pennies(self):
        game = matching_pennies()
        assert not any(game.is_nash(p) for p in game.profiles())

    def test_welfare(self):
        game = prisoners_dilemma()
        assert game.welfare(("C", "C")) == 6
        assert game.welfare(("D", "D")) == 2

    def test_best_response_ties_returned_together(self):
        game = NormalFormGame(
            strategy_sets=(("a", "b"),),
            utility=lambda p, profile: 1.0,
        )
        assert game.best_responses(0, ("a",)) == ("a", "b")

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="at least one player"):
            NormalFormGame(strategy_sets=(), utility=lambda p, s: 0.0)
        with pytest.raises(ConfigurationError, match="at least one strategy"):
            NormalFormGame(strategy_sets=((),), utility=lambda p, s: 0.0)
