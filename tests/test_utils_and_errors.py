"""Unit tests for the rng plumbing and the exception hierarchy."""

import numpy as np
import pytest

from repro import errors
from repro.utils.rng import ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seeds_deterministically(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        assert (a == b).all()

    def test_generator_passed_through(self):
        rng = np.random.default_rng(1)
        assert ensure_rng(rng) is rng


class TestSpawnRng:
    def test_child_streams_distinct(self):
        parent = np.random.default_rng(7)
        first = spawn_rng(parent)
        second = spawn_rng(parent)
        assert first.integers(0, 10**9) != second.integers(0, 10**9)

    def test_spawning_is_reproducible(self):
        a = spawn_rng(np.random.default_rng(7)).integers(0, 10**9)
        b = spawn_rng(np.random.default_rng(7)).integers(0, 10**9)
        assert a == b


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.InvalidInstanceError,
            errors.BudgetExhaustedError,
            errors.MatchingError,
            errors.ConvergenceError,
            errors.DatasetError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_single_catch_all(self):
        # The point of the hierarchy: one except clause guards any call.
        from repro.core.registry import make_solver

        with pytest.raises(errors.ReproError):
            make_solver("NOPE")

    def test_repro_error_is_exception(self):
        assert issubclass(errors.ReproError, Exception)
