"""Property pins for the online indicators: batch equivalence, no lookahead.

The :mod:`repro.obs.indicators` contract, stated in that module's
docstring, verified here against numpy batch computations on
hypothesis-generated streams:

* each online value equals its post-hoc numpy counterpart over the same
  observations (exact window percentile; EWMA recurrence with
  warmup-mean seeding; z-score against the frozen warmup baseline);
* **no lookahead**: the reading after ``k`` updates is a pure function
  of the first ``k`` observations — replaying a truncated stream
  reproduces every intermediate reading exactly.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Ewma, RollingQuantile, WarmupZScore
from repro.stream.metrics import FlushRecord, StreamStats

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
streams = st.lists(finite, min_size=1, max_size=60)


def batch_quantile(values, window, q):
    return float(np.percentile(values[-window:], q))


def batch_ewma(values, alpha, warmup):
    seen = values[: warmup]
    value = float(np.mean(seen)) if seen else 0.0
    for x in values[warmup:]:
        value = alpha * x + (1.0 - alpha) * value
    return value


class TestBatchEquivalence:
    @given(values=streams, window=st.integers(1, 16), q=st.sampled_from([0, 25, 50, 95, 100]))
    @settings(max_examples=150, deadline=None)
    def test_rolling_quantile_matches_numpy_percentile(self, values, window, q):
        quantile = RollingQuantile(window=window, warmup=1)
        for x in values:
            quantile.update(x)
        expected = batch_quantile(values, window, q)
        assert math.isclose(quantile.value(q), expected, rel_tol=1e-9, abs_tol=1e-9)

    @given(
        values=streams,
        alpha=st.floats(0.05, 1.0),
        warmup=st.integers(1, 8),
    )
    @settings(max_examples=150, deadline=None)
    def test_ewma_matches_batch_recurrence(self, values, alpha, warmup):
        ewma = Ewma(alpha=alpha, warmup=warmup)
        for x in values:
            ewma.update(x)
        expected = batch_ewma(values, alpha, min(warmup, len(values)))
        assert math.isclose(ewma.value, expected, rel_tol=1e-9, abs_tol=1e-6)

    @given(values=st.lists(finite, min_size=5, max_size=60), warmup=st.integers(2, 5))
    @settings(max_examples=150, deadline=None)
    def test_zscore_matches_frozen_numpy_baseline(self, values, warmup):
        zscore = WarmupZScore(warmup=warmup)
        for x in values:
            zscore.update(x)
        baseline = np.asarray(values[:warmup])
        mean, std = float(np.mean(baseline)), float(np.std(baseline))
        assert math.isclose(zscore.mean, mean, rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(zscore.std, std, rel_tol=1e-9, abs_tol=1e-9)
        if len(values) > warmup:
            deviation = values[-1] - mean
            if std > 0:
                assert math.isclose(
                    zscore.value, deviation / std, rel_tol=1e-9, abs_tol=1e-9
                )
            elif deviation == 0:
                assert zscore.value == 0.0
            else:
                assert zscore.value == math.copysign(math.inf, deviation)


class TestNoLookahead:
    @given(values=streams, cut=st.integers(0, 59))
    @settings(max_examples=100, deadline=None)
    def test_truncating_the_stream_never_changes_earlier_readings(self, values, cut):
        cut = min(cut, len(values))
        full = (RollingQuantile(window=8), Ewma(alpha=0.3, warmup=3), WarmupZScore(warmup=4))
        truncated = (RollingQuantile(window=8), Ewma(alpha=0.3, warmup=3), WarmupZScore(warmup=4))
        readings = []
        for x in values:
            for indicator in full:
                indicator.update(x)
            readings.append(
                (full[0].value(95), full[1].value, full[2].value)
            )
        for x in values[:cut]:
            for indicator in truncated:
                indicator.update(x)
        if cut:
            expected = readings[cut - 1]
            got = (truncated[0].value(95), truncated[1].value, truncated[2].value)
            for e, g in zip(expected, got):
                assert (math.isnan(e) and math.isnan(g)) or e == g

    @given(
        latencies=st.lists(st.floats(0.001, 10.0), min_size=1, max_size=30),
        cut=st.integers(1, 30),
    )
    @settings(max_examples=60, deadline=None)
    def test_stream_stats_online_readings_are_prefix_functions(self, latencies, cut):
        cut = min(cut, len(latencies))
        full = StreamStats("UCE")
        prefix = StreamStats("UCE")
        snapshots = []
        for position, latency in enumerate(latencies):
            full.record_latency(latency)
            full.arrived_tasks += 1
            full.assigned += 1
            full.record_flush(
                FlushRecord(
                    index=position, time=float(position), pending_tasks=1,
                    idle_workers=2, matched=1, solver_seconds=0.001,
                    cumulative_privacy_spend=float(position),
                )
            )
            snapshots.append(
                (
                    full.online.latency_p95,
                    full.online.throughput_ewma,
                    full.online.expiry_zscore,
                    full.online.budget_drawdown,
                )
            )
        for position, latency in enumerate(latencies[:cut]):
            prefix.record_latency(latency)
            prefix.arrived_tasks += 1
            prefix.assigned += 1
            prefix.record_flush(
                FlushRecord(
                    index=position, time=float(position), pending_tasks=1,
                    idle_workers=2, matched=1, solver_seconds=0.001,
                    cumulative_privacy_spend=float(position),
                )
            )
        got = (
            prefix.online.latency_p95,
            prefix.online.throughput_ewma,
            prefix.online.expiry_zscore,
            prefix.online.budget_drawdown,
        )
        assert got == snapshots[cut - 1]
