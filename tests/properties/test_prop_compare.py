"""Property-based tests for PCF/PPCF (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compare import pcf, pcf_correctness, ppcf, ppcf_correctness
from repro.privacy.laplace import LaplaceDifference

finite = st.floats(-100.0, 100.0, allow_nan=False)
rate = st.floats(0.01, 10.0, allow_nan=False)
gap = st.floats(0.001, 50.0, allow_nan=False)


class TestPCFProperties:
    @given(a=finite, b=finite, ea=rate, eb=rate)
    def test_is_probability(self, a, b, ea, eb):
        assert 0.0 <= pcf(a, b, ea, eb) <= 1.0

    @given(a=finite, b=finite, ea=rate, eb=rate)
    def test_lemma_x1(self, a, b, ea, eb):
        # PCF > 1/2 <=> a < b (Lemma X.1).
        value = pcf(a, b, ea, eb)
        if a < b:
            assert value > 0.5 - 1e-12
        elif a > b:
            assert value < 0.5 + 1e-12

    @given(a=finite, b=finite, ea=rate, eb=rate)
    def test_swap_complement(self, a, b, ea, eb):
        # Pr[d_a < d_b] + Pr[d_b < d_a] = 1 for continuous noise.
        total = pcf(a, b, ea, eb) + pcf(b, a, eb, ea)
        assert math.isclose(total, 1.0, abs_tol=1e-9)

    @given(a=finite, shift=st.floats(0.0, 50.0), b=finite, ea=rate, eb=rate)
    def test_monotone_in_gap(self, a, shift, b, ea, eb):
        # Moving b further right can only raise Pr[a < b].
        assert pcf(a, b + shift, ea, eb) >= pcf(a, b, ea, eb) - 1e-12


class TestPPCFProperties:
    @given(d=finite, b=finite, eb=rate)
    def test_is_probability(self, d, b, eb):
        assert 0.0 <= ppcf(d, b, eb) <= 1.0

    @given(d=finite, b=finite, eb=rate)
    def test_eq3_halfpoint(self, d, b, eb):
        value = ppcf(d, b, eb)
        if d < b:
            assert value > 0.5 - 1e-12
        elif d > b:
            assert value < 0.5 + 1e-12

    @given(d=finite, b=finite, eb=rate, shift=st.floats(0.0, 50.0))
    def test_monotone_in_gap(self, d, b, eb, shift):
        assert ppcf(d, b + shift, eb) >= ppcf(d, b, eb) - 1e-12


class TestTheoremV1Property:
    @settings(max_examples=300)
    @given(g=gap, ex=rate, ey=rate)
    def test_ppcf_dominates_pcf(self, g, ex, ey):
        assert ppcf_correctness(g, ey) >= pcf_correctness(g, ex, ey) - 1e-9

    @given(g=gap, ex=rate, ey=rate)
    def test_correctness_above_half(self, g, ex, ey):
        # Both decision rules beat coin-flipping for any positive gap.
        assert pcf_correctness(g, ex, ey) >= 0.5 - 1e-12
        assert ppcf_correctness(g, ey) >= 0.5


class TestLaplaceDifferenceProperties:
    @given(t=finite, ra=rate, rb=rate)
    def test_sf_cdf_complement(self, t, ra, rb):
        diff = LaplaceDifference(ra, rb)
        assert abs(diff.sf(t) + diff.cdf(t) - 1.0) < 1e-9

    @given(t=st.floats(0.0, 50.0), ra=rate, rb=rate)
    def test_symmetry(self, t, ra, rb):
        diff = LaplaceDifference(ra, rb)
        assert abs(diff.sf(-t) - (1.0 - diff.sf(t))) < 1e-9

    @given(t=finite, ra=rate, rb=rate)
    def test_sf_in_unit_interval(self, t, ra, rb):
        assert -1e-12 <= LaplaceDifference(ra, rb).sf(t) <= 1.0 + 1e-12
