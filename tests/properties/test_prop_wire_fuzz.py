"""Fuzzing the wire boundary: a server must outlive its worst client.

Two contracts, from the inside out:

* :func:`repro.api.wire.decode_record` on an arbitrary dict either
  returns a record or raises one of the exception types the JSONL loop
  masks — nothing it would let escape;
* :func:`repro.service.serve_jsonl` on arbitrary byte salad answers
  every non-blank line with exactly one well-formed reply envelope
  (:class:`ErrorReply` for garbage) and never kills the loop.
"""

import asyncio
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.wire import (
    RECORD_TYPES,
    Advance,
    BudgetStatus,
    Drain,
    Finish,
    OpenSession,
    SubmitTask,
    SubmitWorker,
    WireRecord,
    decode_record,
    encode_record,
)
from repro.datasets.workload import Task, Worker
from repro.errors import ReproError
from repro.service import DispatchService, serve_jsonl
from repro.spatial.geometry import Point

#: Exactly what the JSONL loop can mask into an ErrorReply.  Anything
#: else escaping decode_record is a server-killer, i.e. a bug.
MASKABLE = (ReproError, KeyError, TypeError, AttributeError)


def valid_records():
    return [
        OpenSession(method="GRD"),
        OpenSession(method="PUCE", options={"seed": 1}),
        SubmitTask.from_task(
            Task(id=0, location=Point(0.0, 0.0), value=4.5), at=0.0, deadline=1.0
        ),
        SubmitWorker.from_worker(
            Worker(id=1, location=Point(0.5, 0.0), radius=2.0), at=0.0, budget=5.0
        ),
        Advance(to_time=1.0),
        Drain(),
        BudgetStatus(),
        Finish(),
    ]


json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(10**6), 10**6)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=10,
)

arbitrary_dicts = st.dictionaries(st.text(max_size=12), json_values, max_size=6)


@st.composite
def mutated_records(draw):
    """A valid wire dict with one hostile edit."""
    record = dict(encode_record(draw(st.sampled_from(valid_records()))))
    edit = draw(st.sampled_from(["drop", "replace", "extra", "retype_kind"]))
    if edit == "drop":
        record.pop(draw(st.sampled_from(sorted(record))))
    elif edit == "replace":
        record[draw(st.sampled_from(sorted(record)))] = draw(json_values)
    elif edit == "extra":
        record[draw(st.text(min_size=1, max_size=12))] = draw(json_values)
    else:
        record["kind"] = draw(json_values)
    return record


def assert_decode_is_total(mapping):
    try:
        record = decode_record(mapping)
    except MASKABLE:
        return
    assert isinstance(record, WireRecord)


@settings(max_examples=200, deadline=None)
@given(mapping=arbitrary_dicts)
def test_decode_record_survives_arbitrary_dicts(mapping):
    assert_decode_is_total(mapping)


@settings(max_examples=200, deadline=None)
@given(mapping=mutated_records())
def test_decode_record_survives_mutated_records(mapping):
    assert_decode_is_total(mapping)


def test_decode_round_trips_every_valid_record():
    for record in valid_records():
        assert decode_record(encode_record(record)) == record


def drive_lines(lines):
    """Run lines through a fresh service; return parsed reply envelopes."""

    async def run():
        service = DispatchService()
        replies = []
        try:
            await serve_jsonl(service, lines, replies.append)
        finally:
            await service.close()
        return replies

    out = asyncio.run(run())
    parsed = [json.loads(line) for line in out]
    for envelope in parsed:
        assert set(envelope) == {"tenant", "reply"}
        assert envelope["reply"]["kind"] in RECORD_TYPES
        # Every reply envelope must itself survive a decode round trip.
        assert isinstance(decode_record(envelope["reply"]), WireRecord)
    return parsed


@st.composite
def hostile_lines(draw):
    """One input line: raw text, JSON salad, or a near-miss envelope."""
    shape = draw(
        st.sampled_from(["text", "json", "envelope", "mutated", "valid"])
    )
    if shape == "text":
        return draw(st.text(max_size=40))
    if shape == "json":
        return json.dumps(draw(json_values))
    if shape == "envelope":
        return json.dumps(
            {
                "tenant": draw(json_values),
                "request": draw(json_values),
                "seq": draw(json_values),
            }
        )
    if shape == "mutated":
        return json.dumps({"tenant": "t", "request": draw(mutated_records())})
    return json.dumps(
        {"tenant": "t", "request": encode_record(draw(st.sampled_from(valid_records())))}
    )


@settings(max_examples=25, deadline=None)
@given(lines=st.lists(hostile_lines(), max_size=8))
def test_serve_jsonl_answers_every_line(lines):
    replies = drive_lines(lines)
    assert len(replies) == sum(1 for line in lines if line.strip())


def test_serve_jsonl_masks_garbage_and_keeps_serving():
    replies = drive_lines(
        [
            "not json at all",
            '{"tenant": 3, "request": {"kind": "drain", "v": 1}}',
            '{"tenant": "t", "request": {"kind": "nope", "v": 1}}',
            '{"tenant": "t", "seq": "x", "request": {"kind": "drain", "v": 1}}',
            '{"tenant": "t"}',
            "",
            # Decodes fine, then blows up session construction: typed
            # fields with well-typed-JSON-but-wrong-Python values must
            # come back as error replies, not tracebacks.
            '{"tenant": "t", "request": {"kind": "open_session", "v": 1, '
            '"method": "GRD", "options": null, "default_deadline": null}}',
            '{"tenant": "t", "request": {"kind": "open_session", "v": 1, '
            '"method": "GRD"}}',
            '{"tenant": "t", "request": {"kind": "finish", "v": 1}}',
        ]
    )
    kinds = [envelope["reply"]["kind"] for envelope in replies]
    assert kinds[:5] == ["error"] * 5
    assert kinds[5] == "error"  # null default_deadline refused, loop alive
    assert kinds[6] == "ack"  # the session opened after all that abuse
    assert kinds[7] == "finished"
