"""Bit-identity of the flush hot path: workspace reuse and solver cache.

Three guarantees pin PR 5's zero-rebuild machinery:

* **Workspace reuse is invisible.**  Solving through one shared
  :class:`~repro.core.workspace.EngineWorkspace` — including back-to-back
  solves that re-fill dirty buffers — produces exactly the results and
  round traces of fresh per-solve allocation, for every
  conflict-elimination method, seed for seed.
* **Cache on == cache off.**  A stream run with the flush-fingerprint
  solver cache enabled is bit-identical (stats, flush records, privacy
  timeline, per-worker ledgers) to the same run without it, for private
  and non-private methods alike, under hypothesis-chosen workloads.
* **Budget carry is part of the key.**  Two flushes that share pair
  arrays but differ only in the workers' *remaining* shift budgets must
  be a cache miss (the regression the naive content-hash would get
  wrong).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.options import SolveOptions
from repro.core.engine import ConflictEliminationSolver, EliminationPolicy
from repro.core.workspace import EngineWorkspace
from repro.datasets.synthetic import NormalGenerator
from repro.stream.arrivals import PoissonProcess, StreamWorkload
from repro.stream.cache import (
    FlushSolverCache,
    cache_profile,
    flush_fingerprint,
    flush_inputs_fingerprint,
)
from repro.stream.runner import StreamRunner

CE_POLICIES = (
    EliminationPolicy("PUCE", "utility", private=True),
    EliminationPolicy("PUCE-nppcf", "utility", private=True, use_ppcf=False),
    EliminationPolicy("PDCE", "distance", private=True),
    EliminationPolicy("PDCE-nppcf", "distance", private=True, use_ppcf=False),
    EliminationPolicy("UCE", "utility", private=False),
    EliminationPolicy("DCE", "distance", private=False),
)

STREAM_METHODS = ("PUCE", "UCE", "PDCE", "GRD", "PGT")


def generated_instance(seed, num_tasks=18, num_workers=36):
    return NormalGenerator(
        num_tasks=num_tasks, num_workers=num_workers, seed=seed
    ).instance(task_value=4.5, worker_range=1.4)


def assert_results_identical(a, b, context):
    assert a.matching.pairs == b.matching.pairs, context
    assert a.rounds == b.rounds, context
    assert a.publishes == b.publishes, context
    assert list(a.ledger.events()) == list(b.ledger.events()), context
    assert set(a.release_board or {}) == set(b.release_board or {}), context
    for key, releases in (a.release_board or {}).items():
        assert releases.releases == b.release_board[key].releases, (context, key)


class TestWorkspaceReuseEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        instance_seed=st.integers(0, 2**20),
        noise_seed=st.integers(0, 2**20),
        policy_index=st.integers(0, len(CE_POLICIES) - 1),
    )
    def test_shared_arena_solves_are_bit_identical(
        self, instance_seed, noise_seed, policy_index
    ):
        policy = CE_POLICIES[policy_index]
        instance = generated_instance(instance_seed)
        workspace = EngineWorkspace()
        solver = ConflictEliminationSolver(policy, sweep="vectorized")
        # Two arena solves in a row: the second reuses dirty buffers.
        for attempt in range(2):
            with_ws, trace_ws = solver.solve_with_trace(
                instance, seed=noise_seed, workspace=workspace
            )
            fresh, trace_fresh = solver.solve_with_trace(instance, seed=noise_seed)
            assert_results_identical(
                with_ws, fresh, (policy.name, instance_seed, attempt)
            )
            assert trace_ws == trace_fresh

    def test_arena_reuse_across_different_instance_shapes(self):
        # Growing, shrinking, growing again: buffer views must always be
        # freshly filled, never leak prior-solve state.
        workspace = EngineWorkspace()
        solver = ConflictEliminationSolver(CE_POLICIES[0], sweep="vectorized")
        for seed, shape in ((0, (20, 40)), (1, (6, 9)), (2, (30, 55)), (3, (6, 9))):
            instance = generated_instance(seed, *shape)
            with_ws = solver.solve(instance, seed=seed, workspace=workspace)
            fresh = solver.solve(instance, seed=seed)
            assert_results_identical(with_ws, fresh, (seed, shape))
        assert workspace.reuses > 0

    def test_solve_shards_share_one_arena(self):
        solver = ConflictEliminationSolver(CE_POLICIES[0])
        instances = [generated_instance(s, 10, 20) for s in (4, 5, 6)]
        workspace = EngineWorkspace()
        pooled = solver.solve_shards(instances, seeds=[1, 2, 3], workspace=workspace)
        plain = solver.solve_shards(instances, seeds=[1, 2, 3])
        for a, b, instance in zip(pooled, plain, instances):
            assert_results_identical(a, b, instance)


def small_workload(workload_seed):
    return StreamWorkload(
        task_process=PoissonProcess(rate=24.0, horizon=1.0),
        worker_process=PoissonProcess(rate=6.0, horizon=1.0),
        spatial=NormalGenerator(num_tasks=80, num_workers=160, seed=workload_seed),
        initial_workers=12,
        task_deadline=0.8,
        worker_budget=18.0,
        seed=workload_seed,
    )


def assert_streams_identical(actual, expected):
    """Full-stats equality, wall-clock timing and cache counters excluded."""
    assert actual.arrived_tasks == expected.arrived_tasks
    assert actual.assigned == expected.assigned
    assert actual.expired == expected.expired
    assert actual.leftover == expected.leftover
    assert actual.total_utility == expected.total_utility
    assert actual.total_distance == expected.total_distance
    assert actual.latencies == expected.latencies
    assert actual.privacy_timeline == expected.privacy_timeline
    assert actual.per_worker_spend == expected.per_worker_spend
    assert len(actual.flushes) == len(expected.flushes)
    for mine, theirs in zip(actual.flushes, expected.flushes):
        assert (mine.index, mine.time, mine.pending_tasks, mine.idle_workers) == (
            theirs.index,
            theirs.time,
            theirs.pending_tasks,
            theirs.idle_workers,
        )
        assert (mine.matched, mine.cumulative_privacy_spend, mine.shards) == (
            theirs.matched,
            theirs.cumulative_privacy_spend,
            theirs.shards,
        )


class TestCacheOnOffEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        workload_seed=st.integers(0, 2**20),
        run_seed=st.integers(0, 2**20),
        method=st.sampled_from(STREAM_METHODS),
    )
    def test_cached_stream_is_bit_identical(self, workload_seed, run_seed, method):
        workload = small_workload(workload_seed)
        events = workload.events(seed=run_seed)
        reports = {}
        for cache in (False, True):
            options = SolveOptions(
                seed=run_seed, max_batch_size=10, max_wait=0.12, cache=cache
            )
            reports[cache] = StreamRunner([method], options=options).run(
                events, seed=run_seed
            )[method]
        assert_streams_identical(reports[True], reports[False])
        # The cache-off run must carry no counters.  Cache-on: pure
        # methods classify every flush; content-sensitive ones provably
        # cannot hit a per-stream cache, so the machinery is skipped.
        assert reports[False].cache_hits == reports[False].cache_misses == 0
        total = reports[True].cache_hits + reports[True].cache_misses
        if method in ("UCE", "GRD"):
            assert total == len(reports[True].flushes)
        else:
            assert total == 0

    @settings(max_examples=4, deadline=None)
    @given(
        workload_seed=st.integers(0, 2**20),
        run_seed=st.integers(0, 2**20),
    )
    def test_cached_sharded_stream_is_bit_identical(self, workload_seed, run_seed):
        workload = small_workload(workload_seed)
        events = workload.events(seed=run_seed)
        reports = {}
        for cache in (False, True):
            options = SolveOptions(
                seed=run_seed,
                max_batch_size=10,
                max_wait=0.12,
                shards=2,
                cache=cache,
            )
            reports[cache] = StreamRunner(["PUCE"], options=options).run(
                events, seed=run_seed
            )["PUCE"]
        assert_streams_identical(reports[True], reports[False])

    def test_shared_cache_across_identical_runs_hits_for_private_methods(self):
        # Private fingerprints include the per-flush noise key, so hits
        # require the whole (seed, flush, method) context to recur —
        # exactly what a repeated run through one shared cache does.
        workload = small_workload(3)
        events = workload.events(seed=5)
        options = SolveOptions(seed=5, max_batch_size=10, max_wait=0.12)
        shared = FlushSolverCache()
        from repro.api.session import DispatchSession, SessionConfig

        stats = []
        for _ in range(2):
            session = DispatchSession(
                "PUCE",
                SessionConfig(
                    options=options, record_assignments=False, cache=shared
                ),
            )
            stats.append(session.run(events))
        assert stats[1].cache_hits == len(stats[1].flushes)
        assert_streams_identical(stats[1], stats[0])


class TestBudgetCarryFingerprint:
    def test_same_arrays_different_remaining_budgets_must_miss(self):
        """The regression the issue pins: budget carry keys the cache."""
        instance = generated_instance(9, 8, 12)
        from repro.core.puce import PUCESolver

        profile = cache_profile(PUCESolver())
        noise_key = (0, 1, 2)
        base = flush_fingerprint(
            instance, profile, noise_key=noise_key,
            remaining_budgets=(10.0, 10.0, 4.0),
        )
        same = flush_fingerprint(
            instance, profile, noise_key=noise_key,
            remaining_budgets=(10.0, 10.0, 4.0),
        )
        drained = flush_fingerprint(
            instance, profile, noise_key=noise_key,
            remaining_budgets=(10.0, 10.0, 3.5),
        )
        assert base == same
        assert base != drained

    def test_input_fingerprint_keys_on_remaining_budgets_too(self):
        """Same regression at the pre-build (zero-rebuild) layer: the
        simulator fingerprints flush inputs before any instance exists,
        and budget carry must still force a miss."""
        from repro.core.budgets import BudgetSampler
        from repro.core.puce import PUCESolver
        from repro.core.utility import UtilityModel

        instance = generated_instance(9, 8, 12)
        profile = cache_profile(PUCESolver())
        model, sampler = UtilityModel(), BudgetSampler()
        common = dict(
            build_key=(0, 1, 0x5EED),
            noise_key=(0, 1, 2),
        )
        base = flush_inputs_fingerprint(
            instance.tasks, instance.workers, model, sampler, profile,
            remaining_budgets=(10.0,) * 12, **common,
        )
        same = flush_inputs_fingerprint(
            instance.tasks, instance.workers, model, sampler, profile,
            remaining_budgets=(10.0,) * 12, **common,
        )
        drained = flush_inputs_fingerprint(
            instance.tasks, instance.workers, model, sampler, profile,
            remaining_budgets=(10.0,) * 11 + (9.5,), **common,
        )
        assert base == same
        assert base != drained
        # Pure profiles ignore budgets, seeds and noise entirely.
        pure = cache_profile(
            __import__("repro.core.nonprivate", fromlist=["UCESolver"]).UCESolver()
        )
        a = flush_inputs_fingerprint(
            instance.tasks, instance.workers, model, sampler, pure,
            build_key=(0, 1, 0x5EED), noise_key=(0, 1, 2),
        )
        b = flush_inputs_fingerprint(
            instance.tasks, instance.workers, model, sampler, pure,
            build_key=(0, 99, 0x5EED), noise_key=(9, 9, 9),
            remaining_budgets=(1.0,),
        )
        assert a == b

    def test_noise_key_is_part_of_private_fingerprints(self):
        instance = generated_instance(9, 8, 12)
        from repro.core.puce import PUCESolver

        profile = cache_profile(PUCESolver())
        budgets = (10.0,) * instance.num_workers
        a = flush_fingerprint(
            instance, profile, noise_key=(0, 1, 2), remaining_budgets=budgets
        )
        b = flush_fingerprint(
            instance, profile, noise_key=(0, 2, 2), remaining_budgets=budgets
        )
        assert a != b

    def test_pure_solvers_ignore_noise_and_budget_state(self):
        from repro.core.nonprivate import UCESolver

        instance = generated_instance(9, 8, 12)
        profile = cache_profile(UCESolver())
        assert not profile.content_sensitive
        a = flush_fingerprint(instance, profile, noise_key=(0, 1, 2))
        b = flush_fingerprint(
            instance, profile, noise_key=(9, 9, 9), remaining_budgets=(1.0,)
        )
        assert a == b

    def test_unknown_solver_classes_are_conservative(self):
        class MysterySolver:
            name = "???"
            is_private = False

            def solve(self, instance, seed=None, options=None):
                raise NotImplementedError

        assert cache_profile(MysterySolver()).content_sensitive
