"""Equivalence properties of the array-backed core (the refactor's pin).

Two families of guarantees:

* the **vectorized** WorkerProposal sweep is *pair-identical* to the
  pre-refactor scalar path — same matching, same round trace, same
  publish timeline, same ledger events — for every conflict-elimination
  method, seed for seed (they share one noise stream, so this is exact
  equality, not approximate);
* the CSR pair arrays and their dict-shaped **compatibility views**
  (``distances``, ``budgets``, ``distance()``, ``budget_vector()``,
  ``feasible_pairs()`` order) describe the same instance whichever
  constructor produced it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import ConflictEliminationSolver, EliminationPolicy
from repro.core.registry import available_methods, make_solver
from repro.core.utility import PowerValue, UtilityModel
from repro.datasets.synthetic import NormalGenerator, UniformGenerator
from repro.simulation.instance import ProblemInstance
from tests.conftest import build_instance, line_instance

CE_POLICIES = (
    EliminationPolicy("PUCE", "utility", private=True),
    EliminationPolicy("PUCE-nppcf", "utility", private=True, use_ppcf=False),
    EliminationPolicy("PDCE", "distance", private=True),
    EliminationPolicy("PDCE-nppcf", "distance", private=True, use_ppcf=False),
    EliminationPolicy("UCE", "utility", private=False),
    EliminationPolicy("DCE", "distance", private=False),
)


def random_instances():
    """A seeded mix of generated and hand-shaped instances."""
    yield line_instance(num_tasks=4, num_workers=6, seed=3)
    yield build_instance(
        task_specs=[(0.0, 0.0, 3.0), (1.5, 0.5, 6.0), (2.5, -0.5, 4.0)],
        worker_specs=[(0.2, 0.1, 4.0), (1.0, 0.0, 4.0), (2.0, 0.3, 4.0), (2.6, 0.0, 4.0)],
        seed=11,
    )
    for seed in (0, 1, 2):
        yield NormalGenerator(num_tasks=25, num_workers=50, seed=seed).instance(
            task_value=4.5, worker_range=1.4
        )
    yield UniformGenerator(num_tasks=20, num_workers=30, seed=7).instance()
    # Non-linear f_d: its array application falls back to per-element
    # scalar calls (numpy's array ``**`` is not bit-identical to scalar
    # ``**``), so the equivalence guarantee must cover it too.
    yield build_instance(
        task_specs=[(0.0, 0.0, 6.0), (1.2, 0.4, 5.0), (2.2, -0.3, 7.0)],
        worker_specs=[(0.3, 0.1, 4.0), (1.1, 0.2, 4.0), (1.9, 0.2, 4.0), (2.4, -0.1, 4.0)],
        model=UtilityModel(f_d=PowerValue(exponent=2.0)),
        seed=13,
    )


def assert_results_identical(a, b, method):
    """Exact (not approximate) equality of two assignment results."""
    assert a.matching.pairs == b.matching.pairs, method
    assert a.rounds == b.rounds, method
    assert a.publishes == b.publishes, method
    assert list(a.ledger.events()) == list(b.ledger.events()), method
    assert set(a.release_board or {}) == set(b.release_board or {}), method
    for key, releases in (a.release_board or {}).items():
        assert releases.releases == b.release_board[key].releases, (method, key)


class TestVectorizedScalarEquivalence:
    @pytest.mark.parametrize("policy", CE_POLICIES, ids=lambda p: p.name)
    def test_pair_identical_results_and_traces(self, policy):
        for case, instance in enumerate(random_instances()):
            for seed in (0, 17):
                vec = ConflictEliminationSolver(policy, sweep="vectorized")
                scl = ConflictEliminationSolver(policy, sweep="scalar")
                a, trace_a = vec.solve_with_trace(instance, seed=seed)
                b, trace_b = scl.solve_with_trace(instance, seed=seed)
                assert_results_identical(a, b, (policy.name, case, seed))
                assert trace_a == trace_b, (policy.name, case, seed)

    def test_all_registry_methods_equivalent_across_constructors(self):
        """Dict-built and array-built instances solve identically.

        The registry methods (including PGT/GT/GRD/OPT, which do not use
        the engine's sweeps) must be insensitive to which constructor
        produced the instance — the dict views and the arrays are the
        same data.
        """
        for instance in random_instances():
            twin = ProblemInstance(
                tasks=instance.tasks,
                workers=instance.workers,
                model=instance.model,
                reachable=instance.reachable,
                distances=instance.distances,
                budgets=instance.budgets,
            )
            for name in available_methods():
                a = make_solver(name).solve(instance, seed=5)
                b = make_solver(name).solve(twin, seed=5)
                assert a.matching.pairs == b.matching.pairs, name
                assert a.publishes == b.publishes, name
                assert list(a.ledger.events()) == list(b.ledger.events()), name

    @settings(max_examples=14, deadline=None)
    @given(
        instance_seed=st.integers(0, 2**20),
        noise_seed=st.integers(0, 2**20),
        num_tasks=st.integers(2, 30),
        worker_factor=st.integers(1, 3),
        policy_index=st.integers(0, len(CE_POLICIES) - 1),
    )
    def test_hypothesis_workloads_pin_the_array_winner_chosen(
        self, instance_seed, noise_seed, num_tasks, worker_factor, policy_index
    ):
        """Vectorized (array WinnerChosen + small-round form) == scalar,
        on hypothesis-chosen instance shapes spanning both sides of the
        small-round candidate bound — the PR-5 equivalence pin."""
        policy = CE_POLICIES[policy_index]
        instance = NormalGenerator(
            num_tasks=num_tasks,
            num_workers=num_tasks * worker_factor,
            seed=instance_seed,
        ).instance(task_value=4.5, worker_range=1.4)
        vec = ConflictEliminationSolver(policy, sweep="vectorized")
        scl = ConflictEliminationSolver(policy, sweep="scalar")
        a, trace_a = vec.solve_with_trace(instance, seed=noise_seed)
        b, trace_b = scl.solve_with_trace(instance, seed=noise_seed)
        assert_results_identical(a, b, (policy.name, instance_seed, noise_seed))
        assert trace_a == trace_b

    def test_scalar_fallback_for_overridden_proposal_hooks(self):
        """Custom scalar proposal hooks route the run to the scalar path.

        The vectorized sweep never calls ``_build_agents`` (replay
        harnesses), ``_worker_proposal``, ``_evaluate_pair`` or
        ``_beats_winner_private``; overriding any of them must disable it.
        """
        instance = line_instance(seed=1)
        for hook in (
            "_build_agents",
            "_worker_proposal",
            "_evaluate_pair",
            "_beats_winner_private",
            "_incumbent_entry",
        ):
            custom = type(
                "CustomSolver",
                (ConflictEliminationSolver,),
                {hook: lambda self, *args, **kwargs: None},
            )(CE_POLICIES[0])
            assert custom._make_sweep_state(instance, object(), None) is None, hook

        stock = ConflictEliminationSolver(CE_POLICIES[0])
        assert stock._make_sweep_state(instance, object(), None) is not None


class TestCSRViews:
    def test_views_match_arrays(self):
        for instance in random_instances():
            pairs = instance.pairs
            order = list(instance.feasible_pairs())
            # CSR order is worker-major, reachable order.
            expected = [
                (i, j)
                for j, tasks_in_range in enumerate(instance.reachable)
                for i in tasks_in_range
            ]
            assert order == expected
            assert instance.num_feasible_pairs == len(expected)
            assert list(instance.distances) == expected
            assert list(instance.budgets) == expected
            for p, (i, j) in enumerate(order):
                assert int(pairs.task[p]) == i and int(pairs.worker[p]) == j
                assert instance.distance(i, j) == float(pairs.distance[p])
                assert instance.distances[(i, j)] == instance.distance(i, j)
                vector = instance.budget_vector(i, j)
                assert instance.budgets[(i, j)] == vector
                length = int(pairs.budget_len[p])
                assert vector.epsilons == tuple(
                    pairs.budget_matrix[p, :length].tolist()
                )
                # Prefix sums replicate Python's left-to-right summation.
                assert float(pairs.budget_prefix[p, length]) == sum(
                    vector.epsilons
                )

    def test_dict_constructor_round_trips(self):
        instance = line_instance(num_tasks=3, num_workers=5, seed=9)
        twin = ProblemInstance(
            tasks=instance.tasks,
            workers=instance.workers,
            model=instance.model,
            reachable=instance.reachable,
            distances=instance.distances,
            budgets=instance.budgets,
        )
        assert twin == instance
        assert list(twin.feasible_pairs()) == list(instance.feasible_pairs())
        assert np.array_equal(twin.pairs.offsets, instance.pairs.offsets)
        assert twin.candidates == instance.candidates

    def test_worker_slices_cover_reachable(self):
        instance = NormalGenerator(num_tasks=15, num_workers=30, seed=4).instance()
        for j in range(instance.num_workers):
            sl = instance.pairs.worker_slice(j)
            assert tuple(instance.pairs.task[sl].tolist()) == instance.reachable[j]
            assert all(int(w) == j for w in instance.pairs.worker[sl])
