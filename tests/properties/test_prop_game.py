"""Property-based tests for the game substrate (hypothesis).

The central structural fact (Theorem VI.2's engine): any game *defined
from* a potential function — each player's utility IS the potential —
is an exact potential game, and best-response dynamics converge on it.
Random potential tables give an unbounded family of such games.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.game.best_response import best_response_dynamics
from repro.game.equilibrium import pure_nash_equilibria
from repro.game.potential import is_exact_potential
from repro.game.strategic import NormalFormGame


@st.composite
def potential_games(draw):
    """A random 2-3 player game whose utilities all equal one potential."""
    num_players = draw(st.integers(2, 3))
    sizes = [draw(st.integers(2, 3)) for _ in range(num_players)]
    strategy_sets = tuple(tuple(range(s)) for s in sizes)

    table = {}

    def potential(profile):
        if profile not in table:
            # Deterministic pseudo-random values derived from drawn bytes.
            table[profile] = draw(
                st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False)
            )
        return table[profile]

    # Materialise all profiles up front so hypothesis draws are stable.
    import itertools

    for profile in itertools.product(*strategy_sets):
        potential(profile)

    game = NormalFormGame(
        strategy_sets=strategy_sets,
        utility=lambda p, profile: potential(profile),
    )
    return game, potential


class TestPotentialGameProperties:
    @settings(max_examples=40, deadline=None)
    @given(gp=potential_games())
    def test_identity_potential_is_exact(self, gp):
        game, potential = gp
        assert is_exact_potential(game, potential)

    @settings(max_examples=40, deadline=None)
    @given(gp=potential_games())
    def test_best_response_converges(self, gp):
        game, potential = gp
        initial = tuple(s[0] for s in game.strategy_sets)
        path = best_response_dynamics(game, initial)
        assert path.converged
        assert game.is_nash(path.final)

    @settings(max_examples=40, deadline=None)
    @given(gp=potential_games())
    def test_potential_maximiser_is_nash(self, gp):
        # The classic existence argument: the potential's argmax is a pure
        # Nash equilibrium.
        game, potential = gp
        best = max(game.profiles(), key=potential)
        assert game.is_nash(best)

    @settings(max_examples=30, deadline=None)
    @given(gp=potential_games())
    def test_equilibria_exist(self, gp):
        game, _ = gp
        assert pure_nash_equilibria(game)

    @settings(max_examples=30, deadline=None)
    @given(gp=potential_games())
    def test_path_potential_strictly_increases(self, gp):
        game, potential = gp
        initial = tuple(s[-1] for s in game.strategy_sets)
        path = best_response_dynamics(game, initial)
        values = [potential(p) for p in path.profiles]
        for a, b in zip(values, values[1:]):
            assert b > a
