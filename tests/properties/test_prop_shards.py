"""Shard-cut correctness properties (the sharded-flush executor's pin).

Three families of guarantees:

* the **cut** is a true conflict-free partition — every feasible pair
  lands in exactly one shard, and no worker or task spans two shards —
  whatever the coalescing threshold;
* the **merged result** is exact: for non-private methods it equals the
  full-instance engine run bit for bit (no noise, component-local
  dynamics), and for private methods it is identical across shard counts
  1/2/8 and across sequential/thread/process execution (the per-shard
  seed schedule is the only noise source);
* **cross-flush accounting** survives sharding: charging the merged
  ledger into a :class:`WorkerBudgetTracker` leaves identical per-worker
  carry whatever the shard count.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import make_solver
from repro.datasets.synthetic import NormalGenerator, UniformGenerator
from repro.stream.batcher import WorkerBudgetTracker
from repro.stream.shards import (
    ShardedFlushExecutor,
    ShardSeedSchedule,
    build_shard_instance,
    cut_flush,
)

METHODS = ("PUCE", "PDCE", "UCE", "DCE")


def generated_instance(generator_seed, uniform, num_tasks, worker_range):
    cls = UniformGenerator if uniform else NormalGenerator
    return cls(
        num_tasks=num_tasks, num_workers=2 * num_tasks, seed=generator_seed
    ).instance(task_value=4.5, worker_range=worker_range)


instance_params = {
    "generator_seed": st.integers(0, 50),
    "uniform": st.booleans(),
    "num_tasks": st.integers(10, 45),
    "worker_range": st.sampled_from([0.3, 0.6, 1.0, 1.4]),
}


def assert_results_identical(a, b, context):
    assert dict(a.matching) == dict(b.matching), context
    assert list(a.ledger.events()) == list(b.ledger.events()), context
    assert a.publishes == b.publishes, context
    assert set(a.release_board) == set(b.release_board), context
    for key, releases in a.release_board.items():
        assert releases.releases == b.release_board[key].releases, (context, key)


@given(min_shard_pairs=st.sampled_from([0, 8, 64, 192]), **instance_params)
@settings(max_examples=30, deadline=None)
def test_cut_is_a_conflict_free_partition(
    min_shard_pairs, generator_seed, uniform, num_tasks, worker_range
):
    """Every feasible pair in exactly one shard; closure on both sides."""
    instance = generated_instance(generator_seed, uniform, num_tasks, worker_range)
    cut = cut_flush(instance, min_shard_pairs=min_shard_pairs)

    seen_pairs: set[tuple[int, int]] = set()
    seen_tasks: set[int] = set()
    seen_workers: set[int] = set()
    for component in cut.components:
        assert not seen_tasks & set(component.tasks)
        assert not seen_workers & set(component.workers)
        seen_tasks |= set(component.tasks)
        seen_workers |= set(component.workers)
        sub = build_shard_instance(instance, component)
        assert sub.num_feasible_pairs == component.pair_count
        for i, j in sub.feasible_pairs():
            pair = (component.tasks[i], component.workers[j])
            assert pair not in seen_pairs
            seen_pairs.add(pair)
        # Sliced pair data is the parent's, value for value.
        for i, j in sub.feasible_pairs():
            gi, gj = component.tasks[i], component.workers[j]
            assert sub.distance(i, j) == instance.distance(gi, gj)
            assert sub.budget_vector(i, j) == instance.budget_vector(gi, gj)
    assert seen_pairs == set(instance.feasible_pairs())
    # Orphans are exactly the leftovers, and orphan tasks have no pairs.
    assert seen_tasks | set(cut.orphan_tasks) == set(range(instance.num_tasks))
    assert seen_workers | set(cut.orphan_workers) == set(range(instance.num_workers))


@given(method=st.sampled_from(["UCE", "DCE"]), **instance_params)
@settings(max_examples=20, deadline=None)
def test_non_private_sharded_equals_full_engine(
    method, generator_seed, uniform, num_tasks, worker_range
):
    """Without noise, the merged sharded result IS the full-engine result."""
    instance = generated_instance(generator_seed, uniform, num_tasks, worker_range)
    solver = make_solver(method)
    full = solver.solve(instance, seed=0)
    schedule = ShardSeedSchedule((0,))
    for num_shards in (1, 2, 8):
        merged = ShardedFlushExecutor(solver, num_shards=num_shards).solve(
            instance, schedule
        )
        assert dict(merged.matching) == dict(full.matching), (method, num_shards)


@given(method=st.sampled_from(METHODS), **instance_params)
@settings(max_examples=15, deadline=None)
def test_sharded_results_identical_across_counts_and_modes(
    method, generator_seed, uniform, num_tasks, worker_range
):
    """Shard counts 1/2/8 and thread execution agree bit for bit."""
    instance = generated_instance(generator_seed, uniform, num_tasks, worker_range)
    solver = make_solver(method)
    schedule = ShardSeedSchedule((generator_seed, 7))
    reference = ShardedFlushExecutor(solver, num_shards=1).solve(instance, schedule)
    for num_shards in (2, 8):
        merged = ShardedFlushExecutor(solver, num_shards=num_shards).solve(
            instance, schedule
        )
        assert_results_identical(merged, reference, (method, num_shards))
    with ShardedFlushExecutor(solver, num_shards=4, parallel="thread") as executor:
        assert_results_identical(
            executor.solve(instance, schedule), reference, (method, "thread")
        )


@given(**instance_params)
@settings(max_examples=10, deadline=None)
def test_budget_carry_identical_across_shard_counts(
    generator_seed, uniform, num_tasks, worker_range
):
    """WorkerBudgetTracker carry is a pure function of the merged ledger."""
    instance = generated_instance(generator_seed, uniform, num_tasks, worker_range)
    solver = make_solver("PUCE")
    schedule = ShardSeedSchedule((generator_seed, 11))
    carries = []
    for num_shards in (1, 2, 8):
        merged = ShardedFlushExecutor(solver, num_shards=num_shards).solve(
            instance, schedule
        )
        tracker = WorkerBudgetTracker()
        for worker in instance.workers:
            tracker.register(worker.id, 1e9)
        tracker.charge(merged.ledger)
        carries.append(
            {worker.id: tracker.spent(worker.id) for worker in instance.workers}
        )
    assert carries[0] == carries[1] == carries[2]


@given(min_shard_pairs=st.integers(2, 400), **instance_params)
@settings(max_examples=25, deadline=None)
def test_micro_shortcut_cut_matches_full_route(
    min_shard_pairs, generator_seed, uniform, num_tasks, worker_range
):
    """The micro-flush cut shortcut is invisible: identical ShardCut.

    Checked both at the drawn threshold (shortcut may or may not fire)
    and at a threshold >= the flush's pair count (shortcut always fires,
    the case its O(pairs) derivation must match union-find on).
    """
    instance = generated_instance(generator_seed, uniform, num_tasks, worker_range)
    for threshold in (min_shard_pairs, max(2, instance.num_feasible_pairs)):
        fast = cut_flush(instance, min_shard_pairs=threshold, micro_shortcut=True)
        full = cut_flush(instance, min_shard_pairs=threshold, micro_shortcut=False)
        assert fast == full, threshold


@given(
    method=st.sampled_from(METHODS),
    generator_seed=st.integers(0, 30),
    worker_range=st.sampled_from([0.4, 0.8]),
)
@settings(max_examples=6, deadline=None)
def test_shm_and_pickle_transports_identical(method, generator_seed, worker_range):
    """Forced shm and forced pickle agree with the sequential reference.

    The shm leg deliberately runs below the planner's size floor (the
    executor-level force overrides it), so the zero-copy path is
    exercised even on small hypothesis-sized flushes.
    """
    from repro.core.workspace import shm_available

    instance = generated_instance(generator_seed, False, 40, worker_range)
    solver = make_solver(method)
    schedule = ShardSeedSchedule((generator_seed, 13))
    reference = ShardedFlushExecutor(solver, num_shards=1, min_shard_pairs=8).solve(
        instance, schedule
    )
    for transport in ("shm", "pickle"):
        if transport == "shm" and not shm_available():
            continue
        with ShardedFlushExecutor(
            solver,
            num_shards=2,
            parallel="process",
            max_workers=2,
            min_shard_pairs=8,
            transport=transport,
        ) as executor:
            merged = executor.solve(instance, schedule)
        assert_results_identical(merged, reference, (method, transport))


def test_process_parallel_matches_sequential_reference():
    """One (slow to spawn) process-pool run agrees with the sequential path."""
    instance = NormalGenerator(num_tasks=50, num_workers=100, seed=5).instance(
        task_value=4.5, worker_range=0.6
    )
    solver = make_solver("PUCE")
    schedule = ShardSeedSchedule((5, 3))
    # min_shard_pairs shapes the cut (and so the per-unit noise streams):
    # the sequential reference must use the same threshold.
    reference = ShardedFlushExecutor(solver, num_shards=1, min_shard_pairs=8).solve(
        instance, schedule
    )
    with ShardedFlushExecutor(
        solver, num_shards=4, parallel="process", max_workers=2, min_shard_pairs=8
    ) as executor:
        merged = executor.solve(instance, schedule)
    assert_results_identical(merged, reference, "process")
