"""Property-based tests for instance construction (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import euclidean
from tests.conftest import build_instance

coords = st.floats(-8.0, 8.0, allow_nan=False)
values = st.floats(0.1, 10.0, allow_nan=False)
radii = st.floats(0.0, 10.0, allow_nan=False)

task_lists = st.lists(st.tuples(coords, coords, values), min_size=0, max_size=8)
worker_lists = st.lists(st.tuples(coords, coords, radii), min_size=0, max_size=8)


class TestInstanceProperties:
    @settings(max_examples=60, deadline=None)
    @given(tasks=task_lists, workers=worker_lists)
    def test_reachability_is_exactly_the_radius_predicate(self, tasks, workers):
        instance = build_instance(tasks, workers, seed=0)
        for j, worker in enumerate(instance.workers):
            reachable = set(instance.reachable[j])
            for i, task in enumerate(instance.tasks):
                in_range = euclidean(worker.location, task.location) <= worker.radius
                assert (i in reachable) == in_range

    @settings(max_examples=60, deadline=None)
    @given(tasks=task_lists, workers=worker_lists)
    def test_distances_match_geometry(self, tasks, workers):
        instance = build_instance(tasks, workers, seed=0)
        for (i, j), distance in instance.distances.items():
            expected = euclidean(
                instance.workers[j].location, instance.tasks[i].location
            )
            assert distance == expected

    @settings(max_examples=60, deadline=None)
    @given(tasks=task_lists, workers=worker_lists, seed=st.integers(0, 50))
    def test_every_feasible_pair_has_budget_vector(self, tasks, workers, seed):
        instance = build_instance(tasks, workers, seed=seed)
        assert set(instance.budgets) == set(instance.distances)
        for vector in instance.budgets.values():
            assert len(vector) == 7  # Table X group size default
            assert all(0.5 <= e <= 1.75 for e in vector.epsilons)

    @settings(max_examples=40, deadline=None)
    @given(tasks=task_lists, workers=worker_lists)
    def test_candidates_inverse_of_reachable(self, tasks, workers):
        instance = build_instance(tasks, workers, seed=0)
        pairs_via_reachable = {
            (i, j) for j, row in enumerate(instance.reachable) for i in row
        }
        pairs_via_candidates = {
            (i, j) for i, row in enumerate(instance.candidates) for j in row
        }
        assert pairs_via_reachable == pairs_via_candidates

    @settings(max_examples=40, deadline=None)
    @given(tasks=task_lists, workers=worker_lists)
    def test_base_utility_consistent_with_model(self, tasks, workers):
        instance = build_instance(tasks, workers, seed=0)
        for (i, j) in instance.feasible_pairs():
            expected = instance.tasks[i].value - instance.model.f_d(
                instance.distance(i, j)
            )
            assert instance.base_utility(i, j) == expected
