"""The crash-recovery invariant: a service killed at an arbitrary point
and restarted from its journal finishes bit-identically to an
uninterrupted direct session, and no acknowledged request is lost.

The kill is simulated the way a real crash looks to the journal: the
consumer tasks die mid-stream and the write handles are dropped with
whatever the journal already made durable (``fsync_every=1`` — every
acknowledged append).  The client then retries its last acknowledged
request with the same sequence number, which must dedup to a no-op ack
instead of double-applying.
"""

import asyncio
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.options import SolveOptions
from repro.api.session import DispatchSession, SessionConfig
from repro.api.wire import (
    AckReply,
    Advance,
    AssignmentsReply,
    Drain,
    Finish,
    FinishedReply,
    OpenSession,
    SubmitTask,
    SubmitWorker,
)
from repro.datasets.synthetic import NormalGenerator
from repro.service import DispatchService, ServiceConfig
from repro.stream.arrivals import PoissonProcess, StreamWorkload, TaskArrival

METHODS = ("PUCE", "UCE", "GRD")


def small_workload(workload_seed):
    return StreamWorkload(
        task_process=PoissonProcess(rate=16.0, horizon=1.0),
        worker_process=PoissonProcess(rate=5.0, horizon=1.0),
        spatial=NormalGenerator(num_tasks=60, num_workers=120, seed=workload_seed),
        initial_workers=12,
        task_deadline=0.8,
        worker_budget=25.0,
        seed=workload_seed,
    )


def request_script(method, options, events, cuts):
    """The full request sequence of one run, as wire records."""
    script = [OpenSession(method=method, options=options.to_dict())]
    feed = iter(events)
    queued = next(feed, None)

    def to_record(event):
        if isinstance(event, TaskArrival):
            return SubmitTask.from_task(
                event.task, at=event.time, deadline=event.deadline
            )
        budget = event.budget_capacity
        return SubmitWorker.from_worker(
            event.worker,
            at=event.time,
            budget=budget if budget is not None else math.inf,
        )

    for cut in sorted(cuts):
        while queued is not None and queued.time <= cut:
            script.append(to_record(queued))
            queued = next(feed, None)
        script.append(Advance(to_time=cut))
        script.append(Drain())
    while queued is not None:
        script.append(to_record(queued))
        queued = next(feed, None)
    script.append(Finish())
    return script


def direct_run(method, options, events, cuts):
    session = DispatchSession(method, SessionConfig(options=options))
    feed = iter(events)
    queued = next(feed, None)
    collected = []
    for cut in sorted(cuts):
        while queued is not None and queued.time <= cut:
            session.submit(queued)
            queued = next(feed, None)
        session.advance(cut)
        collected.extend(session.drain())
    while queued is not None:
        session.submit(queued)
        queued = next(feed, None)
    stats = session.finish()
    collected.extend(session.drain())
    return stats, collected


async def simulate_crash(service):
    """What a SIGKILL looks like from the journal's side: consumers die,
    handles drop, and only already-fsynced bytes survive."""
    for state in service._tenants.values():
        if state.consumer is not None and not state.consumer.done():
            state.consumer.cancel()
            try:
                await state.consumer
            except asyncio.CancelledError:
                pass
        if state.journal is not None:
            state.journal.close()
        state.session.close()


async def crashing_run(script, kill_after, journal_dir):
    """Drive the script, crash after ``kill_after`` acknowledged
    requests, restart from the journal, retry, and finish."""
    config = ServiceConfig(
        backpressure_ratio=None,
        journal_dir=str(journal_dir),
        journal_checkpoint_every=5,  # small: checkpoints happen mid-run
    )
    service = DispatchService(config)
    tenant = "prop"
    collected = []
    final = None
    acked = 0

    for index, record in enumerate(script):
        seq = index + 1
        if acked == kill_after:
            await simulate_crash(service)
            service = DispatchService(config)
            recovered = await service.recover()
            assert recovered == [tenant]
            # At-least-once delivery: the client cannot know whether its
            # last acknowledged request predated the crash, so it
            # retries it.  The sequence number makes that a no-op.
            if index > 0:
                retry = await service.submit(tenant, script[index - 1], seq=seq - 1)
                assert isinstance(retry, AckReply)
        reply = await service.submit(tenant, record, seq=seq)
        acked += 1
        if isinstance(reply, AssignmentsReply):
            collected.extend(r.to_assignment() for r in reply.assignments)
        elif isinstance(reply, FinishedReply):
            collected.extend(r.to_assignment() for r in reply.assignments)
            final = reply
    stats = service.tenant_stats(tenant)
    await service.close()
    return final, stats, collected


@settings(max_examples=6, deadline=None)
@given(
    workload_seed=st.integers(0, 2**20),
    run_seed=st.integers(0, 2**20),
    method=st.sampled_from(METHODS),
    cuts=st.lists(st.floats(0.1, 1.4), min_size=1, max_size=3),
    kill_fraction=st.floats(0.0, 1.0),
)
def test_kill_and_restart_is_bit_identical(
    tmp_path_factory, workload_seed, run_seed, method, cuts, kill_fraction
):
    workload = small_workload(workload_seed)
    options = SolveOptions(seed=run_seed, max_batch_size=10, max_wait=0.15)
    events = list(workload.events(seed=run_seed))
    script = request_script(method, options, events, cuts)
    # Kill anywhere from "right after open" to "right before finish".
    kill_after = 1 + int(kill_fraction * max(0, len(script) - 2))

    expected_stats, expected_events = direct_run(method, options, events, cuts)
    journal_dir = tmp_path_factory.mktemp("journal")
    final, actual_stats, actual_events = asyncio.run(
        crashing_run(script, kill_after, journal_dir)
    )

    # Zero acknowledged requests lost, zero double-applies: the full
    # assignment stream matches the uninterrupted session exactly.
    assert actual_events == expected_events
    assert final is not None
    assert final.arrived_tasks == expected_stats.arrived_tasks
    assert final.assigned == expected_stats.assigned
    assert final.expired == expected_stats.expired
    assert final.total_utility == expected_stats.total_utility
    assert final.privacy_spend == expected_stats.total_privacy_spend
    assert final.flushes == len(expected_stats.flushes)
    assert actual_stats.latencies == expected_stats.latencies
    assert actual_stats.per_worker_spend == expected_stats.per_worker_spend

    # The finished session cleaned its journal up.
    assert list(journal_dir.iterdir()) == []


def test_recovered_service_survives_repeated_crashes(tmp_path):
    """Crash → recover → crash → recover, with work in between."""

    async def run():
        config = ServiceConfig(journal_dir=str(tmp_path))
        options = SolveOptions(seed=3, max_batch_size=6)
        workload = small_workload(11)
        events = list(workload.events(seed=3))
        script = request_script("GRD", options, events, [0.4, 0.9])

        service = DispatchService(config)
        seq = 0
        collected = []
        final = None
        for index, record in enumerate(script):
            seq = index + 1
            if index in (4, 9, 14):
                await simulate_crash(service)
                service = DispatchService(config)
                await service.recover()
            reply = await service.submit("t", record, seq=seq)
            for item in getattr(reply, "assignments", ()):
                collected.append(item.to_assignment())
            if isinstance(reply, FinishedReply):
                final = reply
        await service.close()
        return final, collected

    final, collected = asyncio.run(run())
    expected_stats, expected_events = direct_run(
        "GRD",
        SolveOptions(seed=3, max_batch_size=6),
        list(small_workload(11).events(seed=3)),
        [0.4, 0.9],
    )
    assert collected == expected_events
    assert final.total_utility == expected_stats.total_utility
