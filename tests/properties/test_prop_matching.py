"""Property-based tests for the matching substrate (hypothesis)."""

import itertools
import math

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.matching.greedy import greedy_max_weight
from repro.matching.hungarian import linear_sum_assignment, max_weight_matching

small_costs = arrays(
    dtype=float,
    shape=st.tuples(st.integers(1, 5), st.integers(1, 5)),
    elements=st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False),
)


def brute_force_min(cost):
    n, m = cost.shape
    transposed = n > m
    if transposed:
        cost = cost.T
        n, m = m, n
    return min(
        sum(cost[i, j] for i, j in enumerate(perm))
        for perm in itertools.permutations(range(m), n)
    )


class TestHungarianProperties:
    @settings(max_examples=60, deadline=None)
    @given(cost=small_costs)
    def test_optimal_vs_brute_force(self, cost):
        rows, cols = linear_sum_assignment(cost)
        assert cost[rows, cols].sum() <= brute_force_min(cost) + 1e-7

    @settings(max_examples=60, deadline=None)
    @given(cost=small_costs, shift=st.floats(-10.0, 10.0, allow_nan=False))
    def test_full_shift_invariance(self, cost, shift):
        # Adding a constant to the whole matrix shifts the optimum by
        # (assigned count) * shift and preserves an optimal structure.
        rows, cols = linear_sum_assignment(cost)
        shifted = cost + shift
        rows2, cols2 = linear_sum_assignment(shifted)
        expected = cost[rows, cols].sum() + shift * len(rows)
        assert abs(shifted[rows2, cols2].sum() - expected) < 1e-7

    @settings(max_examples=60, deadline=None)
    @given(cost=small_costs)
    def test_assignment_is_injective(self, cost):
        rows, cols = linear_sum_assignment(cost)
        assert len(set(rows.tolist())) == len(rows)
        assert len(set(cols.tolist())) == len(cols)


class TestMaxWeightProperties:
    @settings(max_examples=60, deadline=None)
    @given(weights=small_costs)
    def test_only_positive_edges_used(self, weights):
        match = max_weight_matching(weights)
        for i, j in match.items():
            assert weights[i, j] > 0

    @settings(max_examples=60, deadline=None)
    @given(weights=small_costs)
    def test_total_at_least_greedy(self, weights):
        match = max_weight_matching(weights)
        optimal_total = sum(weights[i, j] for i, j in match.items())
        greedy = greedy_max_weight(
            {
                (i, j): float(weights[i, j])
                for i in range(weights.shape[0])
                for j in range(weights.shape[1])
            }
        )
        greedy_total = sum(weights[i, j] for i, j in greedy.items())
        assert optimal_total >= greedy_total - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(weights=small_costs)
    def test_one_to_one(self, weights):
        match = max_weight_matching(weights)
        assert len(set(match.values())) == len(match)


class TestGreedyProperties:
    sparse_weights = st.dictionaries(
        keys=st.tuples(st.integers(0, 6), st.integers(0, 6)),
        values=st.floats(-10.0, 10.0, allow_nan=False),
        max_size=30,
    )

    @given(weights=sparse_weights)
    def test_greedy_one_to_one(self, weights):
        match = greedy_max_weight(weights)
        assert len(set(match.values())) == len(match)

    @given(weights=sparse_weights)
    def test_greedy_maximal(self, weights):
        # No positive-weight edge between two free endpoints remains.
        match = greedy_max_weight(weights)
        used_rows = set(match)
        used_cols = set(match.values())
        for (r, c), w in weights.items():
            if math.isfinite(w) and w > 0:
                assert r in used_rows or c in used_cols
