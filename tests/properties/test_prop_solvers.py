"""Property-based tests over random PA-TA instances (hypothesis).

Each test draws a random small instance and checks solver invariants that
must hold for *every* input: one-to-one matchings, feasibility, budget
discipline, ledger consistency, and private-vs-counterpart sanity.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import make_solver
from tests.conftest import build_instance

coords = st.floats(-5.0, 5.0, allow_nan=False)
values = st.floats(0.5, 10.0, allow_nan=False)
radii = st.floats(0.5, 6.0, allow_nan=False)

task_lists = st.lists(st.tuples(coords, coords, values), min_size=1, max_size=6)
worker_lists = st.lists(st.tuples(coords, coords, radii), min_size=1, max_size=6)

SOLVERS = ("PUCE", "PDCE", "PGT", "UCE", "DCE", "GT", "GRD", "OPT")


@st.composite
def instances(draw):
    tasks = draw(task_lists)
    workers = draw(worker_lists)
    seed = draw(st.integers(0, 1000))
    return build_instance(tasks, workers, seed=seed)


class TestSolverInvariants:
    @settings(max_examples=30, deadline=None)
    @given(instance=instances(), seed=st.integers(0, 100))
    def test_all_solvers_valid_matchings(self, instance, seed):
        feasible = {
            (instance.tasks[i].id, instance.workers[j].id)
            for i, j in instance.feasible_pairs()
        }
        for name in SOLVERS:
            result = make_solver(name).solve(instance, seed=seed)
            workers = list(result.matching.pairs.values())
            assert len(set(workers)) == len(workers), name
            for pair in result.matching:
                assert pair in feasible, name

    @settings(max_examples=30, deadline=None)
    @given(instance=instances(), seed=st.integers(0, 100))
    def test_budget_discipline(self, instance, seed):
        for name in ("PUCE", "PDCE", "PGT"):
            result = make_solver(name).solve(instance, seed=seed)
            assert len(result.ledger) == result.publishes, name
            for (i, j) in instance.feasible_pairs():
                spend = result.ledger.pair_spend(
                    instance.workers[j].id, instance.tasks[i].id
                )
                vector = instance.budget_vector(i, j)
                assert spend.proposals <= len(vector), name
                assert spend.epsilons == vector.epsilons[: spend.proposals], name

    @settings(max_examples=30, deadline=None)
    @given(instance=instances(), seed=st.integers(0, 100))
    def test_opt_dominates_nonprivate(self, instance, seed):
        opt = make_solver("OPT").solve(instance, seed=seed).total_utility
        for name in ("UCE", "GT", "GRD"):
            assert make_solver(name).solve(instance, seed=seed).total_utility <= opt + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(instance=instances(), seed=st.integers(0, 100))
    def test_pgt_gains_all_positive(self, instance, seed):
        solver = make_solver("PGT")
        result, stats = solver.solve_with_stats(instance, seed=seed)
        assert all(g > 0 for g in stats.move_gains)
        assert stats.moves == result.publishes

    @settings(max_examples=20, deadline=None)
    @given(instance=instances(), seed=st.integers(0, 100))
    def test_utility_methods_never_match_nonpositive_base_pairs(
        self, instance, seed
    ):
        # UCE/GT/GRD/OPT never form a pair whose *base* utility is <= 0.
        for name in ("UCE", "GT", "GRD", "OPT"):
            result = make_solver(name).solve(instance, seed=seed)
            for p in result.matched_pairs():
                assert (
                    instance.base_utility(p.task_index, p.worker_index) > 0
                ), name
