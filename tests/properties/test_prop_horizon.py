"""Property pins for the sliding-window accountant: tree == naive oracle.

The :mod:`repro.privacy.horizon` contract, stated in that module's
docstring, verified here on hypothesis-generated release schedules:

* **window invariant** — for every composition rule (sequential, tree,
  decayed sequential), :meth:`WindowAccountant.spend_in_window` equals
  :func:`naive_window_spend` over the full event list, at every
  intermediate release time and at arbitrary later query times — the
  same invariant the simulator tracks live as
  ``StreamStats.window_invariant_ok``;
* **no lookahead / monotone aging** — queries only ever see releases in
  ``(t - W, t]``; lifetime totals are exact sums regardless of window;
* **compaction transparency** — forcing many compactions (tiny window,
  long schedule) never changes any answer at or after the newest
  release.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy.horizon import (
    GlobalAccountant,
    HorizonPolicy,
    WindowAccountant,
    naive_window_spend,
)

eps_values = st.floats(min_value=1e-3, max_value=10.0, allow_nan=False)
gaps = st.floats(min_value=0.0, max_value=3.0, allow_nan=False)
schedules = st.lists(st.tuples(gaps, eps_values), min_size=1, max_size=80)
windows = st.floats(min_value=0.1, max_value=20.0, allow_nan=False)


def events_from(schedule):
    """Cumulative-gap schedule -> nondecreasing (time, eps) releases."""
    t = 0.0
    events = []
    for gap, eps in schedule:
        t += gap
        events.append((t, eps))
    return events


def policies(window):
    yield HorizonPolicy(window_seconds=window)
    yield HorizonPolicy(window_seconds=window, composition="tree")
    yield HorizonPolicy(window_seconds=window, decay=0.5)


class TestWindowInvariant:
    @given(schedule=schedules, window=windows)
    @settings(max_examples=150, deadline=None)
    def test_accountant_matches_naive_at_every_release(self, schedule, window):
        events = events_from(schedule)
        for policy in policies(window):
            acct = WindowAccountant(policy)
            seen = []
            for t, eps in events:
                acct.record(0, eps, t=t)
                seen.append((t, eps))
                expected = naive_window_spend(seen, t, policy)
                got = acct.spend_in_window(0, t=t)
                assert math.isclose(got, expected, rel_tol=1e-9, abs_tol=1e-12), (
                    policy,
                    t,
                )

    @given(
        schedule=schedules,
        window=windows,
        later=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_accountant_matches_naive_at_later_query_times(
        self, schedule, window, later
    ):
        events = events_from(schedule)
        query_at = events[-1][0] + later
        for policy in policies(window):
            acct = WindowAccountant(policy)
            for t, eps in events:
                acct.record(0, eps, t=t)
            expected = naive_window_spend(events, query_at, policy)
            got = acct.spend_in_window(0, t=query_at)
            assert math.isclose(got, expected, rel_tol=1e-9, abs_tol=1e-12), policy

    @given(schedule=schedules, window=windows)
    @settings(max_examples=100, deadline=None)
    def test_lifetime_and_remaining_bookkeeping(self, schedule, window):
        events = events_from(schedule)
        policy = HorizonPolicy(window_seconds=window, window_budget=1e6)
        acct = WindowAccountant(policy)
        for t, eps in events:
            acct.record(0, eps, t=t)
        total = sum(eps for _, eps in events)
        assert math.isclose(acct.lifetime_spend(0), total, rel_tol=1e-9)
        assert math.isclose(acct.total_spend(), total, rel_tol=1e-9)
        t_last = events[-1][0]
        assert math.isclose(
            acct.remaining(0, t=t_last),
            1e6 - acct.spend_in_window(0, t=t_last),
            rel_tol=1e-9,
        )

    @given(schedule=st.lists(st.tuples(gaps, eps_values), min_size=60, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_compaction_transparent_under_tiny_window(self, schedule):
        events = events_from(schedule)
        policy = HorizonPolicy(window_seconds=0.5)
        acct = WindowAccountant(policy)
        for t, eps in events:
            acct.record(0, eps, t=t)
        t_last = events[-1][0]
        expected = naive_window_spend(events, t_last, policy)
        assert math.isclose(
            acct.spend_in_window(0, t=t_last), expected, rel_tol=1e-9, abs_tol=1e-12
        )
        assert acct.release_count(0) <= len(events)


class TestGlobalEquivalence:
    @given(schedule=schedules)
    @settings(max_examples=100, deadline=None)
    def test_global_accountant_is_plain_accumulation(self, schedule):
        events = events_from(schedule)
        acct = GlobalAccountant()
        running = 0.0
        for t, eps in events:
            acct.record(0, eps, t=t)
            running = running + eps  # the historical accumulation order
            assert acct.spend_in_window(0) == running
            assert acct.lifetime_spend(0) == running
            assert acct.total_spend() == running
