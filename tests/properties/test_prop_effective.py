"""Property-based tests for the effective-distance MLE (hypothesis)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.effective import Release, effective_pair_of

release_lists = st.lists(
    st.builds(
        Release,
        value=st.floats(-100.0, 100.0, allow_nan=False),
        epsilon=st.floats(0.01, 10.0, allow_nan=False),
    ),
    min_size=1,
    max_size=10,
)


def objective(releases, d):
    return sum(r.epsilon * abs(r.value - d) for r in releases)


class TestEffectivePairProperties:
    @given(releases=release_lists)
    def test_result_comes_from_release_set(self, releases):
        pair = effective_pair_of(releases)
        assert any(
            r.value == pair.distance and r.epsilon == pair.epsilon for r in releases
        )

    @given(releases=release_lists)
    def test_minimises_weighted_absolute_error(self, releases):
        pair = effective_pair_of(releases)
        best = min(objective(releases, r.value) for r in releases)
        assert objective(releases, pair.distance) <= best + 1e-9

    @given(releases=release_lists)
    def test_within_release_range(self, releases):
        pair = effective_pair_of(releases)
        values = [r.value for r in releases]
        assert min(values) <= pair.distance <= max(values)

    @given(releases=release_lists, shift=st.floats(-50.0, 50.0, allow_nan=False))
    def test_translation_equivariance(self, releases, shift):
        # Shifting every release shifts the effective distance equally.
        base = effective_pair_of(releases)
        shifted = effective_pair_of(
            [Release(r.value + shift, r.epsilon) for r in releases]
        )
        assert abs(shifted.distance - (base.distance + shift)) < 1e-9
        assert shifted.epsilon == base.epsilon

    @given(releases=release_lists, scale=st.floats(0.1, 10.0, allow_nan=False))
    def test_budget_scaling_invariance(self, releases, scale):
        # Multiplying every budget by a constant leaves the argmin set
        # unchanged, hence the same effective distance.
        base = effective_pair_of(releases)
        scaled = effective_pair_of(
            [Release(r.value, r.epsilon * scale) for r in releases]
        )
        assert abs(scaled.distance - base.distance) < 1e-9

    @given(releases=release_lists)
    def test_permutation_changes_nothing_but_ties(self, releases):
        forward = effective_pair_of(releases)
        backward = effective_pair_of(list(reversed(releases)))
        assert abs(
            objective(releases, forward.distance)
            - objective(releases, backward.distance)
        ) < 1e-9

    @given(
        value=st.floats(-100.0, 100.0, allow_nan=False),
        epsilon=st.floats(0.01, 10.0, allow_nan=False),
        bigger=st.floats(10.0, 100.0, allow_nan=False),
    )
    def test_dominant_release_wins(self, value, epsilon, bigger):
        # A release with a budget dwarfing all others pins the median.
        releases = [
            Release(value, epsilon * 0.001),
            Release(value + 5.0, epsilon * 0.001 + bigger),
        ]
        assert effective_pair_of(releases).distance == value + 5.0
