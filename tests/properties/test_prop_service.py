"""The service invariant: a session driven through the wire path —
`ServiceClient` → JSON-serialized records → `DispatchService` queue →
`DispatchSession.apply` — is event-for-event identical to the same
workload driven directly through a `DispatchSession`.

Every request crosses a real `json.dumps`/`json.loads` round-trip on
the way in (the bytes a remote tenant would send), so this also pins
that the wire encoding loses nothing the dispatch outcome depends on.
"""

import asyncio
import json
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.options import SolveOptions
from repro.api.session import DispatchSession, SessionConfig
from repro.api.wire import decode_record, encode_record
from repro.datasets.synthetic import NormalGenerator
from repro.service import DispatchService, ServiceClient, ServiceConfig
from repro.stream.arrivals import (
    PoissonProcess,
    StreamWorkload,
    TaskArrival,
    WorkerArrival,
)

METHODS = ("PUCE", "UCE", "GRD")


def small_workload(workload_seed):
    return StreamWorkload(
        task_process=PoissonProcess(rate=20.0, horizon=1.0),
        worker_process=PoissonProcess(rate=6.0, horizon=1.0),
        spatial=NormalGenerator(num_tasks=80, num_workers=160, seed=workload_seed),
        initial_workers=20,
        task_deadline=0.8,
        worker_budget=25.0,
        seed=workload_seed,
    )


def direct_run(method, options, events, cuts):
    session = DispatchSession(method, SessionConfig(options=options))
    feed = iter(events)
    queued = next(feed, None)
    collected = []
    for cut in sorted(cuts):
        while queued is not None and queued.time <= cut:
            session.submit(queued)
            queued = next(feed, None)
        session.advance(cut)
        collected.extend(session.drain())
    while queued is not None:
        session.submit(queued)
        queued = next(feed, None)
    stats = session.finish()
    collected.extend(session.drain())
    return stats, collected


async def wire_run(method, options, events, cuts):
    service = DispatchService(ServiceConfig(backpressure_ratio=None))
    client = ServiceClient(service, "prop")

    async def send(record):
        # The full serialization boundary: what leaves the client is
        # bytes, what the service decodes is a fresh record.
        payload = json.loads(json.dumps(encode_record(record)))
        return await client.request(decode_record(payload))

    await client.open(method, options=options.to_dict())
    feed = iter(events)
    queued = next(feed, None)
    collected = []

    async def submit(event):
        if isinstance(event, TaskArrival):
            from repro.api.wire import SubmitTask

            await send(
                SubmitTask.from_task(
                    event.task, at=event.time, deadline=event.deadline
                )
            )
        else:
            assert isinstance(event, WorkerArrival)
            from repro.api.wire import SubmitWorker

            budget = event.budget_capacity
            await send(
                SubmitWorker.from_worker(
                    event.worker,
                    at=event.time,
                    budget=budget if budget is not None else math.inf,
                )
            )

    from repro.api.wire import Advance, Drain, Finish

    for cut in sorted(cuts):
        while queued is not None and queued.time <= cut:
            await submit(queued)
            queued = next(feed, None)
        await send(Advance(to_time=cut))
        reply = await send(Drain())
        collected.extend(r.to_assignment() for r in reply.assignments)
    while queued is not None:
        await submit(queued)
        queued = next(feed, None)
    final = await send(Finish())
    collected.extend(r.to_assignment() for r in final.assignments)
    reply_stats = service.tenant_stats("prop")
    await service.close()
    return final, reply_stats, collected


@settings(max_examples=8, deadline=None)
@given(
    workload_seed=st.integers(0, 2**20),
    run_seed=st.integers(0, 2**20),
    method=st.sampled_from(METHODS),
    cuts=st.lists(st.floats(0.1, 1.6), min_size=1, max_size=4),
)
def test_wire_path_matches_direct_session(workload_seed, run_seed, method, cuts):
    workload = small_workload(workload_seed)
    options = SolveOptions(seed=run_seed, max_batch_size=12, max_wait=0.15)
    events = list(workload.events(seed=run_seed))

    expected_stats, expected_events = direct_run(method, options, events, cuts)
    final, actual_stats, actual_events = asyncio.run(
        wire_run(method, options, events, cuts)
    )

    # Event-for-event: same assignments, same order, same payloads.
    assert actual_events == expected_events

    # The FinishedReply summarizes the identical run.
    assert final.method == expected_stats.method
    assert final.arrived_tasks == expected_stats.arrived_tasks
    assert final.assigned == expected_stats.assigned
    assert final.expired == expected_stats.expired
    assert final.leftover == expected_stats.leftover
    assert final.total_utility == expected_stats.total_utility
    assert final.total_distance == expected_stats.total_distance
    assert final.privacy_spend == expected_stats.total_privacy_spend
    assert final.flushes == len(expected_stats.flushes)

    # And the server-side stream stats drifted by not one bit.
    assert actual_stats.latencies == expected_stats.latencies
    assert actual_stats.privacy_timeline == expected_stats.privacy_timeline
    assert actual_stats.per_worker_spend == expected_stats.per_worker_spend
    assert len(actual_stats.flushes) == len(expected_stats.flushes)
    for mine, theirs in zip(actual_stats.flushes, expected_stats.flushes):
        assert (mine.index, mine.time, mine.matched) == (
            theirs.index,
            theirs.time,
            theirs.matched,
        )
