"""The facade invariant: a `DispatchSession` driven request-by-request is
bit-identical to `StreamRunner.run_workload` on the same arrivals.

`DispatchSimulator.run` is literally push-all / advance-to-infinity /
finalize, so chunked feeding — submit the arrivals due up to ``t``, call
``advance(t)``, repeat for hypothesis-chosen cut points — must change
nothing: not the latencies, not the flush records, not the privacy
timeline, not the per-worker ledgers.  Wall-clock solver seconds are the
only field exempt (they measure the host, not the protocol).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.options import SolveOptions
from repro.api.session import DispatchSession
from repro.datasets.synthetic import NormalGenerator
from repro.stream.arrivals import PoissonProcess, StreamWorkload
from repro.stream.runner import StreamRunner

METHODS = ("PUCE", "UCE", "GRD")


def small_workload(workload_seed):
    return StreamWorkload(
        task_process=PoissonProcess(rate=20.0, horizon=1.0),
        worker_process=PoissonProcess(rate=6.0, horizon=1.0),
        spatial=NormalGenerator(num_tasks=80, num_workers=160, seed=workload_seed),
        initial_workers=20,
        task_deadline=0.8,
        worker_budget=25.0,
        seed=workload_seed,
    )


def assert_bit_identical(actual, expected):
    """Full-stats equality, wall-clock timing excluded."""
    assert actual.method == expected.method
    assert actual.arrived_tasks == expected.arrived_tasks
    assert actual.arrived_workers == expected.arrived_workers
    assert actual.assigned == expected.assigned
    assert actual.expired == expected.expired
    assert actual.leftover == expected.leftover
    assert actual.total_utility == expected.total_utility
    assert actual.total_distance == expected.total_distance
    assert actual.sim_duration == expected.sim_duration
    assert actual.latencies == expected.latencies
    assert actual.privacy_timeline == expected.privacy_timeline
    assert actual.per_worker_spend == expected.per_worker_spend
    assert len(actual.flushes) == len(expected.flushes)
    for mine, theirs in zip(actual.flushes, expected.flushes):
        assert (mine.index, mine.time, mine.pending_tasks, mine.idle_workers) == (
            theirs.index,
            theirs.time,
            theirs.pending_tasks,
            theirs.idle_workers,
        )
        assert (mine.matched, mine.cumulative_privacy_spend) == (
            theirs.matched,
            theirs.cumulative_privacy_spend,
        )
        assert (mine.shards, mine.batch_limit) == (theirs.shards, theirs.batch_limit)


@settings(max_examples=12, deadline=None)
@given(
    workload_seed=st.integers(0, 2**20),
    run_seed=st.integers(0, 2**20),
    method=st.sampled_from(METHODS),
    cuts=st.lists(st.floats(0.0, 1.6), min_size=0, max_size=6),
)
def test_chunked_session_matches_replay_runner(workload_seed, run_seed, method, cuts):
    workload = small_workload(workload_seed)
    options = SolveOptions(seed=run_seed, max_batch_size=12, max_wait=0.15)

    expected = StreamRunner([method], options=options).run_workload(
        workload, seed=run_seed
    )[method]

    events = workload.events(seed=run_seed)  # time-ordered by construction
    session = DispatchSession(method, options=options)
    feed = iter(events)
    queued = next(feed, None)
    for cut in sorted(cuts):
        while queued is not None and queued.time <= cut:
            session.submit(queued)
            queued = next(feed, None)
        session.advance(cut)
    while queued is not None:
        session.submit(queued)
        queued = next(feed, None)
    actual = session.finish()

    assert_bit_identical(actual, expected)


@settings(max_examples=6, deadline=None)
@given(
    workload_seed=st.integers(0, 2**20),
    run_seed=st.integers(0, 2**20),
)
def test_session_assignment_log_is_complete(workload_seed, run_seed):
    """Drained Assignment events reconstruct the aggregate stats exactly."""
    workload = small_workload(workload_seed)
    session = DispatchSession(
        "PUCE", options=SolveOptions(seed=run_seed, max_batch_size=12, max_wait=0.15)
    )
    stats = session.run(workload.events(seed=run_seed))
    log = session.drain()
    assert len(log) == stats.assigned == len(stats.latencies)
    assert [e.latency for e in log] == stats.latencies
    assert sum(e.utility for e in log) == stats.total_utility
    assert sum(e.distance for e in log) == stats.total_distance
    flush_times = {f.index: f.time for f in stats.flushes}
    for event in log:
        assert event.time == flush_times[event.flush_index]
