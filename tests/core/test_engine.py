"""Unit tests for the round-based conflict-elimination engine."""

import pytest

from repro.core.engine import EliminationPolicy
from repro.core.nonprivate import DCESolver, UCESolver
from repro.core.pdce import PDCESolver
from repro.core.puce import PUCESolver
from repro.errors import ConfigurationError, ConvergenceError
from tests.conftest import build_instance


class TestEliminationPolicy:
    def test_invalid_objective(self):
        with pytest.raises(ConfigurationError, match="objective"):
            EliminationPolicy(name="X", objective="speed", private=False)

    def test_nppcf_requires_private(self):
        with pytest.raises(ConfigurationError, match="use_ppcf"):
            EliminationPolicy(name="X", objective="utility", private=False, use_ppcf=False)

    def test_solver_names(self):
        assert PUCESolver().name == "PUCE"
        assert PUCESolver(use_ppcf=False).name == "PUCE-nppcf"
        assert PDCESolver().name == "PDCE"
        assert PDCESolver(use_ppcf=False).name == "PDCE-nppcf"
        assert UCESolver().name == "UCE"
        assert DCESolver().name == "DCE"

    def test_privacy_flags(self):
        assert PUCESolver().is_private
        assert not UCESolver().is_private

    def test_invalid_max_rounds(self):
        with pytest.raises(ConfigurationError, match="max_rounds"):
            PUCESolver(max_rounds=0)


class TestNonPrivateUCE:
    def test_single_obvious_match(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 5.0)],
            worker_specs=[(1.0, 0.0, 2.0)],
        )
        result = UCESolver().solve(instance)
        assert dict(result.matching.pairs) == {0: 0}
        assert result.average_utility == pytest.approx(4.0)

    def test_non_positive_utility_never_matched(self):
        # v=1 but distance 2 -> U = -1: stays unmatched.
        instance = build_instance(
            task_specs=[(0.0, 0.0, 1.0)],
            worker_specs=[(2.0, 0.0, 3.0)],
        )
        result = UCESolver().solve(instance)
        assert len(result.matching) == 0

    def test_closest_worker_wins(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 5.0)],
            worker_specs=[(1.0, 0.0, 3.0), (0.5, 0.0, 3.0), (2.0, 0.0, 3.0)],
        )
        result = UCESolver().solve(instance)
        assert result.matching.pairs[0] == 1

    def test_conflict_resolution_prefers_worst_fallback(self):
        # Worker 0 is best for both tasks; t1 has no alternative, so worker
        # 0 must keep t1 and t0 falls to worker 1 next round.
        instance = build_instance(
            task_specs=[(0.0, 0.0, 5.0), (2.0, 0.0, 5.0)],
            worker_specs=[(1.0, 0.0, 1.5), (0.0, 0.5, 1.0)],
        )
        result = UCESolver().solve(instance)
        assert result.matching.pairs[1] == 0
        assert result.matching.pairs[0] == 1

    def test_out_of_range_never_matched(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 100.0)],
            worker_specs=[(5.0, 0.0, 1.0)],  # radius 1 < distance 5
        )
        result = UCESolver().solve(instance)
        assert len(result.matching) == 0
        assert instance.num_feasible_pairs == 0

    def test_workers_fill_multiple_tasks(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 5.0), (1.0, 0.0, 5.0), (2.0, 0.0, 5.0)],
            worker_specs=[(0.1, 0.0, 4.0), (1.1, 0.0, 4.0), (2.1, 0.0, 4.0)],
        )
        result = UCESolver().solve(instance)
        assert len(result.matching) == 3
        # Everyone should take their adjacent task.
        assert dict(result.matching.pairs) == {0: 0, 1: 1, 2: 2}

    def test_no_publishes_in_nonprivate_mode(self, medium_instance):
        result = UCESolver().solve(medium_instance)
        assert result.publishes == 0
        assert result.total_privacy_spend == 0.0


class TestDistanceObjectiveDCE:
    def test_minimises_distance_not_utility(self):
        # Task values differ but DCE ignores them: worker goes to nearest.
        instance = build_instance(
            task_specs=[(0.0, 0.0, 100.0), (1.0, 0.0, 1.0)],
            worker_specs=[(0.9, 0.0, 3.0)],
        )
        result = DCESolver().solve(instance)
        assert result.matching.pairs[1] == 0  # nearest task despite v=1

    def test_matches_even_negative_utility(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 0.5)],
            worker_specs=[(2.0, 0.0, 3.0)],
        )
        result = DCESolver().solve(instance)
        assert len(result.matching) == 1
        assert result.average_utility < 0


class TestPrivateDistanceObjective:
    def test_pdce_targets_nearest_despite_value(self):
        # Accurate budgets: PDCE should route the worker to the nearest
        # task even though the far task is worth 100x more.
        instance = build_instance(
            task_specs=[(0.0, 0.0, 100.0), (1.0, 0.0, 1.0)],
            worker_specs=[(0.9, 0.0, 3.0)],
            budgets={(0, 0): (8.0, 8.0), (1, 0): (8.0, 8.0)},
        )
        nearest_wins = 0
        for seed in range(10):
            result = PDCESolver().solve(instance, seed=seed)
            if result.matching.pairs.get(1) == 0:
                nearest_wins += 1
        assert nearest_wins >= 9

    def test_pdce_matches_negative_utility_pairs(self):
        # Distance objective has no profitability gate: a worthless task
        # still gets served (and measured utility goes negative).
        instance = build_instance(
            task_specs=[(0.0, 0.0, 0.5)],
            worker_specs=[(2.0, 0.0, 3.0)],
            budgets={(0, 0): (8.0,)},
        )
        result = PDCESolver().solve(instance, seed=1)
        assert len(result.matching) == 1
        assert result.average_utility < 0

    def test_pdce_challenger_with_better_distance_takes_over(self):
        # w1 is far, w0 near; accurate budgets let the PPCF+PCF gates and
        # the competing table settle on the true nearest worker.
        instance = build_instance(
            task_specs=[(0.0, 0.0, 10.0)],
            worker_specs=[(2.0, 0.0, 4.0), (0.3, 0.0, 4.0)],
            budgets={(0, 0): (8.0, 8.0, 8.0), (0, 1): (8.0, 8.0, 8.0)},
        )
        wins = 0
        for seed in range(10):
            result = PDCESolver().solve(instance, seed=seed)
            if result.matching.pairs.get(0) == 1:
                wins += 1
        assert wins >= 9


class TestPrivateEngine:
    def test_puce_respects_budget_caps(self, medium_instance):
        result = PUCESolver().solve(medium_instance, seed=3)
        for worker_id, task_id, _eps in result.ledger.events():
            pass  # events iterable works
        for (i, j) in medium_instance.feasible_pairs():
            spend = result.ledger.pair_spend(
                medium_instance.workers[j].id, medium_instance.tasks[i].id
            )
            vector = medium_instance.budget_vector(i, j)
            assert spend.proposals <= len(vector)
            # Budgets are consumed in order.
            assert spend.epsilons == vector.epsilons[: spend.proposals]

    def test_puce_one_to_one(self, medium_instance):
        result = PUCESolver().solve(medium_instance, seed=5)
        workers = list(result.matching.pairs.values())
        assert len(set(workers)) == len(workers)

    def test_puce_matches_only_feasible_pairs(self, medium_instance):
        result = PUCESolver().solve(medium_instance, seed=5)
        feasible = {
            (medium_instance.tasks[i].id, medium_instance.workers[j].id)
            for i, j in medium_instance.feasible_pairs()
        }
        for task_id, worker_id in result.matching:
            assert (task_id, worker_id) in feasible

    def test_deterministic_given_seed(self, medium_instance):
        a = PUCESolver().solve(medium_instance, seed=7)
        b = PUCESolver().solve(medium_instance, seed=7)
        assert dict(a.matching.pairs) == dict(b.matching.pairs)
        assert a.publishes == b.publishes

    def test_different_seeds_differ(self, medium_instance):
        a = PUCESolver().solve(medium_instance, seed=1)
        b = PUCESolver().solve(medium_instance, seed=2)
        assert a.ledger.total_spend() != b.ledger.total_spend()

    def test_nppcf_never_beats_ppcf_much(self, medium_instance):
        # The ablation must run and produce a valid result; Figure 17's
        # utility ordering is checked statistically in the benchmarks.
        result = PUCESolver(use_ppcf=False).solve(medium_instance, seed=3)
        assert result.method == "PUCE-nppcf"
        assert len(result.matching) > 0

    def test_pdce_runs_and_reports(self, medium_instance):
        result = PDCESolver().solve(medium_instance, seed=3)
        assert result.method == "PDCE"
        assert result.rounds >= 1
        assert result.publishes == len(result.ledger)

    def test_max_rounds_guard(self, medium_instance):
        with pytest.raises(ConvergenceError, match="max_rounds"):
            PUCESolver(max_rounds=1).solve(medium_instance, seed=3)

    def test_ledger_matches_publish_count(self, medium_instance):
        result = PUCESolver().solve(medium_instance, seed=9)
        assert len(result.ledger) == result.publishes

    def test_empty_instance(self):
        instance = build_instance(task_specs=[], worker_specs=[])
        result = PUCESolver().solve(instance)
        assert len(result.matching) == 0
        assert result.rounds == 1
