"""`EngineWorkspace`: the reusable flush hot-path buffer arena."""

import numpy as np
import pytest

from repro.core.engine import ConflictEliminationSolver, EliminationPolicy
from repro.core.workspace import EngineWorkspace
from tests.conftest import line_instance


class TestBufferArena:
    def test_request_matches_fresh_allocation(self):
        ws = EngineWorkspace()
        view = ws.request("a", 5, np.int64, -1)
        assert view.dtype == np.int64
        assert view.tolist() == [-1] * 5

    def test_reuse_refills_dirty_buffers(self):
        ws = EngineWorkspace()
        first = ws.request("a", 4, np.float64, 0.0)
        first[:] = 99.0
        second = ws.request("a", 4, np.float64, 0.0)
        assert second.tolist() == [0.0] * 4
        assert ws.reuses == 1

    def test_growth_is_geometric_and_counted(self):
        ws = EngineWorkspace()
        ws.request("a", 10, np.float64, 0.0)
        assert ws.allocations == 1
        ws.request("a", 6, np.float64, 1.0)  # shrink: reuse
        ws.request("a", 11, np.float64, 2.0)  # grow: fresh buffer (>= 2x)
        assert ws.allocations == 2
        assert ws.reuses == 1
        # Geometric growth: capacity at least doubled, so the next
        # near-size request reuses.
        ws.request("a", 20, np.float64, 0.0)
        assert ws.allocations == 2

    def test_same_name_different_dtype_do_not_alias(self):
        ws = EngineWorkspace()
        ints = ws.request("a", 3, np.int64, 1)
        floats = ws.request("a", 3, np.float64, 0.5)
        assert ints.tolist() == [1, 1, 1]
        assert floats.tolist() == [0.5, 0.5, 0.5]

    def test_release_frees_and_stays_usable(self):
        ws = EngineWorkspace()
        ws.request("a", 8, np.float64, 0.0)
        assert ws.held_bytes > 0
        ws.release()
        assert ws.held_bytes == 0
        assert ws.request("a", 8, np.float64, 3.0).tolist() == [3.0] * 8

    def test_zero_size_request(self):
        ws = EngineWorkspace()
        assert ws.request("a", 0, np.int64, -1).shape == (0,)


class TestLease:
    def test_single_lease_contract(self):
        ws = EngineWorkspace()
        assert ws.lease() is ws
        # A nested lease yields None (the caller falls back to fresh
        # allocations) instead of aliasing the arena.
        assert ws.lease() is None
        ws.unlease()
        assert ws.lease() is ws

    def test_engine_falls_back_when_arena_is_busy(self):
        instance = line_instance(num_tasks=4, num_workers=6, seed=3)
        solver = ConflictEliminationSolver(
            EliminationPolicy("UCE", "utility", private=False), sweep="vectorized"
        )
        ws = EngineWorkspace()
        assert ws.lease() is ws  # someone else holds the arena
        result = solver.solve(instance, seed=0, workspace=ws)
        baseline = solver.solve(instance, seed=0)
        assert result.matching.pairs == baseline.matching.pairs
        # The busy arena was never populated by the fallback solve.
        assert ws.held_bytes == 0

    def test_release_clears_the_lease(self):
        ws = EngineWorkspace()
        ws.lease()
        ws.release()
        assert ws.lease() is ws


class TestBadInput:
    def test_negative_size_raises(self):
        from repro.errors import ConfigurationError

        ws = EngineWorkspace()
        with pytest.raises(ConfigurationError):
            ws.request("a", -1, np.int64, 0)
