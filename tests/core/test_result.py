"""Unit tests for AssignmentResult measures."""

import pytest

from repro.core.result import AssignmentResult
from repro.matching.bipartite import Matching
from repro.privacy.accountant import PrivacyLedger
from tests.conftest import build_instance


@pytest.fixture
def instance():
    return build_instance(
        task_specs=[(0.0, 0.0, 5.0), (2.0, 0.0, 4.0)],
        worker_specs=[(1.0, 0.0, 3.0), (2.5, 0.0, 3.0)],
    )


class TestAssignmentResult:
    def test_empty_matching_measures(self, instance):
        result = AssignmentResult("X", instance, Matching.empty(), PrivacyLedger())
        assert result.matched_count == 0
        assert result.average_utility == 0.0
        assert result.average_distance == 0.0
        assert result.total_utility == 0.0

    def test_nonprivate_utilities(self, instance):
        result = AssignmentResult(
            "X", instance, Matching({0: 0, 1: 1}), PrivacyLedger()
        )
        # (t0,w0): 5 - 1 = 4;  (t1,w1): 4 - 0.5 = 3.5.
        assert result.total_utility == pytest.approx(7.5)
        assert result.average_utility == pytest.approx(3.75)
        assert result.average_distance == pytest.approx(0.75)

    def test_private_utility_subtracts_pair_spend_only(self, instance):
        ledger = PrivacyLedger()
        ledger.record(0, 0, 0.5)  # worker 0 toward matched task 0
        ledger.record(0, 1, 9.0)  # worker 0 toward task 1 (unmatched pair)
        result = AssignmentResult("X", instance, Matching({0: 0}), ledger)
        # Pair-level semantics: only the 0.5 counts against the match.
        assert result.average_utility == pytest.approx(5.0 - 1.0 - 0.5)

    def test_total_privacy_spend_counts_everything(self, instance):
        ledger = PrivacyLedger()
        ledger.record(0, 0, 0.5)
        ledger.record(1, 1, 0.7)
        result = AssignmentResult("X", instance, Matching({0: 0}), ledger)
        assert result.total_privacy_spend == pytest.approx(1.2)

    def test_matched_pairs_sorted_by_task(self, instance):
        result = AssignmentResult(
            "X", instance, Matching({1: 1, 0: 0}), PrivacyLedger()
        )
        assert [p.task_index for p in result.matched_pairs()] == [0, 1]

    def test_worker_ldp_bound(self, instance):
        ledger = PrivacyLedger()
        ledger.record(0, 0, 0.5)
        ledger.record(0, 1, 1.5)
        result = AssignmentResult("X", instance, Matching({0: 0}), ledger)
        # worker 0 radius is 3.0 -> bound = 2.0 * 3.0.
        assert result.worker_ldp_bound(0) == pytest.approx(6.0)

    def test_iteration(self, instance):
        result = AssignmentResult(
            "X", instance, Matching({0: 0, 1: 1}), PrivacyLedger()
        )
        pairs = list(result)
        assert len(pairs) == 2
        assert pairs[0].distance == pytest.approx(1.0)
