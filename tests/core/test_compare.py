"""Unit tests for PCF and PPCF (Definition 6, Eq. 3, Theorem V.1)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError

from repro.core.compare import (
    pcf,
    pcf_correctness,
    pcf_prefers_first,
    ppcf,
    ppcf_correctness,
    ppcf_prefers_first,
)
from repro.privacy.laplace import sample_laplace


class TestPCF:
    def test_equal_observations_give_half(self):
        assert pcf(3.0, 3.0, 1.0, 2.0) == pytest.approx(0.5)

    def test_lemma_x1_halfpoint_equivalence(self):
        # PCF > 1/2  <=>  da_hat < db_hat, for any budgets.
        for eps_a, eps_b in [(1.0, 1.0), (0.3, 2.5), (4.0, 0.2)]:
            assert pcf(1.0, 2.0, eps_a, eps_b) > 0.5
            assert pcf(2.0, 1.0, eps_a, eps_b) < 0.5

    def test_probability_range(self, rng):
        for _ in range(100):
            a, b = rng.normal(size=2) * 5
            ea, eb = rng.uniform(0.1, 3, size=2)
            assert 0.0 <= pcf(a, b, ea, eb) <= 1.0

    def test_complement_under_swap(self):
        # Pr[da < db] + Pr[db < da] = 1 for continuous noise.
        assert pcf(1.0, 2.5, 0.7, 1.3) + pcf(2.5, 1.0, 1.3, 0.7) == pytest.approx(1.0)

    def test_larger_gap_more_confident(self):
        p1 = pcf(1.0, 2.0, 1.0, 1.0)
        p2 = pcf(1.0, 5.0, 1.0, 1.0)
        assert p2 > p1 > 0.5

    def test_monte_carlo_semantics(self, rng):
        # PCF is Pr[d_a < d_b | observations]: check the frequentist dual —
        # among repeated obfuscations of fixed (d_a, d_b), PCF's decision
        # agrees with the truth at the rate pcf_correctness predicts.
        d_a, d_b, eps_a, eps_b = 1.0, 2.2, 0.8, 1.4
        trials = 40_000
        a_hat = d_a + sample_laplace(rng, eps_a, size=trials)
        b_hat = d_b + sample_laplace(rng, eps_b, size=trials)
        correct = np.mean(a_hat < b_hat)
        assert correct == pytest.approx(pcf_correctness(d_b - d_a, eps_a, eps_b), abs=0.01)

    def test_prefers_first_consistency(self):
        assert pcf_prefers_first(1.0, 2.0, 1.0, 1.0)
        assert not pcf_prefers_first(2.0, 1.0, 1.0, 1.0)


class TestPPCF:
    def test_halfpoint_equivalence_eq3(self):
        # PPCF > 1/2  <=>  d_a < db_hat.
        assert ppcf(1.0, 2.0, 1.0) > 0.5
        assert ppcf(2.0, 1.0, 1.0) < 0.5
        assert ppcf(1.5, 1.5, 3.0) == pytest.approx(0.5)

    def test_probability_range(self, rng):
        for _ in range(100):
            d, b = rng.normal(size=2) * 5
            eps = rng.uniform(0.1, 3)
            assert 0.0 <= ppcf(d, b, eps) <= 1.0

    def test_higher_budget_sharper(self):
        # With db_hat > d_a, more budget on b means more confidence.
        assert ppcf(1.0, 2.0, 3.0) > ppcf(1.0, 2.0, 0.5)

    def test_monte_carlo_semantics(self, rng):
        d_a, d_b, eps_b = 0.5, 1.7, 1.1
        trials = 40_000
        b_hat = d_b + sample_laplace(rng, eps_b, size=trials)
        correct = np.mean(d_a < b_hat)
        assert correct == pytest.approx(ppcf_correctness(d_b - d_a, eps_b), abs=0.01)

    def test_prefers_first_consistency(self):
        assert ppcf_prefers_first(1.0, 2.0, 1.0)
        assert not ppcf_prefers_first(2.0, 1.0, 1.0)


class TestTheoremV1:
    """PPCF dominates PCF in correct-decision probability."""

    @pytest.mark.parametrize("eps_x", [0.3, 1.0, 2.5])
    @pytest.mark.parametrize("eps_y", [0.3, 1.0, 2.5])
    def test_dominance_on_grid(self, eps_x, eps_y):
        for gap in (0.05, 0.2, 0.5, 1.0, 2.0, 5.0):
            assert ppcf_correctness(gap, eps_y) >= pcf_correctness(gap, eps_x, eps_y) - 1e-12

    def test_dominance_random(self, rng):
        for _ in range(500):
            gap = float(rng.uniform(0.01, 5))
            eps_x, eps_y = rng.uniform(0.05, 4, size=2)
            assert ppcf_correctness(gap, eps_y) >= pcf_correctness(gap, eps_x, eps_y) - 1e-12

    def test_both_approach_certainty(self):
        assert pcf_correctness(50.0, 1.0, 1.0) == pytest.approx(1.0, abs=1e-6)
        assert ppcf_correctness(50.0, 1.0) == pytest.approx(1.0, abs=1e-12)

    def test_both_approach_half_at_zero_gap(self):
        assert pcf_correctness(1e-9, 1.0, 2.0) == pytest.approx(0.5, abs=1e-6)
        assert ppcf_correctness(1e-9, 2.0) == pytest.approx(0.5, abs=1e-6)

    def test_invalid_gap_rejected(self):
        with pytest.raises(ConfigurationError, match="gap"):
            pcf_correctness(0.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError, match="gap"):
            ppcf_correctness(-1.0, 1.0)

    def test_monte_carlo_dominance(self, rng):
        # Empirical decision accuracy of PPCF >= PCF on a fixed scenario.
        d_x, d_y = 1.0, 1.6
        eps_x, eps_y = 0.6, 0.9
        trials = 30_000
        x_hat = d_x + sample_laplace(rng, eps_x, size=trials)
        y_hat = d_y + sample_laplace(rng, eps_y, size=trials)
        pcf_acc = np.mean(x_hat < y_hat)
        ppcf_acc = np.mean(d_x < y_hat)
        assert ppcf_acc >= pcf_acc
