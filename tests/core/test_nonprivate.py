"""Unit tests for GRD and shared non-private solver behaviour."""

from repro.core.nonprivate import DCESolver, GreedySolver, UCESolver
from tests.conftest import build_instance


class TestGreedySolver:
    def test_takes_globally_best_pair_first(self):
        # GRD's signature failure: taking the single best pair blocks a
        # better two-pair solution.
        instance = build_instance(
            task_specs=[(0.0, 0.0, 5.0), (2.0, 0.0, 5.0)],
            worker_specs=[(1.0, 0.0, 2.5), (3.5, 0.0, 2.0)],
        )
        result = GreedySolver().solve(instance)
        # w0 equidistant-ish: best single utility pair is (t0,w0) or
        # (t1,w0); greedy then leaves the other task for w1 if reachable.
        assert len(result.matching) >= 1
        workers = list(result.matching.pairs.values())
        assert len(set(workers)) == len(workers)

    def test_skips_non_positive_utility(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 0.5)],
            worker_specs=[(1.0, 0.0, 2.0)],
        )
        assert len(GreedySolver().solve(instance).matching) == 0

    def test_name_and_privacy(self):
        solver = GreedySolver()
        assert solver.name == "GRD"
        assert not solver.is_private

    def test_empty_ledger(self, medium_instance):
        result = GreedySolver().solve(medium_instance)
        assert result.total_privacy_spend == 0.0
        assert result.publishes == 0

    def test_greedy_at_most_optimal(self, medium_instance):
        from repro.core.optimal import OptimalSolver

        grd = GreedySolver().solve(medium_instance)
        opt = OptimalSolver().solve(medium_instance)
        assert grd.total_utility <= opt.total_utility + 1e-9

    def test_greedy_at_least_half_optimal(self, medium_instance):
        # Classic guarantee: greedy matching achieves >= 1/2 of the optimal
        # weight (positive-utility edges).
        from repro.core.optimal import OptimalSolver

        grd = GreedySolver().solve(medium_instance)
        opt = OptimalSolver().solve(medium_instance)
        assert grd.total_utility >= 0.5 * opt.total_utility - 1e-9


class TestNonPrivateEquivalences:
    def test_uce_and_dce_agree_on_uniform_values(self, medium_instance):
        # With a constant task value and no privacy cost, maximising
        # per-task utility equals minimising distance pairings task-wise;
        # the two engines share decisions on the same instance.
        uce = UCESolver().solve(medium_instance)
        dce = DCESolver().solve(medium_instance)
        # Not guaranteed identical in general (utility gates drop
        # non-profitable pairs), but with v=4.5 >> distances they coincide.
        assert dict(uce.matching.pairs) == dict(dce.matching.pairs)

    def test_uce_differs_from_dce_when_values_matter(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 0.4), (1.0, 0.0, 9.0)],
            worker_specs=[(0.4, 0.0, 2.0)],
        )
        uce = UCESolver().solve(instance)
        dce = DCESolver().solve(instance)
        # UCE goes for the valuable task; DCE for the nearest.
        assert uce.matching.pairs.get(1) == 0
        assert dce.matching.pairs.get(0) == 0
