"""Unit tests for the Conflict Elimination Algorithm (Section IV)."""


from repro.core.cea import (
    Candidate,
    conflict_eliminate,
    rank_candidates,
    resolve_top_conflicts,
)

# Table II / Table III of the paper: distances of the CEA review example.
TABLE_II = {
    ("t1", "w1"): 9.06,
    ("t1", "w2"): 9.85,
    ("t1", "w3"): 12.04,
    ("t2", "w3"): 2.09,
    ("t2", "w1"): 10.44,
    ("t2", "w2"): 12.59,
    ("t3", "w3"): 2.00,
    ("t3", "w2"): 11.28,
    ("t3", "w1"): 18.87,
}


class TestRankCandidates:
    def test_table_ii_rank_matrix(self):
        ranks = rank_candidates(TABLE_II)
        assert [c.worker for c in ranks["t1"]] == ["w1", "w2", "w3"]
        assert [c.worker for c in ranks["t2"]] == ["w3", "w1", "w2"]
        assert [c.worker for c in ranks["t3"]] == ["w3", "w2", "w1"]

    def test_tie_break_deterministic(self):
        ranks = rank_candidates({("t", "b"): 1.0, ("t", "a"): 1.0})
        assert [c.worker for c in ranks["t"]] == ["a", "b"]

    def test_empty(self):
        assert rank_candidates({}) == {}


class TestConflictEliminate:
    def test_paper_section_iv_example(self):
        # w3 is wanted by t2 and t3; the paper resolves the conflict to
        # C2: w3 -> t3 (t3's runner-up 11.28 is worse than t2's 10.44).
        ranks = rank_candidates(TABLE_II)
        assignment = conflict_eliminate(ranks)
        assert assignment["t3"] == "w3"
        # Full CEA then lets t2 fall through to its runner-up w1, which
        # conflicts with t1's first choice w1; t2's fallback (12.59) is
        # worse than t1's (9.85), so w1 keeps t2 and t1 takes w2.
        assert assignment["t2"] == "w1"
        assert assignment["t1"] == "w2"

    def test_no_conflict_everyone_gets_first_choice(self):
        prefs = {
            "t1": [Candidate("w1", 1.0), Candidate("w2", 2.0)],
            "t2": [Candidate("w2", 1.0), Candidate("w1", 2.0)],
        }
        assert conflict_eliminate(prefs) == {"t1": "w1", "t2": "w2"}

    def test_task_with_no_fallback_keeps_conflict_worker(self):
        # t2 has only w1; t1 could fall back to w2 -> w1 must keep t2.
        prefs = {
            "t1": [Candidate("w1", 1.0), Candidate("w2", 5.0)],
            "t2": [Candidate("w1", 1.0)],
        }
        assignment = conflict_eliminate(prefs)
        assert assignment == {"t2": "w1", "t1": "w2"}

    def test_exhausted_task_left_unassigned(self):
        prefs = {
            "t1": [Candidate("w1", 1.0)],
            "t2": [Candidate("w1", 2.0)],
        }
        assignment = conflict_eliminate(prefs)
        assert assignment == {"t1": "w1"}  # t2 has no one left

    def test_empty_preferences(self):
        assert conflict_eliminate({}) == {}
        assert conflict_eliminate({"t": []}) == {}

    def test_one_to_one_invariant(self, rng):
        for _ in range(25):
            num_tasks, num_workers = 6, 4
            prefs = {}
            for t in range(num_tasks):
                workers = rng.permutation(num_workers)[: rng.integers(1, num_workers + 1)]
                keys = sorted(rng.uniform(0, 10, size=len(workers)))
                prefs[t] = [Candidate(int(w), float(k)) for w, k in zip(workers, keys)]
            assignment = conflict_eliminate(prefs)
            assert len(set(assignment.values())) == len(assignment)

    def test_cascading_conflicts_terminate(self):
        # Every task prefers the same two workers.
        prefs = {
            t: [Candidate("a", 1.0 + t), Candidate("b", 2.0 + t)] for t in range(5)
        }
        assignment = conflict_eliminate(prefs)
        assert len(assignment) == 2
        assert set(assignment.values()) == {"a", "b"}


class TestResolveTopConflicts:
    def test_no_conflicts(self):
        competing = {
            "t1": [Candidate("w1", 1.0)],
            "t2": [Candidate("w2", 1.0)],
        }
        decisions = resolve_top_conflicts(competing)
        assert decisions["t1"].worker == "w1"
        assert decisions["t2"].worker == "w2"

    def test_conflict_goes_to_worst_runner_up(self):
        # Example 2's round 1: w2 tops t2 and t3; t3's runner-up key (0.18)
        # exceeds t2's (0.1), so w2 keeps t3 and t2 gets NO decision.
        competing = {
            "t2": [Candidate("w2", 0.04), Candidate("w1", 0.1)],
            "t3": [Candidate("w2", -0.19), Candidate("w3", 0.18)],
        }
        decisions = resolve_top_conflicts(competing)
        assert decisions == {"t3": Candidate("w2", -0.19)}

    def test_no_runner_up_counts_as_infinite(self):
        competing = {
            "t1": [Candidate("w", 1.0), Candidate("other", 2.0)],
            "t2": [Candidate("w", 1.0)],
        }
        decisions = resolve_top_conflicts(competing)
        assert list(decisions) == ["t2"]

    def test_losing_task_not_assigned_runner_up(self):
        competing = {
            "t1": [Candidate("w", 1.0), Candidate("x", 9.0)],
            "t2": [Candidate("w", 1.0)],
        }
        decisions = resolve_top_conflicts(competing)
        assert "t1" not in decisions  # x is NOT auto-assigned (Example 2)

    def test_tie_breaks_to_smallest_task(self):
        competing = {
            2: [Candidate("w", 1.0), Candidate("a", 5.0)],
            1: [Candidate("w", 1.0), Candidate("b", 5.0)],
        }
        decisions = resolve_top_conflicts(competing)
        assert list(decisions) == [1]

    def test_empty_entries_ignored(self):
        assert resolve_top_conflicts({"t": []}) == {}

    def test_multiple_independent_conflicts(self):
        competing = {
            "t1": [Candidate("w1", 1.0), Candidate("x", 3.0)],
            "t2": [Candidate("w1", 1.0), Candidate("x", 2.0)],
            "t3": [Candidate("w2", 1.0), Candidate("y", 3.0)],
            "t4": [Candidate("w2", 1.0), Candidate("y", 2.0)],
        }
        decisions = resolve_top_conflicts(competing)
        assert decisions["t1"].worker == "w1"
        assert decisions["t3"].worker == "w2"
        assert "t2" not in decisions and "t4" not in decisions
