"""Unit tests for the Vickrey payment mechanism."""

import pytest

from repro.core.nonprivate import UCESolver
from repro.core.payments import Payment, payments_for_result, vickrey_payment
from repro.errors import ConfigurationError
from tests.conftest import build_instance


class TestVickreyPayment:
    def test_second_price(self):
        assert vickrey_payment(1.0, [2.0, 3.0], reserve=10.0) == 2.0

    def test_reserve_caps_payment(self):
        assert vickrey_payment(1.0, [20.0], reserve=10.0) == 10.0

    def test_no_rivals_pays_reserve(self):
        assert vickrey_payment(1.0, [], reserve=10.0) == 10.0

    def test_payment_independent_of_winner_cost(self):
        # The winner's own report never moves his payment — the
        # truthfulness core of the mechanism.
        assert vickrey_payment(0.1, [2.0], 10.0) == vickrey_payment(1.9, [2.0], 10.0)

    def test_invalid_reserve(self):
        with pytest.raises(ConfigurationError, match="reserve"):
            vickrey_payment(1.0, [2.0], reserve=0.0)

    def test_truthfulness_simulation(self):
        # A worker whose true cost is 1.5 faces a rival at 2.0 and a
        # reserve of 10.  Whatever he reports:
        #  - reports below 2.0 win and pay 2.0 -> profit 0.5, independent;
        #  - reports above 2.0 lose -> profit 0.
        # So no report strictly beats the truthful one.
        true_cost = 1.5
        rival = 2.0
        truthful_profit = vickrey_payment(true_cost, [rival], 10.0) - true_cost
        for report in (0.1, 1.0, 1.9, 2.1, 5.0):
            wins = report < rival
            profit = (vickrey_payment(report, [rival], 10.0) - true_cost) if wins else 0.0
            assert profit <= truthful_profit + 1e-12


class TestPaymentsForResult:
    @pytest.fixture
    def instance(self):
        return build_instance(
            task_specs=[(0.0, 0.0, 5.0), (3.0, 0.0, 5.0)],
            worker_specs=[(0.5, 0.0, 4.0), (2.6, 0.0, 4.0)],
        )

    def test_payments_cover_costs(self, instance):
        result = UCESolver().solve(instance)
        for payment in payments_for_result(result):
            # UCE picks the per-task best candidate, so individual
            # rationality holds: second-best cost >= winner's cost.
            assert payment.amount >= payment.winner_cost - 1e-9
            assert payment.worker_profit >= -1e-9

    def test_payments_capped_by_task_value(self, instance):
        result = UCESolver().solve(instance)
        values = {t.id: t.value for t in instance.tasks}
        for payment in payments_for_result(result):
            assert payment.amount <= values[payment.task_id] + 1e-12

    def test_exact_amounts_on_crafted_instance(self, instance):
        # t0 candidates: w0 (0.5), w1 (2.6); t1 candidates: w0 (3.0 — wait,
        # radius 4 covers both), w1 (0.4).  UCE matches nearest pairs.
        result = UCESolver().solve(instance)
        payments = {p.task_id: p for p in payments_for_result(result)}
        assert payments[0].worker_id == 0
        assert payments[0].amount == pytest.approx(2.6)  # w1's rival cost
        assert payments[1].worker_id == 1
        assert payments[1].amount == pytest.approx(2.5)  # w0's cost to t1

    def test_monopolist_earns_reserve(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 7.0)],
            worker_specs=[(1.0, 0.0, 3.0)],
        )
        result = UCESolver().solve(instance)
        (payment,) = payments_for_result(result)
        assert payment.amount == 7.0

    def test_empty_matching_no_payments(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 0.1)],
            worker_specs=[(1.0, 0.0, 3.0)],
        )
        result = UCESolver().solve(instance)
        assert payments_for_result(result) == []

    def test_platform_budget_balance(self, medium_instance):
        # Platform profit per task = value - payment >= 0 by the reserve
        # cap; total payments never exceed total matched value.
        result = UCESolver().solve(medium_instance)
        payments = payments_for_result(result)
        values = {t.id: t.value for t in medium_instance.tasks}
        total_value = sum(values[p.task_id] for p in payments)
        assert sum(p.amount for p in payments) <= total_value + 1e-9
