"""Unit tests for PGT / GT best-response dynamics."""

import pytest

from repro.core.pgt import GTSolver, PGTSolver
from repro.errors import ConfigurationError, ConvergenceError
from tests.conftest import build_instance


class TestGTNonPrivate:
    def test_single_worker_takes_best_task(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 5.0), (1.0, 0.0, 8.0)],
            worker_specs=[(0.5, 0.0, 3.0)],
        )
        result = GTSolver().solve(instance)
        # UT(t1) = 8 - 0.5, UT(t0) = 5 - 0.5 -> t1 wins.
        assert dict(result.matching.pairs) == {1: 0}

    def test_worker_switches_to_better_task(self):
        # One worker, two tasks; best response should end on the higher
        # net-value task regardless of visit order.
        instance = build_instance(
            task_specs=[(0.0, 0.0, 5.0), (0.2, 0.0, 5.1)],
            worker_specs=[(0.1, 0.0, 2.0)],
        )
        result = GTSolver().solve(instance)
        assert 1 in result.matching.pairs

    def test_displacement_chain(self):
        # w0 near t0 only; w1 near both.  w1 takes t0 first (if visited),
        # then must end displaced to t1 or keep t0 with w0 on nothing —
        # equilibrium: each task held by someone it profits.
        instance = build_instance(
            task_specs=[(0.0, 0.0, 5.0), (3.0, 0.0, 5.0)],
            worker_specs=[(0.1, 0.0, 1.0), (1.5, 0.0, 2.0)],
        )
        result = GTSolver().solve(instance)
        assert len(result.matching) == 2
        assert result.matching.pairs[0] == 0
        assert result.matching.pairs[1] == 1

    def test_unprofitable_task_left_open(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 0.5)],
            worker_specs=[(1.0, 0.0, 2.0)],  # U = 0.5 - 1 < 0
        )
        result = GTSolver().solve(instance)
        assert len(result.matching) == 0

    def test_equilibrium_no_profitable_deviation(self, medium_instance):
        result = GTSolver().solve(medium_instance)
        instance = medium_instance
        # Rebuild index-space allocation.
        task_index = {t.id: i for i, t in enumerate(instance.tasks)}
        worker_index = {w.id: j for j, w in enumerate(instance.workers)}
        allocation = {task_index[t]: worker_index[w] for t, w in result.matching}
        holder = {j: i for i, j in allocation.items()}
        model = instance.model
        for j in range(instance.num_workers):
            current = holder.get(j)
            abandon = 0.0
            if current is not None:
                abandon = -instance.tasks[current].value + model.f_d(
                    instance.distance(current, j)
                )
            for i in instance.reachable[j]:
                if i == current:
                    continue
                ut = -model.f_d(instance.distance(i, j)) + abandon
                if i in allocation:
                    ut += model.f_d(instance.distance(i, allocation[i]))
                else:
                    ut += instance.tasks[i].value
                assert ut <= 1e-9, f"worker {j} can still improve by {ut} on task {i}"


class TestPGTPrivate:
    def test_runs_and_matches(self, medium_instance):
        result = PGTSolver().solve(medium_instance, seed=4)
        assert result.method == "PGT"
        assert len(result.matching) > 0

    def test_every_move_publishes(self, medium_instance):
        result, stats = PGTSolver().solve_with_stats(medium_instance, seed=4)
        assert stats.moves == result.publishes

    def test_all_move_gains_positive(self, medium_instance):
        _, stats = PGTSolver().solve_with_stats(medium_instance, seed=4)
        assert stats.moves > 0
        assert all(gain > 0 for gain in stats.move_gains)

    def test_matched_workers_hold_published_pairs(self, medium_instance):
        result = PGTSolver().solve(medium_instance, seed=4)
        for task_id, worker_id in result.matching:
            assert result.ledger.pair_spend(worker_id, task_id).proposals >= 1

    def test_deterministic_given_seed(self, medium_instance):
        a = PGTSolver().solve(medium_instance, seed=8)
        b = PGTSolver().solve(medium_instance, seed=8)
        assert dict(a.matching.pairs) == dict(b.matching.pairs)

    def test_fewer_publishes_than_puce(self, medium_instance):
        # PGT avoids ineffective competition: far fewer releases than the
        # propose-to-everything elimination methods (Section VII-D.1).
        from repro.core.puce import PUCESolver

        pgt = PGTSolver().solve(medium_instance, seed=4)
        puce = PUCESolver().solve(medium_instance, seed=4)
        assert pgt.publishes < puce.publishes

    def test_budget_vectors_respected(self, medium_instance):
        result = PGTSolver().solve(medium_instance, seed=4)
        for (i, j) in medium_instance.feasible_pairs():
            spend = result.ledger.pair_spend(
                medium_instance.workers[j].id, medium_instance.tasks[i].id
            )
            vector = medium_instance.budget_vector(i, j)
            assert spend.epsilons == vector.epsilons[: spend.proposals]

    def test_max_passes_guard(self, medium_instance):
        with pytest.raises(ConvergenceError, match="max_passes"):
            PGTSolver(max_passes=1).solve(medium_instance, seed=4)

    def test_invalid_max_passes(self):
        with pytest.raises(ConfigurationError, match="max_passes"):
            PGTSolver(max_passes=0)

    def test_empty_instance(self):
        instance = build_instance(task_specs=[], worker_specs=[])
        result = PGTSolver().solve(instance)
        assert len(result.matching) == 0
