"""Unit tests for budget vectors and consumption state."""

import numpy as np
import pytest

from repro.core.budgets import BudgetSampler, BudgetVector, PairBudget
from repro.errors import BudgetExhaustedError, ConfigurationError


class TestBudgetVector:
    def test_basics(self):
        vector = BudgetVector((0.5, 0.7, 1.0))
        assert len(vector) == 3
        assert vector[1] == 0.7
        assert vector.total == pytest.approx(2.2)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            BudgetVector(())

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigurationError, match="positive"):
            BudgetVector((0.5, 0.0))


class TestPairBudget:
    def test_consume_in_order(self):
        budget = PairBudget(BudgetVector((0.5, 0.7, 1.0)))
        assert budget.peek() == 0.5
        assert budget.consume() == 0.5
        assert budget.consume() == 0.7
        assert budget.remaining == 1
        assert budget.spent == pytest.approx(1.2)

    def test_exhaustion(self):
        budget = PairBudget(BudgetVector((0.5,)))
        budget.consume()
        assert budget.exhausted
        with pytest.raises(BudgetExhaustedError):
            budget.peek()
        with pytest.raises(BudgetExhaustedError):
            budget.consume()

    def test_next_index(self):
        budget = PairBudget(BudgetVector((0.5, 0.7)))
        assert budget.next_index == 0
        budget.consume()
        assert budget.next_index == 1

    def test_invalid_used_count(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            PairBudget(BudgetVector((0.5,)), used=2)

    def test_peek_does_not_consume(self):
        budget = PairBudget(BudgetVector((0.5, 0.7)))
        budget.peek()
        budget.peek()
        assert budget.used == 0


class TestBudgetSampler:
    def test_defaults_match_table_x(self):
        sampler = BudgetSampler()
        assert sampler.low == 0.5
        assert sampler.high == 1.75
        assert sampler.group_size == 7

    def test_sample_shape_and_range(self, rng):
        sampler = BudgetSampler(low=0.5, high=1.75, group_size=7)
        vector = sampler.sample(rng)
        assert len(vector) == 7
        assert all(0.5 <= e <= 1.75 for e in vector.epsilons)

    def test_sorted_ascending_by_default(self, rng):
        vector = BudgetSampler().sample(rng)
        assert list(vector.epsilons) == sorted(vector.epsilons)

    def test_unsorted_option(self, rng):
        sampler = BudgetSampler(group_size=200, sort_ascending=False)
        vector = sampler.sample(rng)
        assert list(vector.epsilons) != sorted(vector.epsilons)

    def test_reproducible_given_seed(self):
        a = BudgetSampler().sample(np.random.default_rng(5))
        b = BudgetSampler().sample(np.random.default_rng(5))
        assert a == b

    def test_invalid_interval(self):
        with pytest.raises(ConfigurationError, match="low"):
            BudgetSampler(low=0.0, high=1.0)
        with pytest.raises(ConfigurationError, match="low"):
            BudgetSampler(low=2.0, high=1.0)

    def test_invalid_group_size(self):
        with pytest.raises(ConfigurationError, match="group_size"):
            BudgetSampler(group_size=0)

    def test_degenerate_interval(self, rng):
        vector = BudgetSampler(low=1.0, high=1.0, group_size=3).sample(rng)
        assert vector.epsilons == (1.0, 1.0, 1.0)
