"""Unit tests for the Geo-Indistinguishability baseline solver."""

import pytest

from repro.core.geoi import LOCATION_RELEASE, GeoIndistinguishableSolver
from repro.core.nonprivate import UCESolver
from repro.errors import ConfigurationError
from tests.conftest import build_instance


class TestGeoISolver:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="epsilon"):
            GeoIndistinguishableSolver(epsilon=0.0)
        with pytest.raises(ConfigurationError, match="buffer_quantile"):
            GeoIndistinguishableSolver(buffer_quantile=1.0)

    def test_name_carries_epsilon(self):
        assert GeoIndistinguishableSolver(epsilon=2.0).name == "GEOI(eps=2)"

    def test_one_release_per_active_worker(self, medium_instance):
        result = GeoIndistinguishableSolver(epsilon=2.0).solve(medium_instance, seed=3)
        active = sum(1 for r in medium_instance.reachable if r)
        assert result.publishes == active
        for worker in medium_instance.workers:
            spend = result.ledger.pair_spend(worker.id, LOCATION_RELEASE)
            expected = 1 if medium_instance.reachable[
                next(j for j, w in enumerate(medium_instance.workers) if w.id == worker.id)
            ] else 0
            assert spend.proposals == expected

    def test_matching_valid(self, medium_instance):
        result = GeoIndistinguishableSolver(epsilon=2.0).solve(medium_instance, seed=3)
        workers = list(result.matching.pairs.values())
        assert len(set(workers)) == len(workers)
        feasible = {
            (medium_instance.tasks[i].id, medium_instance.workers[j].id)
            for i, j in medium_instance.feasible_pairs()
        }
        for pair in result.matching:
            assert pair in feasible

    def test_high_epsilon_approaches_nonprivate_quality(self, medium_instance):
        # With eps -> large the decoys sit on the true locations, so the
        # matching approaches the non-private optimum quality.
        sharp = GeoIndistinguishableSolver(epsilon=100.0).solve(medium_instance, seed=3)
        baseline = UCESolver().solve(medium_instance)
        assert sharp.average_distance == pytest.approx(
            baseline.average_distance, abs=0.08
        )

    def test_low_epsilon_degrades_matching(self, medium_instance):
        sharp = GeoIndistinguishableSolver(epsilon=50.0).solve(medium_instance, seed=3)
        blurry = GeoIndistinguishableSolver(epsilon=0.3).solve(medium_instance, seed=3)
        # Heavier decoy noise -> worse (longer) realised travel or fewer
        # matches; both show up as lower total utility.
        assert blurry.total_utility < sharp.total_utility

    def test_deterministic_given_seed(self, medium_instance):
        a = GeoIndistinguishableSolver(epsilon=1.0).solve(medium_instance, seed=5)
        b = GeoIndistinguishableSolver(epsilon=1.0).solve(medium_instance, seed=5)
        assert dict(a.matching.pairs) == dict(b.matching.pairs)

    def test_empty_instance(self):
        instance = build_instance(task_specs=[], worker_specs=[])
        result = GeoIndistinguishableSolver().solve(instance, seed=1)
        assert len(result.matching) == 0
