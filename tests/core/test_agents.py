"""Unit tests for worker agents: draws, budgets, publishing."""

import numpy as np
import pytest

from repro.core.agents import WorkerAgent, build_agents
from repro.errors import BudgetExhaustedError
from repro.simulation.server import Server
from tests.conftest import build_instance


@pytest.fixture
def setup():
    instance = build_instance(
        task_specs=[(0.0, 0.0, 5.0), (1.0, 0.0, 5.0)],
        worker_specs=[(0.5, 0.0, 3.0)],
        budgets={(0, 0): (0.5, 0.7), (1, 0): (0.6, 0.9)},
    )
    server = Server(instance)
    agent = WorkerAgent(0, instance, np.random.default_rng(1))
    return instance, server, agent


class TestWorkerAgent:
    def test_tasks_in_range(self, setup):
        _, _, agent = setup
        assert agent.tasks_in_range == (0, 1)

    def test_true_distance_private_access(self, setup):
        instance, _, agent = setup
        assert agent.true_distance(0) == instance.distance(0, 0)

    def test_peek_draw_is_cached(self, setup):
        _, server, agent = setup
        first = agent.peek_proposal(0, server)
        second = agent.peek_proposal(0, server)
        assert first.obfuscated_distance == second.obfuscated_distance
        assert first.epsilon == second.epsilon == 0.5

    def test_peek_does_not_publish_or_spend(self, setup):
        _, server, agent = setup
        agent.peek_proposal(0, server)
        assert agent.spent == 0.0
        assert server.publish_count == 0
        assert not server.has_releases(0, 0)

    def test_publish_commits(self, setup):
        _, server, agent = setup
        proposal = agent.peek_proposal(0, server)
        agent.publish(proposal, server)
        assert agent.spent == pytest.approx(0.5)
        assert server.publish_count == 1
        assert server.effective_pair(0, 0).epsilon == 0.5
        assert agent.pair_budget(0).used == 1

    def test_publish_stale_proposal_rejected(self, setup):
        _, server, agent = setup
        proposal = agent.peek_proposal(0, server)
        agent.publish(proposal, server)
        with pytest.raises(BudgetExhaustedError, match="stale"):
            agent.publish(proposal, server)

    def test_budget_exhaustion(self, setup):
        _, server, agent = setup
        for _ in range(2):
            agent.publish(agent.peek_proposal(0, server), server)
        assert not agent.can_propose(0)
        with pytest.raises(BudgetExhaustedError):
            agent.peek_proposal(0, server)

    def test_successive_draws_differ(self, setup):
        _, server, agent = setup
        first = agent.peek_proposal(0, server)
        agent.publish(first, server)
        second = agent.peek_proposal(0, server)
        assert second.budget_index == 1
        assert second.obfuscated_distance != first.obfuscated_distance

    def test_preload_draw_pins_release(self, setup):
        _, server, agent = setup
        agent.preload_draw(0, 0, 42.0)
        proposal = agent.peek_proposal(0, server)
        assert proposal.obfuscated_distance == 42.0

    def test_effective_pair_reflects_board(self, setup):
        _, server, agent = setup
        agent.preload_draw(0, 0, 10.0)
        agent.preload_draw(0, 1, 11.0)
        agent.publish(agent.peek_proposal(0, server), server)
        tentative = agent.peek_proposal(0, server)
        # Board holds 10.0@0.5; hypothetical adds 11.0@0.7 -> median 11.0.
        assert tentative.effective.distance == 11.0
        assert tentative.effective.epsilon == 0.7

    def test_noise_centred_on_true_distance(self, setup):
        instance, server, _ = setup
        draws = []
        for seed in range(2000):
            agent = WorkerAgent(0, instance, np.random.default_rng(seed))
            draws.append(agent.peek_proposal(0, server).obfuscated_distance)
        assert float(np.mean(draws)) == pytest.approx(instance.distance(0, 0), abs=0.15)


class TestBuildAgents:
    def test_one_agent_per_worker(self, small_instance, rng):
        agents = build_agents(small_instance, rng)
        assert len(agents) == small_instance.num_workers
        assert [a.index for a in agents] == list(range(small_instance.num_workers))
