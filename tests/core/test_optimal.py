"""Unit tests for the OPT reference solver."""

import pytest

from repro.core.nonprivate import GreedySolver, UCESolver
from repro.core.optimal import OptimalSolver
from repro.core.pgt import GTSolver
from tests.conftest import build_instance


class TestOptimalSolver:
    def test_picks_max_total_utility(self):
        # w1 reaches only t0; OPT must route w0 to the farther t1:
        # (t0,w1)=4.5 + (t1,w0)=3.5 = 8 beats greedy's (t0,w0)=4.5 alone.
        instance = build_instance(
            task_specs=[(0.0, 0.0, 5.0), (2.0, 0.0, 5.0)],
            worker_specs=[(0.5, 0.0, 2.0), (-0.5, 0.0, 1.0)],
        )
        result = OptimalSolver().solve(instance)
        assert result.total_utility == pytest.approx(8.0)
        assert dict(result.matching.pairs) == {0: 1, 1: 0}

    def test_never_matches_negative_utility(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 0.5)],
            worker_specs=[(1.0, 0.0, 2.0)],
        )
        assert len(OptimalSolver().solve(instance).matching) == 0

    def test_dominates_all_heuristics(self, medium_instance):
        opt = OptimalSolver().solve(medium_instance).total_utility
        for solver in (UCESolver(), GTSolver(), GreedySolver()):
            assert solver.solve(medium_instance).total_utility <= opt + 1e-9

    def test_empty_instance(self):
        instance = build_instance(task_specs=[], worker_specs=[])
        assert len(OptimalSolver().solve(instance).matching) == 0

    def test_one_to_one(self, medium_instance):
        result = OptimalSolver().solve(medium_instance)
        workers = list(result.matching.pairs.values())
        assert len(set(workers)) == len(workers)
