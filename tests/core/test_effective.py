"""Unit tests for effective obfuscated distances (Section V-A)."""

import pytest

from repro.errors import ConfigurationError, InvalidInstanceError

from repro.core.effective import EffectivePair, Release, ReleaseSet, effective_pair_of


class TestEffectivePairOf:
    def test_paper_example(self):
        # DE = {(0.1,0.2), (0.2,0.9), (0.3,0.1)}  ->  (0.2, 0.9).
        releases = [Release(0.1, 0.2), Release(0.2, 0.9), Release(0.3, 0.1)]
        pair = effective_pair_of(releases)
        assert pair == EffectivePair(0.2, 0.9)

    def test_single_release_is_itself(self):
        assert effective_pair_of([Release(3.3, 0.7)]) == EffectivePair(3.3, 0.7)

    def test_empty_raises(self):
        with pytest.raises(InvalidInstanceError, match="empty"):
            effective_pair_of([])

    def test_weighted_median_minimises_objective(self):
        releases = [Release(1.0, 0.4), Release(2.0, 1.1), Release(5.0, 0.2)]
        chosen = effective_pair_of(releases)

        def objective(d):
            return sum(r.epsilon * abs(r.value - d) for r in releases)

        best = min(objective(r.value) for r in releases)
        assert objective(chosen.distance) == pytest.approx(best)

    def test_heaviest_budget_dominates(self):
        # One release with overwhelming budget pins the median to itself.
        releases = [Release(0.0, 0.1), Release(10.0, 100.0), Release(20.0, 0.1)]
        assert effective_pair_of(releases).distance == 10.0

    def test_tie_breaks_to_larger_budget(self):
        # Two releases, equal weight: both achieve the same objective.
        releases = [Release(1.0, 0.5), Release(2.0, 0.8)]
        # objective(1.0)=0.8, objective(2.0)=0.5 -> 2.0 wins outright.
        assert effective_pair_of(releases).distance == 2.0
        # Symmetric budgets -> true tie -> larger budget... equal budgets
        # -> most recent wins.
        tie = [Release(1.0, 0.5), Release(2.0, 0.5)]
        assert effective_pair_of(tie) == EffectivePair(2.0, 0.5)

    def test_duplicate_values_accumulate_weight(self):
        releases = [Release(2.0, 0.3), Release(2.0, 0.3), Release(0.0, 0.5)]
        assert effective_pair_of(releases).distance == 2.0

    def test_negative_distances_allowed(self):
        # Heavy noise can push obfuscated distances negative; the MLE
        # machinery must not care.
        releases = [Release(-0.5, 1.0), Release(0.2, 0.4)]
        assert effective_pair_of(releases).distance == -0.5


class TestRelease:
    def test_non_positive_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="positive"):
            Release(1.0, 0.0)


class TestReleaseSet:
    def test_starts_empty(self):
        releases = ReleaseSet()
        assert len(releases) == 0
        assert not releases

    def test_add_and_effective(self):
        releases = ReleaseSet()
        releases.add(0.1, 0.2)
        releases.add(0.2, 0.9)
        releases.add(0.3, 0.1)
        assert releases.effective_pair() == EffectivePair(0.2, 0.9)

    def test_effective_pair_cached_and_invalidated(self):
        releases = ReleaseSet()
        releases.add(1.0, 1.0)
        first = releases.effective_pair()
        assert releases.effective_pair() is first  # memoised
        releases.add(5.0, 10.0)
        assert releases.effective_pair().distance == 5.0

    def test_effective_pair_with_does_not_mutate(self):
        releases = ReleaseSet()
        releases.add(1.0, 1.0)
        hypothetical = releases.effective_pair_with(5.0, 10.0)
        assert hypothetical.distance == 5.0
        assert len(releases) == 1
        assert releases.effective_pair().distance == 1.0

    def test_total_spend(self):
        releases = ReleaseSet()
        releases.add(1.0, 0.5)
        releases.add(2.0, 0.7)
        assert releases.total_spend() == pytest.approx(1.2)

    def test_iteration_order(self):
        releases = ReleaseSet()
        releases.add(1.0, 0.5)
        releases.add(2.0, 0.7)
        assert [r.value for r in releases] == [1.0, 2.0]

    def test_table_iv_timeline_t1_w1(self):
        # Raw draws 12.7@0.1, 12.4@0.3, 12.3@0.4 reproduce Table IV's
        # effective sequence (12.7,0.1) -> (12.4,0.3) -> (12.3,0.4).
        releases = ReleaseSet()
        releases.add(12.7, 0.1)
        assert releases.effective_pair() == EffectivePair(12.7, 0.1)
        releases.add(12.4, 0.3)
        assert releases.effective_pair() == EffectivePair(12.4, 0.3)
        releases.add(12.3, 0.4)
        assert releases.effective_pair() == EffectivePair(12.3, 0.4)
