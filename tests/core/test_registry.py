"""Unit tests for the method registry."""

import pytest

from repro.core.registry import (
    NON_PRIVATE_COUNTERPART,
    available_methods,
    make_solver,
)
from repro.errors import ConfigurationError

TABLE_IX_METHODS = ("PUCE", "PDCE", "PGT", "UCE", "DCE", "GT", "GRD")


class TestRegistry:
    def test_all_table_ix_methods_available(self):
        methods = available_methods()
        for name in TABLE_IX_METHODS:
            assert name in methods

    def test_nppcf_ablations_available(self):
        assert "PUCE-nppcf" in available_methods()
        assert "PDCE-nppcf" in available_methods()

    def test_make_solver_names_match(self):
        for name in available_methods():
            assert make_solver(name).name == name

    def test_unknown_method_raises_with_suggestions(self):
        with pytest.raises(ConfigurationError, match="available"):
            make_solver("PUCEE")

    def test_counterpart_mapping(self):
        assert NON_PRIVATE_COUNTERPART["PUCE"] == "UCE"
        assert NON_PRIVATE_COUNTERPART["PDCE"] == "DCE"
        assert NON_PRIVATE_COUNTERPART["PGT"] == "GT"
        assert NON_PRIVATE_COUNTERPART["PUCE-nppcf"] == "UCE"
        assert NON_PRIVATE_COUNTERPART["PDCE-nppcf"] == "DCE"

    def test_counterparts_are_registered(self):
        for counterpart in NON_PRIVATE_COUNTERPART.values():
            assert counterpart in available_methods()

    def test_private_flags_consistent(self):
        for name in NON_PRIVATE_COUNTERPART:
            assert make_solver(name).is_private
        for name in set(NON_PRIVATE_COUNTERPART.values()):
            assert not make_solver(name).is_private

    def test_factories_return_fresh_instances(self):
        assert make_solver("PUCE") is not make_solver("PUCE")
