"""Unit tests for the Eq. 4 utility-to-distance transform."""

import pytest

from repro.core.transform import adjusted_rival_distance, comparison_key, public_value
from repro.core.utility import LinearValue, UtilityModel


class TestPublicValue:
    def test_strips_distance(self):
        model = UtilityModel()
        # V = v - f_p(spend): no distance term.
        assert public_value(10.0, 3.0, model) == 7.0

    def test_respects_fp_slope(self):
        model = UtilityModel(f_p=LinearValue(2.0))
        assert public_value(10.0, 3.0, model) == 4.0


class TestAdjustedRivalDistance:
    def test_identity_model(self):
        model = UtilityModel()
        # d' = d_b + V_a - V_b for identity f_d.
        assert adjusted_rival_distance(5.0, 7.0, 4.0, model) == pytest.approx(8.0)

    def test_equal_values_no_shift(self):
        model = UtilityModel()
        assert adjusted_rival_distance(5.0, 3.0, 3.0, model) == 5.0

    def test_fd_slope_scales_shift(self):
        model = UtilityModel(f_d=LinearValue(2.0))
        # shift = (V_a - V_b) / slope = (6-2)/2 = 2.
        assert adjusted_rival_distance(5.0, 6.0, 2.0, model) == pytest.approx(7.0)


class TestComparisonKey:
    def test_utility_order_equals_key_order(self):
        model = UtilityModel()
        # Worker A: d=1, V=10 -> U=9.  Worker B: d=2, V=12 -> U=10.
        key_a = comparison_key(1.0, 10.0, model)
        key_b = comparison_key(2.0, 12.0, model)
        assert key_b < key_a  # B's utility is higher -> smaller key

    def test_key_difference_equals_eq4_gap(self):
        model = UtilityModel()
        d_a, v_a = 1.3, 9.0
        d_b, v_b = 2.1, 7.5
        rival = adjusted_rival_distance(d_b, v_a, v_b, model)
        gap_via_keys = comparison_key(d_a, v_a, model) - comparison_key(d_b, v_b, model)
        assert gap_via_keys == pytest.approx(d_a - rival)

    def test_exhaustive_order_agreement(self, rng):
        model = UtilityModel(f_d=LinearValue(1.7))
        for _ in range(200):
            d_a, d_b = rng.uniform(0, 5, size=2)
            v_a, v_b = rng.uniform(0, 10, size=2)
            u_a = v_a - model.f_d(d_a)
            u_b = v_b - model.f_d(d_b)
            key_a = comparison_key(d_a, v_a, model)
            key_b = comparison_key(d_b, v_b, model)
            assert (u_a > u_b) == (key_a < key_b)
