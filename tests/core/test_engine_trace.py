"""Unit tests for the engine's round trace and private gate behaviour."""

import pytest

from repro.core.engine import RoundRecord
from repro.core.nonprivate import UCESolver
from repro.core.puce import PUCESolver
from repro.simulation.server import Server
from tests.conftest import build_instance


class TestRoundTrace:
    def test_trace_matches_rounds(self, medium_instance):
        result, trace = PUCESolver().solve_with_trace(medium_instance, seed=3)
        assert len(trace) == result.rounds
        assert all(isinstance(r, RoundRecord) for r in trace)

    def test_final_round_is_quiescent(self, medium_instance):
        _, trace = PUCESolver().solve_with_trace(medium_instance, seed=3)
        assert trace[-1].proposals == 0
        assert trace[-1].new_winners == ()

    def test_assigned_counts_monotone(self, medium_instance):
        # In this engine tasks never lose their winner once assigned, so
        # the assigned count never decreases across rounds.
        _, trace = PUCESolver().solve_with_trace(medium_instance, seed=3)
        counts = [r.assigned_tasks for r in trace]
        assert all(a <= b for a, b in zip(counts, counts[1:]))

    def test_trace_proposals_sum_to_publishes(self, medium_instance):
        result, trace = PUCESolver().solve_with_trace(medium_instance, seed=3)
        assert sum(r.proposals for r in trace) == result.publishes

    def test_winners_and_displaced_disjoint(self, medium_instance):
        _, trace = PUCESolver().solve_with_trace(medium_instance, seed=3)
        for record in trace:
            assert not set(record.new_winners) & set(record.displaced)

    def test_nonprivate_trace(self, medium_instance):
        result, trace = UCESolver().solve_with_trace(medium_instance)
        assert len(trace) == result.rounds
        # Non-private proposals are unpublished, so publishes stays 0 even
        # though the trace records proposal counts.
        assert result.publishes == 0
        assert trace[0].proposals > 0

    def test_final_assigned_matches_matching(self, medium_instance):
        result, trace = PUCESolver().solve_with_trace(medium_instance, seed=3)
        assert trace[-1].assigned_tasks == result.matched_count


class TestServerBoard:
    def test_board_keys_are_public_ids(self, medium_instance):
        result = PUCESolver().solve(medium_instance, seed=3)
        task_ids = {t.id for t in medium_instance.tasks}
        worker_ids = {w.id for w in medium_instance.workers}
        assert result.release_board
        for (task_id, worker_id), releases in result.release_board.items():
            assert task_id in task_ids
            assert worker_id in worker_ids
            assert len(releases) >= 1

    def test_board_consistent_with_ledger(self, medium_instance):
        result = PUCESolver().solve(medium_instance, seed=3)
        for (task_id, worker_id), releases in result.release_board.items():
            spend = result.ledger.pair_spend(worker_id, task_id)
            assert spend.proposals == len(releases)
            assert spend.total == pytest.approx(releases.total_spend())

    def test_empty_board_before_publishes(self):
        instance = build_instance([(0.0, 0.0, 5.0)], [(1.0, 0.0, 2.0)])
        assert Server(instance).board() == {}


class TestPrivateGateScenarios:
    def test_weak_challenger_never_displaces_accurate_winner(self):
        # Winner at distance 0.5 with a large (accurate) budget;
        # challenger at distance 3.0 should essentially never take the
        # task: the noise at eps=5 is far smaller than the distance gap,
        # and his re-challenges fail both the utility and PPCF gates.
        instance = build_instance(
            task_specs=[(0.0, 0.0, 10.0)],
            worker_specs=[(0.5, 0.0, 5.0), (3.0, 0.0, 5.0)],
            budgets={(0, 0): (5.0,), (0, 1): (5.0, 5.0, 5.0)},
        )
        wins = 0
        for seed in range(20):
            result = PUCESolver().solve(instance, seed=seed)
            if result.matching.pairs.get(0) == 0:
                wins += 1
        assert wins >= 18  # the close, accurate worker keeps the task

    def test_exhausted_challenger_cannot_propose(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 10.0)],
            worker_specs=[(0.5, 0.0, 5.0), (0.4, 0.0, 5.0)],
            budgets={(0, 0): (1.0,), (0, 1): (1.0,)},
        )
        result = PUCESolver().solve(instance, seed=1)
        # Both publish once in round 1, loser cannot re-challenge: at most
        # 2 releases total.
        assert result.publishes <= 2

    def test_negative_utility_task_never_proposed(self):
        instance = build_instance(
            task_specs=[(0.0, 0.0, 0.2)],  # value below any travel cost
            worker_specs=[(1.0, 0.0, 3.0)],
        )
        result = PUCESolver().solve(instance, seed=1)
        assert result.publishes == 0
        assert len(result.matching) == 0

    def test_denormal_distance_gap_does_not_livelock(self):
        # Regression (found by hypothesis): worker 1 sits a *denormal*
        # 1.4e-45 closer than worker 0.  The raw-distance gate saw a
        # strict improvement while the shifted sort key absorbed it, so
        # the loser re-proposed forever.  Gate and sort now share one key
        # computation; the run must terminate in a handful of rounds.
        instance = build_instance(
            task_specs=[(0.0, 0.0, 3.2764374306820447)],
            worker_specs=[
                (0.0, -1.401298464324817e-45, 5.9082329970470795),
                (0.0, 0.0, 1.0),
            ],
        )
        result = UCESolver().solve(instance, seed=0)
        assert result.rounds <= 4
        assert len(result.matching) == 1
