"""Unit tests for value functions and the utility model."""

import pytest

from repro.core.utility import LinearValue, PowerValue, UtilityModel
from repro.errors import ConfigurationError


class TestLinearValue:
    def test_evaluate_and_inverse(self):
        f = LinearValue(2.0)
        assert f(3.0) == 6.0
        assert f.inverse(6.0) == 3.0

    def test_zero_maps_to_zero(self):
        assert LinearValue(1.7)(0.0) == 0.0

    def test_invalid_slope(self):
        with pytest.raises(ConfigurationError, match="slope"):
            LinearValue(0.0)

    def test_additivity(self):
        f = LinearValue(1.3)
        assert f(2.0) + f(3.0) == pytest.approx(f(5.0))


class TestPowerValue:
    def test_evaluate_and_inverse(self):
        f = PowerValue(exponent=2.0, scale=3.0)
        assert f(2.0) == 12.0
        assert f.inverse(12.0) == pytest.approx(2.0)

    def test_odd_extension(self):
        f = PowerValue(exponent=2.0)
        assert f(-2.0) == -4.0
        assert f.inverse(-4.0) == pytest.approx(-2.0)

    def test_monotone(self):
        f = PowerValue(exponent=1.5)
        xs = [-3.0, -1.0, 0.0, 0.5, 2.0]
        values = [f(x) for x in xs]
        assert values == sorted(values)

    def test_inverse_roundtrip(self):
        f = PowerValue(exponent=2.5, scale=0.7)
        for x in (-4.0, -0.3, 0.0, 0.3, 4.0):
            assert f.inverse(f(x)) == pytest.approx(x)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError, match="exponent"):
            PowerValue(exponent=0.0)
        with pytest.raises(ConfigurationError, match="scale"):
            PowerValue(scale=-1.0)


class TestUtilityModel:
    def test_eq2_with_defaults(self):
        model = UtilityModel()
        # U = v - f_d(d) - f_p(spend) with identity functions.
        assert model.utility(12.4, 12.2, 0.1) == pytest.approx(0.1)

    def test_eq2_without_privacy_cost(self):
        model = UtilityModel()
        assert model.utility(5.0, 1.5) == pytest.approx(3.5)

    def test_scaled_functions(self):
        model = UtilityModel(f_d=LinearValue(2.0), f_p=LinearValue(0.5))
        assert model.utility(10.0, 2.0, 4.0) == pytest.approx(10.0 - 4.0 - 2.0)

    def test_nonlinear_distance_function(self):
        model = UtilityModel(f_d=PowerValue(exponent=2.0))
        assert model.utility(10.0, 2.0, 0.0) == pytest.approx(6.0)

    def test_f_p_must_be_linear(self):
        with pytest.raises(ConfigurationError, match="additivity"):
            UtilityModel(f_p=PowerValue(exponent=2.0))  # type: ignore[arg-type]

    def test_distance_equivalent(self):
        model = UtilityModel(f_d=LinearValue(4.0))
        assert model.distance_equivalent(8.0) == 2.0

    def test_table_iv_first_proposal_utilities(self):
        # Every first-proposal utility in Table IV follows Eq. 2 with
        # pair-level spend.
        model = UtilityModel()
        cases = [
            (12.4, 12.2, 0.1, 0.1),  # (t1, w1)
            (12.4, 5.0, 4.6, 2.8),  # (t1, w2)
            (12.4, 9.43, 0.1, 2.87),  # (t1, w3)
            (11.0, 3.61, 6.99, 0.4),  # (t2, w1)
            (11.0, 10.44, 0.1, 0.46),  # (t2, w2)
            (13.0, 12.21, 0.1, 0.69),  # (t3, w2)
            (13.0, 7.28, 5.4, 0.32),  # (t3, w3)
        ]
        for value, distance, eps, expected in cases:
            assert model.utility(value, distance, eps) == pytest.approx(expected)
