"""Unit tests for the uniform grid index."""

import numpy as np
import pytest

from repro.spatial.index import GridIndex


class TestGridIndexBasics:
    def test_empty_index(self):
        index = GridIndex([])
        assert len(index) == 0
        assert index.query_circle((0, 0), 10.0) == []

    def test_single_point(self):
        index = GridIndex([(1.0, 1.0)])
        assert index.query_circle((0, 0), 2.0) == [0]
        assert index.query_circle((0, 0), 1.0) == []

    def test_boundary_is_inclusive(self):
        index = GridIndex([(1.0, 0.0)])
        assert index.query_circle((0, 0), 1.0) == [0]

    def test_negative_radius_raises(self):
        index = GridIndex([(0.0, 0.0)])
        with pytest.raises(ValueError, match="non-negative"):
            index.query_circle((0, 0), -1.0)

    def test_identical_points_all_returned(self):
        index = GridIndex([(0.0, 0.0)] * 5)
        assert index.query_circle((0, 0), 0.1) == [0, 1, 2, 3, 4]

    def test_invalid_shape_raises(self):
        with pytest.raises(ValueError, match="point array"):
            GridIndex(np.zeros((3, 3)))

    def test_invalid_cell_size_raises(self):
        with pytest.raises(ValueError, match="cell_size"):
            GridIndex([(0.0, 0.0)], cell_size=0.0)

    def test_points_property_is_read_only(self):
        index = GridIndex([(0.0, 0.0), (1.0, 1.0)])
        with pytest.raises(ValueError):
            index.points[0, 0] = 99.0


class TestGridIndexAgainstBruteForce:
    @pytest.mark.parametrize("n,radius", [(50, 0.5), (200, 1.4), (500, 3.0)])
    def test_matches_brute_force_uniform(self, rng, n, radius):
        points = rng.uniform(0, 20, size=(n, 2))
        index = GridIndex(points)
        for _ in range(20):
            center = rng.uniform(-2, 22, size=2)
            assert index.query_circle(center, radius) == index.query_circle_brute(
                center, radius
            )

    def test_matches_brute_force_clustered(self, rng):
        points = np.vstack(
            [rng.normal(0, 0.5, size=(100, 2)), rng.normal(10, 0.5, size=(100, 2))]
        )
        index = GridIndex(points)
        for center in [(0, 0), (10, 10), (5, 5), (-3, 2)]:
            assert index.query_circle(center, 2.0) == index.query_circle_brute(
                center, 2.0
            )

    def test_explicit_cell_size(self, rng):
        points = rng.uniform(0, 10, size=(100, 2))
        coarse = GridIndex(points, cell_size=5.0)
        fine = GridIndex(points, cell_size=0.1)
        for _ in range(10):
            center = rng.uniform(0, 10, size=2)
            assert coarse.query_circle(center, 1.0) == fine.query_circle(center, 1.0)

    def test_results_sorted(self, rng):
        points = rng.uniform(0, 5, size=(100, 2))
        index = GridIndex(points)
        hits = index.query_circle((2.5, 2.5), 2.0)
        assert hits == sorted(hits)


class TestNearest:
    def test_nearest_point(self):
        index = GridIndex([(0.0, 0.0), (5.0, 5.0), (1.0, 1.0)])
        assert index.nearest((0.9, 0.9)) == 2
        assert index.nearest((4.0, 4.0)) == 1

    def test_nearest_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            GridIndex([]).nearest((0, 0))

    def test_nearest_tie_lowest_index(self):
        index = GridIndex([(1.0, 0.0), (-1.0, 0.0)])
        assert index.nearest((0.0, 0.0)) == 0
