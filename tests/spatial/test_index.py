"""Unit tests for the uniform grid index."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, InvalidInstanceError

from repro.spatial.index import GridIndex, grid_cell_labels


class TestGridIndexBasics:
    def test_empty_index(self):
        index = GridIndex([])
        assert len(index) == 0
        assert index.query_circle((0, 0), 10.0) == []

    def test_single_point(self):
        index = GridIndex([(1.0, 1.0)])
        assert index.query_circle((0, 0), 2.0) == [0]
        assert index.query_circle((0, 0), 1.0) == []

    def test_boundary_is_inclusive(self):
        index = GridIndex([(1.0, 0.0)])
        assert index.query_circle((0, 0), 1.0) == [0]

    def test_negative_radius_raises(self):
        index = GridIndex([(0.0, 0.0)])
        with pytest.raises(ConfigurationError, match="non-negative"):
            index.query_circle((0, 0), -1.0)

    def test_identical_points_all_returned(self):
        index = GridIndex([(0.0, 0.0)] * 5)
        assert index.query_circle((0, 0), 0.1) == [0, 1, 2, 3, 4]

    def test_invalid_shape_raises(self):
        with pytest.raises(InvalidInstanceError, match="point array"):
            GridIndex(np.zeros((3, 3)))

    def test_invalid_cell_size_raises(self):
        with pytest.raises(ConfigurationError, match="cell_size"):
            GridIndex([(0.0, 0.0)], cell_size=0.0)

    def test_points_property_is_read_only(self):
        index = GridIndex([(0.0, 0.0), (1.0, 1.0)])
        with pytest.raises(ValueError):
            index.points[0, 0] = 99.0


class TestGridIndexAgainstBruteForce:
    @pytest.mark.parametrize("n,radius", [(50, 0.5), (200, 1.4), (500, 3.0)])
    def test_matches_brute_force_uniform(self, rng, n, radius):
        points = rng.uniform(0, 20, size=(n, 2))
        index = GridIndex(points)
        for _ in range(20):
            center = rng.uniform(-2, 22, size=2)
            assert index.query_circle(center, radius) == index.query_circle_brute(
                center, radius
            )

    def test_matches_brute_force_clustered(self, rng):
        points = np.vstack(
            [rng.normal(0, 0.5, size=(100, 2)), rng.normal(10, 0.5, size=(100, 2))]
        )
        index = GridIndex(points)
        for center in [(0, 0), (10, 10), (5, 5), (-3, 2)]:
            assert index.query_circle(center, 2.0) == index.query_circle_brute(
                center, 2.0
            )

    def test_explicit_cell_size(self, rng):
        points = rng.uniform(0, 10, size=(100, 2))
        coarse = GridIndex(points, cell_size=5.0)
        fine = GridIndex(points, cell_size=0.1)
        for _ in range(10):
            center = rng.uniform(0, 10, size=2)
            assert coarse.query_circle(center, 1.0) == fine.query_circle(center, 1.0)

    def test_results_sorted(self, rng):
        points = rng.uniform(0, 5, size=(100, 2))
        index = GridIndex(points)
        hits = index.query_circle((2.5, 2.5), 2.0)
        assert hits == sorted(hits)


class TestNearest:
    def test_nearest_point(self):
        index = GridIndex([(0.0, 0.0), (5.0, 5.0), (1.0, 1.0)])
        assert index.nearest((0.9, 0.9)) == 2
        assert index.nearest((4.0, 4.0)) == 1

    def test_nearest_empty_raises(self):
        with pytest.raises(InvalidInstanceError, match="empty"):
            GridIndex([]).nearest((0, 0))

    def test_nearest_tie_lowest_index(self):
        index = GridIndex([(1.0, 0.0), (-1.0, 0.0)])
        assert index.nearest((0.0, 0.0)) == 0


class TestCellLabels:
    def test_same_cell_same_label(self):
        index = GridIndex(
            [(0.1, 0.1), (0.2, 0.2), (9.0, 9.0)], cell_size=1.0
        )
        labels = index.cell_labels()
        assert labels[0] == labels[1]
        assert labels[0] != labels[2]

    def test_labels_dense_and_deterministic(self, rng):
        points = rng.uniform(0, 10, size=(200, 2))
        index = GridIndex(points, cell_size=1.5)
        labels = index.cell_labels()
        assert labels.shape == (200,)
        assert set(np.unique(labels)) == set(range(int(labels.max()) + 1))
        assert np.array_equal(labels, GridIndex(points, cell_size=1.5).cell_labels())

    def test_module_function_matches_index_method(self, rng):
        points = rng.uniform(-3, 3, size=(120, 2))
        index = GridIndex(points, cell_size=0.8)
        assert np.array_equal(
            index.cell_labels(), grid_cell_labels(points, cell_size=0.8)
        )

    def test_empty_and_degenerate_inputs(self):
        assert grid_cell_labels(np.zeros((0, 2))).shape == (0,)
        same = grid_cell_labels(np.zeros((5, 2)) + 2.5)
        assert np.array_equal(same, np.zeros(5, dtype=np.int64))
        with pytest.raises(ConfigurationError, match="cell_size"):
            grid_cell_labels([(0.0, 0.0)], cell_size=-1.0)


class TestDegenerateSpans:
    def test_near_coincident_points_large_radius_terminates(self):
        """Denormal point spread must not explode the cell scan.

        A spread of ~1e-308 gives a denormal auto cell size; an
        unclamped query over radius 5 would try ~1e308 candidate cells.
        """
        points = [(0.0, 0.0), (5e-324, 5e-324), (1e-308, 0.0)]
        index = GridIndex(points)
        assert index.query_circle((0.0, 0.0), 5.0) == [0, 1, 2]
        assert index.query_circle((100.0, 100.0), 1.0) == []

    def test_clamped_query_matches_brute_force(self, rng):
        points = rng.uniform(0, 1e-300, size=(20, 2))
        index = GridIndex(points)
        for radius in (0.0, 1e-305, 2.0):
            assert index.query_circle((0.0, 0.0), radius) == (
                index.query_circle_brute((0.0, 0.0), radius)
            )
