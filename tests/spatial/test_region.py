"""Unit tests for bounding boxes and circles."""

import math

import pytest

from repro.errors import ConfigurationError, InvalidInstanceError

from repro.spatial.geometry import Point
from repro.spatial.region import BoundingBox, Circle


class TestBoundingBox:
    def test_contains_interior_and_boundary(self):
        box = BoundingBox(0, 0, 2, 3)
        assert box.contains((1, 1))
        assert box.contains((0, 0))
        assert box.contains((2, 3))
        assert not box.contains((2.01, 1))

    def test_dimensions(self):
        box = BoundingBox(-1, -2, 3, 4)
        assert box.width == 4
        assert box.height == 6
        assert box.area == 24
        assert box.center == Point(1.0, 1.0)

    def test_from_points(self):
        box = BoundingBox.from_points([(0, 5), (2, 1), (-3, 2)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-3, 1, 2, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(InvalidInstanceError, match="zero points"):
            BoundingBox.from_points([])

    def test_degenerate_raises(self):
        with pytest.raises(InvalidInstanceError, match="degenerate"):
            BoundingBox(1, 0, 0, 1)

    def test_zero_area_box_is_allowed(self):
        box = BoundingBox(1, 1, 1, 1)
        assert box.area == 0
        assert box.contains((1, 1))

    def test_intersects(self):
        a = BoundingBox(0, 0, 2, 2)
        assert a.intersects(BoundingBox(1, 1, 3, 3))
        assert a.intersects(BoundingBox(2, 2, 3, 3))  # touching corner
        assert not a.intersects(BoundingBox(2.1, 2.1, 3, 3))

    def test_expanded(self):
        box = BoundingBox(0, 0, 1, 1).expanded(0.5)
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-0.5, -0.5, 1.5, 1.5)

    def test_expanded_negative_raises(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            BoundingBox(0, 0, 1, 1).expanded(-0.1)


class TestCircle:
    def test_contains(self):
        circle = Circle(Point(0, 0), 1.0)
        assert circle.contains((0.5, 0.5))
        assert circle.contains((1.0, 0.0))  # boundary
        assert not circle.contains((0.8, 0.8))

    def test_area(self):
        assert Circle(Point(0, 0), 2.0).area == pytest.approx(4 * math.pi)

    def test_center_coerced_to_point(self):
        circle = Circle((1.0, 2.0), 1.0)  # type: ignore[arg-type]
        assert isinstance(circle.center, Point)

    def test_negative_radius_raises(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            Circle(Point(0, 0), -1.0)

    def test_zero_radius_contains_only_center(self):
        circle = Circle(Point(1, 1), 0.0)
        assert circle.contains((1, 1))
        assert not circle.contains((1, 1.0001))

    def test_bounding_box(self):
        box = Circle(Point(1, 2), 3.0).bounding_box()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-2, -1, 4, 5)

    def test_intersects_box_overlapping(self):
        circle = Circle(Point(0, 0), 1.0)
        assert circle.intersects_box(BoundingBox(0.5, 0.5, 2, 2))

    def test_intersects_box_disjoint(self):
        circle = Circle(Point(0, 0), 1.0)
        assert not circle.intersects_box(BoundingBox(2, 2, 3, 3))

    def test_intersects_box_corner_case(self):
        # Box corner at distance exactly 1 from the centre (representable
        # exactly in binary floating point, unlike sqrt(0.5)).
        circle = Circle(Point(0, 0), 1.0)
        assert circle.intersects_box(BoundingBox(1.0, 0.0, 2, 2))
        assert not circle.intersects_box(BoundingBox(1.0000001, 0.0, 2, 2))
