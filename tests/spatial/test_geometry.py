"""Unit tests for points and distance metrics."""

import math

import numpy as np
import pytest

from repro.errors import InvalidInstanceError

from repro.spatial.geometry import (
    Point,
    euclidean,
    haversine_km,
    pairwise_euclidean,
    squared_euclidean,
)


class TestPoint:
    def test_unpacks_like_a_tuple(self):
        x, y = Point(3.0, 4.0)
        assert (x, y) == (3.0, 4.0)

    def test_distance_to(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == 5.0

    def test_translated(self):
        assert Point(1.0, 2.0).translated(0.5, -2.0) == Point(1.5, 0.0)

    def test_equality_with_plain_tuple(self):
        assert Point(1.0, 2.0) == (1.0, 2.0)


class TestEuclidean:
    def test_pythagorean_triple(self):
        assert euclidean((0, 0), (3, 4)) == 5.0

    def test_zero_distance(self):
        assert euclidean((2.5, -1.5), (2.5, -1.5)) == 0.0

    def test_symmetry(self):
        a, b = (1.2, 3.4), (-5.6, 7.8)
        assert euclidean(a, b) == euclidean(b, a)

    def test_triangle_inequality(self):
        a, b, c = (0, 0), (1, 2), (3, -1)
        assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-12

    def test_squared_matches_square(self):
        a, b = (1.0, 2.0), (4.0, 6.0)
        assert squared_euclidean(a, b) == pytest.approx(euclidean(a, b) ** 2)


class TestHaversine:
    def test_same_point_is_zero(self):
        assert haversine_km((104.06, 30.57), (104.06, 30.57)) == 0.0

    def test_one_degree_longitude_at_equator(self):
        # One degree of longitude at the equator is ~111.19 km.
        assert haversine_km((0.0, 0.0), (1.0, 0.0)) == pytest.approx(111.19, abs=0.1)

    def test_symmetry(self):
        a, b = (104.0, 30.6), (104.2, 30.4)
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))

    def test_antipodal_is_half_circumference(self):
        assert haversine_km((0.0, 0.0), (180.0, 0.0)) == pytest.approx(
            math.pi * 6371.0088, rel=1e-6
        )


class TestPairwiseEuclidean:
    def test_matches_scalar_function(self, rng):
        a = rng.normal(size=(5, 2))
        b = rng.normal(size=(7, 2))
        matrix = pairwise_euclidean(a, b)
        assert matrix.shape == (5, 7)
        for i in range(5):
            for j in range(7):
                assert matrix[i, j] == pytest.approx(euclidean(a[i], b[j]))

    def test_empty_inputs(self):
        out = pairwise_euclidean(np.empty((0, 2)), np.empty((3, 2)))
        assert out.shape == (0, 3)

    def test_rejects_bad_shapes(self):
        with pytest.raises(InvalidInstanceError, match="expected"):
            pairwise_euclidean(np.zeros((3, 3)), np.zeros((2, 2)))
        with pytest.raises(InvalidInstanceError, match="expected"):
            pairwise_euclidean(np.zeros((3, 2)), np.zeros((2, 4)))

    def test_diagonal_zero_for_same_points(self, rng):
        a = rng.normal(size=(6, 2))
        matrix = pairwise_euclidean(a, a)
        assert np.allclose(np.diag(matrix), 0.0)
