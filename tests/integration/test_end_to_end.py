"""Cross-method, cross-dataset end-to-end invariants.

These tests run every registered method on generated batches and assert
the structural invariants that must hold regardless of randomness, plus
the paper's headline qualitative claims at small scale.
"""

import pytest

from repro.core.registry import available_methods, make_solver
from repro.datasets.chengdu import ChengduLikeGenerator
from repro.datasets.synthetic import NormalGenerator, UniformGenerator
from repro.simulation.runner import BatchRunner


@pytest.fixture(scope="module")
def normal_instance():
    return NormalGenerator(80, 160, seed=21).instance(task_value=4.5, worker_range=1.4)


@pytest.fixture(scope="module")
def all_results(normal_instance):
    return {
        name: make_solver(name).solve(normal_instance, seed=77)
        for name in available_methods()
    }


class TestStructuralInvariants:
    def test_matchings_one_to_one(self, all_results):
        for name, result in all_results.items():
            workers = list(result.matching.pairs.values())
            assert len(set(workers)) == len(workers), name

    def test_only_feasible_pairs_matched(self, normal_instance, all_results):
        feasible = {
            (normal_instance.tasks[i].id, normal_instance.workers[j].id)
            for i, j in normal_instance.feasible_pairs()
        }
        for name, result in all_results.items():
            for pair in result.matching:
                assert pair in feasible, name

    def test_private_methods_have_ledgers(self, all_results):
        for name, result in all_results.items():
            solver = make_solver(name)
            if solver.is_private:
                assert result.total_privacy_spend > 0.0, name
            else:
                assert result.total_privacy_spend == 0.0, name

    def test_budget_caps_respected_everywhere(self, normal_instance, all_results):
        for name, result in all_results.items():
            for (i, j) in normal_instance.feasible_pairs():
                spend = result.ledger.pair_spend(
                    normal_instance.workers[j].id, normal_instance.tasks[i].id
                )
                vector = normal_instance.budget_vector(i, j)
                assert spend.proposals <= len(vector), name
                assert spend.epsilons == vector.epsilons[: spend.proposals], name

    def test_opt_dominates_every_nonprivate_method(self, all_results):
        opt = all_results["OPT"].total_utility
        for name in ("UCE", "DCE", "GT", "GRD"):
            assert all_results[name].total_utility <= opt + 1e-9

    def test_ldp_bounds_cover_realised_spend(self, normal_instance, all_results):
        result = all_results["PUCE"]
        for worker in normal_instance.workers:
            bound = result.ledger.worker_ldp_bound(worker.id, worker.radius)
            assert bound >= result.ledger.worker_spend(worker.id) * 0  # non-negative
            assert bound == pytest.approx(
                result.ledger.worker_spend(worker.id) * worker.radius
            )


class TestPaperHeadlines:
    """The abstract's qualitative claims, at test scale (single batch)."""

    @pytest.fixture(scope="class")
    def report(self):
        instances = NormalGenerator(150, 300, seed=5).instances(2)
        return BatchRunner(["PUCE", "PDCE", "PGT", "UCE", "DCE", "GT"]).run(
            instances, seed=1
        )

    def test_puce_beats_pdce_on_utility(self, report):
        # "PUCE is always better than PDCE slightly" — a statement about
        # averaged curves; allow single-run noise at the 0.01 level and
        # confirm the strict ordering on a multi-seed mean below.
        assert (
            report["PUCE"].average_utility
            > report["PDCE"].average_utility - 0.01
        )

    def test_puce_beats_pdce_multi_seed_mean(self):
        from repro.datasets.synthetic import NormalGenerator

        instances = NormalGenerator(150, 300, seed=5).instances(2)
        puce, pdce = 0.0, 0.0
        for seed in (1, 2, 3):
            report = BatchRunner(["PUCE", "PDCE"]).run(instances, seed=seed)
            puce += report["PUCE"].average_utility
            pdce += report["PDCE"].average_utility
        assert puce > pdce

    def test_private_below_nonprivate(self, report):
        for private, non_private in (("PUCE", "UCE"), ("PDCE", "DCE"), ("PGT", "GT")):
            assert (
                report[private].average_utility < report[non_private].average_utility
            )

    def test_relative_deviations_in_paper_band(self, report):
        # Fig. 8b reports U_RD roughly 0.2-0.4 at defaults on normal.
        for method in ("PUCE", "PDCE", "PGT"):
            assert 0.05 < report.utility_deviation(method) < 0.6

    def test_pgt_publishes_least(self, report):
        assert report["PGT"].total_publishes < report["PUCE"].total_publishes
        assert report["PGT"].total_publishes < report["PDCE"].total_publishes

    def test_nonprivate_distance_below_private(self, report):
        for private, non_private in (("PUCE", "UCE"), ("PDCE", "DCE")):
            assert (
                report[non_private].average_distance
                < report[private].average_distance
            )


class TestAcrossDatasets:
    @pytest.mark.parametrize(
        "generator_cls", [UniformGenerator, NormalGenerator, ChengduLikeGenerator]
    )
    def test_all_private_methods_run(self, generator_cls):
        instance = generator_cls(60, 120, seed=13).instance()
        for name in ("PUCE", "PDCE", "PGT", "PUCE-nppcf", "PDCE-nppcf"):
            result = make_solver(name).solve(instance, seed=3)
            assert result.rounds >= 1

    def test_high_ratio_instance(self):
        instance = NormalGenerator(30, 150, seed=13).instance()
        result = make_solver("PUCE").solve(instance, seed=3)
        # More workers than tasks: at most every task matched.
        assert len(result.matching) <= 30

    def test_low_ratio_instance(self):
        instance = NormalGenerator(150, 30, seed=13).instance()
        result = make_solver("PUCE").solve(instance, seed=3)
        assert len(result.matching) <= 30

    def test_tiny_range_no_matches(self):
        instance = UniformGenerator(50, 100, seed=13).instance(worker_range=0.001)
        result = make_solver("PGT").solve(instance, seed=3)
        assert len(result.matching) == 0
