"""End-to-end reproduction of the paper's worked examples.

* Table II / Section IV: the CEA review example.
* Example 2 (Tables III-VI): the full PUCE trace.
* Example 3 (Tables VII-VIII): the PGT competition timeline.

These are the strongest fidelity oracles available: the paper publishes
every intermediate value, so the tests pin proposal decisions, conflict
resolutions, UT values, and final allocations.
"""

import numpy as np
import pytest

from repro.core.agents import build_agents
from repro.core.pgt import BestResponseStats, PGTSolver
from repro.core.puce import PUCESolver
from repro.simulation.server import Server
from tests.conftest import build_instance

# --- The Example 2/3 world (Tables III and IV) --------------------------

# Worker locations are not given by the paper, only distances; we place
# tasks/workers so Euclidean distances reproduce Table III exactly by
# putting every entity on a line... impossible; instead we bypass geometry
# and inject the distance matrix directly through collinear placement per
# worker: each worker sits at the origin of his own axis.  Simpler: build
# the instance from synthetic coordinates whose pairwise distances match
# Table III.  Easiest faithful route: tasks on a plane, workers placed by
# trilateration is overkill — the algorithms only consume the distance
# dict, so we construct the instance and then overwrite the distances.

TABLE_III = {  # (task, worker) -> distance
    (0, 0): 12.2, (1, 0): 3.61, (2, 0): 17.12,
    (0, 1): 5.0, (1, 1): 10.44, (2, 1): 12.21,
    (0, 2): 9.43, (1, 2): 18.25, (2, 2): 7.28,
}
TASK_VALUES = (12.4, 11.0, 13.0)
WORKER_RANGES = (15.0, 15.0, 10.0)

# Table IV: per-pair budget vectors and the raw released distances.
BUDGETS = {
    (0, 0): (0.1, 0.3, 0.4),
    (0, 1): (4.6, 4.65, 4.8),
    (0, 2): (0.1, 0.4, 0.4),
    (1, 0): (6.99, 7.1, 7.2),
    (1, 1): (0.1, 0.2, 0.5),
    (2, 1): (0.1, 0.3, 0.4),
    (2, 2): (5.4, 5.5, 5.6),
}
DRAWS = {
    (0, 0): (12.7, 12.4, 12.3),
    (0, 1): (5.5, 5.3, 5.1),
    (0, 2): (9.93, 9.63, 9.53),
    (1, 0): (4.11, 4.01, 3.81),
    (1, 1): (10.94, 10.64, 10.54),
    (2, 1): (12.71, 12.51, 12.31),
    (2, 2): (7.78, 7.58, 7.38),
}


def example_instance():
    """The 3x3 instance of Example 2/3 with Table III distances.

    Feasible pairs follow the service ranges: (t2,w3) and (t3,w1) are out
    of range and absent.
    """
    from repro.core.budgets import BudgetVector
    from repro.simulation.instance import ProblemInstance

    base = build_instance(
        task_specs=[(0.0, 0.0, v) for v in TASK_VALUES],
        worker_specs=[(0.0, 0.0, r) for r in WORKER_RANGES],
    )
    reachable = ((0, 1), (0, 1, 2), (0, 2))  # per worker, per Table III
    distances = {
        (i, j): TABLE_III[(i, j)]
        for j, tasks in enumerate(reachable)
        for i in tasks
    }
    budgets = {pair: BudgetVector(BUDGETS[pair]) for pair in distances}
    return ProblemInstance(
        tasks=base.tasks,
        workers=base.workers,
        model=base.model,
        reachable=reachable,
        distances=distances,
        budgets=budgets,
    )


def preload_all(agents):
    for (i, j), draws in DRAWS.items():
        for u, value in enumerate(draws):
            agents[j].preload_draw(i, u, value)


class ReplayPUCE(PUCESolver):
    """PUCE with the Table IV noise draws pinned."""

    def _build_agents(self, instance, rng):
        agents = build_agents(instance, rng)
        preload_all(agents)
        return agents


class ReplayPGT(PGTSolver):
    def _build_agents(self, instance, rng):
        agents = build_agents(instance, rng)
        preload_all(agents)
        return agents


class TestTable2CEA:
    def test_rank_matrix_and_conflict(self):
        # Covered in depth by tests/core/test_cea.py; assert the headline:
        # w3's conflict between t2 and t3 resolves to t3.
        from repro.core.cea import conflict_eliminate, rank_candidates

        table_ii = {
            ("t1", "w1"): 9.06, ("t1", "w2"): 9.85, ("t1", "w3"): 12.04,
            ("t2", "w3"): 2.09, ("t2", "w1"): 10.44, ("t2", "w2"): 12.59,
            ("t3", "w3"): 2.00, ("t3", "w2"): 11.28, ("t3", "w1"): 18.87,
        }
        assignment = conflict_eliminate(rank_candidates(table_ii))
        assert assignment["t3"] == "w3"


class TestExample2PUCE:
    @pytest.fixture
    def result(self):
        return ReplayPUCE().solve(example_instance(), seed=0)

    def test_final_matching(self, result):
        # "t1 is allocated to w3 ... t3 is allocated to w2 ... there is no
        # worker proposing to any tasks ... the process is end."
        assert dict(result.matching.pairs) == {0: 2, 2: 1}

    def test_t2_stays_unmatched(self, result):
        assert 1 not in result.matching.pairs

    def test_round_one_publishes_table_v(self, result):
        # Table V: w1 proposes to t1,t2; w2 to t1,t2,t3; w3 to t1,t3 —
        # seven first-round proposals, and nothing after (round 2's
        # utilities are all non-positive).
        assert result.publishes == 7
        for (i, j) in DRAWS:
            spend = result.ledger.pair_spend(j, i)
            assert spend.proposals == 1, f"pair {(i, j)} should have 1 release"
            assert spend.epsilons == (BUDGETS[(i, j)][0],)

    def test_matched_utilities(self, result):
        # U(t1,w3) = 12.4 - 9.43 - 0.1 = 2.87;  U(t3,w2) = 13 - 12.21 - 0.1.
        utilities = {p.task_index: p.utility for p in result.matched_pairs()}
        assert utilities[0] == pytest.approx(2.87)
        assert utilities[2] == pytest.approx(0.69)

    def test_two_rounds_plus_quiescent_round(self, result):
        # Round 1 proposes, round 2 has no proposals -> loop exits.
        assert result.rounds == 2

    def test_ldp_accounting(self, result):
        # w2 published 0.1+4.6+0.1 across three tasks; bound = spend * 15.
        assert result.ledger.worker_spend(1) == pytest.approx(4.8)
        assert result.worker_ldp_bound(1) == pytest.approx(4.8 * 15.0)


class TestExample3PGT:
    def setup_state_k(self):
        """Publish every pair's first release; allocate per Table VII col k."""
        instance = example_instance()
        server = Server(instance)
        agents = build_agents(instance, np.random.default_rng(0))
        preload_all(agents)
        for (i, j) in sorted(DRAWS):
            agents[j].publish(agents[j].peek_proposal(i, server), server)
        server.assign(0, 0)  # t1 -> w1
        server.assign(1, 1)  # t2 -> w2
        server.assign(2, 2)  # t3 -> w3
        return instance, server, agents

    def test_state_k_effective_pairs(self):
        instance, server, _ = self.setup_state_k()
        assert server.effective_pair(0, 0).distance == 12.7
        assert server.effective_pair(1, 1).distance == 10.94
        assert server.effective_pair(2, 2).distance == 7.78

    def test_timeline_to_convergence(self):
        instance, server, agents = self.setup_state_k()
        solver = ReplayPGT()
        stats = BestResponseStats()
        solver.run_loop(instance, server, agents, stats)

        # Moves: w1 takes t2 (UT=0.13), then w2 takes t1 (UT=2.45); w3's
        # only option scores -9.95 and is declined.
        assert stats.moves == 2
        assert stats.move_gains[0] == pytest.approx(0.13)
        assert stats.move_gains[1] == pytest.approx(2.45)

        # Final allocation (Table VII, k+2 .. k+6): t1->w2, t2->w1, t3->w3.
        assert server.allocation() == (1, 0, 2)

    def test_published_budgets_match_table_viii(self):
        instance, server, agents = self.setup_state_k()
        solver = ReplayPGT()
        solver.run_loop(instance, server, agents, BestResponseStats())
        # w1 published a second release toward t2 (eps 7.1), w2 toward t1
        # (eps 4.65); w3 published nothing beyond the first round.
        assert server.release_set(1, 0).releases[-1].epsilon == 7.1
        assert server.release_set(0, 1).releases[-1].epsilon == 4.65
        assert len(server.release_set(0, 2)) == 1

    def test_effective_pairs_after_competition(self):
        instance, server, agents = self.setup_state_k()
        ReplayPGT().run_loop(instance, server, agents, BestResponseStats())
        # Table VIII's final effective pairs for the re-published pairs.
        assert server.effective_pair(1, 0).distance == pytest.approx(4.01)
        assert server.effective_pair(0, 1).distance == pytest.approx(5.3)

    def test_full_solve_from_scratch_converges(self):
        # From the empty allocation, the example's (deliberately large)
        # budget vectors make most moves unprofitable: only w2 takes t1
        # (UT = 12.4 - 5.5 - 4.6 = 2.3 > 0), everything else is declined —
        # and declined evaluations publish nothing.
        result = ReplayPGT().solve(example_instance(), seed=0)
        assert dict(result.matching.pairs) == {0: 1}
        assert result.publishes == 1
        assert result.ledger.pair_spend(1, 0).epsilons == (4.6,)
