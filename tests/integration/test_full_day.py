"""Integration: the full Section VII-B protocol over a simulated day.

Orders stream in with release times, are cut into time-window batches,
and fixed taxi groups rotate across batches — the exact pipeline the
paper's real-data experiments use, here end to end: generator -> batching
-> per-batch instances -> multi-method runner -> aggregated measures ->
attack audit.
"""

import numpy as np
import pytest

from repro.datasets.chengdu import ChengduLikeGenerator
from repro.datasets.workload import WorkerGroupCycle, split_batches
from repro.privacy.attack import attack_assignment
from repro.simulation.instance import ProblemInstance
from repro.simulation.runner import BatchRunner


@pytest.fixture(scope="module")
def day():
    generator = ChengduLikeGenerator(240, 360, seed=31)
    rng = np.random.default_rng(31)
    orders = generator.tasks(task_value=4.5, rng=rng)
    taxis = generator.workers(worker_range=1.4, rng=rng)
    groups = WorkerGroupCycle.split(taxis, 3)
    batches = split_batches(orders, batch_size=60, workers=groups)  # 4 batches
    instances = [ProblemInstance.from_batch(b, seed=50 + b.index) for b in batches]
    return batches, instances


class TestFullDayPipeline:
    def test_batching_covers_all_orders_once(self, day):
        batches, _ = day
        order_ids = [t.id for b in batches for t in b.tasks]
        assert len(order_ids) == 240
        assert len(set(order_ids)) == 240

    def test_batches_time_ordered(self, day):
        batches, _ = day
        boundaries = [max(t.release_time for t in b.tasks) for b in batches[:-1]]
        starts = [min(t.release_time for t in b.tasks) for b in batches[1:]]
        for end_of_prev, start_of_next in zip(boundaries, starts):
            assert end_of_prev <= start_of_next + 1e-9

    def test_taxi_groups_rotate(self, day):
        batches, _ = day
        assert batches[0].workers == batches[3].workers  # 3 groups, cycle
        assert batches[0].workers != batches[1].workers

    def test_multi_method_day(self, day):
        _, instances = day
        report = BatchRunner(["PUCE", "PGT", "UCE", "GT"]).run(instances, seed=3)
        assert report["PUCE"].batches == len(instances)
        # Aggregate utility ordering: private below non-private.
        assert report["PUCE"].average_utility < report["UCE"].average_utility
        assert report["PGT"].average_utility < report["GT"].average_utility
        # Deviations are the paper's plausible band.
        assert 0.0 < report.utility_deviation("PUCE") < 0.7

    def test_worker_privacy_accumulates_across_batches(self, day):
        # A taxi serving multiple batches accumulates leakage per batch;
        # merging per-batch ledgers yields the day-level audit.
        _, instances = day
        from repro.core.puce import PUCESolver
        from repro.privacy.accountant import PrivacyLedger

        day_ledger = PrivacyLedger()
        for k, instance in enumerate(instances):
            result = PUCESolver().solve(instance, seed=k)
            day_ledger = day_ledger.merge(result.ledger)
        assert day_ledger.total_spend() > 0
        # Some worker appears in multiple batches (groups rotate).
        spends = [day_ledger.worker_spend(w) for w in day_ledger.workers()]
        assert max(spends) > 0

    def test_attack_audit_runs_per_batch(self, day):
        _, instances = day
        from repro.core.puce import PUCESolver

        result = PUCESolver().solve(instances[0], seed=0)
        records = attack_assignment(result, min_anchors=2)
        for record in records:
            assert record.anchors >= 2
            assert record.error >= 0.0
