"""Unit tests for the text report renderer."""

import pytest

from repro.experiments.figures import run_figure
from repro.experiments.report import format_figure, format_series


@pytest.fixture(scope="module")
def small_figure():
    return run_figure("fig09", num_tasks=25, num_batches=1, datasets=("uniform",))


class TestReport:
    def test_series_table_contains_methods_and_labels(self, small_figure):
        text = format_series(small_figure, "uniform")
        for method in small_figure.spec.methods:
            assert method in text
        for label in small_figure.labels("uniform"):
            assert label in text

    def test_series_mentions_paper_figure(self, small_figure):
        assert "Fig. 21" in format_series(small_figure, "uniform")

    def test_deviation_block_present_for_utility(self, small_figure):
        assert "U_RD" in format_series(small_figure, "uniform")

    def test_format_figure_includes_expected_shape(self, small_figure):
        text = format_figure(small_figure)
        assert "paper's expected shape" in text

    def test_table_alignment(self, small_figure):
        text = format_series(small_figure, "uniform")
        lines = [l for l in text.splitlines() if l and not l.endswith(":")]
        # Header and data rows of the first table share a width.
        table_lines = lines[1:4]
        assert len({len(l) for l in table_lines}) == 1
