"""Unit tests for the ``python -m repro.experiments`` command line."""

import pytest

from repro.experiments.__main__ import main


class TestCLI:
    def test_list_prints_all_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for figure_id in ("fig04", "fig05", "fig07", "fig09", "fig11", "fig13", "fig15", "fig17"):
            assert figure_id in out

    def test_run_small_figure(self, capsys):
        code = main(
            ["run", "fig09", "--tasks", "20", "--batches", "1", "--datasets", "uniform"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig09 [uniform]" in out
        assert "PUCE" in out

    def test_unknown_figure_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_seed_changes_output(self, capsys):
        base = ["run", "fig09", "--tasks", "20", "--batches", "1", "--datasets", "uniform"]
        main([*base, "--seed", "1"])
        first = capsys.readouterr().out
        main([*base, "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second


STREAM_ARGS = [
    "stream",
    "--horizon", "0.4",
    "--task-rate", "15",
    "--max-batch", "10",
    "--methods", "UCE",
    "--seed", "3",
]


class TestStreamCLI:
    def test_stream_prints_the_report_table(self, capsys):
        assert main(STREAM_ARGS) == 0
        out = capsys.readouterr().out
        assert "stream[poisson/normal]" in out
        assert "UCE" in out
        assert "p95_lat" in out

    def test_stream_accepts_method_specs(self, capsys):
        assert main([*STREAM_ARGS[:-4], "--methods", "PDCE(ppcf=off)", "--seed", "3"]) == 0
        assert "PDCE-nppcf" in capsys.readouterr().out


class TestScenarioCLI:
    def test_saved_spec_reproduces_the_stream_run(self, tmp_path, capsys):
        """`stream --save-spec` then `scenario` replays the exact run."""
        path = tmp_path / "spec.json"
        assert main([*STREAM_ARGS, "--save-spec", str(path)]) == 0
        first = capsys.readouterr().out
        assert main(["scenario", str(path)]) == 0
        second = capsys.readouterr().out

        def strip_wall_clock(table):
            # tasks/s is wall-clock throughput; everything else is seeded.
            return [
                [c for i, c in enumerate(line.split()) if i != 8]
                for line in table.splitlines()[1:]
            ]

        assert strip_wall_clock(first) == strip_wall_clock(second)

    def test_seed_override(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        main([*STREAM_ARGS, "--save-spec", str(path)])
        capsys.readouterr()
        main(["scenario", str(path), "--seed", "4"])
        assert "seed=4" in capsys.readouterr().out

    def test_missing_file_is_a_clean_cli_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["scenario", str(tmp_path / "nope.json")])
        assert "cannot load scenario" in capsys.readouterr().err

    def test_unknown_keys_are_a_clean_cli_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"arivals": "poisson"}')
        with pytest.raises(SystemExit):
            main(["scenario", str(path)])
        assert "unknown scenario key" in capsys.readouterr().err


class TestObsCLI:
    def test_trace_flag_adds_phase_column_values(self, capsys):
        assert main([*STREAM_ARGS, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "top_phase" in out
        row = next(line for line in out.splitlines() if line.startswith("UCE"))
        assert row.rstrip()[-1] == "%"  # e.g. "commit 54%"

    def test_untraced_stream_prints_dash_for_top_phase(self, capsys):
        assert main(STREAM_ARGS) == 0
        row = next(
            line
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("UCE")
        )
        assert row.rstrip().endswith("-")

    def test_trace_out_writes_jsonl_spans(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.jsonl"
        assert main([*STREAM_ARGS, "--trace-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"-> {path}" in out
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows, "trace-out implied --trace but wrote no spans"
        assert {row["name"] for row in rows} >= {"flush", "flush.commit"}
        assert all(row["method"] == "UCE" for row in rows)

    def test_metrics_out_writes_prometheus_text(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        assert main([*STREAM_ARGS, "--metrics-out", str(path)]) == 0
        assert f"-> {path}" in capsys.readouterr().out
        text = path.read_text()
        assert "# TYPE repro_flushes_total counter" in text
        assert 'repro_tasks_arrived_total{method="UCE"}' in text
        assert "repro_flush_solver_seconds_bucket" in text

    def test_profile_subcommand_forces_tracing_and_prints_tree(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        main([*STREAM_ARGS, "--save-spec", str(spec)])
        capsys.readouterr()
        assert main(["profile", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "profile[" in out
        assert "traced_seconds=" in out
        assert "flush.commit" in out
        assert "share" in out

    def test_profile_seed_override(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        main([*STREAM_ARGS, "--save-spec", str(spec)])
        capsys.readouterr()
        assert main(["profile", str(spec), "--seed", "9"]) == 0
        assert "method=UCE" in capsys.readouterr().out

    def test_saved_spec_round_trips_the_trace_flag(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        assert main([*STREAM_ARGS, "--trace", "--save-spec", str(spec)]) == 0
        capsys.readouterr()
        import json

        assert json.loads(spec.read_text())["options"]["trace"] is True


class TestShardsFlag:
    def test_parses_auto_and_integers(self):
        import argparse

        from repro.experiments.__main__ import _shards_arg

        assert _shards_arg("auto") == "auto"
        assert _shards_arg("4") == 4
        assert _shards_arg("0") == 0
        with pytest.raises(argparse.ArgumentTypeError, match="integer or 'auto'"):
            _shards_arg("many")

    def test_stream_accepts_shards_auto(self, capsys):
        assert main([*STREAM_ARGS, "--shards", "auto"]) == 0
        out = capsys.readouterr().out
        assert "plan" in out  # the report's plan column

    def test_stream_accepts_forced_shards(self, capsys):
        assert main([*STREAM_ARGS, "--shards", "2"]) == 0
        assert "UCE" in capsys.readouterr().out
