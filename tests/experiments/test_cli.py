"""Unit tests for the ``python -m repro.experiments`` command line."""

import pytest

from repro.experiments.__main__ import main


class TestCLI:
    def test_list_prints_all_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for figure_id in ("fig04", "fig05", "fig07", "fig09", "fig11", "fig13", "fig15", "fig17"):
            assert figure_id in out

    def test_run_small_figure(self, capsys):
        code = main(
            ["run", "fig09", "--tasks", "20", "--batches", "1", "--datasets", "uniform"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig09 [uniform]" in out
        assert "PUCE" in out

    def test_unknown_figure_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_seed_changes_output(self, capsys):
        main(["run", "fig09", "--tasks", "20", "--batches", "1", "--datasets", "uniform", "--seed", "1"])
        first = capsys.readouterr().out
        main(["run", "fig09", "--tasks", "20", "--batches", "1", "--datasets", "uniform", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second
