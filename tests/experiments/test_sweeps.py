"""Unit tests for sweep configuration and the sweep driver."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.sweeps import DATASETS, SweepConfig, make_generator, run_sweep


class TestMakeGenerator:
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_known_datasets(self, dataset):
        gen = make_generator(dataset, 20, 40, seed=1)
        instance = gen.instance()
        assert instance.num_tasks == 20

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError, match="unknown dataset"):
            make_generator("boston", 10, 10, seed=1)


class TestSweepConfig:
    def test_defaults_match_table_x(self):
        config = SweepConfig()
        assert config.worker_ratio == 2.0
        assert config.task_value == 4.5
        assert config.worker_range == 1.4
        assert (config.budget_low, config.budget_high) == (0.5, 1.75)
        assert config.budget_group_size == 7

    def test_num_workers_from_ratio(self):
        assert SweepConfig(num_tasks=100, worker_ratio=2.5).num_workers == 250

    def test_at_replaces_single_parameter(self):
        config = SweepConfig()
        assert config.at("task_value", 6.0).task_value == 6.0
        assert config.at("worker_range", 2.0).worker_range == 2.0
        assert config.at("worker_ratio", 3.0).worker_ratio == 3.0
        narrowed = config.at("budget_interval", (1.0, 1.25))
        assert (narrowed.budget_low, narrowed.budget_high) == (1.0, 1.25)

    def test_at_unknown_parameter(self):
        with pytest.raises(ConfigurationError, match="sweep parameter"):
            SweepConfig().at("altitude", 1.0)

    def test_invalid_dataset(self):
        with pytest.raises(ConfigurationError, match="unknown dataset"):
            SweepConfig(dataset="mars")

    def test_run_produces_all_methods(self):
        config = SweepConfig(
            dataset="uniform",
            methods=("UCE", "GRD"),
            num_tasks=30,
            num_batches=1,
        )
        report = config.run()
        assert set(report.methods()) == {"UCE", "GRD"}


class TestRunSweep:
    def test_sweep_points_carry_values(self):
        config = SweepConfig(
            dataset="uniform", methods=("GRD",), num_tasks=25, num_batches=1
        )
        points = run_sweep(config, "task_value", (1.5, 4.5))
        assert [p.value for p in points] == [1.5, 4.5]
        assert [p.label for p in points] == ["1.5", "4.5"]

    def test_budget_interval_labels(self):
        config = SweepConfig(
            dataset="uniform", methods=("GRD",), num_tasks=25, num_batches=1
        )
        points = run_sweep(config, "budget_interval", ((0.5, 0.75),))
        assert points[0].label == "[0.5,0.75]"

    def test_task_value_moves_utility(self):
        config = SweepConfig(
            dataset="uniform", methods=("GRD",), num_tasks=40, num_batches=1
        )
        low, high = run_sweep(config, "task_value", (1.5, 7.5))
        assert (
            high.report["GRD"].average_utility > low.report["GRD"].average_utility
        )
