"""The `run_stream` deprecation shim: warns, but drifts by not one bit."""

import warnings

import pytest

from repro.api.options import SolveOptions
from repro.api.scenario import ScenarioSpec
from repro.experiments.streaming import StreamScenario, run_stream
from repro.stream.simulator import StreamConfig

SCENARIO = dict(
    arrivals="poisson",
    dataset="normal",
    horizon=0.5,
    task_rate=15.0,
    worker_rate=5.0,
    initial_workers=25,
    seed=3,
)


class TestRunStreamShim:
    def test_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="ScenarioSpec"):
            run_stream(("UCE",), StreamScenario(**SCENARIO))

    def test_results_are_bit_identical_to_scenario_spec(self):
        config = StreamConfig(max_batch_size=10, max_wait=0.1)
        with pytest.warns(DeprecationWarning):
            old = run_stream(("PUCE", "UCE"), StreamScenario(**SCENARIO), config=config)

        seed = SCENARIO["seed"]
        spec = ScenarioSpec(
            **{k: v for k, v in SCENARIO.items() if k != "seed"},
            methods=("PUCE", "UCE"),
            options=SolveOptions(seed=seed, max_batch_size=10, max_wait=0.1),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the facade path must NOT warn
            new = spec.run()

        assert set(old.methods()) == set(new.methods())
        for method in old.methods():
            assert old[method].latencies == new[method].latencies
            assert old[method].privacy_timeline == new[method].privacy_timeline
            assert old[method].per_worker_spend == new[method].per_worker_spend
            assert old[method].total_utility == new[method].total_utility
            assert old[method].arrived_tasks == new[method].arrived_tasks
            assert old[method].expired == new[method].expired
