"""Unit tests for the per-figure experiment specs."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.figures import FIGURES, run_figure


class TestFigureCatalog:
    def test_all_eight_groups_present(self):
        assert set(FIGURES) == {
            "fig04",
            "fig05",
            "fig07",
            "fig09",
            "fig11",
            "fig13",
            "fig15",
            "fig17",
        }

    def test_every_group_covers_three_datasets(self):
        for spec in FIGURES.values():
            assert set(spec.datasets) == {"chengdu", "normal", "uniform"}

    def test_table_x_sweep_values(self):
        assert FIGURES["fig04"].values == (1.0, 1.5, 2.0, 2.5, 3.0)
        assert FIGURES["fig05"].values == (1.5, 3.0, 4.5, 6.0, 7.5)
        assert FIGURES["fig07"].values == (0.8, 1.1, 1.4, 1.7, 2.0)
        assert FIGURES["fig17"].values[0] == (0.5, 0.75)

    def test_fig17_uses_nppcf_ablations(self):
        methods = FIGURES["fig17"].methods
        assert "PUCE-nppcf" in methods and "PDCE-nppcf" in methods

    def test_unknown_figure(self):
        with pytest.raises(ConfigurationError, match="unknown figure"):
            run_figure("fig99")


class TestRunFigureSmall:
    @pytest.fixture(scope="class")
    def tiny_result(self):
        # One dataset, tiny scale: structure checks only.
        return run_figure("fig09", num_tasks=25, num_batches=1, datasets=("uniform",))

    def test_series_shapes(self, tiny_result):
        labels = tiny_result.labels("uniform")
        assert len(labels) == 5
        for method in tiny_result.spec.methods:
            assert len(tiny_result.series("uniform", method)) == 5

    def test_deviation_series_for_private(self, tiny_result):
        deviations = tiny_result.deviation_series("uniform", "PUCE")
        assert len(deviations) == 5

    def test_time_figures_have_no_deviation(self):
        result = run_figure(
            "fig04", num_tasks=20, num_batches=1, datasets=("uniform",)
        )
        with pytest.raises(ConfigurationError, match="deviation"):
            result.deviation_series("uniform", "PUCE")
