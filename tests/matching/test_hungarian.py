"""Unit tests for the from-scratch Kuhn-Munkres solver."""

import itertools
import math

import numpy as np
import pytest

from repro.errors import MatchingError
from repro.matching.hungarian import linear_sum_assignment, max_weight_matching


def brute_force_min(cost):
    """Reference: best complete assignment of the smaller side."""
    cost = np.asarray(cost, dtype=float)
    n, m = cost.shape
    transposed = n > m
    if transposed:
        cost = cost.T
        n, m = m, n
    best = math.inf
    for perm in itertools.permutations(range(m), n):
        total = sum(cost[i, j] for i, j in enumerate(perm))
        best = min(best, total)
    return best


class TestLinearSumAssignment:
    def test_known_example(self):
        cost = np.array([[4, 1, 3], [2, 0, 5], [3, 2, 2]], dtype=float)
        rows, cols = linear_sum_assignment(cost)
        assert cost[rows, cols].sum() == 5.0  # 1 + 2 + 2

    @pytest.mark.parametrize("shape", [(3, 3), (4, 4), (3, 5), (5, 3), (2, 6)])
    def test_matches_brute_force(self, rng, shape):
        for _ in range(15):
            cost = rng.uniform(0, 10, size=shape)
            rows, cols = linear_sum_assignment(cost)
            assert cost[rows, cols].sum() == pytest.approx(brute_force_min(cost))

    def test_maximize(self, rng):
        cost = rng.uniform(0, 10, size=(4, 4))
        rows, cols = linear_sum_assignment(cost, maximize=True)
        assert cost[rows, cols].sum() == pytest.approx(-brute_force_min(-cost))

    def test_forbidden_pairs_avoided(self):
        cost = np.array([[1.0, math.inf], [math.inf, 1.0]])
        rows, cols = linear_sum_assignment(cost)
        assert list(cols) == [0, 1]

    def test_infeasible_raises(self):
        cost = np.array([[math.inf, math.inf], [1.0, 2.0]])
        with pytest.raises(MatchingError, match="feasible"):
            linear_sum_assignment(cost)

    def test_rectangular_assigns_smaller_side(self, rng):
        cost = rng.uniform(0, 1, size=(3, 7))
        rows, cols = linear_sum_assignment(cost)
        assert len(rows) == 3
        assert len(set(cols.tolist())) == 3

    def test_tall_matrix(self, rng):
        cost = rng.uniform(0, 1, size=(7, 3))
        rows, cols = linear_sum_assignment(cost)
        assert len(rows) == 3
        assert len(set(rows.tolist())) == 3

    def test_empty_matrix(self):
        rows, cols = linear_sum_assignment(np.empty((0, 5)))
        assert len(rows) == 0 and len(cols) == 0

    def test_nan_rejected(self):
        with pytest.raises(MatchingError, match="NaN"):
            linear_sum_assignment(np.array([[math.nan]]))

    def test_one_dimensional_rejected(self):
        with pytest.raises(MatchingError, match="2-D"):
            linear_sum_assignment(np.array([1.0, 2.0]))

    def test_agrees_with_scipy(self, rng):
        from scipy.optimize import linear_sum_assignment as scipy_lsa

        for _ in range(10):
            cost = rng.uniform(0, 100, size=(8, 8))
            rows, cols = linear_sum_assignment(cost)
            srows, scols = scipy_lsa(cost)
            assert cost[rows, cols].sum() == pytest.approx(cost[srows, scols].sum())

    def test_negative_costs(self, rng):
        cost = rng.uniform(-10, 10, size=(5, 5))
        rows, cols = linear_sum_assignment(cost)
        assert cost[rows, cols].sum() == pytest.approx(brute_force_min(cost))


def brute_force_max_partial(weights):
    """Reference for max-weight partial matching (positive edges only)."""
    weights = np.asarray(weights, dtype=float)
    n, m = weights.shape
    edges = [
        (i, j)
        for i in range(n)
        for j in range(m)
        if math.isfinite(weights[i, j]) and weights[i, j] > 0
    ]
    best = 0.0
    for r in range(len(edges) + 1):
        for subset in itertools.combinations(edges, r):
            rows = [e[0] for e in subset]
            cols = [e[1] for e in subset]
            if len(set(rows)) == len(rows) and len(set(cols)) == len(cols):
                best = max(best, sum(weights[i, j] for i, j in subset))
    return best


class TestMaxWeightMatching:
    def test_prefers_heavier_edges(self):
        weights = np.array([[5.0, 1.0], [4.0, 2.0]])
        match = max_weight_matching(weights)
        assert match == {0: 0, 1: 1}  # 5 + 2 beats 1 + 4

    def test_skips_negative_edges(self):
        weights = np.array([[-1.0, -2.0]])
        assert max_weight_matching(weights) == {}

    def test_allow_negative_completes(self):
        weights = np.array([[-1.0, -2.0]])
        assert max_weight_matching(weights, allow_negative=True) == {0: 0}

    def test_forbidden_edges_never_taken(self):
        weights = np.array([[-math.inf, 3.0], [1.0, -math.inf]])
        assert max_weight_matching(weights) == {0: 1, 1: 0}

    @pytest.mark.parametrize("shape", [(3, 3), (2, 4), (4, 2)])
    def test_matches_brute_force(self, rng, shape):
        for _ in range(10):
            weights = rng.uniform(-2, 5, size=shape)
            match = max_weight_matching(weights)
            total = sum(weights[i, j] for i, j in match.items())
            assert total == pytest.approx(brute_force_max_partial(weights))

    def test_empty(self):
        assert max_weight_matching(np.empty((0, 0))) == {}

    def test_one_to_one_property(self, rng):
        weights = rng.uniform(0, 1, size=(6, 6))
        match = max_weight_matching(weights)
        assert len(set(match.values())) == len(match)
