"""Unit tests for the greedy matcher behind GRD."""

import math

from repro.matching.greedy import greedy_max_weight


class TestGreedyMaxWeight:
    def test_takes_heaviest_first(self):
        weights = {(0, 0): 5.0, (0, 1): 1.0, (1, 0): 4.0, (1, 1): 2.0}
        assert greedy_max_weight(weights) == {0: 0, 1: 1}

    def test_greedy_can_be_suboptimal(self):
        # Greedy takes (0,0)=3 and blocks the optimal {(0,1)=2, (1,0)=2}.
        weights = {(0, 0): 3.0, (0, 1): 2.0, (1, 0): 2.0}
        match = greedy_max_weight(weights)
        assert match == {0: 0}
        total = sum(weights[(r, c)] for r, c in match.items())
        assert total == 3.0 < 4.0  # documents the greedy gap

    def test_non_positive_weights_skipped(self):
        weights = {(0, 0): 0.0, (1, 1): -2.0, (2, 2): 1.0}
        assert greedy_max_weight(weights) == {2: 2}

    def test_min_weight_threshold(self):
        weights = {(0, 0): 0.5, (1, 1): 2.0}
        assert greedy_max_weight(weights, min_weight=1.0) == {1: 1}

    def test_infinite_weights_ignored(self):
        weights = {(0, 0): math.inf, (0, 1): 1.0}
        assert greedy_max_weight(weights) == {0: 1}

    def test_deterministic_tie_break(self):
        weights = {(1, 1): 2.0, (0, 0): 2.0, (0, 1): 2.0}
        # Ties resolve by (row, col): (0,0) first, then (1,1).
        assert greedy_max_weight(weights) == {0: 0, 1: 1}

    def test_empty(self):
        assert greedy_max_weight({}) == {}

    def test_one_to_one(self):
        weights = {(r, c): 1.0 + 0.1 * r + 0.01 * c for r in range(5) for c in range(3)}
        match = greedy_max_weight(weights)
        assert len(match) == 3  # limited by columns
        assert len(set(match.values())) == len(match)
