"""Unit tests for the Matching container."""

import pytest

from repro.errors import MatchingError
from repro.matching.bipartite import Matching


class TestMatching:
    def test_valid_one_to_one(self):
        match = Matching({"t1": "w1", "t2": "w2"})
        assert len(match) == 2
        assert match.worker_of("t1") == "w1"
        assert match.task_of("w2") == "t2"

    def test_duplicate_worker_rejected(self):
        with pytest.raises(MatchingError, match="assigned to both"):
            Matching({"t1": "w1", "t2": "w1"})

    def test_empty(self):
        match = Matching.empty()
        assert len(match) == 0
        assert match.worker_of("t") is None
        assert match.task_of("w") is None

    def test_contains_and_iter(self):
        match = Matching({1: 10, 2: 20})
        assert 1 in match
        assert 3 not in match
        assert sorted(match) == [(1, 10), (2, 20)]

    def test_total_weight(self):
        match = Matching({1: 10, 2: 20})
        weights = {(1, 10): 2.5, (2, 20): 1.5, (1, 20): 99.0}
        assert match.total_weight(weights) == pytest.approx(4.0)

    def test_total_weight_missing_pair_raises(self):
        match = Matching({1: 10})
        with pytest.raises(MatchingError, match="no weight entry"):
            match.total_weight({})

    def test_restricted_to(self):
        match = Matching({1: 10, 2: 20, 3: 30})
        sub = match.restricted_to({1, 3})
        assert dict(sub.pairs) == {1: 10, 3: 30}

    def test_pairs_defensively_copied(self):
        source = {1: 10}
        match = Matching(source)
        source[2] = 20
        assert len(match) == 1

    def test_inverse_is_consistent(self):
        pairs = {i: 100 + i for i in range(20)}
        match = Matching(pairs)
        for task, worker in pairs.items():
            assert match.task_of(worker) == task
            assert match.worker_of(task) == worker
