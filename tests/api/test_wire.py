"""The versioned wire records: round-trips, rejection, dispatch."""

import json
import math

import pytest

from repro.api.wire import (
    RECORD_TYPES,
    WIRE_VERSION,
    AckReply,
    Advance,
    AssignmentRecord,
    AssignmentsReply,
    BudgetReply,
    BudgetStatus,
    Drain,
    ErrorReply,
    Finish,
    FinishedReply,
    OpenSession,
    ShedReply,
    SubmitTask,
    SubmitWorker,
    decode_record,
    encode_record,
)
from repro.datasets.workload import Task, Worker
from repro.errors import ConfigurationError
from repro.spatial.geometry import Point
from repro.stream.events import Assignment

SAMPLES = [
    OpenSession(method="PUCE", options={"seed": 3, "cache": True}),
    OpenSession(method="UCE", default_deadline=0.5),
    SubmitTask(task_id=7, x=0.25, y=-1.5, value=4.5, at=0.1, deadline=2.0),
    SubmitTask(task_id=0, x=0.0, y=0.0, value=1.0),
    SubmitWorker(worker_id=3, x=1.0, y=2.0, radius=3.0, at=0.5, budget=40.0),
    SubmitWorker(worker_id=4, x=0.0, y=0.0, radius=1.0),
    Advance(to_time=12.5),
    Drain(),
    BudgetStatus(),
    BudgetStatus(worker_id=3),
    Finish(),
    AckReply(),
    BudgetReply(spend=1.5, lifetime_spend=4.0),
    BudgetReply(
        spend=0.5,
        lifetime_spend=2.5,
        remaining=1.0,
        window_seconds=6.0,
        worker_id=3,
    ),
    ShedReply(reason="queue_full"),
    ErrorReply(code="ConfigurationError", message="boom"),
    AssignmentRecord(
        time=0.25,
        flush_index=3,
        task_id=1,
        worker_id=2,
        distance=0.1,
        utility=0.9,
        latency=0.05,
        method="PUCE",
    ),
    AssignmentsReply(
        assignments=(
            AssignmentRecord(
                time=0.25,
                flush_index=0,
                task_id=1,
                worker_id=2,
                distance=0.1,
                utility=0.9,
                latency=0.05,
                method="UCE",
            ),
        )
    ),
    FinishedReply(
        method="PUCE",
        arrived_tasks=10,
        assigned=8,
        expired=1,
        leftover=1,
        total_utility=7.5,
        total_distance=2.25,
        privacy_spend=3.0,
        flushes=4,
        cache_hit_rate=0.25,
    ),
]


class TestRoundTrips:
    @pytest.mark.parametrize("record", SAMPLES, ids=lambda r: r.kind)
    def test_json_round_trip_is_identity(self, record):
        payload = json.loads(json.dumps(encode_record(record)))
        assert decode_record(payload) == record

    @pytest.mark.parametrize("record", SAMPLES, ids=lambda r: r.kind)
    def test_envelope_is_stamped(self, record):
        payload = encode_record(record)
        assert payload["kind"] == record.kind
        assert payload["v"] == WIRE_VERSION

    def test_every_registered_kind_dispatches(self):
        for kind, cls in RECORD_TYPES.items():
            assert cls.kind == kind

    def test_awkward_floats_survive(self):
        record = SubmitTask(
            task_id=1, x=0.1 + 0.2, y=-0.0, value=1e-308, release_time=1e17
        )
        back = decode_record(json.loads(json.dumps(encode_record(record))))
        assert back == record


class TestInfinityNullSpelling:
    def test_unbounded_budget_is_json_null(self):
        worker = Worker(id=1, location=Point(0, 0), radius=2.0)
        record = SubmitWorker.from_worker(worker, budget=math.inf)
        assert record.budget is None
        assert encode_record(record)["budget"] is None
        assert record.budget_capacity == math.inf

    def test_finite_budget_round_trips(self):
        worker = Worker(id=1, location=Point(0, 0), radius=2.0)
        record = SubmitWorker.from_worker(worker, budget=40.0)
        back = decode_record(json.loads(json.dumps(encode_record(record))))
        assert back.budget_capacity == 40.0


class TestRejection:
    def test_unknown_key_is_refused(self):
        payload = encode_record(Advance(to_time=1.0))
        payload["typo"] = 1
        with pytest.raises(ConfigurationError, match="typo"):
            decode_record(payload)

    def test_wrong_version_is_refused(self):
        payload = encode_record(Drain())
        payload["v"] = WIRE_VERSION + 1
        with pytest.raises(ConfigurationError, match="version"):
            decode_record(payload)

    def test_unknown_kind_is_refused(self):
        with pytest.raises(ConfigurationError, match="teleport"):
            decode_record({"kind": "teleport", "v": WIRE_VERSION})

    def test_kind_mismatch_is_refused(self):
        payload = encode_record(Drain())
        with pytest.raises(ConfigurationError):
            Finish.from_dict(payload)

    def test_missing_kind_is_refused(self):
        with pytest.raises(ConfigurationError):
            decode_record({"v": WIRE_VERSION})


class TestDomainConversions:
    def test_task_round_trip(self):
        task = Task(id=5, location=Point(1.5, -2.5), value=4.5, release_time=0.75)
        record = SubmitTask.from_task(task, at=1.0, deadline=3.0)
        assert record.to_task() == task
        assert record.at == 1.0
        assert record.deadline == 3.0

    def test_worker_round_trip(self):
        worker = Worker(id=9, location=Point(0.5, 0.5), radius=2.5)
        record = SubmitWorker.from_worker(worker, at=0.25, budget=12.0)
        assert record.to_worker() == worker
        assert record.at == 0.25

    def test_assignment_round_trip(self):
        event = Assignment(
            time=0.5,
            flush_index=2,
            task_id=4,
            worker_id=7,
            distance=0.3,
            utility=0.7,
            latency=0.1,
            method="GRD",
        )
        record = AssignmentRecord.from_assignment(event)
        assert record.to_assignment() == event
