"""`SolveOptions`: the single validation + normalization path."""

import dataclasses

import pytest

from repro.api.options import PARALLEL_MODES, SWEEP_MODES, SolveOptions
from repro.errors import ConfigurationError
from repro.stream.simulator import StreamConfig


class TestValidation:
    def test_defaults_are_valid(self):
        options = SolveOptions()
        assert options.seed == 0
        assert options.sweep == "auto"
        assert options.ppcf is None

    @pytest.mark.parametrize(
        "bad",
        [
            {"sweep": "simd"},
            {"shards": -1},
            {"parallel": "fork"},
            {"shards": "always"},  # only the literal "auto" is accepted
            {"parallel": "thread", "shards": 0},
            {"max_shard_workers": 0},
            {"max_batch_size": 0},
            {"max_wait": 0.0},
            {"max_wait": -1.0},
            {"max_rounds": 0},
            {"target_flush_seconds": 0.0},
            {"sweep_auto_threshold": -1},
            {"sweep_auto_threshold": 2.5},
            {"sweep_auto_threshold": "many"},
            {"window_seconds": 0.0},
            {"window_seconds": -1.0},
            {"window_seconds": float("inf")},
            {"window_budget": 2.0},  # requires window_seconds
            {"window_seconds": 5.0, "window_budget": 0.0},
            {"window_composition": "parallel"},
            {"window_seconds": 5.0, "window_decay": 1.0},
            {"window_decay": 0.5},  # requires window_seconds
            {
                "window_seconds": 5.0,
                "window_composition": "tree",
                "window_decay": 0.5,
            },
            {"timeline_limit": 3},
            {"timeline_limit": 0},
            {"timeline_limit": True},
        ],
    )
    def test_invalid_knobs_raise_typed_errors(self, bad):
        with pytest.raises(ConfigurationError):
            SolveOptions(**bad)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SolveOptions().seed = 5

    def test_replace_revalidates(self):
        options = SolveOptions(shards=4)
        assert options.replace(parallel="thread").parallel == "thread"
        with pytest.raises(ConfigurationError):
            options.replace(sweep="nope")

    def test_one_validation_path_matches_stream_config(self):
        """The same bad knob fails identically at either entry point."""
        with pytest.raises(ConfigurationError) as from_options:
            SolveOptions(parallel="fork", shards=2)
        with pytest.raises(ConfigurationError) as from_config:
            StreamConfig(parallel="fork", shards=2)
        assert str(from_options.value) == str(from_config.value)

    def test_mode_tuples_are_the_single_source(self):
        from repro.stream.shards import PARALLEL_MODES as shard_modes

        assert shard_modes is PARALLEL_MODES
        assert set(SWEEP_MODES) == {"auto", "vectorized", "scalar"}


class TestMappingRoundTrip:
    def test_to_dict_from_mapping_round_trip(self):
        options = SolveOptions(
            seed=9, sweep="scalar", ppcf=False, shards=2, parallel="thread"
        )
        assert SolveOptions.from_mapping(options.to_dict()) == options

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown option key"):
            SolveOptions.from_mapping({"seed": 1, "sheds": 4})


class TestProjection:
    def test_stream_config_carries_the_unified_knobs(self):
        options = SolveOptions(
            max_batch_size=77,
            max_wait=0.5,
            shards=3,
            parallel="thread",
            max_shard_workers=2,
            adaptive=True,
            target_flush_seconds=0.1,
        )
        config = options.stream_config()
        assert isinstance(config, StreamConfig)
        assert config.max_batch_size == 77
        assert config.max_wait == 0.5
        assert config.shards == 3
        assert config.parallel == "thread"
        assert config.max_shard_workers == 2
        assert config.adaptive is True
        assert config.target_flush_seconds == 0.1
        assert config.cache is False
        assert config.workspace is True

    def test_stream_config_carries_the_flush_hot_path_knobs(self):
        config = SolveOptions(cache=True, workspace=False).stream_config()
        assert config.cache is True
        assert config.workspace is False

    def test_sweep_auto_threshold_reaches_the_engine(self):
        from repro.core.registry import make_solver

        solver = make_solver("UCE", SolveOptions(sweep_auto_threshold=5))
        assert solver.sweep_auto_threshold == 5
        default = make_solver("UCE", SolveOptions())
        assert default.sweep_auto_threshold == type(default).VECTOR_MIN_PAIRS

    def test_stream_config_extra_passthrough(self):
        config = SolveOptions().stream_config(speed=9.0, min_service=0.25)
        assert config.speed == 9.0
        assert config.min_service == 0.25

    def test_stream_config_carries_the_horizon_knobs(self):
        options = SolveOptions(
            window_seconds=6.0,
            window_budget=2.0,
            window_composition="tree",
            timeline_limit=32,
        )
        config = options.stream_config()
        policy = config.horizon
        assert policy is not None
        assert policy.window_seconds == 6.0
        assert policy.window_budget == 2.0
        assert policy.composition == "tree"
        assert policy.decay is None
        assert config.timeline_limit == 32

    def test_default_options_project_no_horizon_policy(self):
        options = SolveOptions()
        assert options.horizon_policy() is None
        config = options.stream_config()
        assert config.horizon is None
        assert config.timeline_limit is None

    def test_horizon_round_trips_through_mapping(self):
        options = SolveOptions(
            window_seconds=5.0, window_decay=0.25, timeline_limit=16
        )
        assert SolveOptions.from_mapping(options.to_dict()) == options
