"""`ScenarioSpec`: declarative experiments that round-trip through JSON."""

import json

import pytest

from repro.api.options import SolveOptions
from repro.api.scenario import ScenarioSpec, run_scenario
from repro.errors import ConfigurationError

SMALL = dict(
    name="tiny",
    horizon=0.4,
    task_rate=15.0,
    worker_rate=5.0,
    initial_workers=25,
    methods=("PUCE", "UCE"),
    options=SolveOptions(seed=3, max_batch_size=10, max_wait=0.1),
)


class TestJsonRoundTrip:
    def test_dict_round_trip_is_exact(self):
        spec = ScenarioSpec(**SMALL)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_is_exact(self):
        spec = ScenarioSpec(arrivals="rushhour", methods=("PDCE(ppcf=off)",))
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "spec.json"
        spec = ScenarioSpec(**SMALL)
        spec.to_file(path)
        assert ScenarioSpec.from_file(path) == spec
        # The artifact is plain JSON with the one nested options object.
        raw = json.loads(path.read_text())
        assert raw["name"] == "tiny"
        assert raw["options"]["seed"] == 3

    def test_partial_dicts_use_defaults(self):
        spec = ScenarioSpec.from_dict({"arrivals": "bursty"})
        assert spec.arrivals == "bursty"
        assert spec.options == SolveOptions()


class TestRejection:
    def test_unknown_scenario_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario key"):
            ScenarioSpec.from_dict({"arivals": "poisson"})

    def test_unknown_option_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown option key"):
            ScenarioSpec.from_dict({"options": {"sheds": 2}})

    def test_unknown_arrivals_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown arrivals"):
            ScenarioSpec(arrivals="tsunami")

    def test_method_typos_fail_at_spec_time(self):
        with pytest.raises(ConfigurationError, match="unknown method"):
            ScenarioSpec(methods=("PUSE",))

    def test_empty_methods_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            ScenarioSpec(methods=())

    def test_nonpositive_horizon_rejected(self):
        with pytest.raises(ConfigurationError, match="horizon"):
            ScenarioSpec(horizon=0.0)


class TestNormalisation:
    def test_horizon_defaults_by_arrival_kind(self):
        assert ScenarioSpec().horizon == 3.0
        assert ScenarioSpec(arrivals="trace").horizon == 24.0

    def test_with_seed_touches_only_the_single_seed(self):
        spec = ScenarioSpec(**SMALL)
        reseeded = spec.with_seed(99)
        assert reseeded.options.seed == 99
        assert reseeded.to_scenario().seed == 99
        assert reseeded.options.replace(seed=3) == spec.options

    def test_to_scenario_mirrors_fields(self):
        spec = ScenarioSpec(**SMALL)
        scenario = spec.to_scenario()
        assert scenario.arrivals == spec.arrivals
        assert scenario.horizon == spec.horizon
        assert scenario.task_rate == spec.task_rate
        assert scenario.seed == spec.options.seed


class TestRun:
    def test_run_reports_every_method(self):
        report = ScenarioSpec(**SMALL).run()
        assert set(report.methods()) == {"PUCE", "UCE"}

    def test_run_scenario_accepts_a_path(self, tmp_path):
        path = tmp_path / "spec.json"
        ScenarioSpec(**SMALL).to_file(path)
        from_file = run_scenario(path)
        direct = ScenarioSpec(**SMALL).run()
        for method in direct.methods():
            assert from_file[method].latencies == direct[method].latencies
            assert from_file[method].privacy_timeline == direct[method].privacy_timeline

    def test_seed_override_changes_the_draws(self):
        base = ScenarioSpec(**SMALL)
        assert (
            base.run(seed=4)["PUCE"].latencies != base.run()["PUCE"].latencies
            or base.run(seed=4)["PUCE"].arrived_tasks != base.run()["PUCE"].arrived_tasks
        )
