"""`DispatchSession`: the request-by-request service facade."""

import math

import pytest

from repro.api.options import SolveOptions
from repro.api.session import DispatchSession, SessionConfig
from repro.datasets.synthetic import NormalGenerator
from repro.datasets.workload import Task, Worker
from repro.errors import ConfigurationError
from repro.spatial.geometry import Point
from repro.stream.arrivals import PoissonProcess, StreamWorkload
from repro.stream.events import Assignment
from repro.stream.runner import StreamRunner
from repro.stream.simulator import StreamConfig


def fleet(session, n=4, at=0.0):
    for j in range(n):
        session.submit_worker(
            Worker(id=100 + j, location=Point(float(j), 0.0), radius=3.0), at=at
        )


class TestLifecycle:
    def test_submit_advance_drain(self):
        with DispatchSession("UCE", options=SolveOptions(seed=7, max_wait=0.1)) as s:
            fleet(s)
            s.submit_task(Task(id=0, location=Point(0.5, 0.0), value=4.5), at=0.05)
            s.advance(to_time=0.3)
            events = s.drain()
            assert len(events) == 1
            event = events[0]
            assert isinstance(event, Assignment)
            assert event.task_id == 0
            assert event.worker_id in (100, 101, 102, 103)
            assert event.method == "UCE"
            assert event.latency >= 0.0
            assert event.flush_index == 0
            # Drain is a cursor, not a replay.
            assert s.drain() == ()

    def test_clock_and_pending(self):
        session = DispatchSession("UCE", options=SolveOptions(max_wait=10.0))
        fleet(session)
        session.submit_task(Task(id=0, location=Point(0.0, 0.0), value=4.5), at=1.0)
        assert session.clock == 0.0
        session.advance(2.0)
        assert session.clock == 2.0
        assert session.pending_tasks == 1  # wait trigger not reached yet
        session.close()

    def test_method_reports_the_table_ix_name(self):
        assert DispatchSession("PDCE(ppcf=off)").method == "PDCE-nppcf"

    def test_past_arrivals_are_refused(self):
        session = DispatchSession("UCE")
        session.advance(5.0)
        with pytest.raises(ConfigurationError, match="in the past"):
            session.submit_task(Task(id=0, location=Point(0, 0), value=1.0), at=1.0)

    def test_finish_is_terminal(self):
        session = DispatchSession("UCE")
        fleet(session)
        stats = session.finish()
        assert stats.method == "UCE"
        with pytest.raises(ConfigurationError, match="finalized"):
            session.advance(1.0)
        with pytest.raises(ConfigurationError, match="finalized"):
            session.submit_worker(Worker(id=1, location=Point(0, 0), radius=1.0))

    def test_default_deadline_expires_ignored_tasks(self):
        # No workers ever arrive: the task must expire after the default
        # patience, not linger forever.
        session = DispatchSession("UCE", SessionConfig(default_deadline=0.5))
        session.submit_task(Task(id=0, location=Point(0, 0), value=1.0), at=0.0)
        session.advance(2.0)
        stats = session.finish()
        assert stats.expired == 1

    def test_bad_default_deadline_rejected(self):
        with pytest.raises(ConfigurationError, match="default_deadline"):
            DispatchSession("UCE", SessionConfig(default_deadline=0.0))

    def test_advance_expires_even_without_a_due_timer(self):
        # The only armed timer is the flush at max_wait=0.25; overdue
        # tasks must still be expired up to the advanced clock.
        session = DispatchSession("GRD", options=SolveOptions(max_wait=0.25))
        session.submit_task(
            Task(id=0, location=Point(0, 0), value=1.0), at=0.0, deadline=0.1
        )
        session.advance(0.2)
        assert session.stats.expired == 1
        assert session.pending_tasks == 0
        session.close()

    def test_explicit_deadline_is_absolute(self):
        session = DispatchSession("UCE", options=SolveOptions(max_wait=0.2))
        session.submit_task(
            Task(id=0, location=Point(0, 0), value=1.0), at=1.0, deadline=9.0
        )
        session.advance(8.0)
        assert session.stats.expired == 0
        session.advance(9.5)
        assert session.stats.expired == 1
        session.close()


class TestResourceLifecycle:
    def test_run_closes_the_pool_when_the_solver_raises(self):
        class ExplodingSolver:
            name = "BOOM"
            is_private = False

            def solve(self, instance, seed=None, options=None):
                raise RuntimeError("solver exploded")

        session = DispatchSession(
            ExplodingSolver(),
            options=SolveOptions(shards=1, parallel="thread", max_wait=0.05),
        )
        fleet(session)
        events = [
            # enough arrivals to force a flush through the exploding solver
        ]
        with pytest.raises(RuntimeError, match="exploded"):
            session.submit_task(
                Task(id=0, location=Point(0.5, 0.0), value=4.5), at=0.01
            )
            session.run(events)
        # The thread pool must not leak past the failed run.
        assert session._simulator._shard_executor._pool is None

    def test_finish_releases_the_workspace_arena(self):
        session = DispatchSession("UCE", options=SolveOptions(max_wait=0.05))
        fleet(session)
        session.submit_task(Task(id=0, location=Point(0.5, 0.0), value=4.5), at=0.01)
        session.advance(0.2)
        workspace = session._simulator._workspace
        assert workspace is not None
        session.finish()
        # The same pooled-resource guarantee the shard executors have:
        # a finished session holds no arena memory.
        assert workspace.held_bytes == 0

    def test_failed_run_releases_the_workspace_arena(self):
        from repro.core.nonprivate import UCESolver

        class ExplodingEngine(UCESolver):
            def solve(self, instance, seed=None, **kwargs):
                raise RuntimeError("solver exploded")

        session = DispatchSession(
            ExplodingEngine(), options=SolveOptions(max_wait=0.05)
        )
        fleet(session)
        workspace = session._simulator._workspace
        assert workspace is not None
        # Seed the arena so the release is observable.
        workspace.request("probe", 64, float, 0.0)
        assert workspace.held_bytes > 0
        with pytest.raises(RuntimeError, match="exploded"):
            session.submit_task(
                Task(id=0, location=Point(0.5, 0.0), value=4.5), at=0.01
            )
            session.run([])
        assert workspace.held_bytes == 0

    def test_drain_releases_consumed_events(self):
        session = DispatchSession("UCE", options=SolveOptions(max_wait=0.05))
        fleet(session)
        session.submit_task(Task(id=0, location=Point(0.5, 0.0), value=4.5), at=0.01)
        session.advance(0.2)
        assert len(session.drain()) == 1
        # A long-lived session keeps only the undrained backlog.
        assert session._simulator.assignment_log == []
        session.submit_task(Task(id=1, location=Point(1.5, 0.0), value=4.5), at=0.3)
        session.advance(0.5)
        (event,) = session.drain()
        assert event.task_id == 1
        session.close()


class TestReplayEquivalence:
    def test_session_run_matches_stream_runner(self):
        workload = StreamWorkload(
            task_process=PoissonProcess(rate=25.0, horizon=1.0),
            worker_process=PoissonProcess(rate=8.0, horizon=1.0),
            spatial=NormalGenerator(num_tasks=100, num_workers=200, seed=3),
            initial_workers=30,
            seed=5,
        )
        config = StreamConfig(max_batch_size=15, max_wait=0.15)
        expected = StreamRunner(["PUCE"], config=config).run_workload(
            workload, seed=11
        )["PUCE"]
        session = DispatchSession("PUCE", SessionConfig(stream=config, seed=11))
        actual = session.run(workload.events(seed=11))
        assert actual.latencies == expected.latencies
        assert actual.privacy_timeline == expected.privacy_timeline
        assert actual.assigned == expected.assigned
        assert actual.total_utility == expected.total_utility

    def test_assignment_log_matches_stats(self):
        workload = StreamWorkload(
            task_process=PoissonProcess(rate=20.0, horizon=0.8),
            worker_process=PoissonProcess(rate=5.0, horizon=0.8),
            spatial=NormalGenerator(num_tasks=80, num_workers=160, seed=2),
            initial_workers=25,
            seed=4,
        )
        session = DispatchSession("UCE", options=SolveOptions(seed=9, max_wait=0.1))
        stats = session.run(workload.events(seed=9))
        log = session.drain()
        assert len(log) == stats.assigned
        assert sorted(e.latency for e in log) == sorted(stats.latencies)
        assert [e.flush_index for e in log] == sorted(e.flush_index for e in log)
        assert math.isclose(sum(e.utility for e in log), stats.total_utility)


class TestSessionConfig:
    def test_defaults_validate(self):
        config = SessionConfig()
        assert config.default_deadline == 1.0
        assert config.record_assignments is True
        assert config.seed is None

    def test_bad_options_type(self):
        with pytest.raises(ConfigurationError, match="options"):
            SessionConfig(options={"seed": 3})

    def test_bad_deadline(self):
        with pytest.raises(ConfigurationError, match="default_deadline"):
            SessionConfig(default_deadline=-1.0)

    def test_from_mapping_round_trip(self):
        config = SessionConfig(
            options=SolveOptions(seed=3, max_wait=0.1),
            seed=7,
            default_deadline=0.5,
            record_assignments=False,
        )
        assert SessionConfig.from_mapping(config.to_dict()) == config

    def test_from_mapping_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="typo"):
            SessionConfig.from_mapping({"typo": 1})

    def test_from_mapping_refuses_process_local_fields(self):
        with pytest.raises(ConfigurationError, match="process-local"):
            SessionConfig.from_mapping({"cache": {"max_entries": 4}})

    def test_replace_revalidates(self):
        config = SessionConfig()
        with pytest.raises(ConfigurationError, match="default_deadline"):
            config.replace(default_deadline=0.0)

    def test_session_and_options_together_refused(self):
        with pytest.raises(ConfigurationError, match="not both"):
            DispatchSession(
                "UCE", SessionConfig(), options=SolveOptions(seed=1)
            )

    def test_unknown_kwarg_refused(self):
        with pytest.raises(ConfigurationError, match="tracer"):
            DispatchSession("UCE", tracer=object())


class TestLegacyKwargShims:
    """The pre-SessionConfig keywords: warn, but drift by not one bit."""

    def small_events(self, seed=3):
        workload = StreamWorkload(
            task_process=PoissonProcess(rate=20.0, horizon=0.8),
            worker_process=PoissonProcess(rate=6.0, horizon=0.8),
            spatial=NormalGenerator(num_tasks=80, num_workers=160, seed=2),
            initial_workers=20,
            seed=seed,
        )
        return list(workload.events(seed=seed))

    def test_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="SessionConfig"):
            session = DispatchSession("UCE", default_deadline=0.5)
        session.close()

    def test_legacy_kwargs_with_config_refused(self):
        with pytest.raises(ConfigurationError, match="alongside"):
            DispatchSession("UCE", SessionConfig(), seed=3)

    def test_legacy_run_is_bit_identical(self):
        events = self.small_events()
        config = StreamConfig(max_batch_size=12, max_wait=0.15)
        with pytest.warns(DeprecationWarning):
            legacy = DispatchSession(
                "PUCE", config=config, seed=11, record_assignments=False
            )
        old = legacy.run(events)
        modern = DispatchSession(
            "PUCE",
            SessionConfig(stream=config, seed=11, record_assignments=False),
        )
        new = modern.run(events)
        assert old.latencies == new.latencies
        assert old.privacy_timeline == new.privacy_timeline
        assert old.total_utility == new.total_utility
        assert old.assigned == new.assigned

    def test_legacy_cache_kwarg_shares_the_cache(self):
        from repro.stream.cache import FlushSolverCache

        shared = FlushSolverCache()
        events = self.small_events()
        with pytest.warns(DeprecationWarning):
            session = DispatchSession("UCE", cache=shared, seed=5)
        session.run(events)
        assert len(shared) > 0


class TestApplyWireRecords:
    def test_apply_drives_a_full_session(self):
        from repro.api.wire import (
            Advance,
            Drain,
            Finish,
            SubmitTask,
            SubmitWorker,
        )

        session = DispatchSession("UCE", options=SolveOptions(max_wait=0.1))
        session.apply(
            SubmitWorker(worker_id=1, x=0.0, y=0.0, radius=5.0)
        )
        session.apply(
            SubmitTask(task_id=1, x=0.1, y=0.1, value=1.0)
        )
        session.apply(Advance(to_time=1.0))
        events = session.apply(Drain())
        assert len(events) == 1
        stats = session.apply(Finish())
        assert stats.assigned == 1

    def test_apply_refuses_reply_records(self):
        from repro.api.wire import AckReply

        session = DispatchSession("UCE")
        with pytest.raises(ConfigurationError, match="AckReply"):
            session.apply(AckReply())
        session.close()

    def test_apply_default_deadline_applies(self):
        from repro.api.wire import Advance, Finish, SubmitTask

        session = DispatchSession("UCE", SessionConfig(default_deadline=0.25))
        session.apply(SubmitTask(task_id=0, x=0.0, y=0.0, value=1.0))
        session.apply(Advance(to_time=2.0))
        stats = session.apply(Finish())
        assert stats.expired == 1


class TestBudgetStatus:
    def test_global_session_reports_lifetime_totals(self):
        with DispatchSession("PUCE", options=SolveOptions(seed=3, max_wait=0.1)) as s:
            for j in range(3):
                s.submit_worker(
                    Worker(id=j, location=Point(float(j), 0.0), radius=3.0),
                    budget=40.0,
                )
            s.submit_task(Task(id=0, location=Point(0.5, 0.0), value=4.5), at=0.05)
            s.advance(to_time=0.5)
            reply = s.budget_status()
            assert reply.worker_id is None
            assert reply.window_seconds is None
            assert reply.remaining is None  # no tenant cap at session level
            assert reply.spend == pytest.approx(s.budget_spend())
            assert reply.lifetime_spend == pytest.approx(reply.spend)
            assert reply.spend > 0.0

    def test_worker_level_reading_maps_infinite_remaining_to_none(self):
        with DispatchSession("UCE", options=SolveOptions(max_wait=0.1)) as s:
            s.submit_worker(Worker(id=7, location=Point(0.0, 0.0), radius=3.0))
            reply = s.budget_status(worker_id=7)
            assert reply.worker_id == 7
            assert reply.spend == 0.0
            assert reply.remaining is None  # inf capacity: null on the wire

    def test_worker_level_reading_under_a_capped_budget(self):
        with DispatchSession("PUCE", options=SolveOptions(seed=3, max_wait=0.1)) as s:
            s.submit_worker(
                Worker(id=0, location=Point(0.0, 0.0), radius=3.0), budget=40.0
            )
            s.submit_task(Task(id=0, location=Point(0.5, 0.0), value=4.5), at=0.05)
            s.advance(to_time=0.5)
            reply = s.budget_status(worker_id=0)
            assert reply.spend > 0.0
            assert reply.remaining == pytest.approx(40.0 - reply.spend)

    def test_windowed_session_spend_falls_as_releases_age_out(self):
        options = SolveOptions(
            seed=3, max_wait=0.1, window_seconds=2.0, window_budget=40.0
        )
        with DispatchSession("PUCE", options=options) as s:
            s.submit_worker(
                Worker(id=0, location=Point(0.0, 0.0), radius=3.0), budget=40.0
            )
            s.submit_task(Task(id=0, location=Point(0.5, 0.0), value=4.5), at=0.05)
            s.advance(to_time=0.5)
            live = s.budget_status()
            assert live.window_seconds == 2.0
            assert live.spend > 0.0
            assert s.budget_spend() == pytest.approx(live.spend)
            # Two window-widths later the release has aged out: the
            # tenant-level spend regenerates, the lifetime audit doesn't.
            s.advance(to_time=5.0)
            later = s.budget_status()
            assert later.spend == 0.0
            assert later.lifetime_spend == pytest.approx(live.lifetime_spend)
            assert s.budget_spend() == 0.0
