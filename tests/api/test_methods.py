"""`MethodSpec`: parse/format round-trips and solver construction."""

import pytest

from repro.api.methods import MethodSpec
from repro.api.options import SolveOptions
from repro.core.registry import available_methods, make_solver
from repro.errors import ConfigurationError


class TestParseFormatRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "PUCE",
            "PDCE",
            "UCE",
            "DCE",
            "PGT",
            "GT",
            "GRD",
            "OPT",
            "PDCE(ppcf=off)",
            "PUCE(ppcf=off, sweep=scalar)",
            "UCE(sweep=vectorized, max_rounds=500)",
            "PGT(max_passes=3)",
        ],
    )
    def test_canonical_round_trip(self, text):
        spec = MethodSpec.parse(text)
        assert MethodSpec.parse(spec.canonical()) == spec
        # Canonical strings are fixed points of parse-format.
        assert MethodSpec.parse(spec.canonical()).canonical() == spec.canonical()

    @pytest.mark.parametrize(
        "messy,canonical",
        [
            ("  PUCE  ", "PUCE"),
            ("PDCE( ppcf = off )", "PDCE(ppcf=off)"),
            ("PDCE(ppcf=false)", "PDCE(ppcf=off)"),
            ("PDCE(ppcf=on)", "PDCE"),  # the default normalises away
            ("PDCE(ppcf=true)", "PDCE"),
            ("UCE(max_rounds=500,sweep=scalar)", "UCE(sweep=scalar, max_rounds=500)"),
        ],
    )
    def test_messy_inputs_normalise(self, messy, canonical):
        assert MethodSpec.parse(messy).canonical() == canonical

    def test_legacy_registry_names_parse(self):
        assert MethodSpec.parse("PUCE-nppcf") == MethodSpec("PUCE", ppcf=False)
        assert MethodSpec.parse("PDCE-nppcf").canonical() == "PDCE(ppcf=off)"

    def test_str_is_canonical(self):
        assert str(MethodSpec("PDCE", ppcf=False)) == "PDCE(ppcf=off)"

    def test_parse_is_idempotent_on_specs(self):
        spec = MethodSpec("PUCE", sweep="scalar")
        assert MethodSpec.parse(spec) is spec


class TestRejection:
    @pytest.mark.parametrize(
        "text",
        [
            "PXCE",
            "PUCE(",
            "PUCE(ppcf)",
            "PUCE(ppcf=off, ppcf=on)",
            "PUCE(color=red)",
            "PUCE(ppcf=0.5)",
            "UCE(ppcf=off)",  # no PPCF gate
            "PGT(sweep=scalar)",  # not conflict-elimination
            "PGT(max_rounds=5)",
            "GRD(max_passes=5)",
            "UCE(max_rounds=0)",
            "PGT(max_passes=0)",
            "UCE(sweep=simd)",
        ],
    )
    def test_bad_specs_raise_configuration_error(self, text):
        with pytest.raises(ConfigurationError):
            MethodSpec.parse(text)


class TestMake:
    def test_registry_name_matches_built_solver(self):
        for text in ("PUCE", "PDCE", "UCE", "DCE", "PGT", "GT", "GRD", "OPT",
                     "PUCE(ppcf=off)", "PDCE(ppcf=off)"):
            spec = MethodSpec.parse(text)
            assert spec.make().name == spec.registry_name()

    def test_is_private_matches_built_solver(self):
        for text in ("PUCE", "PDCE", "PGT", "UCE", "DCE", "GT", "GRD", "OPT"):
            spec = MethodSpec.parse(text)
            assert spec.make().is_private == spec.is_private

    def test_spec_parameters_reach_the_solver(self):
        solver = MethodSpec.parse("UCE(sweep=scalar, max_rounds=7)").make()
        assert solver.sweep == "scalar"
        assert solver.max_rounds == 7
        assert MethodSpec.parse("PGT(max_passes=3)").make().max_passes == 3

    def test_options_fill_the_gaps_spec_wins(self):
        options = SolveOptions(sweep="vectorized", max_rounds=11, ppcf=False)
        filled = MethodSpec.parse("PUCE").make(options)
        assert filled.sweep == "vectorized"
        assert filled.max_rounds == 11
        assert filled.name == "PUCE-nppcf"
        # Spec-level parameters beat the options.
        pinned = MethodSpec.parse("PUCE(sweep=scalar)").make(options)
        assert pinned.sweep == "scalar"

    def test_make_solver_accepts_specs_and_options(self):
        assert make_solver("PDCE(ppcf=off)").name == "PDCE-nppcf"
        assert make_solver(MethodSpec("UCE", sweep="scalar")).sweep == "scalar"
        assert make_solver("UCE", SolveOptions(sweep="scalar")).sweep == "scalar"

    def test_make_solver_plain_names_unchanged(self):
        """Every pre-registered name still builds, with the same defaults.

        The factory table and MethodSpec.make are two construction paths
        by design (the factory path is the guaranteed-unchanged legacy
        one); this pin makes any drift between their defaults a test
        failure, not a silent behavior change.
        """
        for name in available_methods():
            via_factory = make_solver(name)
            via_spec = MethodSpec.parse(name).make()
            assert via_factory.name == via_spec.name == name
            assert type(via_factory) is type(via_spec)
            assert vars(via_factory) == vars(via_spec)

    def test_configured_solver_solves_identically(self, small_instance):
        """A spec-built solver is the same protocol, bit for bit."""
        direct = make_solver("PUCE").solve(small_instance, seed=5)
        via_spec = MethodSpec.parse("PUCE").make().solve(small_instance, seed=5)
        assert direct.matched_pairs() == via_spec.matched_pairs()

    def test_solve_options_supply_the_seed(self, small_instance):
        solver = make_solver("PUCE")
        explicit = solver.solve(small_instance, seed=5)
        from_options = solver.solve(small_instance, options=SolveOptions(seed=5))
        assert explicit.matched_pairs() == from_options.matched_pairs()
