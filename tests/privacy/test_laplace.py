"""Unit tests for the rate-parameterised Laplace distribution."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from scipy import integrate, stats

from repro.privacy.laplace import (
    LaplaceDifference,
    laplace_cdf,
    laplace_pdf,
    laplace_sf,
    sample_laplace,
)


class TestScalarLaplace:
    def test_pdf_peak_value(self):
        # Density at the location is rate/2.
        assert laplace_pdf(0.0, rate=2.0) == 1.0
        assert laplace_pdf(5.0, rate=0.5, loc=5.0) == 0.25

    def test_pdf_symmetry(self):
        assert laplace_pdf(1.3, 0.7) == laplace_pdf(-1.3, 0.7)

    def test_pdf_integrates_to_one(self):
        total, _ = integrate.quad(lambda x: laplace_pdf(x, 1.3), -50, 50)
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_cdf_at_location_is_half(self):
        assert laplace_cdf(0.0, 1.0) == 0.5
        assert laplace_cdf(2.0, 3.0, loc=2.0) == 0.5

    def test_cdf_sf_complement(self):
        for x in (-3.0, -0.5, 0.0, 0.5, 3.0):
            assert laplace_cdf(x, 1.7) + laplace_sf(x, 1.7) == pytest.approx(1.0)

    def test_cdf_matches_scipy(self):
        rate = 0.8
        ref = stats.laplace(scale=1.0 / rate)
        for x in np.linspace(-5, 5, 21):
            assert laplace_cdf(x, rate) == pytest.approx(ref.cdf(x), abs=1e-12)

    def test_cdf_monotone(self):
        xs = np.linspace(-4, 4, 100)
        values = [laplace_cdf(x, 0.6) for x in xs]
        assert all(a <= b for a, b in zip(values, values[1:]))

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.inf, math.nan])
    def test_invalid_rate_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="rate"):
            laplace_pdf(0.0, bad)

    def test_sampling_moments(self, rng):
        rate = 2.0
        draws = sample_laplace(rng, rate, size=200_000)
        # mean 0, variance 2/rate^2.
        assert float(np.mean(draws)) == pytest.approx(0.0, abs=0.01)
        assert float(np.var(draws)) == pytest.approx(2.0 / rate**2, rel=0.03)

    def test_sampling_ks_against_scipy(self, rng):
        rate = 1.1
        draws = sample_laplace(rng, rate, size=20_000)
        _, p_value = stats.kstest(draws, stats.laplace(scale=1.0 / rate).cdf)
        assert p_value > 0.001


class TestLaplaceDifference:
    @pytest.mark.parametrize("ra,rb", [(1.0, 1.0), (0.5, 2.0), (3.0, 0.3), (1.0, 1.0000000001)])
    def test_pdf_integrates_to_one(self, ra, rb):
        diff = LaplaceDifference(ra, rb)
        total, _ = integrate.quad(diff.pdf, -80, 80, limit=200)
        assert total == pytest.approx(1.0, abs=1e-6)

    @pytest.mark.parametrize("ra,rb", [(1.0, 1.0), (0.5, 2.0), (2.5, 0.7)])
    def test_sf_matches_numeric_integration(self, ra, rb):
        diff = LaplaceDifference(ra, rb)
        for t in (-2.0, -0.5, 0.0, 0.5, 2.0, 5.0):
            numeric, _ = integrate.quad(diff.pdf, t, 80, limit=200)
            assert diff.sf(t) == pytest.approx(numeric, abs=1e-7)

    def test_sf_at_zero_is_half(self):
        assert LaplaceDifference(1.0, 1.0).sf(0.0) == pytest.approx(0.5)
        assert LaplaceDifference(0.4, 2.2).sf(0.0) == pytest.approx(0.5)

    def test_sf_symmetry(self):
        diff = LaplaceDifference(0.8, 1.9)
        for t in (0.3, 1.0, 4.0):
            assert diff.sf(-t) == pytest.approx(1.0 - diff.sf(t))

    def test_sf_is_decreasing(self):
        diff = LaplaceDifference(1.3, 0.6)
        ts = np.linspace(-5, 5, 60)
        values = [diff.sf(t) for t in ts]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_rate_order_does_not_matter(self):
        # eta_a - eta_b is symmetric, so swapping rates keeps the law.
        a = LaplaceDifference(0.5, 2.0)
        b = LaplaceDifference(2.0, 0.5)
        for t in (-1.0, 0.2, 3.0):
            assert a.sf(t) == pytest.approx(b.sf(t))

    def test_equal_rate_formula_continuity(self):
        # The unequal-rate closed form must approach the equal-rate one.
        near = LaplaceDifference(1.0, 1.0 + 1e-6)
        equal = LaplaceDifference(1.0, 1.0)
        for t in (0.0, 0.7, 2.5):
            assert near.sf(t) == pytest.approx(equal.sf(t), abs=1e-5)

    def test_monte_carlo_agreement(self, rng):
        diff = LaplaceDifference(0.9, 1.7)
        draws = diff.sample(rng, size=200_000)
        for t in (-1.0, 0.0, 1.0):
            empirical = float(np.mean(draws > t))
            assert diff.sf(t) == pytest.approx(empirical, abs=0.01)

    def test_cdf_complement(self):
        diff = LaplaceDifference(1.2, 0.4)
        for t in (-2.0, 0.0, 3.0):
            assert diff.cdf(t) + diff.sf(t) == pytest.approx(1.0)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigurationError, match="rate"):
            LaplaceDifference(0.0, 1.0)
        with pytest.raises(ConfigurationError, match="rate"):
            LaplaceDifference(1.0, -2.0)
