"""Unit tests for the planar Laplace (geo-indistinguishability) mechanism."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError

from repro.privacy.geo import PlanarLaplaceMechanism
from repro.spatial.geometry import euclidean


class TestPlanarLaplace:
    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError, match="epsilon"):
            PlanarLaplaceMechanism(0.0)

    def test_expected_error_formula(self):
        assert PlanarLaplaceMechanism(2.0).expected_error() == 1.0
        assert PlanarLaplaceMechanism(0.5).expected_error() == 4.0

    def test_mean_displacement_matches_theory(self, rng):
        mech = PlanarLaplaceMechanism(1.0)
        origin = (0.0, 0.0)
        displacements = [
            euclidean(origin, mech.perturb(origin, rng)) for _ in range(20_000)
        ]
        assert float(np.mean(displacements)) == pytest.approx(2.0, rel=0.03)

    def test_direction_is_uniform(self, rng):
        mech = PlanarLaplaceMechanism(1.0)
        angles = []
        for _ in range(8000):
            p = mech.perturb((0.0, 0.0), rng)
            angles.append(math.atan2(p.y, p.x))
        # Mean of cos and sin of a uniform angle are both ~0.
        assert abs(np.mean(np.cos(angles))) < 0.03
        assert abs(np.mean(np.sin(angles))) < 0.03

    def test_error_quantile_monotone(self):
        mech = PlanarLaplaceMechanism(1.0)
        assert mech.error_quantile(0.5) < mech.error_quantile(0.9) < mech.error_quantile(0.99)

    def test_error_quantile_is_cdf_inverse(self):
        mech = PlanarLaplaceMechanism(0.7)
        for alpha in (0.2, 0.5, 0.9):
            r = mech.error_quantile(alpha)
            cdf = 1.0 - math.exp(-0.7 * r) * (1.0 + 0.7 * r)
            assert cdf == pytest.approx(alpha, abs=1e-6)

    def test_error_quantile_empirical(self, rng):
        mech = PlanarLaplaceMechanism(1.5)
        r90 = mech.error_quantile(0.9)
        origin = (0.0, 0.0)
        within = [
            euclidean(origin, mech.perturb(origin, rng)) <= r90 for _ in range(20_000)
        ]
        assert float(np.mean(within)) == pytest.approx(0.9, abs=0.01)

    def test_invalid_quantile(self):
        mech = PlanarLaplaceMechanism(1.0)
        with pytest.raises(ConfigurationError, match="alpha"):
            mech.error_quantile(0.0)
        with pytest.raises(ConfigurationError, match="alpha"):
            mech.error_quantile(1.0)
