"""Unit tests for the Laplace mechanism."""

import numpy as np
import pytest

from repro.errors import ConfigurationError

from repro.privacy.mechanism import LaplaceMechanism


class TestLaplaceMechanism:
    def test_noise_rate_scales_with_sensitivity(self):
        assert LaplaceMechanism(sensitivity=1.0).noise_rate(2.0) == 2.0
        assert LaplaceMechanism(sensitivity=4.0).noise_rate(2.0) == 0.5

    def test_invalid_sensitivity(self):
        with pytest.raises(ConfigurationError, match="sensitivity"):
            LaplaceMechanism(sensitivity=0.0)

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError, match="budget"):
            LaplaceMechanism().noise_rate(0.0)

    def test_perturb_centres_on_value(self, rng):
        mech = LaplaceMechanism()
        draws = np.array([mech.perturb(10.0, 2.0, rng) for _ in range(20_000)])
        assert float(np.mean(draws)) == pytest.approx(10.0, abs=0.05)

    def test_perturb_noise_scale(self, rng):
        mech = LaplaceMechanism()
        eps = 4.0
        draws = np.array([mech.perturb(0.0, eps, rng) for _ in range(50_000)])
        assert float(np.var(draws)) == pytest.approx(2.0 / eps**2, rel=0.05)

    def test_perturb_vector_shape_and_independence(self, rng):
        mech = LaplaceMechanism()
        values = np.zeros(5000)
        out = mech.perturb_vector(values, 1.0, rng)
        assert out.shape == values.shape
        # Adjacent coordinates should be uncorrelated.
        corr = np.corrcoef(out[:-1], out[1:])[0, 1]
        assert abs(corr) < 0.05

    def test_higher_epsilon_means_less_noise(self, rng):
        mech = LaplaceMechanism()
        loose = np.array([mech.perturb(0.0, 0.2, rng) for _ in range(5000)])
        tight = np.array([mech.perturb(0.0, 5.0, rng) for _ in range(5000)])
        assert np.std(tight) < np.std(loose)

    def test_sensitivity_inflates_noise(self, rng):
        narrow = LaplaceMechanism(sensitivity=1.0)
        wide = LaplaceMechanism(sensitivity=10.0)
        a = np.array([narrow.perturb(0.0, 1.0, rng) for _ in range(5000)])
        b = np.array([wide.perturb(0.0, 1.0, rng) for _ in range(5000)])
        assert np.std(b) > np.std(a)
