"""Unit tests for the sliding-window accountant subsystem."""

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.privacy.horizon import (
    GlobalAccountant,
    HorizonPolicy,
    IntervalTree,
    WindowAccountant,
    naive_window_spend,
)


class TestHorizonPolicy:
    def test_defaults(self):
        policy = HorizonPolicy(window_seconds=5.0)
        assert policy.window_budget is None
        assert policy.composition == "sequential"
        assert policy.decay is None

    @pytest.mark.parametrize("window", [0.0, -1.0, math.nan, math.inf])
    def test_bad_window_rejected(self, window):
        with pytest.raises(ConfigurationError):
            HorizonPolicy(window_seconds=window)

    def test_none_window_rejected(self):
        with pytest.raises(ConfigurationError, match="window_seconds"):
            HorizonPolicy(window_seconds=None)

    def test_bad_composition_rejected(self):
        with pytest.raises(ConfigurationError, match="composition"):
            HorizonPolicy(window_seconds=5.0, composition="parallel")

    @pytest.mark.parametrize("decay", [0.0, 1.0, -0.5, 2.0])
    def test_decay_outside_unit_interval_rejected(self, decay):
        with pytest.raises(ConfigurationError):
            HorizonPolicy(window_seconds=5.0, decay=decay)

    def test_decay_requires_sequential_composition(self):
        with pytest.raises(ConfigurationError, match="sequential"):
            HorizonPolicy(window_seconds=5.0, composition="tree", decay=0.5)

    def test_bad_window_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            HorizonPolicy(window_seconds=5.0, window_budget=0.0)

    def test_mapping_round_trip(self):
        policy = HorizonPolicy(
            window_seconds=6.0, window_budget=2.0, composition="tree"
        )
        assert HorizonPolicy.from_mapping(policy.to_dict()) == policy

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            HorizonPolicy.from_mapping({"window_seconds": 5.0, "widnow": 1})

    def test_frozen(self):
        policy = HorizonPolicy(window_seconds=5.0)
        with pytest.raises(AttributeError):
            policy.window_seconds = 10.0


class TestIntervalTree:
    def test_matches_naive_aggregates_across_growth(self):
        rng = random.Random(5)
        tree = IntervalTree()
        values = []
        for _ in range(130):  # crosses several capacity doublings
            eps = rng.uniform(0.01, 2.0)
            tree.append(eps)
            values.append(eps)
        assert len(tree) == len(values)
        for _ in range(200):
            lo = rng.randrange(len(values) + 1)
            hi = rng.randrange(lo, len(values) + 1)
            assert math.isclose(
                tree.range_sum(lo, hi), sum(values[lo:hi]), rel_tol=1e-12, abs_tol=1e-12
            )
            assert tree.range_max(lo, hi) == (max(values[lo:hi]) if hi > lo else 0.0)

    def test_scaled_sum_raw_max(self):
        tree = IntervalTree()
        tree.append(1.0, scaled=10.0)
        tree.append(3.0, scaled=30.0)
        assert tree.range_sum(0, 2) == pytest.approx(40.0)
        assert tree.range_max(0, 2) == pytest.approx(3.0)
        assert tree.leaf(0) == pytest.approx(1.0)

    def test_bad_range_rejected(self):
        tree = IntervalTree()
        tree.append(1.0)
        with pytest.raises(ConfigurationError, match="out of bounds"):
            tree.range_sum(0, 2)
        with pytest.raises(ConfigurationError, match="out of range"):
            tree.leaf(1)


class TestWindowAccountant:
    def policy(self, **kwargs):
        kwargs.setdefault("window_seconds", 10.0)
        return HorizonPolicy(**kwargs)

    def test_requires_policy(self):
        with pytest.raises(ConfigurationError, match="HorizonPolicy"):
            WindowAccountant({"window_seconds": 5.0})

    def test_spend_ages_out(self):
        acct = WindowAccountant(self.policy())
        acct.record(0, 1.0, t=0.0)
        acct.record(0, 2.0, t=5.0)
        assert acct.spend_in_window(0, t=5.0) == pytest.approx(3.0)
        # The t=0 release expires once the window slides past it.
        assert acct.spend_in_window(0, t=10.5) == pytest.approx(2.0)
        assert acct.spend_in_window(0, t=20.0) == pytest.approx(0.0)
        # Lifetime totals never age.
        assert acct.lifetime_spend(0) == pytest.approx(3.0)
        assert acct.total_spend() == pytest.approx(3.0)

    def test_release_aged_exactly_window_has_expired(self):
        acct = WindowAccountant(self.policy())
        acct.record(0, 1.0, t=0.0)
        assert acct.spend_in_window(0, t=10.0 - 1e-9) > 0.0
        assert acct.spend_in_window(0, t=10.0) == 0.0

    def test_remaining_regenerates(self):
        acct = WindowAccountant(self.policy(window_budget=2.0))
        acct.register(0, 5.0)
        assert acct.capacity(0) == pytest.approx(2.0)  # tighter cap wins
        acct.record(0, 2.0, t=1.0)
        assert acct.remaining(0, t=1.0) == pytest.approx(0.0)
        assert acct.remaining(0, t=11.5) == pytest.approx(2.0)

    def test_registered_cap_wins_when_tighter(self):
        acct = WindowAccountant(self.policy(window_budget=4.0))
        acct.register(0, 1.5)
        assert acct.capacity(0) == pytest.approx(1.5)

    def test_clock_defaults_queries(self):
        acct = WindowAccountant(self.policy())
        acct.record(0, 1.0, t=2.0)
        acct.observe(13.0)
        assert acct.now == pytest.approx(13.0)
        assert acct.spend_in_window(0) == 0.0  # aged out at the clock
        acct.observe(4.0)  # clock is a monotone high-water mark
        assert acct.now == pytest.approx(13.0)

    def test_record_rejects_nonpositive_eps(self):
        acct = WindowAccountant(self.policy())
        with pytest.raises(ConfigurationError, match="positive"):
            acct.record(0, 0.0, t=1.0)

    def test_record_rejects_time_going_backwards(self):
        acct = WindowAccountant(self.policy())
        acct.record(0, 1.0, t=5.0)
        with pytest.raises(ConfigurationError, match="monotone"):
            acct.record(0, 1.0, t=3.0)

    def test_register_rejects_nonpositive_capacity(self):
        acct = WindowAccountant(self.policy())
        with pytest.raises(ConfigurationError, match="positive"):
            acct.register(0, 0.0)

    def test_tree_composition_level_bound(self):
        acct = WindowAccountant(self.policy(composition="tree"))
        for i, eps in enumerate([0.1, 0.6, 0.2, 0.3, 0.4]):
            acct.record(0, eps, t=float(i))
        # 5 in-window releases -> floor(log2 5) + 1 = 3 levels of 0.6 max.
        assert acct.spend_in_window(0, t=4.0) == pytest.approx(0.6 * 3)

    def test_decay_discounts_by_age(self):
        acct = WindowAccountant(self.policy(decay=0.5))
        acct.record(0, 1.0, t=0.0)
        # Aged half a window: discount 0.5 ** 0.5.
        assert acct.spend_in_window(0, t=5.0) == pytest.approx(0.5**0.5)
        assert acct.spend_in_window(0, t=0.0) == pytest.approx(1.0)

    def test_total_in_window_sums_the_fleet(self):
        acct = WindowAccountant(self.policy())
        acct.record(0, 1.0, t=0.0)
        acct.record(1, 2.0, t=6.0)
        assert acct.total_in_window(t=6.0) == pytest.approx(3.0)
        assert acct.total_in_window(t=10.5) == pytest.approx(2.0)

    def test_compaction_prunes_but_answers_exactly(self):
        policy = self.policy(window_seconds=5.0)
        acct = WindowAccountant(policy)
        rng = random.Random(11)
        events = []
        t = 0.0
        for _ in range(500):
            t += rng.uniform(0.0, 0.4)
            eps = rng.uniform(0.01, 0.5)
            acct.record(0, eps, t=t)
            events.append((t, eps))
        assert acct.release_count(0) < len(events)  # compaction happened
        expected = naive_window_spend(events, t, policy)
        assert math.isclose(acct.spend_in_window(0, t=t), expected, rel_tol=1e-9)
        assert acct.lifetime_spend(0) == pytest.approx(
            sum(eps for _, eps in events)
        )

    def test_decay_rebase_keeps_long_streams_exact(self):
        # Thousands of window-widths of elapsed time: the scaled store
        # must rebase (exp would overflow float range otherwise).
        policy = self.policy(window_seconds=1.0, decay=0.5)
        acct = WindowAccountant(policy)
        events = []
        t = 0.0
        for i in range(4000):
            t += 0.25
            acct.record(0, 0.1, t=t)
            events.append((t, 0.1))
        expected = naive_window_spend(events, t, policy)
        assert math.isclose(acct.spend_in_window(0, t=t), expected, rel_tol=1e-9)


class TestGlobalAccountant:
    def test_window_queries_degrade_to_lifetime(self):
        acct = GlobalAccountant()
        acct.register(0, 5.0)
        acct.record(0, 1.0)
        acct.record(0, 2.0, t=99.0)  # t accepted and ignored
        assert acct.spend_in_window(0) == pytest.approx(3.0)
        assert acct.lifetime_spend(0) == pytest.approx(3.0)
        assert acct.remaining(0) == pytest.approx(2.0)
        assert acct.total_in_window() == pytest.approx(3.0)
        assert acct.total_spend() == pytest.approx(3.0)

    def test_unregistered_worker_is_uncapped(self):
        acct = GlobalAccountant()
        acct.record(7, 1.0)
        assert acct.capacity(7) == math.inf
        assert acct.remaining(7) == math.inf

    def test_observe_is_a_no_op(self):
        acct = GlobalAccountant()
        acct.observe(123.0)
        assert not hasattr(acct, "now")

    def test_windowed_flags(self):
        assert GlobalAccountant.windowed is False
        assert WindowAccountant.windowed is True


class TestNaiveWindowSpend:
    def test_empty_window(self):
        policy = HorizonPolicy(window_seconds=1.0)
        assert naive_window_spend([], 5.0, policy) == 0.0
        assert naive_window_spend([(0.0, 1.0)], 5.0, policy) == 0.0
