"""Unit tests for the trilateration attack (the conclusion's threat)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, InvalidInstanceError

from repro.core.puce import PUCESolver
from repro.privacy.attack import TrilaterationAttack, attack_assignment
from repro.spatial.geometry import Point, euclidean


class TestTrilaterationAttack:
    def test_exact_ranges_recover_location(self):
        truth = (1.0, 2.0)
        anchors = [(0.0, 0.0), (5.0, 0.0), (0.0, 5.0), (4.0, 4.0)]
        distances = [euclidean(truth, a) for a in anchors]
        estimate = TrilaterationAttack().estimate(anchors, distances)
        assert estimate.error_from(truth) < 1e-6
        assert estimate.residual < 1e-6

    def test_noisy_ranges_approximate_location(self, rng):
        truth = (3.0, -1.0)
        anchors = [tuple(p) for p in rng.uniform(-5, 5, size=(12, 2))]
        distances = [euclidean(truth, a) + rng.normal(0, 0.1) for a in anchors]
        estimate = TrilaterationAttack().estimate(anchors, distances)
        assert estimate.error_from(truth) < 0.5

    def test_more_anchors_reduce_error(self, rng):
        truth = (0.0, 0.0)
        all_anchors = [tuple(p) for p in rng.uniform(-4, 4, size=(40, 2))]
        noise = rng.normal(0, 0.5, size=40)
        few_err, many_err = [], []
        for trial in range(10):
            idx = rng.permutation(40)
            few = [all_anchors[i] for i in idx[:3]]
            many = [all_anchors[i] for i in idx[:30]]
            attack = TrilaterationAttack()
            few_err.append(
                attack.estimate(
                    few, [euclidean(truth, a) + noise[i] for i, a in zip(idx[:3], few)]
                ).error_from(truth)
            )
            many_err.append(
                attack.estimate(
                    many,
                    [euclidean(truth, a) + noise[i] for i, a in zip(idx[:30], many)],
                ).error_from(truth)
            )
        assert np.median(many_err) < np.median(few_err)

    def test_weights_prefer_accurate_anchors(self):
        truth = (0.0, 0.0)
        anchors = [(3.0, 0.0), (0.0, 3.0), (-3.0, 0.0), (0.0, -3.0)]
        # First two ranges exact, last two badly corrupted.
        distances = [3.0, 3.0, 6.0, 6.0]
        unweighted = TrilaterationAttack().estimate(anchors, distances)
        weighted = TrilaterationAttack().estimate(
            anchors, distances, weights=[100.0, 100.0, 0.01, 0.01]
        )
        assert weighted.error_from(truth) < unweighted.error_from(truth)

    def test_negative_distances_clipped(self):
        anchors = [(0.0, 0.0), (2.0, 0.0), (0.0, 2.0)]
        estimate = TrilaterationAttack().estimate(anchors, [-5.0, 2.0, 2.0])
        # Clipped to 0: the estimate should sit near the first anchor.
        assert estimate.error_from((0.0, 0.0)) < 0.5

    def test_validation(self):
        attack = TrilaterationAttack()
        with pytest.raises(InvalidInstanceError, match="two anchors"):
            attack.estimate([(0.0, 0.0)], [1.0])
        with pytest.raises(InvalidInstanceError, match="anchors vs"):
            attack.estimate([(0.0, 0.0), (1.0, 1.0)], [1.0])
        with pytest.raises(InvalidInstanceError, match="weights"):
            attack.estimate([(0.0, 0.0), (1.0, 1.0)], [1.0, 1.0], weights=[1.0, 0.0])
        with pytest.raises(ConfigurationError, match="max_iterations"):
            TrilaterationAttack(max_iterations=0)

    def test_collinear_anchors_do_not_crash(self):
        anchors = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]
        estimate = TrilaterationAttack().estimate(anchors, [1.0, 1.0, 1.0])
        assert isinstance(estimate.location, Point)


class TestAttackAssignment:
    def test_attacks_only_multi_anchor_workers(self, medium_instance):
        result = PUCESolver().solve(medium_instance, seed=3)
        records = attack_assignment(result, min_anchors=3)
        assert records, "the dense normal batch must expose some workers"
        for record in records:
            assert record.anchors >= 3
            assert record.spend > 0
            assert record.error >= 0

    def test_nonprivate_results_not_attackable(self, medium_instance):
        from repro.core.nonprivate import UCESolver

        result = UCESolver().solve(medium_instance)
        assert attack_assignment(result) == []

    def test_pgt_leaks_less_surface_than_puce(self, medium_instance):
        from repro.core.pgt import PGTSolver

        puce = attack_assignment(PUCESolver().solve(medium_instance, seed=3), 3)
        pgt = attack_assignment(PGTSolver().solve(medium_instance, seed=3), 3)
        assert len(pgt) < len(puce)

    def test_paper_warning_reproduced(self, medium_instance):
        # Conclusion of the paper: enough releases localise a worker
        # within his own service area.  On a dense batch, a meaningful
        # fraction of attacked workers is localised within radius.
        result = PUCESolver().solve(medium_instance, seed=3)
        records = attack_assignment(result, min_anchors=4)
        assert records
        inside = sum(r.localised_within_radius for r in records)
        assert inside / len(records) > 0.3
