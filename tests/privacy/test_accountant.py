"""Unit tests for the local-DP privacy ledger."""

import pytest

from repro.errors import ConfigurationError

from repro.privacy.accountant import PrivacyLedger


class TestPrivacyLedger:
    def test_empty_ledger(self):
        ledger = PrivacyLedger()
        assert len(ledger) == 0
        assert ledger.total_spend() == 0.0
        assert ledger.worker_spend("w") == 0.0
        assert ledger.workers() == []

    def test_record_accumulates(self):
        ledger = PrivacyLedger()
        ledger.record("w1", "t1", 0.5)
        ledger.record("w1", "t1", 0.7)
        ledger.record("w1", "t2", 1.0)
        assert ledger.worker_spend("w1") == pytest.approx(2.2)
        assert ledger.worker_proposals("w1") == 3

    def test_pair_spend_order_preserved(self):
        ledger = PrivacyLedger()
        ledger.record("w", "t", 0.5)
        ledger.record("w", "t", 0.9)
        pair = ledger.pair_spend("w", "t")
        assert pair.epsilons == (0.5, 0.9)
        assert pair.total == pytest.approx(1.4)
        assert pair.proposals == 2

    def test_pair_spend_missing_is_empty(self):
        pair = PrivacyLedger().pair_spend("w", "t")
        assert pair.epsilons == ()
        assert pair.total == 0.0

    def test_non_positive_budget_rejected(self):
        ledger = PrivacyLedger()
        with pytest.raises(ConfigurationError, match="positive"):
            ledger.record("w", "t", 0.0)
        with pytest.raises(ConfigurationError, match="positive"):
            ledger.record("w", "t", -1.0)

    def test_ldp_bound_theorem_v2(self):
        # Bound is spend * radius = sum_i b_ij eps_ij r_j.
        ledger = PrivacyLedger()
        ledger.record("w", "t1", 0.5)
        ledger.record("w", "t2", 1.5)
        assert ledger.worker_ldp_bound("w", radius=2.0) == pytest.approx(4.0)

    def test_ldp_bound_negative_radius_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            PrivacyLedger().worker_ldp_bound("w", radius=-1.0)

    def test_workers_listing(self):
        ledger = PrivacyLedger()
        ledger.record("a", "t", 1.0)
        ledger.record("b", "t", 1.0)
        assert sorted(ledger.workers()) == ["a", "b"]

    def test_total_spend_across_workers(self):
        ledger = PrivacyLedger()
        ledger.record("a", "t1", 1.0)
        ledger.record("b", "t1", 2.0)
        assert ledger.total_spend() == pytest.approx(3.0)

    def test_events_chronological(self):
        ledger = PrivacyLedger()
        ledger.record("a", "t1", 1.0)
        ledger.record("b", "t2", 2.0)
        assert list(ledger.events()) == [("a", "t1", 1.0), ("b", "t2", 2.0)]

    def test_merge_preserves_both(self):
        first, second = PrivacyLedger(), PrivacyLedger()
        first.record("a", "t", 1.0)
        second.record("b", "t", 2.0)
        merged = first.merge(second)
        assert merged.total_spend() == pytest.approx(3.0)
        assert len(merged) == 2
        # Originals untouched.
        assert first.total_spend() == 1.0
        assert second.total_spend() == 2.0

    def test_pair_spend_is_immutable_snapshot(self):
        ledger = PrivacyLedger()
        ledger.record("w", "t", 0.5)
        snapshot = ledger.pair_spend("w", "t")
        ledger.record("w", "t", 0.5)
        assert snapshot.total == 0.5  # old snapshot unchanged
        assert ledger.pair_spend("w", "t").total == 1.0
