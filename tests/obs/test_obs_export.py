"""Unit tests for the exporters, on a hand-built report (no stream run)."""

import json

import pytest

from repro.obs import (
    Tracer,
    aggregate_phases,
    format_profile,
    registry_from_report,
    write_metrics_prometheus,
    write_trace_jsonl,
)
from repro.stream.metrics import FlushRecord, StreamStats


class FakeReport:
    """Duck-typed StreamReport: ``methods()`` + ``report[m]`` -> StreamStats."""

    def __init__(self, stats_by_method):
        self._stats = dict(stats_by_method)

    def methods(self):
        return tuple(self._stats)

    def __getitem__(self, method):
        return self._stats[method]


def traced_stats(method="UCE", flushes=3):
    """A StreamStats fed through the real tracer + update() protocol."""
    stats = StreamStats(method)
    tracer = Tracer()
    stats.spans = tracer.spans
    for index in range(flushes):
        mark = tracer.mark()
        with tracer.span("flush"):
            with tracer.span("flush.build"):
                pass
            with tracer.span("flush.solve"):
                tracer.event("cache.miss")
            with tracer.span("flush.commit"):
                pass
        phase_seconds = aggregate_phases(tracer.since(mark))
        flush_seconds = tracer.spans[mark].seconds
        stats.update(
            FlushRecord(
                index=index,
                time=0.1 * (index + 1),
                pending_tasks=2,
                idle_workers=4,
                matched=1,
                solver_seconds=0.002,
                cumulative_privacy_spend=0.5 * (index + 1),
                cache_hit=False,
                flush_seconds=flush_seconds,
                phase_seconds=phase_seconds,
            )
        )
        stats.record_latency(0.05 * (index + 1))
        stats.arrived_tasks += 1
        stats.assigned += 1
    return stats


class TestWriteTraceJsonl:
    def test_writes_one_json_line_per_span_with_method_label(self, tmp_path):
        report = FakeReport({"UCE": traced_stats("UCE", flushes=2)})
        path = tmp_path / "trace.jsonl"
        count = write_trace_jsonl(report, path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert count == len(rows) == len(report["UCE"].spans)
        assert all(row["method"] == "UCE" for row in rows)
        assert rows[0]["name"] == "flush"
        assert rows[0]["parent"] == -1
        # parents always precede children in recording order
        for row in rows:
            assert row["parent"] < row["index"]

    def test_untraced_run_writes_an_empty_valid_file(self, tmp_path):
        report = FakeReport({"UCE": StreamStats("UCE")})
        path = tmp_path / "trace.jsonl"
        assert write_trace_jsonl(report, path) == 0
        assert path.read_text() == ""


class TestRegistryFromReport:
    def test_counters_gauges_and_phase_totals(self):
        stats = traced_stats("PUCE")
        registry = registry_from_report(FakeReport({"PUCE": stats}))
        text = registry.render_prometheus()
        assert 'repro_tasks_assigned_total{method="PUCE"} 3.0' in text
        assert 'repro_flushes_total{method="PUCE"} 3.0' in text
        assert 'repro_cache_misses_total{method="PUCE"} 3.0' in text
        assert 'repro_latency_p95_online{method="PUCE"}' in text
        assert 'repro_flush_phase_seconds_total{method="PUCE",phase="solve"}' in text
        assert 'repro_flush_solver_seconds_count{method="PUCE"} 3' in text

    def test_nan_gauges_are_skipped_not_rendered(self):
        # no assignments -> rolling quantiles are NaN -> no latency gauges
        report = FakeReport({"UCE": StreamStats("UCE")})
        text = registry_from_report(report).render_prometheus()
        assert "repro_latency_p95_online" not in text
        assert "nan" not in text.lower()

    def test_write_metrics_prometheus_round_trips_to_disk(self, tmp_path):
        report = FakeReport({"UCE": traced_stats()})
        path = tmp_path / "metrics.prom"
        write_metrics_prometheus(report, path)
        text = path.read_text()
        assert text.startswith("# HELP")
        assert text.endswith("\n")


class TestFormatProfile:
    def test_aggregates_spans_by_tree_path(self):
        stats = traced_stats("UCE", flushes=4)
        out = format_profile(FakeReport({"UCE": stats}), title="t")
        assert "t method=UCE flushes=4" in out
        lines = out.splitlines()
        flush_line = next(line for line in lines if line.strip().startswith("flush "))
        assert " 4 " in flush_line  # 4 root flush spans aggregated
        # nested rows are indented deeper than their parents
        solve = next(line for line in lines if "flush.solve" in line)
        miss = next(line for line in lines if "cache.miss" in line)
        assert miss.index("cache.miss") > solve.index("flush.solve")

    def test_untraced_method_reports_tracing_off(self):
        out = format_profile(FakeReport({"UCE": StreamStats("UCE")}))
        assert "no spans (tracing was off)" in out
