"""Unit tests for the online indicator primitives (warmup, readiness, math)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs import Ewma, RollingQuantile, WarmupZScore


class TestRollingQuantile:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            RollingQuantile(window=0)
        with pytest.raises(ConfigurationError):
            RollingQuantile(warmup=0)
        with pytest.raises(ConfigurationError):
            RollingQuantile().value(101)
        with pytest.raises(ConfigurationError):
            RollingQuantile().value(-1)

    def test_nan_before_warmup_then_ready(self):
        quantile = RollingQuantile(window=8, warmup=3)
        assert not quantile.ready
        assert math.isnan(quantile.p50)
        quantile.update(1.0)
        quantile.update(2.0)
        assert math.isnan(quantile.p95)
        quantile.update(3.0)
        assert quantile.ready
        assert quantile.p50 == 2.0

    def test_matches_numpy_percentile_of_the_window(self):
        quantile = RollingQuantile(window=4, warmup=1)
        for x in [2.0, 3.0, 4.0, 5.0]:
            quantile.update(x)
        assert quantile.value(50) == pytest.approx(np.percentile([2, 3, 4, 5], 50))
        assert quantile.value(95) == pytest.approx(np.percentile([2, 3, 4, 5], 95))

    def test_eviction_keeps_exactly_the_last_window(self):
        quantile = RollingQuantile(window=3, warmup=1)
        for x in [10.0, 1.0, 2.0, 3.0]:
            quantile.update(x)
        # the 10.0 fell out of the window
        assert quantile.value(100) == 3.0
        assert quantile.value(0) == 1.0

    def test_duplicate_values_evict_one_copy_only(self):
        quantile = RollingQuantile(window=2, warmup=1)
        quantile.update(5.0)
        quantile.update(5.0)
        quantile.update(7.0)  # evicts one 5.0
        assert quantile.value(0) == 5.0
        assert quantile.value(100) == 7.0


class TestEwma:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            Ewma(alpha=0.0)
        with pytest.raises(ConfigurationError):
            Ewma(alpha=1.5)
        with pytest.raises(ConfigurationError):
            Ewma(warmup=0)

    def test_warmup_accumulates_a_plain_mean(self):
        ewma = Ewma(alpha=0.5, warmup=3)
        ewma.update(1.0)
        assert ewma.value == 1.0
        ewma.update(3.0)
        assert ewma.value == 2.0
        assert not ewma.ready
        ewma.update(5.0)
        assert ewma.value == 3.0
        assert ewma.ready

    def test_recurrence_after_warmup(self):
        ewma = Ewma(alpha=0.5, warmup=1)
        ewma.update(4.0)
        ewma.update(8.0)
        assert ewma.value == pytest.approx(0.5 * 8.0 + 0.5 * 4.0)

    def test_value_is_zero_before_any_observation(self):
        assert Ewma().value == 0.0


class TestWarmupZScore:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            WarmupZScore(warmup=0)

    def test_zero_during_warmup_then_zscore_vs_frozen_baseline(self):
        zscore = WarmupZScore(warmup=4)
        baseline = [1.0, 2.0, 3.0, 4.0]
        for x in baseline:
            zscore.update(x)
            assert zscore.value == 0.0
        assert zscore.ready
        assert zscore.mean == pytest.approx(np.mean(baseline))
        assert zscore.std == pytest.approx(np.std(baseline))
        zscore.update(6.0)
        expected = (6.0 - np.mean(baseline)) / np.std(baseline)
        assert zscore.value == pytest.approx(expected)

    def test_baseline_does_not_drift_after_warmup(self):
        zscore = WarmupZScore(warmup=2)
        zscore.update(0.0)
        zscore.update(2.0)
        frozen = (zscore.mean, zscore.std)
        for x in [100.0, -50.0, 3.0]:
            zscore.update(x)
        assert (zscore.mean, zscore.std) == frozen

    def test_degenerate_baseline_reports_signed_inf(self):
        zscore = WarmupZScore(warmup=3)
        for _ in range(3):
            zscore.update(5.0)
        zscore.update(5.0)
        assert zscore.value == 0.0
        zscore.update(6.0)
        assert zscore.value == math.inf
        zscore.update(4.0)
        assert zscore.value == -math.inf
