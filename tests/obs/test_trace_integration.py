"""End-to-end tracing on the duty-cycle scenario (the PR's acceptance pin).

Runs the committed ``examples/scenario_duty_cycle.json`` (shortened
horizon) with tracing on and checks the three observability contracts:

* every flush carries a **complete span tree** — the recorded phases
  cover the flush wall clock within 10% (with a small absolute slack
  for micro-flushes where span bookkeeping itself is the gap);
* the **online** rolling-p95 matches the post-hoc percentile when the
  stream fits the rolling window;
* tracing is a pure **observer** — assignment outcomes are bit-identical
  with tracing on and off.
"""

import dataclasses

import numpy as np
import pytest

from repro.api.scenario import ScenarioSpec

#: Phases the flush pipeline may record, and the engine/point spans below them.
FLUSH_PHASES = {"cache", "build", "cut", "plan", "solve", "merge", "commit"}

#: Absolute slack (seconds) for micro-flushes: at tens of microseconds
#: per flush, the span enter/exit bookkeeping between phases is itself
#: a visible fraction of the wall clock.
MICRO_SLACK = 1.5e-4


@pytest.fixture(scope="module")
def traced_report():
    spec = ScenarioSpec.from_file("examples/scenario_duty_cycle.json")
    spec = dataclasses.replace(
        spec, horizon=1.0, options=spec.options.replace(trace=True)
    )
    return spec.run()


class TestSpanTreeCompleteness:
    def test_every_flush_has_a_phase_breakdown(self, traced_report):
        for method in traced_report.methods():
            stats = traced_report[method]
            assert stats.flushes, f"{method}: no flushes recorded"
            for record in stats.flushes:
                assert record.phase_seconds is not None
                assert set(record.phase_seconds) <= FLUSH_PHASES
                assert record.flush_seconds > 0.0

    def test_phases_cover_the_flush_wall_clock(self, traced_report):
        for method in traced_report.methods():
            stats = traced_report[method]
            stragglers = []
            for record in stats.flushes:
                covered = sum(record.phase_seconds.values())
                # phases are disjoint slices of the flush: never more
                assert covered <= record.flush_seconds * 1.05 + 1e-5
                # and they cover it within 10% (or micro-flush slack)
                if covered < 0.9 * record.flush_seconds - MICRO_SLACK:
                    stragglers.append(record.index)
            # the OS may deschedule a flush between two phase spans,
            # inflating its wall clock with time no phase saw — tolerate
            # that for a rare straggler, never systematically
            budget = max(1, len(stats.flushes) // 100)
            assert len(stragglers) <= budget, (
                f"{method}: {len(stragglers)}/{len(stats.flushes)} flushes "
                f"under 90% phase coverage (indices {stragglers[:5]})"
            )

    def test_aggregate_coverage_within_ten_percent_where_it_matters(
        self, traced_report
    ):
        # weighted by time (big flushes dominate), coverage is tight
        for method in traced_report.methods():
            stats = traced_report[method]
            covered = sum(sum(r.phase_seconds.values()) for r in stats.flushes)
            wall = sum(r.flush_seconds for r in stats.flushes)
            assert covered >= 0.85 * wall, f"{method}: {covered / wall:.1%}"

    def test_span_tree_is_well_formed(self, traced_report):
        for method in traced_report.methods():
            spans = traced_report[method].spans
            assert spans, f"{method}: tracing on but no spans"
            for span in spans:
                assert span.parent < span.index  # parents recorded first
                if span.parent >= 0:
                    assert spans[span.parent].depth == span.depth - 1
                else:
                    assert span.depth == 0
                    assert span.name == "flush"

    def test_phase_totals_match_span_aggregation(self, traced_report):
        for method in traced_report.methods():
            stats = traced_report[method]
            totals = stats.phase_totals
            by_span = {}
            roots = {s.index for s in stats.spans if s.parent == -1}
            for span in stats.spans:
                if span.parent in roots and span.name.startswith("flush."):
                    phase = span.name.removeprefix("flush.")
                    by_span[phase] = by_span.get(phase, 0.0) + span.seconds
            assert set(totals) == set(by_span)
            for phase in totals:
                assert totals[phase] == pytest.approx(by_span[phase])


class TestOnlineVsPostHoc:
    def test_rolling_p95_matches_posthoc_percentile(self, traced_report):
        checked = 0
        for method in traced_report.methods():
            stats = traced_report[method]
            if not stats.latencies:
                continue
            window = stats.online.latency.window
            tail = stats.latencies[-window:]
            assert stats.online.latency_p95 == pytest.approx(
                float(np.percentile(tail, 95)), rel=1e-9
            )
            assert stats.online.latency_p50 == pytest.approx(
                float(np.percentile(tail, 50)), rel=1e-9
            )
            checked += 1
        assert checked, "scenario produced no assignments to compare"

    def test_online_indicators_were_actually_updated(self, traced_report):
        for method in traced_report.methods():
            stats = traced_report[method]
            assert stats.online.expiry.count == len(stats.flushes)


class TestTracingIsAPureObserver:
    def test_outcomes_identical_with_tracing_on_and_off(self):
        spec = ScenarioSpec.from_file("examples/scenario_duty_cycle.json")
        spec = dataclasses.replace(spec, horizon=0.6)
        plain = spec.run()
        traced = dataclasses.replace(
            spec, options=spec.options.replace(trace=True)
        ).run()
        for method in plain.methods():
            off, on = plain[method], traced[method]
            assert off.assigned == on.assigned
            assert off.expired == on.expired
            assert off.latencies == on.latencies
            assert off.total_utility == on.total_utility
            assert off.per_worker_spend == on.per_worker_spend
            assert off.spans == []
            assert on.spans
