"""Unit tests for the metrics registry and its Prometheus rendering."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.obs.metrics import Counter, Gauge, Histogram


class TestPrimitives:
    def test_counter_only_goes_up(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ConfigurationError):
            counter.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(4.0)
        gauge.inc(-1.5)
        assert gauge.value == 2.5

    def test_histogram_buckets_are_per_bucket_counts(self):
        histogram = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        # one <=0.1, two in (0.1, 1], one in (1, 10], one overflow
        assert histogram.counts == [1, 2, 1]
        assert histogram.count == 5
        assert histogram.total == pytest.approx(56.05)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ConfigurationError):
            Histogram(buckets=())
        with pytest.raises(ConfigurationError):
            Histogram(buckets=(1.0, 0.5))


class TestRegistry:
    def test_get_or_create_returns_the_same_child_per_label_set(self):
        registry = MetricsRegistry()
        first = registry.counter("flushes_total", "flushes", method="PUCE")
        again = registry.counter("flushes_total", method="PUCE")
        other = registry.counter("flushes_total", method="UCE")
        assert first is again
        assert first is not other

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.gauge("g", x="1", y="2")
        b = registry.gauge("g", y="2", x="1")
        assert a is b

    def test_type_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("metric_total", "help")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.gauge("metric_total")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("0bad")
        with pytest.raises(ConfigurationError):
            registry.counter("ok", **{"bad-label": "x"})


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("repro_flushes_total", "flushes run", method="PUCE").inc(3)
        registry.gauge("repro_p95", "rolling p95").set(0.25)
        text = registry.render_prometheus()
        assert "# HELP repro_flushes_total flushes run" in text
        assert "# TYPE repro_flushes_total counter" in text
        assert 'repro_flushes_total{method="PUCE"} 3.0' in text
        assert "repro_p95 0.25" in text
        assert text.endswith("\n")

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "hist", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        text = registry.render_prometheus()
        assert 'h_bucket{le="0.1"} 1' in text
        assert 'h_bucket{le="1.0"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_sum 5.55" in text
        assert "h_count 3" in text

    def test_inf_gauge_and_label_escaping(self):
        registry = MetricsRegistry()
        registry.gauge("z", label='quo"te').set(math.inf)
        text = registry.render_prometheus()
        assert 'z{label="quo\\"te"} +Inf' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
