"""Unit tests for the span tracer, the stopwatch, and phase aggregation."""

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    aggregate_phases,
    stopwatch,
)


class TestTracer:
    def test_spans_record_in_creation_order_with_parents_and_depth(self):
        tracer = Tracer()
        with tracer.span("flush"):
            with tracer.span("flush.build"):
                pass
            with tracer.span("flush.solve"):
                with tracer.span("solve.sweep"):
                    pass
        names = [s.name for s in tracer.spans]
        assert names == ["flush", "flush.build", "flush.solve", "solve.sweep"]
        assert [s.parent for s in tracer.spans] == [-1, 0, 0, 2]
        assert [s.depth for s in tracer.spans] == [0, 1, 1, 2]
        assert [s.index for s in tracer.spans] == [0, 1, 2, 3]

    def test_seconds_set_on_exit_and_zero_while_open(self):
        tracer = Tracer()
        with tracer.span("outer") as span:
            assert span.seconds == 0.0
        assert span.seconds > 0.0
        # children close before parents, so child seconds <= parent seconds
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        a, b = tracer.spans[1], tracer.spans[2]
        assert b.seconds <= a.seconds

    def test_sibling_roots_both_have_parent_minus_one(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.parent for s in tracer.spans] == [-1, -1]
        assert [s.depth for s in tracer.spans] == [0, 0]

    def test_event_records_zero_duration_span_at_current_depth(self):
        tracer = Tracer()
        with tracer.span("flush"):
            tracer.event("cache.miss")
        event = tracer.spans[1]
        assert event.name == "cache.miss"
        assert event.seconds == 0.0
        assert event.parent == 0
        assert event.depth == 1

    def test_mark_and_since_slice_one_flush(self):
        tracer = Tracer()
        with tracer.span("flush"):
            pass
        mark = tracer.mark()
        assert mark == 1
        with tracer.span("flush"):
            tracer.event("cache.hit")
        tail = tracer.since(mark)
        assert [s.name for s in tail] == ["flush", "cache.hit"]

    def test_span_survives_exception_and_pops_stack(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("flush"):
                raise ValueError("boom")
        assert tracer.spans[0].seconds > 0.0
        assert tracer._stack == []

    def test_to_dict_is_json_ready(self):
        span = Span(name="x", start=1.0, seconds=0.5, parent=-1, index=0, depth=0)
        assert span.to_dict() == {
            "name": "x",
            "start": 1.0,
            "seconds": 0.5,
            "parent": -1,
            "index": 0,
            "depth": 0,
        }


class TestNullTracer:
    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("flush"):
            NULL_TRACER.event("cache.hit")
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.mark() == 0
        assert NULL_TRACER.since(0) == ()
        assert NULL_TRACER.enabled is False

    def test_null_span_is_shared_and_reentrant(self):
        first = NULL_TRACER.span("a")
        second = NULL_TRACER.span("b")
        assert first is second
        with first:
            with second:
                pass

    def test_null_tracer_is_stateless_singleton_shaped(self):
        assert NullTracer().spans == ()
        assert Tracer.enabled is True


class TestStopwatch:
    def test_seconds_after_exit_and_live_elapsed_inside(self):
        with stopwatch() as watch:
            inside = watch.elapsed
            assert inside >= 0.0
            assert watch.seconds == 0.0
        assert watch.seconds >= inside
        assert watch.elapsed >= watch.seconds

    def test_stopwatch_survives_exception(self):
        watch = stopwatch()
        with pytest.raises(RuntimeError):
            with watch:
                raise RuntimeError("boom")
        assert watch.seconds > 0.0


class TestAggregatePhases:
    def _span(self, name, seconds, parent, index, depth):
        return Span(
            name=name, start=0.0, seconds=seconds,
            parent=parent, index=index, depth=depth,
        )

    def test_sums_phases_directly_under_the_root_only(self):
        spans = [
            self._span("flush", 1.0, -1, 0, 0),
            self._span("flush.cache", 0.1, 0, 1, 1),
            self._span("cache.miss", 0.0, 1, 2, 2),
            self._span("flush.solve", 0.6, 0, 3, 1),
            self._span("solve.sweep", 0.5, 3, 4, 2),  # deeper: ignored
            self._span("flush.cache", 0.2, 0, 5, 1),  # repeated phase sums
        ]
        totals = aggregate_phases(spans)
        assert totals == {
            "cache": pytest.approx(0.3),
            "solve": pytest.approx(0.6),
        }

    def test_spans_before_the_root_are_ignored(self):
        spans = [
            self._span("flush.solve", 9.0, -1, 0, 0),  # stray pre-root span
            self._span("flush", 1.0, -1, 1, 0),
            self._span("flush.solve", 0.4, 1, 2, 1),
        ]
        assert aggregate_phases(spans) == {"solve": pytest.approx(0.4)}

    def test_no_root_yields_empty(self):
        spans = [self._span("flush.solve", 0.4, -1, 0, 0)]
        assert aggregate_phases(spans) == {}
        assert aggregate_phases([]) == {}

    def test_nested_root_anchor_offsets_depth(self):
        # root at depth 2 (e.g. a flush inside an outer span)
        spans = [
            self._span("flush", 1.0, 5, 6, 2),
            self._span("flush.merge", 0.25, 6, 7, 3),
        ]
        assert aggregate_phases(spans) == {"merge": pytest.approx(0.25)}

    def test_non_prefix_children_are_skipped(self):
        spans = [
            self._span("flush", 1.0, -1, 0, 0),
            self._span("workspace.lease", 0.0, 0, 1, 1),
            self._span("flush.commit", 0.3, 0, 2, 1),
        ]
        assert aggregate_phases(spans) == {"commit": pytest.approx(0.3)}

    def test_live_tracer_round_trip(self):
        tracer = Tracer()
        mark = tracer.mark()
        with tracer.span("flush"):
            with tracer.span("flush.build"):
                pass
            with tracer.span("flush.solve"):
                with tracer.span("solve.resolve"):
                    pass
        totals = aggregate_phases(tracer.since(mark))
        assert set(totals) == {"build", "solve"}
        flush = tracer.spans[mark]
        assert sum(totals.values()) <= flush.seconds
