"""Unit tests for the crash-safe tenant journal (framing, torn tails,
checkpoints, sequence dedup)."""

import json
import zlib

import pytest

from repro.api.wire import Advance, OpenSession, encode_record
from repro.errors import ConfigurationError, JournalError
from repro.service import TenantJournal, journal_tenants


def open_record():
    return encode_record(OpenSession(method="GRD"))


def advance_record(to_time=1.0):
    return encode_record(Advance(to_time=to_time))


class TestFraming:
    def test_append_entries_round_trip(self, tmp_path):
        journal = TenantJournal(tmp_path, "acme")
        journal.append(1, open_record())
        journal.append(2, advance_record(0.5))
        journal.append(3, advance_record(1.0))
        journal.close()

        fresh = TenantJournal(tmp_path, "acme")
        entries = fresh.entries()
        assert [seq for seq, _ in entries] == [1, 2, 3]
        assert entries[0][1] == open_record()
        assert entries[2][1] == advance_record(1.0)
        assert fresh.last_seq == 3

    def test_every_line_carries_length_and_crc(self, tmp_path):
        journal = TenantJournal(tmp_path, "acme")
        journal.append(1, open_record())
        journal.close()
        line = journal.wal_path.read_bytes().splitlines()[0]
        payload = line[18:]
        assert int(line[0:8], 16) == len(payload)
        assert int(line[9:17], 16) == zlib.crc32(payload)
        assert json.loads(payload) == {"record": open_record(), "seq": 1}

    def test_torn_tail_is_truncated_not_fatal(self, tmp_path):
        journal = TenantJournal(tmp_path, "acme")
        journal.append(1, open_record())
        journal.append(2, advance_record())
        journal.close()
        # A crash mid-append leaves half a line behind.
        with open(journal.wal_path, "ab") as handle:
            handle.write(b"00000042 deadbeef {\"seq\": 3, \"rec")

        fresh = TenantJournal(tmp_path, "acme")
        entries = fresh.entries()
        assert [seq for seq, _ in entries] == [1, 2]
        # The torn bytes are gone from disk: the next append is clean.
        fresh.append(3, advance_record(2.0))
        fresh.close()
        again = TenantJournal(tmp_path, "acme")
        assert [seq for seq, _ in again.entries()] == [1, 2, 3]

    def test_corrupted_crc_truncates_from_that_frame(self, tmp_path):
        journal = TenantJournal(tmp_path, "acme")
        journal.append(1, open_record())
        journal.append(2, advance_record())
        journal.close()
        data = bytearray(journal.wal_path.read_bytes())
        data[-3] ^= 0xFF  # flip a payload byte of the last frame
        journal.wal_path.write_bytes(bytes(data))

        fresh = TenantJournal(tmp_path, "acme")
        assert [seq for seq, _ in fresh.entries()] == [1]

    def test_checksummed_frame_with_wrong_shape_is_a_writer_bug(self, tmp_path):
        journal = TenantJournal(tmp_path, "acme")
        payload = json.dumps(["not", "a", "mapping"]).encode()
        with open(journal.wal_path, "wb") as handle:
            handle.write(b"%08x %08x " % (len(payload), zlib.crc32(payload)))
            handle.write(payload + b"\n")
        with pytest.raises(JournalError):
            journal.entries()


class TestSequencing:
    def test_sequence_must_strictly_increase(self, tmp_path):
        journal = TenantJournal(tmp_path, "acme")
        journal.append(1, open_record())
        with pytest.raises(JournalError):
            journal.append(1, advance_record())

    def test_duplicate_sequences_across_files_are_deduped(self, tmp_path):
        # A crash between checkpoint-replace and wal-truncate leaves the
        # same entries in both files; replay must not double-apply.
        journal = TenantJournal(tmp_path, "acme")
        journal.append(1, open_record())
        journal.append(2, advance_record())
        journal.checkpoint()
        journal.close()
        # Simulate the torn checkpoint window: re-write the wal with the
        # already-checkpointed entries still in it.
        stale = TenantJournal(tmp_path / "other", "acme")
        stale.append(1, open_record())
        stale.append(2, advance_record())
        stale.close()
        journal.wal_path.write_bytes(stale.wal_path.read_bytes())

        fresh = TenantJournal(tmp_path, "acme")
        assert [seq for seq, _ in fresh.entries()] == [1, 2]

    def test_fsync_every_validates(self, tmp_path):
        with pytest.raises(ConfigurationError):
            TenantJournal(tmp_path, "acme", fsync_every=0)


class TestCheckpoint:
    def test_checkpoint_folds_wal_and_truncates(self, tmp_path):
        journal = TenantJournal(tmp_path, "acme")
        journal.append(1, open_record())
        journal.append(2, advance_record(0.5))
        journal.checkpoint()
        assert journal.wal_path.stat().st_size == 0
        assert journal.ckpt_path.stat().st_size > 0
        assert journal.since_checkpoint == 0
        journal.append(3, advance_record(1.0))
        journal.close()

        fresh = TenantJournal(tmp_path, "acme")
        assert [seq for seq, _ in fresh.entries()] == [1, 2, 3]

    def test_delete_removes_both_files(self, tmp_path):
        journal = TenantJournal(tmp_path, "acme")
        journal.append(1, open_record())
        journal.checkpoint()
        journal.append(2, advance_record())
        journal.delete()
        assert not journal.wal_path.exists()
        assert not journal.ckpt_path.exists()
        assert journal_tenants(tmp_path) == []


class TestDiscovery:
    def test_tenant_names_round_trip_through_quoting(self, tmp_path):
        for tenant in ("plain", "with space", "a/b", "pct%40sign"):
            journal = TenantJournal(tmp_path, tenant)
            journal.append(1, open_record())
            journal.close()
        assert journal_tenants(tmp_path) == sorted(
            ["plain", "with space", "a/b", "pct%40sign"]
        )

    def test_missing_directory_is_empty(self, tmp_path):
        assert journal_tenants(tmp_path / "nope") == []
