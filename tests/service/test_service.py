"""The multi-tenant dispatch service: admission, isolation, lifecycle."""

import asyncio
import json

import pytest

from repro.api.wire import (
    AckReply,
    Advance,
    BudgetReply,
    Drain,
    ErrorReply,
    Finish,
    FinishedReply,
    OpenSession,
    ShedReply,
    SubmitTask,
    SubmitWorker,
)
from repro.datasets.workload import Task, Worker
from repro.errors import ConfigurationError, ServiceError
from repro.service import (
    DispatchService,
    ServiceClient,
    ServiceConfig,
    serve_jsonl,
)
from repro.spatial.geometry import Point


def run(coro):
    return asyncio.run(coro)


def worker(j=1, radius=5.0):
    return Worker(id=j, location=Point(0.0, 0.0), radius=radius)


def task(i=1):
    return Task(id=i, location=Point(0.1, 0.1), value=1.0)


class TestServiceConfig:
    def test_defaults_validate(self):
        config = ServiceConfig()
        assert config.max_sessions == 10_000
        assert config.queue_limit == 64

    @pytest.mark.parametrize(
        "bad",
        [
            {"max_sessions": 0},
            {"queue_limit": 0},
            {"backpressure_ratio": 0.0},
            {"tenant_budget": -1.0},
            {"cache_entries": 0},
            {"cache_bytes": 0},
        ],
        ids=lambda d: next(iter(d)),
    )
    def test_bad_knobs_rejected(self, bad):
        with pytest.raises(ConfigurationError, match=next(iter(bad))):
            ServiceConfig(**bad)

    def test_mapping_round_trip(self):
        config = ServiceConfig(queue_limit=8, tenant_budget=5.0)
        assert ServiceConfig.from_mapping(config.to_dict()) == config

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="typo"):
            ServiceConfig.from_mapping({"typo": 3})


class TestSessionLifecycle:
    def test_full_session_through_the_client(self):
        async def scenario():
            service = DispatchService()
            client = ServiceClient(service, "acme")
            assert isinstance(await client.open("UCE"), AckReply)
            await client.submit_worker(worker())
            await client.submit_task(task())
            await client.advance(1.0)
            events = await client.drain()
            assert len(events) == 1
            assert events[0].task_id == 1
            final = await client.finish()
            assert isinstance(final, FinishedReply)
            assert final.assigned == 1
            await service.close()

        run(scenario())

    def test_double_open_is_an_error(self):
        async def scenario():
            service = DispatchService()
            client = ServiceClient(service, "a", raise_errors=False)
            await client.open("UCE")
            reply = await client.open("UCE")
            assert isinstance(reply, ErrorReply)
            assert "already" in reply.message
            await service.close()

        run(scenario())

    def test_reopen_after_finish_is_allowed(self):
        async def scenario():
            service = DispatchService()
            client = ServiceClient(service, "a")
            await client.open("UCE")
            await client.finish()
            assert isinstance(await client.open("GRD"), AckReply)
            await client.finish()
            await service.close()

        run(scenario())

    def test_request_without_session_is_an_error(self):
        async def scenario():
            service = DispatchService()
            client = ServiceClient(service, "ghost")
            with pytest.raises(ServiceError, match="no open session"):
                await client.advance(1.0)
            await service.close()

        run(scenario())

    def test_bad_options_are_reported_not_raised(self):
        async def scenario():
            service = DispatchService()
            client = ServiceClient(service, "a", raise_errors=False)
            reply = await client.open("UCE", options={"typo": 1})
            assert isinstance(reply, ErrorReply)
            assert reply.code == "ConfigurationError"
            await service.close()

        run(scenario())

    def test_server_side_failure_becomes_service_error(self):
        async def scenario():
            service = DispatchService()
            client = ServiceClient(service, "a")
            await client.open("UCE")
            await client.advance(5.0)
            with pytest.raises(ServiceError) as excinfo:
                await client.submit_task(task(), at=1.0)  # in the past
            assert excinfo.value.code == "ConfigurationError"
            await client.finish()
            await service.close()

        run(scenario())


class TestTenantIsolation:
    def test_sessions_do_not_interfere(self):
        async def scenario():
            service = DispatchService()
            a = ServiceClient(service, "a")
            b = ServiceClient(service, "b")
            await a.open("UCE", options={"seed": 1})
            await b.open("GRD", options={"seed": 2})
            await a.submit_worker(worker())
            await a.submit_task(task())
            # b has no fleet: its task must expire, a's must assign.
            await b.submit_task(task())
            await asyncio.gather(a.advance(2.0), b.advance(2.0))
            fa, fb = await asyncio.gather(a.finish(), b.finish())
            assert fa.assigned == 1
            assert fb.assigned == 0 and fb.expired == 1
            await service.close()

        run(scenario())

    def test_many_interleaved_tenants(self):
        async def drive(client):
            await client.open("UCE")
            await client.submit_worker(worker())
            await client.submit_task(task())
            await client.advance(1.0)
            events = await client.drain()
            final = await client.finish()
            return len(events), final.assigned

        async def scenario():
            service = DispatchService()
            clients = [ServiceClient(service, f"t{i}") for i in range(40)]
            results = await asyncio.gather(*(drive(c) for c in clients))
            assert all(r == (1, 1) for r in results)
            await service.close()

        run(scenario())


class TestAdmissionControl:
    def test_max_sessions_sheds_opens(self):
        async def scenario():
            service = DispatchService(ServiceConfig(max_sessions=2))
            replies = []
            for name in ("a", "b", "c"):
                replies.append(
                    await service.open_session("" + name, OpenSession(method="UCE"))
                )
            assert isinstance(replies[0], AckReply)
            assert isinstance(replies[1], AckReply)
            assert isinstance(replies[2], ShedReply)
            assert replies[2].reason == "max_sessions"
            await service.close()

        run(scenario())

    def test_budget_cap_sheds_new_tasks(self):
        async def scenario():
            # An absurdly small cap: the very first PUCE flush spends
            # past it, so the next submit must shed.
            service = DispatchService(ServiceConfig(tenant_budget=1e-9))
            client = ServiceClient(service, "a")
            await client.open("PUCE", options={"seed": 3})
            await client.submit_worker(worker())
            await client.submit_task(task(1))
            await client.advance(1.0)
            await client.drain()
            reply = await client.submit_task(task(2))
            assert isinstance(reply, ShedReply)
            assert reply.reason == "budget"
            assert client.shed == 1
            # Control requests still pass: the session can wind down.
            final = await client.finish()
            assert isinstance(final, FinishedReply)
            await service.close()

        run(scenario())

    def test_backpressure_sheds_when_flushes_run_slow(self):
        async def scenario():
            service = DispatchService(ServiceConfig(backpressure_ratio=2.0))
            client = ServiceClient(service, "a")
            # An impossible target makes any observed flush "too slow"
            # once the EWMA warms up (3 non-cached flushes).
            await client.open(
                "UCE", options={"target_flush_seconds": 1e-12, "max_wait": 0.1}
            )
            await client.submit_worker(worker())
            for i in range(1, 5):
                await client.submit_task(task(i), at=float(i) * 0.5)
                await client.advance(float(i) * 0.5 + 0.2)
            reply = await client.submit_task(task(99), at=3.0)
            assert isinstance(reply, ShedReply)
            assert reply.reason == "backpressure"
            final = await client.finish()
            assert isinstance(final, FinishedReply)
            await service.close()

        run(scenario())

    def test_queue_full_sheds_tasks(self):
        async def scenario():
            service = DispatchService(ServiceConfig(queue_limit=1))
            client = ServiceClient(service, "a")
            await client.open("UCE")
            # Stuff the queue without letting the consumer run by
            # enqueueing from inside one event-loop step.
            loop = asyncio.get_running_loop()
            state = service._tenants["a"]
            state.queue.put_nowait(
                (SubmitWorker(worker_id=1, x=0.0, y=0.0, radius=5.0),
                 1,
                 loop.create_future())
            )
            reply = await client.submit_task(task())
            assert isinstance(reply, ShedReply)
            assert reply.reason == "queue_full"
            await client.finish()
            await service.close()

        run(scenario())


class TestMetricsAndCache:
    def test_metrics_render_after_traffic(self):
        async def scenario():
            service = DispatchService()
            client = ServiceClient(service, "acme")
            await client.open("PUCE", options={"seed": 1})
            await client.submit_worker(worker())
            await client.submit_task(task())
            await client.advance(1.0)
            await client.drain()
            await client.finish()
            text = service.render_metrics()
            assert 'service_requests_total{kind="submit_task",tenant="acme"}' in text
            assert "service_tenant_privacy_spend" in text
            assert "service_open_sessions 0" in text
            await service.close()

        run(scenario())

    def test_identical_tenants_share_cache_entries(self):
        async def scenario():
            service = DispatchService()
            for name in ("a", "b", "c"):
                client = ServiceClient(service, name)
                await client.open("UCE", options={"cache": True})
                await client.submit_worker(worker())
                await client.submit_task(task())
                await client.advance(1.0)
                await client.finish()
            # Three identical pure flushes: one solve, two hits.
            assert len(service.cache) == 1
            assert service.cache.hits == 2
            await service.close()

        run(scenario())

    def test_cache_snapshot_survives_restart(self, tmp_path):
        snapshot = tmp_path / "service_cache.json"

        async def generation(expect_hits):
            service = DispatchService(
                ServiceConfig(snapshot_path=str(snapshot))
            )
            client = ServiceClient(service, "a")
            await client.open("UCE", options={"cache": True})
            await client.submit_worker(worker())
            await client.submit_task(task())
            await client.advance(1.0)
            final = await client.finish()
            hits = final.cache_hit_rate
            await service.close()
            return hits

        cold = run(generation(False))
        assert snapshot.is_file()
        warm = run(generation(True))
        assert cold == 0.0
        assert warm == 1.0  # restart replayed the snapshot, flush hit

        run(generation(True))


class TestServeJsonl:
    def test_envelope_round_trip(self):
        lines = [
            json.dumps(
                {"tenant": "a", "request": {"kind": "open_session", "v": 1,
                                            "method": "UCE",
                                            "options": None,
                                            "default_deadline": 1.0}}
            ),
            json.dumps(
                {"tenant": "a", "request": {"kind": "finish", "v": 1}}
            ),
            "not json at all",
            json.dumps({"tenant": 7, "request": {"kind": "drain", "v": 1}}),
            json.dumps({"tenant": "b", "request": {"kind": "teleport", "v": 1}}),
        ]
        out = []

        async def scenario():
            service = DispatchService()
            served = await serve_jsonl(service, lines, out.append)
            await service.close()
            return served

        served = run(scenario())
        assert served == 2  # only well-formed envelopes reach the service
        replies = [json.loads(line) for line in out]
        assert replies[0]["reply"]["kind"] == "ack"
        assert replies[1]["reply"]["kind"] == "finished"
        assert replies[2]["reply"]["kind"] == "error"
        assert replies[3]["reply"]["kind"] == "error"
        assert replies[4]["reply"]["kind"] == "error"
        assert replies[4]["tenant"] == "b"


class TestBudgetStatus:
    def test_worker_and_tenant_level_readings(self):
        async def scenario():
            service = DispatchService(ServiceConfig(tenant_budget=100.0))
            client = ServiceClient(service, "a")
            await client.open("PUCE", options={"seed": 3})
            await client.submit_worker(worker(), budget=40.0)
            await client.submit_task(task(1))
            await client.advance(1.0)

            tenant = await client.budget_status()
            assert isinstance(tenant, BudgetReply)
            assert tenant.worker_id is None
            assert tenant.spend > 0.0
            # The service overlays its tenant cap onto `remaining`.
            assert tenant.remaining == pytest.approx(100.0 - tenant.spend)

            mine = await client.budget_status(worker_id=1)
            assert mine.worker_id == 1
            assert mine.spend > 0.0
            assert mine.remaining == pytest.approx(40.0 - mine.spend)
            await service.close()

        run(scenario())

    def test_tenant_reading_without_cap_has_null_remaining(self):
        async def scenario():
            service = DispatchService(ServiceConfig())
            client = ServiceClient(service, "a")
            await client.open("UCE")
            reply = await client.budget_status()
            assert isinstance(reply, BudgetReply)
            assert reply.spend == 0.0
            assert reply.remaining is None
            await service.close()

        run(scenario())

    def test_budget_status_needs_a_session(self):
        async def scenario():
            service = DispatchService(ServiceConfig())
            client = ServiceClient(service, "a", raise_errors=False)
            reply = await client.budget_status()
            assert isinstance(reply, ErrorReply)
            await service.close()

        run(scenario())

    def test_windowed_tenant_is_readmitted_after_budget_shed(self):
        async def scenario():
            # Cap below one flush's spend: the tenant sheds right after
            # flushing — then, because the session accounts per sliding
            # window, the same tenant is admitted again once the releases
            # age out of the window.  A global tenant stays shed forever.
            options = {
                "seed": 3,
                "window_seconds": 2.0,
                "window_budget": 40.0,
            }
            service = DispatchService(ServiceConfig(tenant_budget=1e-9))
            client = ServiceClient(service, "a")
            await client.open("PUCE", options=options)
            await client.submit_worker(worker(), budget=40.0)
            await client.submit_task(task(1))
            await client.advance(1.0)
            shed = await client.submit_task(task(2))
            assert isinstance(shed, ShedReply)
            assert shed.reason == "budget"

            # Two window-widths with no traffic: in-window spend -> 0.
            await client.advance(6.0)
            readmitted = await client.submit_task(task(3), at=6.0)
            assert isinstance(readmitted, AckReply)
            status = await client.budget_status()
            assert status.spend == 0.0
            await service.close()

        run(scenario())
