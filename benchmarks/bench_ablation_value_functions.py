"""Ablation: non-linear distance value functions (the paper's future work).

The paper fixes ``f_d(x) = x`` and defers "other types of functions" to
future work.  The library supports any invertible monotone ``f_d``
(:class:`repro.core.utility.PowerValue`); this ablation runs the solvers
under

* ``sqrt``   — concave ``f_d(x) = x^0.5`` (long trips barely worse),
* ``linear`` — the paper's choice,
* ``square`` — convex ``f_d(x) = x^2`` (long trips heavily penalised),

and measures how the induced matchings shift.  Note (DESIGN.md): the Eq. 4
utility-to-distance transform is *exact* only for linear ``f_d``; for the
non-linear variants the private comparisons become approximations, which
this ablation quantifies via the private-vs-non-private deviation.
"""

import pytest

from benchmarks.conftest import bench_seed, bench_tasks, emit_table
from repro.core.nonprivate import UCESolver
from repro.core.puce import PUCESolver
from repro.core.utility import LinearValue, PowerValue, UtilityModel
from repro.experiments.sweeps import make_generator

VALUE_FUNCTIONS = {
    "sqrt": PowerValue(exponent=0.5),
    "linear": LinearValue(1.0),
    "square": PowerValue(exponent=2.0),
}


@pytest.fixture(scope="module")
def rows():
    generator = make_generator("normal", bench_tasks(), 2 * bench_tasks(), bench_seed())
    measured = {}
    for label, f_d in VALUE_FUNCTIONS.items():
        # Heterogeneous task values: with a uniform value, any monotone
        # f_d induces the same distance ordering and the ablation is
        # vacuous; jittered values make the value-vs-distance trade bite.
        instance = generator.instance(model=UtilityModel(f_d=f_d), value_jitter=2.0)
        puce = PUCESolver().solve(instance, seed=5)
        uce = UCESolver().solve(instance)
        measured[label] = {"PUCE": puce, "UCE": uce}
    lines = ["f_d      method  matched  U_avg   D_avg"]
    for label, results in measured.items():
        for method, result in results.items():
            lines.append(
                f"{label:7s}  {method:6s}  {result.matched_count:7d}  "
                f"{result.average_utility:5.3f}  {result.average_distance:6.3f}"
            )
    emit_table("ablation_value_functions", "\n".join(lines))
    return measured


def test_value_function_ablation(benchmark, rows):
    generator = make_generator("normal", bench_tasks(), 2 * bench_tasks(), bench_seed())
    instance = generator.instance(model=UtilityModel(f_d=PowerValue(exponent=2.0)))
    benchmark.pedantic(
        lambda: PUCESolver().solve(instance, seed=5), rounds=2, iterations=1
    )

    # With heterogeneous values the choice of f_d changes the matching:
    # convex f_d trades value for proximity, concave f_d chases value.
    sqrt_match = dict(rows["sqrt"]["UCE"].matching.pairs)
    square_match = dict(rows["square"]["UCE"].matching.pairs)
    assert sqrt_match != square_match

    # Convex f_d punishes distance harder: matched travel under `square`
    # does not exceed `sqrt`'s.
    uce_distance = {label: rows[label]["UCE"].average_distance for label in rows}
    assert uce_distance["square"] <= uce_distance["sqrt"] + 0.02

    # Private solving stays functional and below its non-private ceiling
    # under every f_d (the Eq. 4 transform degrades gracefully).
    for label, results in rows.items():
        assert results["PUCE"].matched_count > 0, label
        assert (
            results["PUCE"].average_utility < results["UCE"].average_utility
        ), label
