"""Dispatch-service benchmark: thousands of tenants on one event loop.

Drives the multi-tenant service (:mod:`repro.service`) with
``REPRO_BENCH_TENANTS`` interleaved tenant sessions (default 1000;
smoke: 120) in a single process.  Every tenant opens its own session,
staffs a small fleet, releases tasks, advances, drains, finishes — all
through the typed wire records — while sharing one process-wide flush
cache.  Tenants are drawn from a handful of workload shapes, so the
shared cache sees genuine cross-tenant recurrence (the service's
headline economy) alongside unique-solve traffic.

Measured and written to ``BENCH_service.json``:

* aggregate throughput — assigned tasks per wall second across all
  tenants, and requests per second through the queues;
* per-tenant p95 request latency (enqueue -> reply) and p95 session
  duration (open -> finished);
* shed rate — requests refused at admission over requests offered,
  exercised by a burst cohort that floods its queue on purpose.

``REPRO_BENCH_SMOKE=1`` keeps the run error-only and leaves the tracked
baseline untouched (``REPRO_BENCH_JSON_DIR`` collects the fresh JSON for
the CI perf gate).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import bench_seed, emit_table
from repro.api.wire import FinishedReply, ShedReply
from repro.datasets.workload import Task, Worker
from repro.service import DispatchService, ServiceClient, ServiceConfig
from repro.spatial.geometry import Point

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: Distinct workload shapes tenants cycle through; small, so identical
#: flushes recur across tenants and the shared cache earns hits.
SHAPES = 8
WORKERS_PER_TENANT = 3
TASKS_PER_TENANT = 6
#: One tenant in BURST_EVERY floods its queue without awaiting replies,
#: overflowing the per-tenant cap on purpose (the shedding path).
BURST_EVERY = 10
BURST_TASKS = 24


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def _tenants() -> int:
    return int(os.environ.get("REPRO_BENCH_TENANTS", "120" if _smoke() else "1000"))


def _json_target() -> Path | None:
    out = os.environ.get("REPRO_BENCH_JSON_DIR")
    if out:
        return Path(out) / "BENCH_service.json"
    return None if _smoke() else BENCH_JSON


async def _drive_tenant(service, name, shape, burst, latencies):
    """One tenant's whole session; returns (assigned, shed, duration)."""
    client = ServiceClient(service, name, raise_errors=True)

    async def timed(coro):
        started = time.perf_counter()
        reply = await coro
        latencies.append(time.perf_counter() - started)
        return reply

    opened = time.perf_counter()
    await timed(client.open("UCE", options={"cache": True, "max_wait": 0.2}))
    for j in range(WORKERS_PER_TENANT):
        await timed(
            client.submit_worker(
                Worker(
                    id=100 + j,
                    location=Point(float(j) + 0.1 * shape, 0.0),
                    radius=4.0,
                ),
                budget=40.0,
            )
        )
    if burst:
        # Fire the whole burst concurrently: replies are not awaited
        # one-by-one, so the queue genuinely fills and admission sheds.
        await asyncio.gather(
            *(
                timed(
                    client.submit_task(
                        Task(
                            id=i,
                            location=Point(0.4 * (i % 5), 0.1 * shape),
                            value=4.5,
                        ),
                        at=0.1,
                    )
                )
                for i in range(BURST_TASKS)
            )
        )
    else:
        for i in range(TASKS_PER_TENANT):
            await timed(
                client.submit_task(
                    Task(
                        id=i,
                        location=Point(0.4 * i, 0.1 * shape),
                        value=4.5,
                    ),
                    at=0.05 * (i + 1),
                )
            )
    await timed(client.advance(1.0))
    drained = len(await timed(client.drain()))
    final = await timed(client.finish())
    duration = time.perf_counter() - opened
    assert isinstance(final, FinishedReply)
    return {
        "assigned": final.assigned,
        "arrived": final.arrived_tasks,
        "drained": drained,
        "shed": client.shed,
        "duration": duration,
        "cache_hit_rate": final.cache_hit_rate,
    }


async def _run_fleet(num_tenants, seed):
    config = ServiceConfig(
        max_sessions=max(num_tenants, 1),
        queue_limit=8,
        backpressure_ratio=None,  # measure shedding from queue caps alone
        cache_entries=4096,
    )
    service = DispatchService(config)
    per_tenant_latencies: list[list[float]] = [[] for _ in range(num_tenants)]
    started = time.perf_counter()
    outcomes = await asyncio.gather(
        *(
            _drive_tenant(
                service,
                f"tenant-{seed}-{t}",
                shape=t % SHAPES,
                burst=(t % BURST_EVERY == 0),
                latencies=per_tenant_latencies[t],
            )
            for t in range(num_tenants)
        )
    )
    wall = time.perf_counter() - started
    metrics_text = service.render_metrics()
    cache_stats = {
        "entries": len(service.cache),
        "hits": service.cache.hits,
        "misses": service.cache.misses,
        "evictions": service.cache.evictions,
        "total_bytes": service.cache.total_bytes,
    }
    await service.close()
    return outcomes, per_tenant_latencies, wall, metrics_text, cache_stats


def _percentile(values, q):
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


@pytest.fixture(scope="module")
def service_rows():
    num_tenants = _tenants()
    seed = bench_seed()
    outcomes, latencies, wall, metrics_text, cache_stats = asyncio.run(
        _run_fleet(num_tenants, seed)
    )
    assigned = sum(o["assigned"] for o in outcomes)
    arrived = sum(o["arrived"] for o in outcomes)
    shed = sum(o["shed"] for o in outcomes)
    requests = sum(len(lat) for lat in latencies)
    tenant_p95s = [_percentile(lat, 95.0) for lat in latencies if lat]
    durations = [o["duration"] for o in outcomes]
    return {
        "tenants": num_tenants,
        "seed": seed,
        "wall_seconds": wall,
        "rows": [
            {
                "metric": "service",
                "tenants": num_tenants,
                "requests": requests,
                "arrived": arrived,
                "assigned": assigned,
                "shed": shed,
                "shed_rate": shed / (requests + shed) if requests else 0.0,
                "tasks_per_sec": assigned / wall if wall else 0.0,
                "requests_per_sec": requests / wall if wall else 0.0,
                "request_p95_seconds": _percentile(tenant_p95s, 50.0),
                "request_p95_worst_seconds": max(tenant_p95s),
                "session_p95_seconds": _percentile(durations, 95.0),
                "cache_hit_rate_mean": float(
                    np.mean([o["cache_hit_rate"] for o in outcomes])
                ),
                "shared_cache": cache_stats,
            }
        ],
        "has_shed_metric": "service_shed_total" in metrics_text,
    }


def test_service_throughput_baseline(service_rows):
    """Record the service baseline; sanity-check the multiplexing."""
    row = service_rows["rows"][0]
    lines = [
        "tenants  requests  assigned  shed   wall_s  tasks/s  req/s    p95_ms",
        f"{row['tenants']:>7} {row['requests']:>9} {row['assigned']:>9} "
        f"{row['shed']:>5} {service_rows['wall_seconds']:>8.2f} "
        f"{row['tasks_per_sec']:>8.0f} {row['requests_per_sec']:>8.0f} "
        f"{row['request_p95_seconds'] * 1e3:>9.2f}",
    ]
    if not _smoke():
        emit_table("service_throughput", "\n".join(lines))

    target = _json_target()
    if target is not None:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(service_rows, indent=2) + "\n")

    # Every tenant session completed and work actually flowed.
    assert row["tenants"] == _tenants()
    assert row["assigned"] > 0
    assert row["tasks_per_sec"] > 0
    assert 0.0 <= row["shed_rate"] < 1.0
    # The burst cohort must actually exercise admission shedding.
    assert row["shed"] > 0
    assert service_rows["has_shed_metric"]
    # The shared cache must see cross-tenant recurrence: far fewer
    # solved entries than flushes, i.e. hits strictly positive.
    assert row["shared_cache"]["hits"] > 0
