"""Streaming throughput benchmark: the online layer's perf baseline.

Runs the Poisson scenario through the streaming stack (arrivals ->
micro-batcher -> solver -> duty cycles) for a private and a non-private
method in three flush-execution modes and records the numbers later PRs
must beat:

* ``sequential`` — the classic single-engine flush solve,
* ``sharded`` — the conflict-free shard cut, solved shard by shard,
* ``parallel`` — the same cut, shard groups on a process pool
  (``REPRO_BENCH_SHARDS`` execution slots, default 4).

Sharded and parallel rows are bit-identical in assignments and privacy
spend by construction (the per-shard seed schedule); the bench asserts
it.  Their *throughput* relation is hardware-dependent: the parallel row
only pulls ahead of sequential on multi-core machines with decomposable
flushes — on a single core the pool is pure overhead, and the recorded
numbers say so honestly.

Besides the usual ``benchmarks/results`` table, the measured series is
written to ``BENCH_stream.json`` at the repository root so the perf
trajectory is machine-readable across PRs.  Scale follows
``REPRO_BENCH_TASKS`` (approximate task arrivals over the horizon).
``REPRO_BENCH_SMOKE=1`` keeps the run error-only: no timing gates, and
the tracked baseline JSON is left untouched (set
``REPRO_BENCH_JSON_DIR`` to collect the fresh JSON elsewhere — the CI
perf gate does exactly that).
"""

from __future__ import annotations

import dataclasses
import json
import os
import statistics
import time
from pathlib import Path

import pytest

from benchmarks.conftest import bench_seed, bench_tasks, emit_table
from repro.api.scenario import ScenarioSpec
from repro.datasets.synthetic import NormalGenerator
from repro.stream import PoissonProcess, StreamConfig, StreamRunner, StreamWorkload

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_stream.json"
DUTY_SPEC = Path(__file__).resolve().parent.parent / "examples" / "scenario_duty_cycle.json"

HORIZON = 3.0
METHODS = ("PUCE", "UCE")
#: The classic Poisson throughput modes (duty-cycle rows ride separately).
POISSON_MODES = ("sequential", "sharded", "parallel")


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def _duty_runs() -> int:
    return int(os.environ.get("REPRO_BENCH_RUNS", "1" if _smoke() else "7"))


def _bench_shards() -> int:
    return int(os.environ.get("REPRO_BENCH_SHARDS", "4"))


def _json_target() -> Path | None:
    """Where to write the fresh JSON; ``None`` = nowhere (plain smoke)."""
    out = os.environ.get("REPRO_BENCH_JSON_DIR")
    if out:
        return Path(out) / "BENCH_stream.json"
    return None if _smoke() else BENCH_JSON


def _modes() -> tuple[tuple[str, dict], ...]:
    shards = _bench_shards()
    return (
        ("sequential", {}),
        ("sharded", {"shards": shards}),
        ("parallel", {"shards": shards, "parallel": "process"}),
    )


def _workload(num_tasks: int, seed: int) -> StreamWorkload:
    return StreamWorkload(
        task_process=PoissonProcess(rate=num_tasks / HORIZON, horizon=HORIZON),
        worker_process=PoissonProcess(rate=num_tasks / (3.0 * HORIZON), horizon=HORIZON),
        spatial=NormalGenerator(num_tasks=200, num_workers=400, seed=seed),
        initial_workers=max(num_tasks // 3, 10),
        task_deadline=1.0,
        worker_budget=40.0,
        seed=seed,
    )


def _config(num_tasks: int, mode_kwargs: dict) -> StreamConfig:
    return StreamConfig(
        max_batch_size=max(num_tasks // 4, 10), max_wait=0.2, **mode_kwargs
    )


@pytest.fixture(scope="module")
def stream_rows():
    num_tasks = bench_tasks()
    seed = bench_seed()
    workload = _workload(num_tasks, seed)
    events = workload.events(seed=seed)
    rows = []
    for mode, mode_kwargs in _modes():
        config = _config(num_tasks, mode_kwargs)
        for method in METHODS:
            runner = StreamRunner([method], config=config)
            started = time.perf_counter()
            report = runner.run(events, seed=seed)
            wall = time.perf_counter() - started
            stats = report[method]
            rows.append(
                {
                    "method": method,
                    "mode": mode,
                    "arrived": stats.arrived_tasks,
                    "assigned": stats.assigned,
                    "expired": stats.expired,
                    "flushes": len(stats.flushes),
                    "mean_shards": (
                        sum(f.shards for f in stats.flushes) / len(stats.flushes)
                        if stats.flushes
                        else 0.0
                    ),
                    "wall_seconds": wall,
                    "solver_seconds": stats.solver_seconds,
                    "tasks_per_sec": stats.throughput_tasks_per_sec,
                    "latency_p50": stats.latency_p50,
                    "latency_p95": stats.latency_p95,
                    "privacy_spend": stats.total_privacy_spend,
                    "cache": config.cache,
                    "workspace": config.workspace,
                    "cache_hit_rate": stats.cache_hit_rate,
                }
            )
    rows.extend(_duty_cycle_rows())
    return {
        "num_tasks": num_tasks,
        "seed": seed,
        "horizon": HORIZON,
        "shards": _bench_shards(),
        "duty_runs": _duty_runs(),
        "rows": rows,
    }


def _duty_cycle_rows() -> list[dict]:
    """The micro-flush duty-cycle workload, cache off vs on (UCE).

    A starved duty-cycle fleet re-flushes its loser sets thousands of
    times; the flush-fingerprint cache turns those recurring solves into
    lookups.  Wall seconds are medians over ``duty_runs`` whole-scenario
    runs (same-container caveats as PR 3: ±30% run-to-run on a shared
    1-core box; medians over 7+ runs are the comparison discipline).
    """
    spec = ScenarioSpec.from_file(DUTY_SPEC)
    if _smoke():
        spec = dataclasses.replace(spec, horizon=1.0)
    runs = _duty_runs()
    rows = []
    base_wall = None
    for mode, cache in (("duty", False), ("duty-cached", True)):
        variant = dataclasses.replace(
            spec, methods=("UCE",), options=spec.options.replace(cache=cache)
        )
        walls, report = [], None
        for _ in range(runs):
            started = time.perf_counter()
            report = variant.run()
            walls.append(time.perf_counter() - started)
        stats = report["UCE"]
        wall = statistics.median(walls)
        row = {
            "method": "UCE",
            "mode": mode,
            "arrived": stats.arrived_tasks,
            "assigned": stats.assigned,
            "expired": stats.expired,
            "flushes": len(stats.flushes),
            "wall_seconds": wall,
            "solver_seconds": stats.solver_seconds,
            "tasks_per_sec": stats.throughput_tasks_per_sec,
            "privacy_spend": stats.total_privacy_spend,
            "cache": cache,
            "workspace": True,
            "cache_hit_rate": stats.cache_hit_rate,
        }
        if base_wall is None:
            base_wall = wall
        else:
            row["wall_speedup_vs_uncached"] = base_wall / wall
        rows.append(row)
    return rows


def test_stream_throughput_baseline(benchmark, stream_rows):
    """Record the streaming perf baseline and sanity-check the stream."""
    num_tasks = stream_rows["num_tasks"]
    seed = stream_rows["seed"]
    workload = _workload(num_tasks, seed)
    events = workload.events(seed=seed)
    config = _config(num_tasks, {})

    benchmark.pedantic(
        lambda: StreamRunner(["PUCE"], config=config).run(events, seed=seed),
        rounds=3,
        iterations=1,
    )

    lines = [
        "method  mode         arrived  assigned  flushes  wall_s  tasks/s  cache_hit"
    ]
    for row in stream_rows["rows"]:
        lines.append(
            f"{row['method']:<6} {row['mode']:<12} {row['arrived']:>8} "
            f"{row['assigned']:>9} {row['flushes']:>8} {row['wall_seconds']:>7.3f} "
            f"{row['tasks_per_sec']:>8.0f} {row['cache_hit_rate']:>9.0%}"
        )
    if not _smoke():
        emit_table("stream_throughput", "\n".join(lines))

    target = _json_target()
    if target is not None:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(stream_rows, indent=2) + "\n")

    for row in stream_rows["rows"]:
        # Every released task reached an outcome path and some were served.
        assert row["arrived"] > 0
        assert row["assigned"] > 0, row
        assert row["tasks_per_sec"] > 0
        if row["mode"] in POISSON_MODES:
            # Latency percentiles are ordered and within the deadline.
            assert 0.0 <= row["latency_p50"] <= row["latency_p95"] <= 1.0 + 1e-9

    by_key = {(row["method"], row["mode"]): row for row in stream_rows["rows"]}
    # The duty-cycle cache smoke: recurring loser flushes must hit.
    cached_row = by_key[("UCE", "duty-cached")]
    assert cached_row["cache_hit_rate"] > 0.0
    assert by_key[("UCE", "duty")]["cache_hit_rate"] == 0.0
    if not _smoke():
        # The PR-5 acceptance number, medians over 7+ runs: the cache
        # must buy >=1.3x wall-clock on the duty-cycle micro-flush
        # workload.  (Smoke runs once at reduced scale and skips it.)
        assert cached_row["wall_speedup_vs_uncached"] >= 1.3, cached_row
    for method in METHODS:
        # Sharded and parallel execute the same per-shard seed schedule,
        # so their outcomes must agree exactly.
        sharded = by_key[(method, "sharded")]
        parallel = by_key[(method, "parallel")]
        for field in ("assigned", "expired", "flushes", "privacy_spend"):
            assert sharded[field] == parallel[field], (method, field)
    # The non-private counterpart never spends budget; the private one does.
    for mode in ("sequential", "sharded"):
        assert by_key[("UCE", mode)]["privacy_spend"] == 0.0
        assert by_key[("PUCE", mode)]["privacy_spend"] > 0.0
