"""Streaming throughput benchmark: the online layer's perf baseline.

Runs the Poisson scenario through the streaming stack (arrivals ->
micro-batcher -> solver -> duty cycles) for a private and a non-private
method and records the numbers later PRs must beat:

* end-to-end wall time of the full stream replay,
* solver-only throughput in assigned tasks per second,
* p50 / p95 assignment latency (simulated clock).

Besides the usual ``benchmarks/results`` table, the measured series is
written to ``BENCH_stream.json`` at the repository root so the perf
trajectory is machine-readable across PRs.  Scale follows
``REPRO_BENCH_TASKS`` (approximate task arrivals over the horizon).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import bench_seed, bench_tasks, emit_table
from repro.datasets.synthetic import NormalGenerator
from repro.stream import PoissonProcess, StreamConfig, StreamRunner, StreamWorkload

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_stream.json"

HORIZON = 3.0
METHODS = ("PUCE", "UCE")


def _workload(num_tasks: int, seed: int) -> StreamWorkload:
    return StreamWorkload(
        task_process=PoissonProcess(rate=num_tasks / HORIZON, horizon=HORIZON),
        worker_process=PoissonProcess(rate=num_tasks / (3.0 * HORIZON), horizon=HORIZON),
        spatial=NormalGenerator(num_tasks=200, num_workers=400, seed=seed),
        initial_workers=max(num_tasks // 3, 10),
        task_deadline=1.0,
        worker_budget=40.0,
        seed=seed,
    )


@pytest.fixture(scope="module")
def stream_rows():
    num_tasks = bench_tasks()
    seed = bench_seed()
    workload = _workload(num_tasks, seed)
    events = workload.events(seed=seed)
    config = StreamConfig(max_batch_size=max(num_tasks // 4, 10), max_wait=0.2)
    rows = []
    for method in METHODS:
        runner = StreamRunner([method], config=config)
        started = time.perf_counter()
        report = runner.run(events, seed=seed)
        wall = time.perf_counter() - started
        stats = report[method]
        rows.append(
            {
                "method": method,
                "arrived": stats.arrived_tasks,
                "assigned": stats.assigned,
                "expired": stats.expired,
                "flushes": len(stats.flushes),
                "wall_seconds": wall,
                "solver_seconds": stats.solver_seconds,
                "tasks_per_sec": stats.throughput_tasks_per_sec,
                "latency_p50": stats.latency_p50,
                "latency_p95": stats.latency_p95,
                "privacy_spend": stats.total_privacy_spend,
            }
        )
    return {"num_tasks": num_tasks, "seed": seed, "horizon": HORIZON, "rows": rows}


def test_stream_throughput_baseline(benchmark, stream_rows):
    """Record the streaming perf baseline and sanity-check the stream."""
    num_tasks = stream_rows["num_tasks"]
    seed = stream_rows["seed"]
    workload = _workload(num_tasks, seed)
    events = workload.events(seed=seed)
    config = StreamConfig(max_batch_size=max(num_tasks // 4, 10), max_wait=0.2)

    benchmark.pedantic(
        lambda: StreamRunner(["PUCE"], config=config).run(events, seed=seed),
        rounds=3,
        iterations=1,
    )

    lines = [
        "method  arrived  assigned  flushes  wall_s  tasks/s  p50_lat  p95_lat"
    ]
    for row in stream_rows["rows"]:
        lines.append(
            f"{row['method']:<6} {row['arrived']:>8} {row['assigned']:>9} "
            f"{row['flushes']:>8} {row['wall_seconds']:>7.3f} "
            f"{row['tasks_per_sec']:>8.0f} {row['latency_p50']:>8.3f} "
            f"{row['latency_p95']:>8.3f}"
        )
    emit_table("stream_throughput", "\n".join(lines))

    BENCH_JSON.write_text(json.dumps(stream_rows, indent=2) + "\n")

    for row in stream_rows["rows"]:
        # Every released task reached an outcome path and some were served.
        assert row["arrived"] > 0
        assert row["assigned"] > 0, row
        assert row["tasks_per_sec"] > 0
        # Latency percentiles are ordered and within the deadline.
        assert 0.0 <= row["latency_p50"] <= row["latency_p95"] <= 1.0 + 1e-9

    # The non-private counterpart never spends budget; the private one does.
    by_method = {row["method"]: row for row in stream_rows["rows"]}
    assert by_method["UCE"]["privacy_spend"] == 0.0
    assert by_method["PUCE"]["privacy_spend"] > 0.0
