"""Fault-tolerance benchmark: journal overhead, recovery replay, ladder cost.

The robustness PR adds three moving parts that could each tax the happy
path; this bench records the numbers that keep them honest:

* **journal overhead ratio** — wall clock of one wire-driven tenant run
  with the write-ahead journal on (group-commit ``fsync_every=8``) over
  the same run with journaling off.  The hard acceptance gate: the
  ratio must stay at or under **1.25x** — crash safety is not allowed
  to cost more than a quarter of the clean wall.
* **recovery replay ratio** — seconds for :meth:`DispatchService.
  recover` to rebuild the tenant from checkpoint + journal over the
  original run's wall.  Replay re-applies the accepted records (flushes
  re-execute), so the ratio should hover near the journaled fraction of
  the run, not above it.
* **degraded-vs-clean wall** — one sharded flush under a
  ``pool_crash``-every-time plan (the ladder walks to sequential) over
  the clean pooled flush, with the bit-identity of the two results
  recorded as ``results_identical`` — the whole point of the ladder.

``REPRO_BENCH_SMOKE=1`` keeps the run error-only and leaves the tracked
``BENCH_faults.json`` untouched (``REPRO_BENCH_JSON_DIR`` collects the
fresh JSON elsewhere — the CI perf gate does exactly that).
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import statistics
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import emit_table
from repro.api.options import SolveOptions
from repro.api.wire import (
    Advance,
    Drain,
    Finish,
    FinishedReply,
    OpenSession,
    SubmitTask,
    SubmitWorker,
)
from repro.core.registry import make_solver
from repro.datasets.synthetic import NormalGenerator
from repro.datasets.workload import Task, Worker
from repro.faults import FaultPlan
from repro.service import DispatchService, ServiceConfig, TenantJournal
from repro.simulation.instance import ProblemInstance
from repro.spatial.geometry import Point
from repro.stream.arrivals import PoissonProcess, StreamWorkload, TaskArrival
from repro.stream.shards import ShardSeedSchedule, ShardedFlushExecutor

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

#: The gate the ISSUE pins: crash safety may cost at most a quarter of
#: the clean wall on the wire-driven tenant run.
JOURNAL_OVERHEAD_LIMIT = 1.25

#: Group-commit cadence for the journaled run (recorded in the JSON).
FSYNC_EVERY = 8


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def _runs() -> int:
    return int(os.environ.get("REPRO_BENCH_RUNS", "3" if _smoke() else "5"))


def _task_rate() -> float:
    return float(os.environ.get("REPRO_BENCH_FAULT_RATE", "40" if _smoke() else "120"))


def _json_target() -> Path | None:
    out = os.environ.get("REPRO_BENCH_JSON_DIR")
    if out:
        return Path(out) / "BENCH_faults.json"
    return None if _smoke() else BENCH_JSON


def build_script(task_rate: float, seed: int = 7) -> list:
    """One tenant's full request sequence as wire records."""
    workload = StreamWorkload(
        task_process=PoissonProcess(rate=task_rate, horizon=1.0),
        worker_process=PoissonProcess(rate=task_rate / 4.0, horizon=1.0),
        spatial=NormalGenerator(
            num_tasks=max(int(task_rate * 2), 50),
            num_workers=max(int(task_rate * 2), 50),
            seed=seed,
        ),
        initial_workers=max(int(task_rate / 3), 8),
        task_deadline=0.8,
        worker_budget=30.0,
        seed=seed,
    )
    options = SolveOptions(seed=seed, max_batch_size=24, max_wait=0.1)
    script: list = [OpenSession(method="PUCE", options=options.to_dict())]
    for event in workload.events(seed=seed):
        if isinstance(event, TaskArrival):
            script.append(
                SubmitTask.from_task(
                    event.task, at=event.time, deadline=event.deadline
                )
            )
        else:
            budget = event.budget_capacity
            script.append(
                SubmitWorker.from_worker(
                    event.worker,
                    at=event.time,
                    budget=budget if budget is not None else math.inf,
                )
            )
    for cut in (0.25, 0.5, 0.75, 1.0):
        script.append(Advance(to_time=cut))
        script.append(Drain())
    script.append(Finish())
    return script


async def _drive(service, script, tenant, start_seq=1, stop_after=None):
    final = None
    for index, record in enumerate(script):
        if stop_after is not None and index >= stop_after:
            break
        reply = await service.submit(tenant, record, seq=start_seq + index)
        if isinstance(reply, FinishedReply):
            final = reply
    return final


def timed_wire_run(script, config) -> tuple[float, FinishedReply]:
    async def run():
        service = DispatchService(config)
        started = time.perf_counter()
        final = await _drive(service, script, "bench")
        wall = time.perf_counter() - started
        await service.close()
        return wall, final

    return asyncio.run(run())


@pytest.fixture(scope="module")
def fault_rows():
    runs = _runs()
    script = build_script(_task_rate())
    rows = []

    # 1. Journal overhead: the same wire run, journal off vs on.
    with tempfile.TemporaryDirectory() as scratch:
        clean_walls, journal_walls = [], []
        for attempt in range(runs):
            clean_walls.append(timed_wire_run(script, ServiceConfig())[0])
            journal_walls.append(
                timed_wire_run(
                    script,
                    ServiceConfig(
                        journal_dir=str(Path(scratch) / f"j{attempt}"),
                        journal_fsync_every=FSYNC_EVERY,
                    ),
                )[0]
            )
        clean_wall = statistics.median(clean_walls)
        journal_wall = statistics.median(journal_walls)
    rows.append(
        {
            "metric": "journal",
            "requests": len(script),
            "fsync_every": FSYNC_EVERY,
            "clean_wall_seconds": clean_wall,
            "journal_wall_seconds": journal_wall,
            "overhead_ratio": journal_wall / clean_wall,
            "overhead_limit": JOURNAL_OVERHEAD_LIMIT,
        }
    )

    # 2. Recovery replay: graceful stop mid-run, rebuild, finish.
    stop_after = len(script) // 2
    with tempfile.TemporaryDirectory() as scratch:
        config = ServiceConfig(
            journal_dir=scratch,
            journal_fsync_every=FSYNC_EVERY,
            journal_checkpoint_every=64,
        )

        async def crash_and_recover():
            service = DispatchService(config)
            await _drive(service, script, "bench", stop_after=stop_after)
            await service.close()  # checkpoint + close; files survive
            entries = len(TenantJournal(scratch, "bench").entries())
            fresh = DispatchService(config)
            started = time.perf_counter()
            recovered = await fresh.recover()
            replay = time.perf_counter() - started
            assert recovered == ["bench"]
            final = await _drive(
                fresh, script[stop_after:], "bench", start_seq=stop_after + 1
            )
            await fresh.close()
            return entries, replay, final

        entries, replay_seconds, final = asyncio.run(crash_and_recover())
    rows.append(
        {
            "metric": "recovery",
            "entries_replayed": entries,
            "replay_seconds": replay_seconds,
            "replay_ratio": replay_seconds / journal_wall,
            "finished_after_recovery": isinstance(final, FinishedReply),
        }
    )

    # 3. Degraded vs clean flush: the ladder's latency price, and the
    # bit-identity it buys.
    rng = np.random.default_rng(0)
    tasks, workers = [], []
    for cluster in range(4):
        cx = 100.0 * cluster
        for _ in range(24 if _smoke() else 60):
            x, y = rng.uniform(-2.0, 2.0, size=2)
            tasks.append(Task(id=len(tasks), location=Point(cx + x, y), value=4.5))
        for _ in range(12 if _smoke() else 30):
            x, y = rng.uniform(-2.0, 2.0, size=2)
            workers.append(
                Worker(id=1000 + len(workers), location=Point(cx + x, y), radius=6.0)
            )
    instance = ProblemInstance.build(tasks, workers, seed=0)
    schedule = ShardSeedSchedule(base=(3, 0, 7))

    def ladder_run(fault_plan):
        walls, outcome = [], None
        for _ in range(runs):
            with ShardedFlushExecutor(
                make_solver("PUCE"),
                num_shards=4,
                parallel="process",
                min_shard_pairs=0,
                fault_plan=fault_plan,
            ) as executor:
                started = time.perf_counter()
                result = executor.solve(instance, schedule)
                walls.append(time.perf_counter() - started)
                outcome = (
                    dict(result.matching),
                    list(result.ledger.events()),
                    executor.last_degraded,
                )
        return statistics.median(walls), outcome

    clean_flush, (clean_matching, clean_events, clean_chain) = ladder_run(None)
    degraded_flush, (matching, events, chain) = ladder_run(
        FaultPlan(seed=1, rates={"pool_crash": 1.0})
    )
    rows.append(
        {
            "metric": "degraded",
            "pairs": instance.num_feasible_pairs,
            "clean_wall_seconds": clean_flush,
            "degraded_wall_seconds": degraded_flush,
            "degraded_over_clean": degraded_flush / clean_flush,
            "degradation_chain": chain,
            "results_identical": (
                matching == clean_matching
                and events == clean_events
                and clean_chain is None
            ),
        }
    )

    return {"runs": runs, "rows": rows}


def test_faults_baseline(fault_rows):
    """Record the fault-tolerance numbers and their hard gates."""
    rows = fault_rows["rows"]
    journal = next(r for r in rows if r["metric"] == "journal")
    recovery = next(r for r in rows if r["metric"] == "recovery")
    degraded = next(r for r in rows if r["metric"] == "degraded")
    lines = [
        "metric     clean        faulted      ratio",
        f"journal    {journal['clean_wall_seconds']:>8.3f}s    "
        f"{journal['journal_wall_seconds']:>8.3f}s    "
        f"{journal['overhead_ratio']:>5.2f}x  "
        f"(limit {journal['overhead_limit']}x, "
        f"fsync_every={journal['fsync_every']})",
        f"recovery   {recovery['replay_seconds']:>8.3f}s replay of "
        f"{recovery['entries_replayed']} entries  "
        f"({recovery['replay_ratio']:>5.2f}x of the journaled wall)",
        f"degraded   {degraded['clean_wall_seconds']:>8.3f}s    "
        f"{degraded['degraded_wall_seconds']:>8.3f}s    "
        f"{degraded['degraded_over_clean']:>5.2f}x  "
        f"(chain {degraded['degradation_chain']}, identical="
        f"{degraded['results_identical']})",
    ]
    if not _smoke():
        emit_table("faults", "\n".join(lines))

    target = _json_target()
    if target is not None:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(fault_rows, indent=2) + "\n")

    # The acceptance gates, enforced at measurement time too.
    assert journal["overhead_ratio"] <= JOURNAL_OVERHEAD_LIMIT, journal
    assert recovery["finished_after_recovery"], recovery
    assert recovery["entries_replayed"] > 0, recovery
    assert degraded["results_identical"], degraded
    assert degraded["degradation_chain"], degraded
