"""Per-flush fixed-cost benchmark: the zero-rebuild hot path's receipts.

Steady-state streaming solves thousands of micro-flushes whose cost is
dominated by *fixed* per-flush work — instance construction, dict views,
engine buffer setup — not by protocol rounds.  This bench measures that
fixed cost under two regimes and records the ratio later PRs must hold:

* **rebuild** — the pre-overhaul flush path, reconstructed faithfully:
  grid-index reachability, per-worker budget sampling,
  ``PairArrays.from_rows`` row packing, eagerly materialised
  ``candidates`` / pair-index views, and a solve with fresh per-run
  buffers;
* **reuse** — the live hot path: brute-force micro reachability with a
  single batched budget draw and direct array assembly, lazy views, and
  a solve through one shared :class:`~repro.core.workspace.
  EngineWorkspace` arena.

It also runs the checked-in duty-cycle scenario with the
flush-fingerprint solver cache off and on (``examples/
scenario_duty_cycle.json``), recording median wall time over
``REPRO_BENCH_RUNS`` runs (default 7) and the cache hit rate — the
recurring-loser-flush regime the cache was built for.  Same-container
caveats as every bench here: medians over 7+ runs on a shared 1-core
container still wobble ±30%; the perf gate compares with a 3x floor.

``REPRO_BENCH_SMOKE=1`` keeps the run error-only and leaves the tracked
``BENCH_flush.json`` untouched (``REPRO_BENCH_JSON_DIR`` collects the
fresh JSON elsewhere — the CI perf gate does exactly that).
"""

from __future__ import annotations

import dataclasses
import json
import os
import statistics
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import emit_table
from repro.api.scenario import ScenarioSpec
from repro.core.budgets import BudgetSampler
from repro.core.nonprivate import UCESolver
from repro.core.puce import PUCESolver
from repro.core.workspace import EngineWorkspace
from repro.datasets.synthetic import NormalGenerator
from repro.simulation.instance import ProblemInstance
from repro.simulation.pairs import PairArrays
from repro.spatial.geometry import euclidean
from repro.spatial.index import GridIndex

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_flush.json"

#: Micro-flush shape: the duty-cycle regime the streaming layer lives in.
FLUSH_TASKS = 8
FLUSH_WORKERS = 16


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def _runs() -> int:
    return int(os.environ.get("REPRO_BENCH_RUNS", "3" if _smoke() else "7"))


def _reps() -> int:
    return int(os.environ.get("REPRO_BENCH_FLUSH_REPS", "50" if _smoke() else "400"))


def _json_target() -> Path | None:
    out = os.environ.get("REPRO_BENCH_JSON_DIR")
    if out:
        return Path(out) / "BENCH_flush.json"
    return None if _smoke() else BENCH_JSON


def _median_us(fn, reps: int, runs: int) -> float:
    """Median across runs of the mean per-call µs inside one run."""
    samples = []
    for _ in range(runs):
        started = time.perf_counter()
        for _ in range(reps):
            fn()
        samples.append((time.perf_counter() - started) / reps * 1e6)
    return statistics.median(samples)


# -- the rebuild-era flush, reconstructed ----------------------------------


def legacy_flush_instance(tasks, workers, model, seed) -> ProblemInstance:
    """The pre-overhaul per-flush instance path, step for step.

    Grid-index reachability, per-worker ``sample_matrix`` calls,
    ``from_rows`` packing, and the then-eager ``candidates`` /
    pair-index tables.  Kept in the bench (not the library) as the
    measured reference for the zero-rebuild claim.
    """
    rng = np.random.default_rng(seed)
    sampler = BudgetSampler()
    index = GridIndex([t.location for t in tasks]) if tasks else None
    reachable, distance_rows, budget_rows = [], [], []
    for worker in workers:
        in_range = (
            tuple(index.query_circle(worker.location, worker.radius))
            if index
            else ()
        )
        reachable.append(in_range)
        distance_rows.append(
            [euclidean(worker.location, tasks[i].location) for i in in_range]
        )
        budget_rows.append(sampler.sample_matrix(rng, len(in_range)))
    pairs = PairArrays.from_rows(
        reachable, distance_rows, budget_rows, [t.value for t in tasks]
    )
    instance = ProblemInstance.from_arrays(
        tasks=tasks, workers=workers, model=model, reachable=reachable, pairs=pairs
    )
    instance.candidates
    instance._pair_table()
    return instance


@pytest.fixture(scope="module")
def flush_rows():
    base = NormalGenerator(
        num_tasks=FLUSH_TASKS, num_workers=FLUSH_WORKERS, seed=1
    ).instance(task_value=4.5, worker_range=1.4)
    tasks, workers, model = base.tasks, base.workers, base.model
    reps, runs = _reps(), _runs()
    rows = []

    # 1. Pure fixed overhead: instance preparation, rebuild vs reuse.
    rebuild_us = _median_us(
        lambda: legacy_flush_instance(tasks, workers, model, 0), reps, runs
    )
    reuse_us = _median_us(
        lambda: ProblemInstance.build(
            tasks, workers, seed=np.random.default_rng(0)
        ),
        reps,
        runs,
    )
    rows.append(
        {
            "metric": "flush_prep",
            "tasks": FLUSH_TASKS,
            "workers": FLUSH_WORKERS,
            "pairs": base.num_feasible_pairs,
            "rebuild_us": rebuild_us,
            "reuse_us": reuse_us,
            "speedup": rebuild_us / reuse_us,
        }
    )

    # 2. End-to-end micro-flush (prep + solve), rebuild vs reuse arena.
    for name, solver in (("UCE", UCESolver()), ("PUCE", PUCESolver())):
        workspace = EngineWorkspace()
        total_rebuild = _median_us(
            lambda s=solver: s.solve(
                legacy_flush_instance(tasks, workers, model, 0), seed=0
            ),
            reps,
            runs,
        )
        total_reuse = _median_us(
            lambda s=solver: s.solve(
                ProblemInstance.build(tasks, workers, seed=np.random.default_rng(0)),
                seed=0,
                workspace=workspace,
            ),
            reps,
            runs,
        )
        rows.append(
            {
                "metric": "flush_total",
                "method": name,
                "rebuild_us": total_rebuild,
                "reuse_us": total_reuse,
                "speedup": total_rebuild / total_reuse,
                "workspace_reuses": workspace.reuses,
            }
        )

    # 3. The duty-cycle cache regime: median whole-run wall, hit rates.
    # UCE only: it is the method whose recurring flushes actually hit
    # (and the only row the perf gate reads).  A private method's
    # per-stream cache provably self-disables (see repro.stream.cache),
    # so benching PUCE cache-on would time a configuration identical by
    # construction to cache-off.  The stream bench's duty rows carry the
    # cross-PR throughput comparison; this one records the hit rate and
    # the wall medians the flush-overhead story quotes.
    spec = ScenarioSpec.from_file(
        Path(__file__).resolve().parent.parent
        / "examples"
        / "scenario_duty_cycle.json"
    )
    if _smoke():
        spec = dataclasses.replace(spec, horizon=1.0)
    for method in ("UCE",):
        for cache in (False, True):
            variant = dataclasses.replace(
                spec,
                methods=(method,),
                options=spec.options.replace(cache=cache),
            )
            walls, report = [], None
            for _ in range(runs):
                started = time.perf_counter()
                report = variant.run()
                walls.append(time.perf_counter() - started)
            stats = report[method]
            rows.append(
                {
                    "metric": "cache",
                    "method": method,
                    "cache": cache,
                    "wall_seconds": statistics.median(walls),
                    "flushes": len(stats.flushes),
                    "cache_hits": stats.cache_hits,
                    "cache_hit_rate": stats.cache_hit_rate,
                    "solver_seconds": stats.solver_seconds,
                }
            )

    return {"runs": runs, "reps": reps, "rows": rows}


def test_flush_overhead_baseline(flush_rows):
    """Record the per-flush fixed-cost numbers and their invariants."""
    rows = flush_rows["rows"]
    lines = ["metric       method  rebuild_us  reuse_us  speedup  cache_hit_rate"]
    for row in rows:
        if row["metric"] in ("flush_prep", "flush_total"):
            lines.append(
                f"{row['metric']:<12} {row.get('method', '-'):<7} "
                f"{row['rebuild_us']:>10.1f} {row['reuse_us']:>9.1f} "
                f"{row['speedup']:>8.2f}  {'-':>14}"
            )
        else:
            label = f"{row['method']}{'+cache' if row['cache'] else ''}"
            lines.append(
                f"{row['metric']:<12} {label:<13} {'-':>4} "
                f"{row['wall_seconds']:>9.3f}s {'-':>8}  "
                f"{row['cache_hit_rate']:>13.0%}"
            )
    if not _smoke():
        emit_table("flush_overhead", "\n".join(lines))

    target = _json_target()
    if target is not None:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(flush_rows, indent=2) + "\n")

    prep = next(r for r in rows if r["metric"] == "flush_prep")
    assert prep["reuse_us"] > 0
    cached = {
        (r["method"], r["cache"]): r for r in rows if r["metric"] == "cache"
    }
    # The duty-cycle scenario must exercise the cache: its recurring
    # loser flushes hit for the pure (non-private) method.
    assert cached[("UCE", True)]["cache_hit_rate"] > 0.0
    assert cached[("UCE", False)]["cache_hits"] == 0
    if not _smoke():
        # The zero-rebuild acceptance: fixed per-flush overhead at least
        # halved vs the rebuild-era path (generous vs the measured ~4x to
        # absorb shared-container noise).
        assert prep["speedup"] >= 2.0, prep
        for method in ("UCE", "PUCE"):
            total = next(
                r
                for r in rows
                if r["metric"] == "flush_total" and r["method"] == method
            )
            assert total["speedup"] >= 1.0, total
