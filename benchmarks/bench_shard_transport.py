"""Shard transport + flush planner benchmark: the zero-copy receipts.

Four stages, each a row family in ``BENCH_shards.json``:

* **handoff** — the per-flush cost of getting shard data into pool
  workers, pickle vs shared memory, measured end to end on a >=1k-pair
  flush: the pickle leg builds the sub-instances, ``dumps`` and
  ``loads`` them; the shm leg stages the CSR planes into the
  :class:`~repro.core.workspace.ShmArena` and rebuilds the
  sub-instances worker-style from attached views.  The acceptance claim
  is shm >= 3x cheaper at that size.
* **pool** — a process-parallel flush solve with warm pools
  (:mod:`repro.stream.shards` keeps them across executors) vs paying a
  fresh ``ProcessPoolExecutor`` spawn per flush.
* **probe** — the self-calibration stage: every execution mode runs
  traced on a small grid of flush shapes, the per-phase span times
  become least-squares samples against
  :meth:`~repro.stream.costmodel.FlushCostModel.phase_terms`, and the
  fitted constants land in ``BENCH_shards.json["constants"]`` — the
  mapping :meth:`~repro.stream.costmodel.FlushCostModel.from_bench_dir`
  reads and ``DEFAULT_CONSTANTS`` mirrors.
* **planner** — whole-scenario walls for ``shards="auto"`` vs the fixed
  configs on the committed duty-cycle and rush-hour specs, plus the
  in-stream calibration error: the geomean of
  ``max(predicted/measured, measured/predicted)`` over every planned
  flush (the ``predicted_seconds`` / ``solver_seconds`` pair on each
  :class:`~repro.stream.metrics.FlushRecord`).  Planner-on must stay
  within 5% of the best fixed mode, and the calibration error within
  geomean factor 2.

Same-container caveats as every bench here: medians on a shared 1-core
container wobble +-30%; the perf gate compares with a 3x floor.

``REPRO_BENCH_SMOKE=1`` keeps the run error-only at reduced scale (the
process+shm path is still exercised) and leaves the tracked
``BENCH_shards.json`` untouched (``REPRO_BENCH_JSON_DIR`` collects the
fresh JSON elsewhere — the CI perf gate does exactly that).
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import statistics
import time
from pathlib import Path

import pytest

from benchmarks.conftest import emit_table
from repro.api.scenario import ScenarioSpec
from repro.core.registry import make_solver
from repro.core.workspace import detach_all_planes, shm_available
from repro.datasets.synthetic import NormalGenerator
from repro.obs.tracer import Tracer
from repro.stream.costmodel import FlushCostModel, geomean_ratio
from repro.stream.shards import (
    ShardedFlushExecutor,
    ShardSeedSchedule,
    _group_components,
    _solve_component_group,
    _solve_shm_group,
    build_shard_instance,
    cut_flush,
    shutdown_warm_pools,
)

ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_shards.json"


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def _runs() -> int:
    return int(os.environ.get("REPRO_BENCH_RUNS", "3" if _smoke() else "7"))


def _reps() -> int:
    return int(os.environ.get("REPRO_BENCH_SHARD_REPS", "5" if _smoke() else "30"))


def _json_target() -> Path | None:
    out = os.environ.get("REPRO_BENCH_JSON_DIR")
    if out:
        return Path(out) / "BENCH_shards.json"
    return None if _smoke() else BENCH_JSON


class _NoopSolver:
    """Transport-cost probe: does every rebuild step, solves nothing."""

    name = "NOOP"
    is_private = False

    def solve(self, instance, seed=None, **kwargs):
        return None


def _median_us(fn, reps: int, runs: int) -> float:
    samples = []
    for _ in range(runs):
        started = time.perf_counter()
        for _ in range(reps):
            fn()
        samples.append((time.perf_counter() - started) / reps * 1e6)
    return statistics.median(samples)


def _phase_seconds(spans) -> dict[str, float]:
    """Sum ``flush.*`` executor spans by short phase name."""
    out: dict[str, float] = {}
    for span in spans:
        if span.name.startswith("flush."):
            phase = span.name[len("flush.") :]
            out[phase] = out.get(phase, 0.0) + span.seconds
    return out


# -- stage 1+2: transport handoff and pool churn ---------------------------


def _handoff_rows(rows: list[dict]) -> None:
    tasks, workers = (80, 160) if _smoke() else (300, 900)
    instance = NormalGenerator(
        num_tasks=tasks, num_workers=workers, seed=7
    ).instance(task_value=4.5, worker_range=1.6)
    cut = cut_flush(instance, min_shard_pairs=8)
    groups = _group_components(cut.components, 2)
    base = (7,)
    reps, runs = _reps(), _runs()

    def pickle_handoff():
        payload = [
            [(c.key, build_shard_instance(instance, c)) for c in group]
            for group in groups
        ]
        revived = pickle.loads(pickle.dumps(payload))
        for group in revived:
            _solve_component_group(_NoopSolver(), base, group)

    executor = ShardedFlushExecutor(
        _NoopSolver(), num_shards=2, min_shard_pairs=8, transport="shm"
    )

    def shm_handoff():
        # The meta rows (component keys + index offsets) ride the submit
        # pickle in production — round-trip them here too so the
        # in-process measurement pays the same boundary cost.
        handle, metas = executor._stage_shm(instance, groups)
        for meta in pickle.loads(pickle.dumps(metas)):
            _solve_shm_group(_NoopSolver(), base, handle, meta, instance.model)

    # Interleaved min-over-runs: the box this runs on drifts +-30%, so
    # each run times both legs back to back (drift hits them equally)
    # and the best run per leg stands in for the noise-free cost — the
    # standard estimator for CPU-bound microbenchmarks.  A few untimed
    # warm iterations first let the shm arena reach its steady size.
    for _ in range(3):
        pickle_handoff()
        shm_handoff()
    detach_all_planes()
    pickle_us = shm_us = float("inf")
    for _ in range(runs):
        started = time.perf_counter()
        for _ in range(reps):
            pickle_handoff()
        pickle_us = min(pickle_us, (time.perf_counter() - started) / reps * 1e6)
        started = time.perf_counter()
        for _ in range(reps):
            shm_handoff()
        shm_us = min(shm_us, (time.perf_counter() - started) / reps * 1e6)
        detach_all_planes()
    executor.close()
    detach_all_planes()
    rows.append(
        {
            "metric": "handoff",
            "pairs": instance.num_feasible_pairs,
            "groups": len(groups),
            "pickle_us": pickle_us,
            "shm_us": shm_us,
            "speedup": pickle_us / shm_us,
        }
    )


def _pool_rows(rows: list[dict]) -> None:
    instance = NormalGenerator(num_tasks=60, num_workers=120, seed=3).instance(
        task_value=4.5, worker_range=0.5
    )
    schedule = ShardSeedSchedule((3,))
    solver = make_solver("PUCE")
    kwargs = dict(
        num_shards=2, parallel="process", max_workers=2, min_shard_pairs=8
    )
    churn_reps = 2 if _smoke() else 5
    runs = _runs()

    with ShardedFlushExecutor(solver, **kwargs) as executor:
        executor.solve(instance, schedule)  # spawn once, outside the clock
        reuse_us = _median_us(
            lambda: executor.solve(instance, schedule), churn_reps, runs
        )

    def churn():
        shutdown_warm_pools()
        with ShardedFlushExecutor(solver, **kwargs) as executor:
            executor.solve(instance, schedule)

    churn_us = _median_us(churn, churn_reps, runs)
    shutdown_warm_pools()
    rows.append(
        {
            "metric": "pool",
            "reuse_us": reuse_us,
            "churn_us": churn_us,
            "speedup": churn_us / reuse_us,
        }
    )


# -- stage 3: self-calibration probe ---------------------------------------


def _probe_constants(rows: list[dict]) -> dict[str, float]:
    """Fit the cost-model constants from traced per-phase span times."""
    model = FlushCostModel()
    cores = os.cpu_count() or 1
    shapes = [(12, 24), (40, 80)] if _smoke() else [(12, 24), (40, 80), (120, 240)]
    configs: list[dict] = [
        dict(num_shards=1),  # micro flushes: the unsharded fast path
        dict(num_shards=1, min_shard_pairs=8),  # sequential multi-unit
        dict(
            num_shards=2, parallel="process", max_workers=2,
            min_shard_pairs=8, transport="pickle",
        ),
    ]
    if shm_available():
        configs.append(
            dict(
                num_shards=2, parallel="process", max_workers=2,
                min_shard_pairs=8, transport="shm",
            )
        )
    solver = make_solver("PUCE")
    probe_reps = 2 if _smoke() else 5
    samples: list[tuple[dict[str, float], float]] = []
    for tasks, workers in shapes:
        instance = NormalGenerator(
            num_tasks=tasks, num_workers=workers, seed=11
        ).instance(task_value=4.5, worker_range=0.5)
        schedule = ShardSeedSchedule((11,))
        for config in configs:
            tracer = Tracer()
            with ShardedFlushExecutor(solver, tracer=tracer, **config) as executor:
                if config.get("parallel") == "process":
                    executor.solve(instance, schedule)  # warm the pool first
                    tracer.spans.clear()
                per_phase: dict[str, list[float]] = {}
                plan = cut = None
                for _ in range(probe_reps):
                    mark = len(tracer.spans)
                    _, cut, plan = executor.solve_planned(instance, schedule)
                    for phase, seconds in _phase_seconds(
                        tracer.spans[mark:]
                    ).items():
                        per_phase.setdefault(phase, []).append(seconds)
            terms = model.phase_terms(
                plan.mode,
                instance.num_feasible_pairs,
                max(cut.num_components, 1),
                shards=plan.shards,
                cores=cores,
                transport=plan.transport,
                min_shard_pairs=executor.min_shard_pairs,
            )
            for phase, timings in per_phase.items():
                if phase in terms:
                    samples.append((terms[phase], statistics.median(timings)))
    shutdown_warm_pools()
    fitted = model.fit(samples)
    rows.append({"metric": "probe", "samples": len(samples)})
    return fitted.constants


# -- stage 4: planner-on scenario walls + calibration error ----------------


def _planner_rows(rows: list[dict]) -> None:
    runs = _runs()
    for name in ("scenario_duty_cycle", "scenario_rush_hour"):
        spec = ScenarioSpec.from_file(ROOT / "examples" / f"{name}.json")
        if _smoke():
            spec = dataclasses.replace(
                spec, horizon=1.0, methods=spec.methods[:1]
            )
        variants = {
            label: dataclasses.replace(
                spec, options=spec.options.replace(shards=shards)
            )
            for label, shards in (("auto", "auto"), ("uns", 0), ("seq2", 2))
        }
        # Round-robin the variants inside each run and keep the best run
        # per variant: machine drift then hits every mode equally instead
        # of penalising whichever one happened to run during a slow phase.
        walls = {label: float("inf") for label in variants}
        auto_report = None
        for _ in range(runs):
            for label, variant in variants.items():
                started = time.perf_counter()
                report = variant.run()
                wall = time.perf_counter() - started
                if wall < walls[label]:
                    walls[label] = wall
                    if label == "auto":
                        auto_report = report
        for label in variants:
            rows.append(
                {
                    "metric": "planner_wall",
                    "scenario": name,
                    "mode": label,
                    "wall_seconds": walls[label],
                }
            )
        predicted, measured = [], []
        for method in auto_report.methods():
            for record in auto_report[method].flushes:
                # Cache-served flushes skipped the engine; zero-pair
                # flushes have no engine work for the model to predict
                # (their wall is pure bookkeeping, far below the model's
                # floor for a real flush).  Both sit outside the model's
                # domain — the planner's choice is irrelevant for them.
                if (
                    record.planned_mode != "cache"
                    and record.predicted_seconds > 0
                    and record.pairs > 0
                ):
                    predicted.append(record.predicted_seconds)
                    measured.append(record.solver_seconds)
        rows.append(
            {
                "metric": "calibration",
                "scenario": name,
                "flushes": len(predicted),
                "geomean_error": geomean_ratio(predicted, measured),
                "best_fixed_wall": min(walls["uns"], walls["seq2"]),
                "auto_wall": walls["auto"],
            }
        )


@pytest.fixture(scope="module")
def shard_rows():
    rows: list[dict] = []
    _handoff_rows(rows)
    _pool_rows(rows)
    constants = _probe_constants(rows)
    _planner_rows(rows)
    return {"runs": _runs(), "reps": _reps(), "rows": rows, "constants": constants}


def test_shard_transport_baseline(shard_rows):
    """Record the transport/planner numbers and their invariants."""
    rows = shard_rows["rows"]
    lines = ["metric        scenario/detail          a_us/wall     b_us/wall  speedup"]
    for row in rows:
        if row["metric"] == "handoff":
            lines.append(
                f"handoff       pairs={row['pairs']:<6}       "
                f"pickle {row['pickle_us']:>9.1f}  shm {row['shm_us']:>9.1f} "
                f"{row['speedup']:>7.2f}x"
            )
        elif row["metric"] == "pool":
            lines.append(
                f"pool          spawn-per-flush     "
                f"churn {row['churn_us']:>10.1f}  warm {row['reuse_us']:>8.1f} "
                f"{row['speedup']:>7.2f}x"
            )
        elif row["metric"] == "planner_wall":
            lines.append(
                f"planner_wall  {row['scenario']:<20} {row['mode']:<6} "
                f"{row['wall_seconds']:>8.3f}s"
            )
        elif row["metric"] == "calibration":
            lines.append(
                f"calibration   {row['scenario']:<20} geomean error "
                f"{row['geomean_error']:>5.2f}x over {row['flushes']} flushes "
                f"(target <= 2.0)"
            )
    if not _smoke():
        emit_table("shard_transport", "\n".join(lines))
    else:
        print("\n".join(lines))

    target = _json_target()
    if target is not None:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(shard_rows, indent=2) + "\n")

    handoff = next(r for r in rows if r["metric"] == "handoff")
    pool = next(r for r in rows if r["metric"] == "pool")
    calibrations = [r for r in rows if r["metric"] == "calibration"]
    assert handoff["shm_us"] > 0 and pool["reuse_us"] > 0
    assert calibrations, "planner stage produced no calibration rows"
    if not _smoke():
        # The ISSUE 7 acceptance bars, asserted at full scale only (the
        # smoke run still exercises every path, including process+shm).
        assert handoff["pairs"] >= 1000, handoff
        assert handoff["speedup"] >= 3.0, handoff
        assert pool["speedup"] >= 1.5, pool
        for row in calibrations:
            assert row["geomean_error"] <= 2.0, row
            assert row["auto_wall"] <= row["best_fixed_wall"] / 0.95, row
