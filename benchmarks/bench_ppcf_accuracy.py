"""Theorem V.1 empirically: PPCF's decision accuracy dominates PCF's.

Not a paper figure, but the paper's claim "PPCF is better than PCF both
theoretically and practically" underlies the Figure 17 ablation; this
bench measures the decision accuracies by Monte-Carlo over the Table X
budget range and times the comparison primitives themselves.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit_table
from repro.core.compare import pcf, pcf_correctness, ppcf, ppcf_correctness
from repro.privacy.laplace import sample_laplace


@pytest.fixture(scope="module")
def accuracy_table():
    rng = np.random.default_rng(0)
    trials = 20_000
    rows = []
    for eps in (0.6, 0.9, 1.1, 1.4, 1.6):
        for gap in (0.2, 0.5, 1.0):
            d_x, d_y = 1.0, 1.0 + gap
            x_hat = d_x + sample_laplace(rng, eps, size=trials)
            y_hat = d_y + sample_laplace(rng, eps, size=trials)
            pcf_acc = float(np.mean(x_hat < y_hat))
            ppcf_acc = float(np.mean(d_x < y_hat))
            rows.append(
                (eps, gap, pcf_acc, ppcf_acc, pcf_correctness(gap, eps, eps),
                 ppcf_correctness(gap, eps))
            )
    lines = ["eps   gap   PCF(mc)  PPCF(mc)  PCF(exact)  PPCF(exact)"]
    for eps, gap, pa, ppa, pe, ppe in rows:
        lines.append(f"{eps:4.2f}  {gap:4.2f}  {pa:7.4f}  {ppa:8.4f}  {pe:10.4f}  {ppe:11.4f}")
    emit_table("ppcf_accuracy", "\n".join(lines))
    return rows


def test_ppcf_dominates_pcf_monte_carlo(benchmark, accuracy_table):
    benchmark(lambda: ppcf(1.0, 1.5, 1.1))
    for eps, gap, pcf_acc, ppcf_acc, pcf_exact, ppcf_exact in accuracy_table:
        # Empirical dominance (Theorem V.1), with Monte-Carlo tolerance.
        assert ppcf_acc >= pcf_acc - 0.01, (eps, gap)
        # Monte-Carlo agrees with the closed forms.
        assert abs(pcf_acc - pcf_exact) < 0.015
        assert abs(ppcf_acc - ppcf_exact) < 0.015


def test_pcf_evaluation_speed(benchmark):
    benchmark(lambda: pcf(1.0, 1.5, 0.8, 1.2))
