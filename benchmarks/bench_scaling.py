"""The Section V time-cost claim: PUCE is O(m . n . Z).

The paper's complexity analysis bounds PUCE by the total number of budget
elements.  This bench measures wall-clock against batch size at fixed
density and worker ratio (so ``m . n`` grows quadratically in the scale
factor while per-circle work stays constant), and checks the growth stays
polynomial of the predicted order — i.e. time per (m x n) pair does not
blow up.
"""

import pytest

from benchmarks.conftest import bench_seed, emit_table, min_time
from repro.core.pgt import PGTSolver
from repro.core.puce import PUCESolver
from repro.experiments.sweeps import make_generator

SIZES = (100, 200, 400, 800)


@pytest.fixture(scope="module")
def scaling_rows():
    rows = []
    for size in SIZES:
        generator = make_generator("normal", size, 2 * size, bench_seed())
        instance = generator.instance()
        rows.append(
            {
                "tasks": size,
                "pairs": instance.num_feasible_pairs,
                # The complexity claim is about the paper's per-proposal
                # implementation model — the scalar reference sweep; the
                # vectorized default is reported alongside.
                "puce": min_time(PUCESolver(sweep="scalar"), instance),
                "puce_vec": min_time(PUCESolver(), instance),
                "pgt": min_time(PGTSolver(), instance),
            }
        )
    lines = ["tasks   pairs   PUCE_ms  PUCEvec_ms   PGT_ms   PUCE_us/pair"]
    for r in rows:
        per_pair = 1e6 * r["puce"] / max(r["pairs"], 1)
        lines.append(
            f"{r['tasks']:5d}  {r['pairs']:6d}  {1000 * r['puce']:8.1f}  "
            f"{1000 * r['puce_vec']:10.1f}  "
            f"{1000 * r['pgt']:7.1f}  {per_pair:12.2f}"
        )
    emit_table("scaling", "\n".join(lines))
    return rows


def test_scaling_is_near_linear_in_pairs(benchmark, scaling_rows):
    generator = make_generator("normal", 200, 400, bench_seed())
    instance = generator.instance()
    benchmark.pedantic(
        lambda: PUCESolver().solve(instance, seed=1), rounds=3, iterations=1
    )

    # Feasible pairs grow with the population product at fixed density.
    pairs = [r["pairs"] for r in scaling_rows]
    assert pairs == sorted(pairs)

    # O(m n Z): time per feasible pair stays bounded — the largest scale
    # may cost at most ~4x the per-pair time of the smallest (cache
    # effects and round counts wiggle; super-linear blow-up would show up
    # as far more).
    first = scaling_rows[0]["puce"] / max(scaling_rows[0]["pairs"], 1)
    last = scaling_rows[-1]["puce"] / max(scaling_rows[-1]["pairs"], 1)
    assert last < 4.0 * first, (first, last)

    # PGT stays cheaper than PUCE at every scale (Figure 4's ordering,
    # against the scalar reference implementation).
    for row in scaling_rows:
        assert row["pgt"] < row["puce"], row

    # The vectorized sweep must never lose to the scalar reference at
    # these scales.
    for row in scaling_rows:
        assert row["puce_vec"] < row["puce"], row
