"""Theorem VI.3 measured: EPoS/EPoA bounds vs realised equilibria.

For each dataset: the closed-form EPoA lower bound
``sum U+_min / sum U+_max``, the realised GT equilibrium welfare, and the
offline optimum.  The theorem promises ``EPoS <= 1`` and
``EPoA >= bound``; the measured ``GT/OPT`` ratio sits between the bound
and 1, and this bench records how tight the paper's bound actually is.
"""

import pytest

from benchmarks.conftest import bench_seed, bench_tasks, emit_table
from repro.core.optimal import OptimalSolver
from repro.core.pgt import GTSolver
from repro.experiments.sweeps import make_generator
from repro.game.equilibrium import theorem_vi3_bounds

DATASETS = ("chengdu", "normal", "uniform")


@pytest.fixture(scope="module")
def bound_rows():
    rows = []
    for dataset in DATASETS:
        generator = make_generator(dataset, bench_tasks(), 2 * bench_tasks(), bench_seed())
        instance = generator.instance()
        epoa_lower, epos_upper = theorem_vi3_bounds(instance)
        gt = GTSolver().solve(instance).total_utility
        opt = OptimalSolver().solve(instance).total_utility
        rows.append(
            {
                "dataset": dataset,
                "epoa_lower": epoa_lower,
                "epos_upper": epos_upper,
                "gt_over_opt": gt / opt if opt else float("nan"),
            }
        )
    lines = ["dataset   EPoA_lower  GT/OPT  EPoS_upper"]
    for r in rows:
        lines.append(
            f"{r['dataset']:8s}  {r['epoa_lower']:10.3f}  {r['gt_over_opt']:6.3f}  "
            f"{r['epos_upper']:10.1f}"
        )
    emit_table("epoa_bounds", "\n".join(lines))
    return rows


def test_theorem_vi3_bounds_hold(benchmark, bound_rows):
    generator = make_generator("normal", bench_tasks(), 2 * bench_tasks(), bench_seed())
    instance = generator.instance()
    benchmark(lambda: theorem_vi3_bounds(instance))

    for row in bound_rows:
        # The bound is a valid probability-like ratio and the realised
        # equilibrium efficiency sandwiches between it and EPoS <= 1.
        assert 0.0 <= row["epoa_lower"] <= 1.0, row
        assert row["epoa_lower"] - 1e-9 <= row["gt_over_opt"] <= 1.0 + 1e-9, row
        assert row["epos_upper"] == 1.0
