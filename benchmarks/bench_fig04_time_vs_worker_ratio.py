"""Figure 4 (+ Fig. 18): running time vs worker-task ratio.

Paper claims: running time grows with the worker ratio on every dataset,
and PGT runs 50-63% below PDCE (52-63% on chengdu, 50-63% on normal).
"""

import time

import pytest

from benchmarks.conftest import bench_seed, bench_tasks, run_group
from repro.core.registry import make_solver
from repro.experiments.sweeps import SweepConfig, make_generator


@pytest.fixture(scope="module")
def figure():
    return run_group("fig04")


def _default_instance(dataset):
    config = SweepConfig(dataset=dataset, num_tasks=bench_tasks(), seed=bench_seed())
    generator = make_generator(
        dataset, config.num_tasks, config.num_workers, config.seed
    )
    return generator.instance(
        task_value=config.task_value, worker_range=config.worker_range
    )


def _min_time(solver, instance, repeats=3):
    best = float("inf")
    for trial in range(repeats):
        start = time.perf_counter()
        solver.solve(instance, seed=1000 + trial)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("dataset", ["chengdu", "normal", "uniform"])
def test_fig04_time_vs_ratio(benchmark, figure, dataset):
    instance = _default_instance(dataset)

    # The benchmarked quantity: one PUCE batch at Table X defaults.
    benchmark.pedantic(
        lambda: make_solver("PUCE").solve(instance, seed=7), rounds=3, iterations=1
    )

    # Shape 1: all series exist across the sweep and time grows with the
    # ratio (endpoints comparison; single-run sweep timings are noisy).
    for method in ("PUCE", "PDCE", "PGT"):
        series = figure.series(dataset, method)
        assert len(series) == len(figure.spec.values)
        assert all(v > 0 for v in series)
    puce = figure.series(dataset, "PUCE")
    assert puce[-1] > puce[0], "private time should grow with worker ratio"

    # Shape 2 (headline): PGT beats PDCE on stable min-of-N timings.
    pgt_time = _min_time(make_solver("PGT"), instance)
    pdce_time = _min_time(make_solver("PDCE"), instance)
    ratio = pgt_time / pdce_time
    assert ratio < 0.85, f"PGT/PDCE time ratio {ratio:.2f} on {dataset}"

    # Shape 3: non-private baselines are cheaper than their private twins.
    uce_time = _min_time(make_solver("UCE"), instance)
    puce_time = _min_time(make_solver("PUCE"), instance)
    assert uce_time < puce_time
