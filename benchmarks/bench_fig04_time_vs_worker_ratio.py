"""Figure 4 (+ Fig. 18): running time vs worker-task ratio.

Paper claims: running time grows with the worker ratio on every dataset,
and PGT runs 50-63% below PDCE (52-63% on chengdu, 50-63% on normal).

The cross-method timing claims are about the *paper's* per-proposal
implementation model, so they are checked against the engines' scalar
reference sweep; the default vectorized sweep has since made PUCE/PDCE
faster than PGT outright (see ``bench_engine_core.py``).
"""

import pytest

from benchmarks.conftest import bench_seed, bench_tasks, min_time, run_group
from repro.core.pdce import PDCESolver
from repro.core.registry import make_solver
from repro.experiments.sweeps import SweepConfig, make_generator


@pytest.fixture(scope="module")
def figure():
    return run_group("fig04")


def _default_instance(dataset):
    config = SweepConfig(dataset=dataset, num_tasks=bench_tasks(), seed=bench_seed())
    generator = make_generator(
        dataset, config.num_tasks, config.num_workers, config.seed
    )
    return generator.instance(
        task_value=config.task_value, worker_range=config.worker_range
    )


@pytest.mark.parametrize("dataset", ["chengdu", "normal", "uniform"])
def test_fig04_time_vs_ratio(benchmark, figure, dataset):
    instance = _default_instance(dataset)

    # The benchmarked quantity: one PUCE batch at Table X defaults.
    benchmark.pedantic(
        lambda: make_solver("PUCE").solve(instance, seed=7), rounds=3, iterations=1
    )

    # Shape 1: all series exist across the sweep and time grows with the
    # ratio (endpoints comparison; single-run sweep timings are noisy).
    for method in ("PUCE", "PDCE", "PGT"):
        series = figure.series(dataset, method)
        assert len(series) == len(figure.spec.values)
        assert all(v > 0 for v in series)
    puce = figure.series(dataset, "PUCE")
    assert puce[-1] > puce[0], "private time should grow with worker ratio"

    # Shape 2 (headline): PGT beats PDCE on stable min-of-N timings —
    # against the scalar reference sweep, the paper's implementation
    # model (the vectorized default inverts this ordering).
    pgt_time = min_time(make_solver("PGT"), instance, seed_base=1000)
    pdce_time = min_time(PDCESolver(sweep="scalar"), instance, seed_base=1000)
    ratio = pgt_time / pdce_time
    assert ratio < 0.85, f"PGT/PDCE time ratio {ratio:.2f} on {dataset}"

    # Shape 3: non-private baselines are cheaper than their private twins.
    uce_time = min_time(make_solver("UCE"), instance, seed_base=1000)
    puce_time = min_time(make_solver("PUCE"), instance, seed_base=1000)
    assert uce_time < puce_time
