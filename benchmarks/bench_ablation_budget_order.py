"""Ablation: budget-vector ordering (DESIGN.md §3.3 choice).

Table X gives each pair seven budget draws but not their order; we sort
ascending (cheap probes first, accurate releases later — the worked
examples' shape).  This ablation measures the alternative of spending the
draws unsorted, on the end-to-end PUCE/PGT utility.
"""

import pytest

from benchmarks.conftest import bench_seed, bench_tasks, emit_table
from repro.core.budgets import BudgetSampler
from repro.core.pgt import PGTSolver
from repro.core.puce import PUCESolver
from repro.experiments.sweeps import make_generator

ORDERINGS = {
    "ascending": BudgetSampler(sort_ascending=True),
    "unsorted": BudgetSampler(sort_ascending=False),
}


@pytest.fixture(scope="module")
def utility_rows():
    rows = {}
    generator = make_generator("normal", bench_tasks(), 2 * bench_tasks(), bench_seed())
    for label, sampler in ORDERINGS.items():
        instance = generator.instance(budget_sampler=sampler)
        rows[label] = {
            "PUCE": PUCESolver().solve(instance, seed=5),
            "PGT": PGTSolver().solve(instance, seed=5),
        }
    lines = ["ordering    method  U_avg   publishes  spend"]
    for label, results in rows.items():
        for method, result in results.items():
            lines.append(
                f"{label:10s}  {method:6s}  {result.average_utility:5.3f}  "
                f"{result.publishes:9d}  {result.total_privacy_spend:6.1f}"
            )
    emit_table("ablation_budget_order", "\n".join(lines))
    return rows


def test_budget_order_ablation(benchmark, utility_rows):
    generator = make_generator("normal", bench_tasks(), 2 * bench_tasks(), bench_seed())
    instance = generator.instance()
    benchmark.pedantic(
        lambda: PUCESolver().solve(instance, seed=5), rounds=2, iterations=1
    )

    # Ascending ordering probes cheaply first: the first proposal of every
    # pair (the bulk of all publishes) costs the *minimum* draw, so total
    # leaked budget is lower than unsorted spending at equal protocol.
    for method in ("PUCE", "PGT"):
        asc = utility_rows["ascending"][method]
        uns = utility_rows["unsorted"][method]
        assert asc.total_privacy_spend < uns.total_privacy_spend, method

    # And the matched pairs keep more utility under ascending ordering.
    assert (
        utility_rows["ascending"]["PUCE"].average_utility
        > utility_rows["unsorted"]["PUCE"].average_utility - 0.02
    )
