"""Theorems VI.1 / VI.2 empirically: PGT's potential-game convergence.

Measures, over generated batches: the number of round-robin passes to a
pure Nash equilibrium, the strict positivity of every accepted move's
utility gain (the exact-potential increments), and the Theorem VI.2 bound
``moves <= Phi(st*) / min_gain`` via the scaled-potential argument.
"""

import pytest

from benchmarks.conftest import bench_seed, bench_tasks, emit_table
from repro.core.optimal import OptimalSolver
from repro.core.pgt import PGTSolver
from repro.experiments.sweeps import make_generator


@pytest.fixture(scope="module")
def convergence_rows():
    rows = []
    for dataset in ("chengdu", "normal", "uniform"):
        generator = make_generator(dataset, bench_tasks(), 2 * bench_tasks(), bench_seed())
        instance = generator.instance()
        result, stats = PGTSolver().solve_with_stats(instance, seed=3)
        opt = OptimalSolver().solve(instance)
        rows.append(
            {
                "dataset": dataset,
                "passes": stats.passes,
                "moves": stats.moves,
                "min_gain": min(stats.move_gains) if stats.move_gains else 0.0,
                "total_gain": sum(stats.move_gains),
                "pgt_utility": result.total_utility,
                "opt_utility": opt.total_utility,
            }
        )
    lines = ["dataset   passes  moves  min_gain  total_gain  PGT_U    OPT_U"]
    for r in rows:
        lines.append(
            f"{r['dataset']:8s}  {r['passes']:6d}  {r['moves']:5d}  "
            f"{r['min_gain']:8.4f}  {r['total_gain']:10.2f}  "
            f"{r['pgt_utility']:7.2f}  {r['opt_utility']:7.2f}"
        )
    emit_table("pgt_convergence", "\n".join(lines))
    return rows


def test_pgt_converges_quickly(benchmark, convergence_rows):
    generator = make_generator("normal", bench_tasks(), 2 * bench_tasks(), bench_seed())
    instance = generator.instance()
    benchmark.pedantic(
        lambda: PGTSolver().solve(instance, seed=3), rounds=3, iterations=1
    )
    for row in convergence_rows:
        # Quiescence within a handful of passes, far below max_passes.
        assert row["passes"] <= 20, row
        # Every accepted move strictly improved the potential.
        assert row["min_gain"] > 0.0, row


def test_theorem_vi2_move_bound(convergence_rows, benchmark):
    benchmark(lambda: None)  # structural test; nothing to time
    for row in convergence_rows:
        if row["moves"] == 0:
            continue
        # Scaled-potential argument: each move gains >= min_gain, the
        # potential climbs at most to the optimum, so
        # moves <= total climb / min positive gain.
        assert row["moves"] <= row["total_gain"] / row["min_gain"] + 1e-6

    # And best-response welfare is bounded by the offline optimum.
    for row in convergence_rows:
        assert row["pgt_utility"] <= row["opt_utility"] + 1e-9
