"""The abstract's three quantitative claims, regenerated in one table.

1. "PUCE is always better than PDCE slightly."
2. "PGT is 50% to 63% faster than PDCE."
3. "PGT ... can improve 16% utility on average when worker range is large
   enough."

Each is measured at bench scale over multiple batches and seeds; see
EXPERIMENTS.md for the paper-vs-measured discussion (the speed and
large-range margins land in the same direction with smaller magnitudes —
the substrate is Python, not the authors' Java testbed).
"""

import pytest

from benchmarks.conftest import bench_seed, bench_tasks, emit_table, min_time
from repro.core.pdce import PDCESolver
from repro.core.registry import make_solver
from repro.experiments.sweeps import SweepConfig, make_generator

DATASETS = ("chengdu", "normal", "uniform")


@pytest.fixture(scope="module")
def claims():
    rows = {}

    # Claim 1: utility at Table X defaults, 3 batches.
    utility_edge = {}
    for dataset in DATASETS:
        report = SweepConfig(
            dataset=dataset,
            methods=("PUCE", "PDCE"),
            num_tasks=bench_tasks(),
            num_batches=3,
            seed=bench_seed(),
        ).run()
        utility_edge[dataset] = (
            report["PUCE"].average_utility - report["PDCE"].average_utility
        )
    rows["puce_minus_pdce"] = utility_edge

    # Claim 2: stable min-of-3 timing ratio at defaults.  The paper's
    # speed claim concerns its per-proposal implementation model, so
    # PDCE is timed with the scalar reference sweep (the vectorized
    # default now beats PGT outright; see bench_engine_core.py).
    reference = {
        "PGT": lambda: make_solver("PGT"),
        "PDCE": lambda: PDCESolver(sweep="scalar"),
    }
    speed_ratio = {}
    for dataset in DATASETS:
        config = SweepConfig(dataset=dataset, num_tasks=bench_tasks(), seed=bench_seed())
        generator = make_generator(dataset, config.num_tasks, config.num_workers, config.seed)
        instance = generator.instance()
        times = {
            method: min_time(reference[method](), instance)
            for method in ("PGT", "PDCE")
        }
        speed_ratio[dataset] = times["PGT"] / times["PDCE"]
    rows["pgt_over_pdce_time"] = speed_ratio

    # Claim 3: utility margin at the largest worker range (2.0).
    range_margin = {}
    for dataset in DATASETS:
        report = (
            SweepConfig(
                dataset=dataset,
                methods=("PGT", "PDCE"),
                num_tasks=bench_tasks(),
                num_batches=3,
                seed=bench_seed(),
            )
            .at("worker_range", 2.0)
            .run()
        )
        pdce = report["PDCE"].average_utility
        range_margin[dataset] = (report["PGT"].average_utility - pdce) / pdce
    rows["pgt_gain_at_range2"] = range_margin

    lines = [
        "claim                      chengdu   normal  uniform   paper",
        "PUCE - PDCE utility       "
        + "  ".join(f"{utility_edge[d]:7.3f}" for d in DATASETS)
        + "   'slightly better'",
        "PGT/PDCE time ratio       "
        + "  ".join(f"{speed_ratio[d]:7.2f}" for d in DATASETS)
        + "   0.37-0.50",
        "PGT vs PDCE @range=2.0    "
        + "  ".join(f"{range_margin[d]:+7.1%}" for d in DATASETS)
        + "   +16% (normal)",
    ]
    emit_table("headline_claims", "\n".join(lines))
    return rows


def test_headline_claims(benchmark, claims):
    benchmark(lambda: None)  # measurement happens in the fixture

    # Claim 1: PUCE >= PDCE within noise on every dataset; strictly
    # positive on at least two of three.
    edges = claims["puce_minus_pdce"]
    assert all(edge > -0.03 for edge in edges.values()), edges
    assert sum(edge > 0 for edge in edges.values()) >= 2, edges

    # Claim 2: PGT materially faster than PDCE everywhere.
    ratios = claims["pgt_over_pdce_time"]
    assert all(ratio < 0.85 for ratio in ratios.values()), ratios

    # Claim 3: at the largest range PGT improves on PDCE on the synthetic
    # datasets (the paper measures +16% on normal; direction must hold).
    margins = claims["pgt_gain_at_range2"]
    assert margins["normal"] > 0.0, margins
    assert margins["uniform"] > -0.02, margins
