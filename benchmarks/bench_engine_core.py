"""Solver-core throughput: vectorized vs scalar WorkerProposal sweeps.

The conflict-elimination engine is the hot path of every method in the
paper and of every micro-batch flush in the streaming layer.  This bench
pins its throughput trajectory across PRs: each engine solves the
``bench_scaling``-sized instances with both sweep implementations, and
the measured series — wall time, feasible-pairs-per-second, and the
vectorized/scalar speedup — is written to ``BENCH_core.json`` at the
repository root.

Scale knobs: ``REPRO_BENCH_CORE_SIZES`` (comma-separated task counts,
default ``100,200,400``) and ``REPRO_BENCH_SMOKE=1``, which also skips
the speedup-threshold assertion so CI can smoke-run the bench on a tiny
instance and fail only on errors, not timing.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import pytest

from benchmarks.conftest import bench_seed, emit_table, min_time
from repro.core.registry import make_solver
from repro.experiments.sweeps import make_generator

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_core.json"

# Sweep variants are named the way every other layer names them: by
# method-spec string (repro.api.MethodSpec), e.g. "UCE(sweep=scalar)".
ENGINES = ("PUCE", "PDCE", "UCE", "DCE")


def _sizes() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_CORE_SIZES", "100,200,400")
    return tuple(int(s) for s in raw.split(",") if s.strip())


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def _json_target() -> Path | None:
    """Where to write the fresh JSON; ``None`` = nowhere (plain smoke).

    ``REPRO_BENCH_JSON_DIR`` redirects the fresh measurement off the
    tracked baseline — the CI perf gate runs the bench in smoke mode
    with this set and compares the two files.
    """
    out = os.environ.get("REPRO_BENCH_JSON_DIR")
    if out:
        return Path(out) / "BENCH_core.json"
    return None if _smoke() else BENCH_JSON


@pytest.fixture(scope="module")
def core_rows():
    rows = []
    for size in _sizes():
        generator = make_generator("normal", size, 2 * size, bench_seed())
        instance = generator.instance()
        for method in ENGINES:
            vectorized = min_time(make_solver(f"{method}(sweep=vectorized)"), instance)
            scalar = min_time(make_solver(f"{method}(sweep=scalar)"), instance)
            rows.append(
                {
                    "method": method,
                    "tasks": size,
                    "pairs": instance.num_feasible_pairs,
                    "scalar_seconds": scalar,
                    "vectorized_seconds": vectorized,
                    "scalar_pairs_per_sec": instance.num_feasible_pairs / scalar,
                    "vectorized_pairs_per_sec": instance.num_feasible_pairs
                    / vectorized,
                    "speedup": scalar / vectorized,
                }
            )
    return rows


def test_engine_core_throughput(core_rows):
    """Record the sweep throughput baseline; gate on the 3x speedup."""
    for r in core_rows:
        assert r["vectorized_seconds"] > 0 and r["scalar_seconds"] > 0

    geomean = math.exp(
        sum(math.log(r["speedup"]) for r in core_rows) / len(core_rows)
    )
    target = _json_target()
    if target is not None:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(
                {
                    "seed": bench_seed(),
                    "sizes": list(_sizes()),
                    "geomean_speedup": geomean,
                    "rows": core_rows,
                },
                indent=2,
            )
            + "\n"
        )
    if _smoke():
        # Smoke mode exists to catch errors on a tiny instance in CI; it
        # must neither overwrite the tracked baseline artifacts nor gate
        # on timings (the fresh JSON, if requested above, is compared by
        # benchmarks/check_perf_regression.py with a generous floor).
        return

    lines = ["method  tasks   pairs  scalar_ms  vector_ms  speedup"]
    for r in core_rows:
        lines.append(
            f"{r['method']:<6} {r['tasks']:>6} {r['pairs']:>7} "
            f"{1000 * r['scalar_seconds']:>10.1f} "
            f"{1000 * r['vectorized_seconds']:>10.1f} {r['speedup']:>8.2f}"
        )
    emit_table("engine_core", "\n".join(lines))

    # The refactor's acceptance bar: the vectorized sweeps must deliver
    # >= 3x solver throughput over the scalar reference engine across the
    # bench_scaling-sized instances (geometric mean over methods/sizes).
    assert geomean >= 3.0, [round(r["speedup"], 2) for r in core_rows]
