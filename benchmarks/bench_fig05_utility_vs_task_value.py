"""Figures 5 / 6 / 19: average utility vs task value.

Paper claims: utility grows ~linearly with task value; PUCE >= PDCE on
every dataset; PGT beats PUCE on normal; the relative utility deviation
shrinks as task value grows (private converges to non-private).
"""

import pytest

from benchmarks.conftest import mostly_monotone, run_group


@pytest.fixture(scope="module")
def figure():
    return run_group("fig05")


@pytest.mark.parametrize("dataset", ["chengdu", "normal", "uniform"])
def test_fig05_utility_vs_task_value(benchmark, figure, dataset):
    benchmark(lambda: figure.series(dataset, "PUCE"))

    values = list(figure.spec.values)

    # Shape 1: every method's utility increases with task value,
    # approximately linearly: successive differences comparable to the
    # value step.
    for method in ("PUCE", "PDCE", "PGT", "UCE", "GT", "GRD"):
        series = figure.series(dataset, method)
        assert mostly_monotone(series, increasing=True)
        overall_slope = (series[-1] - series[0]) / (values[-1] - values[0])
        assert 0.5 < overall_slope < 1.5, f"{method} slope {overall_slope:.2f}"

    # Shape 2: PUCE >= PDCE (allow tiny sampling noise).
    puce = figure.series(dataset, "PUCE")
    pdce = figure.series(dataset, "PDCE")
    assert sum(puce) >= sum(pdce) - 0.05 * len(puce)

    # Shape 3: PGT > PUCE on the dense normal dataset.
    if dataset == "normal":
        pgt = figure.series(dataset, "PGT")
        assert sum(pgt) > sum(puce)

    # Shape 4: the relative deviation shrinks as task value grows.
    for method in ("PUCE", "PDCE", "PGT"):
        deviations = figure.deviation_series(dataset, method)
        assert deviations[-1] < deviations[0], (
            f"{method} U_RD should fall with task value on {dataset}: {deviations}"
        )
