"""Figures 13 / 14 / 23: average travel distance vs worker range.

Paper claims: distance grows with the service range (far proposals become
possible); PDCE stays at or below PUCE ~= PGT among private methods.
"""

import pytest

from benchmarks.conftest import mostly_monotone, run_group


@pytest.fixture(scope="module")
def figure():
    return run_group("fig13")


@pytest.mark.parametrize("dataset", ["chengdu", "normal", "uniform"])
def test_fig13_distance_vs_worker_range(benchmark, figure, dataset):
    benchmark(lambda: figure.series(dataset, "PUCE"))

    # Shape 1: distance increases with range for every method.
    for method in figure.spec.methods:
        series = figure.series(dataset, method)
        assert mostly_monotone(series, increasing=True, slack=0.03), (
            f"{method} on {dataset}: {series}"
        )
        assert series[-1] > series[0]

    # Shape 2: PDCE at or below PUCE across the sweep aggregate.
    puce = figure.series(dataset, "PUCE")
    pdce = figure.series(dataset, "PDCE")
    assert sum(pdce) <= sum(puce) + 0.05 * len(puce)

    # Shape 3: non-private baselines below private counterparts.
    uce = figure.series(dataset, "UCE")
    assert sum(uce) < sum(puce)
