"""Perf-regression gate: fresh bench JSONs vs the committed baselines.

CI runs ``bench_engine_core.py``, ``bench_stream_throughput.py``,
``bench_flush_overhead.py``, ``bench_obs_overhead.py``,
``bench_shard_transport.py``, ``bench_service.py``,
``bench_horizon.py`` and ``bench_faults.py`` in smoke mode with
``REPRO_BENCH_JSON_DIR`` pointing at a scratch directory, then invokes
this script to compare the fresh measurements against the *committed*
``BENCH_core.json`` / ``BENCH_stream.json`` / ``BENCH_flush.json`` /
``BENCH_obs.json`` / ``BENCH_shards.json`` / ``BENCH_service.json`` /
``BENCH_horizon.json`` / ``BENCH_faults.json`` at the repository root.

The comparison is deliberately generous — a ``--floor`` of 3.0 means a
fresh number may be up to 3x slower than the committed baseline before
the gate trips.  CI runners are noisy, share cores, and run the benches
at reduced scale, so this is a catch-the-cliff gate (an accidental
O(n^2), a scalar fallback on the hot path), not a micro-regression
detector.  Throughput-style metrics (pairs/sec, tasks/sec) are compared
because they are roughly scale-independent, unlike wall times.

Usage::

    python benchmarks/check_perf_regression.py --fresh <dir> [--floor 3.0]

Exits non-zero on any regression, printing one line per check.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def load(path: Path) -> dict:
    if not path.is_file():
        sys.exit(f"missing benchmark JSON: {path}")
    return json.loads(path.read_text())


def check_core(committed: dict, fresh: dict, floor: float, lines: list[str]) -> bool:
    """Vectorized solver throughput, geomean over (method, size) rows."""
    base = geomean([r["vectorized_pairs_per_sec"] for r in committed["rows"]])
    now = geomean([r["vectorized_pairs_per_sec"] for r in fresh["rows"]])
    ok = now >= base / floor
    lines.append(
        f"core   vectorized pairs/s geomean: fresh {now:>12,.0f}  "
        f"committed {base:>12,.0f}  floor {base / floor:>12,.0f}  "
        f"{'ok' if ok else 'REGRESSION'}"
    )
    return ok


def check_stream(committed: dict, fresh: dict, floor: float, lines: list[str]) -> bool:
    """Per-(method, mode) streaming throughput in assigned tasks/sec."""
    def key(row: dict) -> tuple[str, str]:
        return (row["method"], row.get("mode", "sequential"))

    baseline = {key(row): row["tasks_per_sec"] for row in committed["rows"]}
    all_ok = True
    compared = 0
    for row in fresh["rows"]:
        k = key(row)
        if k not in baseline:
            continue
        compared += 1
        ok = row["tasks_per_sec"] >= baseline[k] / floor
        all_ok &= ok
        lines.append(
            f"stream {k[0]:<6} {k[1]:<11} tasks/s: fresh {row['tasks_per_sec']:>12,.0f}  "
            f"committed {baseline[k]:>12,.0f}  floor {baseline[k] / floor:>12,.0f}  "
            f"{'ok' if ok else 'REGRESSION'}"
        )
    if compared == 0:
        lines.append("stream: no comparable (method, mode) rows — REGRESSION")
        return False
    return all_ok


def check_flush(committed: dict, fresh: dict, floor: float, lines: list[str]) -> bool:
    """Flush fixed-overhead speedups and the duty-cycle cache hit rate.

    Speedups (rebuild/reuse ratios) are dimensionless, so they transfer
    across hardware far better than absolute µs; the hit rate is a
    functional property of the scenario and must simply stay above zero.
    """
    def speedups(data: dict) -> dict[tuple[str, str], float]:
        return {
            (row["metric"], row.get("method", "-")): row["speedup"]
            for row in data["rows"]
            if "speedup" in row
        }

    baseline = speedups(committed)
    all_ok = True
    compared = 0
    for key, fresh_speedup in speedups(fresh).items():
        if key not in baseline:
            continue
        compared += 1
        ok = fresh_speedup >= baseline[key] / floor
        all_ok &= ok
        lines.append(
            f"flush  {key[0]:<12} {key[1]:<6} speedup: fresh {fresh_speedup:>6.2f}x  "
            f"committed {baseline[key]:>6.2f}x  floor {baseline[key] / floor:>6.2f}x  "
            f"{'ok' if ok else 'REGRESSION'}"
        )
    hit_rows = [
        row
        for row in fresh["rows"]
        if row.get("metric") == "cache" and row.get("cache") and row["method"] == "UCE"
    ]
    hit_ok = bool(hit_rows) and all(r["cache_hit_rate"] > 0.0 for r in hit_rows)
    all_ok &= hit_ok
    lines.append(
        f"flush  cache        UCE    duty-cycle hit rate: "
        f"{hit_rows[0]['cache_hit_rate'] if hit_rows else 0.0:>6.1%}  "
        f"{'ok' if hit_ok else 'REGRESSION (must stay > 0)'}"
    )
    if compared == 0:
        lines.append("flush: no comparable speedup rows — REGRESSION")
        return False
    return all_ok


def check_obs(committed: dict, fresh: dict, floor: float, lines: list[str]) -> bool:
    """Observability overhead: the on/off ratios must not drift upward.

    Both compared numbers are dimensionless ratios (traced over untraced
    wall, live-span over null-span nanoseconds), so they transfer across
    hardware; the *absolute* obs-off wall clock is covered transitively
    by the stream and flush gates, whose baselines predate the
    instrumentation.  Phase coverage is a functional property of the
    span tree and must stay near complete.
    """
    baseline = {
        row["method"]: row["overhead_ratio"]
        for row in committed["rows"]
        if row["metric"] == "obs_overhead"
    }
    all_ok = True
    compared = 0
    for row in fresh["rows"]:
        if row["metric"] != "obs_overhead" or row["method"] not in baseline:
            continue
        compared += 1
        base = baseline[row["method"]]
        ok = row["overhead_ratio"] <= base * floor
        coverage_ok = row["phase_coverage"] >= 0.5
        all_ok &= ok and coverage_ok
        lines.append(
            f"obs    overhead     {row['method']:<6} trace on/off: "
            f"fresh {row['overhead_ratio']:>6.2f}x  committed {base:>6.2f}x  "
            f"ceiling {base * floor:>6.2f}x  coverage {row['phase_coverage']:>4.0%}  "
            f"{'ok' if ok and coverage_ok else 'REGRESSION'}"
        )
    if compared == 0:
        lines.append("obs: no comparable overhead rows — REGRESSION")
        return False
    return all_ok


def check_shards(committed: dict, fresh: dict, floor: float, lines: list[str]) -> bool:
    """Shard transport speedups and cost-model calibration error.

    The handoff (shm vs pickle) and pool (warm vs churn) speedups are
    dimensionless ratios, compared like the flush speedups.  Calibration
    error is a *lower-is-better* geomean ratio, so the fresh value must
    stay under the committed one times the floor — a blown-up error
    means the planner is flying blind even if walls still look fine.
    """
    def speedups(data: dict) -> dict[str, float]:
        return {
            row["metric"]: row["speedup"]
            for row in data["rows"]
            if "speedup" in row
        }

    baseline = speedups(committed)
    all_ok = True
    compared = 0
    for metric, fresh_speedup in speedups(fresh).items():
        if metric not in baseline:
            continue
        compared += 1
        ok = fresh_speedup >= baseline[metric] / floor
        all_ok &= ok
        lines.append(
            f"shards {metric:<12} speedup: fresh {fresh_speedup:>6.2f}x  "
            f"committed {baseline[metric]:>6.2f}x  floor "
            f"{baseline[metric] / floor:>6.2f}x  {'ok' if ok else 'REGRESSION'}"
        )
    calibration = {
        row["scenario"]: row["geomean_error"]
        for row in committed["rows"]
        if row.get("metric") == "calibration"
    }
    for row in fresh["rows"]:
        if row.get("metric") != "calibration" or row["scenario"] not in calibration:
            continue
        compared += 1
        base = calibration[row["scenario"]]
        ok = row["geomean_error"] <= base * floor
        all_ok &= ok
        lines.append(
            f"shards calibration  {row['scenario']:<20} geomean error: "
            f"fresh {row['geomean_error']:>5.2f}x  committed {base:>5.2f}x  "
            f"ceiling {base * floor:>5.2f}x  {'ok' if ok else 'REGRESSION'}"
        )
    if compared == 0:
        lines.append("shards: no comparable rows — REGRESSION")
        return False
    return all_ok


def check_service(committed: dict, fresh: dict, floor: float, lines: list[str]) -> bool:
    """Multi-tenant service throughput, plus its functional smoke bits.

    Assigned tasks/sec through the asyncio frontend is roughly
    scale-independent (both runs divide by their own wall), so it gates
    like the stream numbers.  Shedding and shared-cache hits are
    functional properties of the bench's burst/recurrence cohorts and
    must simply stay alive.
    """
    base_row = committed["rows"][0]
    all_ok = True
    for row in fresh["rows"]:
        if row.get("metric") != "service":
            continue
        ok = row["tasks_per_sec"] >= base_row["tasks_per_sec"] / floor
        shed_ok = row["shed"] > 0
        cache_ok = row["shared_cache"]["hits"] > 0
        all_ok &= ok and shed_ok and cache_ok
        lines.append(
            f"service tenants={row['tenants']:<5} tasks/s: fresh "
            f"{row['tasks_per_sec']:>12,.0f}  committed "
            f"{base_row['tasks_per_sec']:>12,.0f}  floor "
            f"{base_row['tasks_per_sec'] / floor:>12,.0f}  "
            f"{'ok' if ok else 'REGRESSION'}"
        )
        lines.append(
            f"service shedding exercised: {row['shed']:>5} requests  "
            f"shared-cache hits: {row['shared_cache']['hits']:>6}  "
            f"{'ok' if shed_ok and cache_ok else 'REGRESSION (must stay > 0)'}"
        )
        return all_ok
    lines.append("service: no service rows — REGRESSION")
    return False


def check_horizon(committed: dict, fresh: dict, floor: float, lines: list[str]) -> bool:
    """Sliding-window accountant cost and long-horizon liveliness.

    The accountant op ratio (windowed over global ns per record+query)
    is dimensionless and — because the tree is O(log n) — nearly flat in
    the event count, so smoke-scale fresh numbers compare against the
    full-scale committed baseline.  The liveliness ratio (window-run
    assigned tasks over the starved global run) gates the same way,
    plus its functional bits: the in-window cap invariant must hold and
    the final stream hour must still see matches under the window.
    """
    ops_base = next(
        r for r in committed["rows"] if r["metric"] == "accountant_ops"
    )
    live_base = next(
        r for r in committed["rows"] if r["metric"] == "long_horizon"
    )
    all_ok = True
    compared = 0
    for row in fresh["rows"]:
        if row.get("metric") == "accountant_ops":
            compared += 1
            base = ops_base["window_over_global_ratio"]
            ok = row["window_over_global_ratio"] <= base * floor
            all_ok &= ok
            lines.append(
                f"horizon accountant  window/global ns: fresh "
                f"{row['window_over_global_ratio']:>6.1f}x  committed "
                f"{base:>6.1f}x  ceiling {base * floor:>6.1f}x  "
                f"{'ok' if ok else 'REGRESSION'}"
            )
        elif row.get("metric") == "long_horizon":
            compared += 1
            base = live_base["assigned_ratio"]
            ok = row["assigned_ratio"] >= base / floor
            alive_ok = (
                row["window_invariant_ok"]
                and row["late_window"] > 0
                and row["assigned_window"] > row["assigned_global"]
            )
            all_ok &= ok and alive_ok
            lines.append(
                f"horizon liveliness  window/global assigned: fresh "
                f"{row['assigned_ratio']:>6.2f}x  committed {base:>6.2f}x  "
                f"floor {base / floor:>6.2f}x  final-hour matches "
                f"{row['late_window']:>2}  "
                f"{'ok' if ok and alive_ok else 'REGRESSION'}"
            )
    if compared == 0:
        lines.append("horizon: no comparable rows — REGRESSION")
        return False
    return all_ok


def check_faults(committed: dict, fresh: dict, floor: float, lines: list[str]) -> bool:
    """Journal overhead, recovery liveness, and ladder bit-identity.

    The journal overhead ratio carries its own **absolute** limit
    (``overhead_limit``, 1.25x per the acceptance criteria) — crash
    safety is a standing tax on every journaled request, so it does not
    get the noise floor the other walls do.  The degraded-flush ratio
    is latency the ladder deliberately spends and gates only against
    drift (committed times floor); ``results_identical`` is the
    functional bit that must never flip.
    """
    journal_base = next(r for r in committed["rows"] if r["metric"] == "journal")
    degraded_base = next(r for r in committed["rows"] if r["metric"] == "degraded")
    all_ok = True
    compared = 0
    for row in fresh["rows"]:
        if row.get("metric") == "journal":
            compared += 1
            limit = float(row.get("overhead_limit", journal_base["overhead_limit"]))
            ok = row["overhead_ratio"] <= limit
            all_ok &= ok
            lines.append(
                f"faults journal      overhead: fresh "
                f"{row['overhead_ratio']:>5.2f}x  hard limit {limit:>5.2f}x  "
                f"(fsync_every={row['fsync_every']})  "
                f"{'ok' if ok else 'REGRESSION'}"
            )
        elif row.get("metric") == "recovery":
            compared += 1
            ok = row["finished_after_recovery"] and row["entries_replayed"] > 0
            all_ok &= ok
            lines.append(
                f"faults recovery     replayed {row['entries_replayed']:>4} "
                f"entries in {row['replay_seconds']:.3f}s  "
                f"{'ok' if ok else 'REGRESSION (recovery must finish)'}"
            )
        elif row.get("metric") == "degraded":
            compared += 1
            base = degraded_base["degraded_over_clean"]
            ok = row["degraded_over_clean"] <= base * floor
            identical_ok = bool(row["results_identical"])
            all_ok &= ok and identical_ok
            lines.append(
                f"faults degraded     wall: fresh "
                f"{row['degraded_over_clean']:>5.2f}x  committed {base:>5.2f}x  "
                f"ceiling {base * floor:>5.2f}x  identical="
                f"{identical_ok}  "
                f"{'ok' if ok and identical_ok else 'REGRESSION'}"
            )
    if compared == 0:
        lines.append("faults: no comparable rows — REGRESSION")
        return False
    return all_ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh",
        required=True,
        type=Path,
        help="directory holding the freshly measured BENCH_*.json files",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=3.0,
        help="allowed slowdown factor vs the committed baseline (default 3.0)",
    )
    args = parser.parse_args(argv)

    lines: list[str] = []
    ok = check_core(
        load(ROOT / "BENCH_core.json"),
        load(args.fresh / "BENCH_core.json"),
        args.floor,
        lines,
    )
    ok &= check_stream(
        load(ROOT / "BENCH_stream.json"),
        load(args.fresh / "BENCH_stream.json"),
        args.floor,
        lines,
    )
    ok &= check_flush(
        load(ROOT / "BENCH_flush.json"),
        load(args.fresh / "BENCH_flush.json"),
        args.floor,
        lines,
    )
    ok &= check_obs(
        load(ROOT / "BENCH_obs.json"),
        load(args.fresh / "BENCH_obs.json"),
        args.floor,
        lines,
    )
    ok &= check_shards(
        load(ROOT / "BENCH_shards.json"),
        load(args.fresh / "BENCH_shards.json"),
        args.floor,
        lines,
    )
    ok &= check_service(
        load(ROOT / "BENCH_service.json"),
        load(args.fresh / "BENCH_service.json"),
        args.floor,
        lines,
    )
    ok &= check_horizon(
        load(ROOT / "BENCH_horizon.json"),
        load(args.fresh / "BENCH_horizon.json"),
        args.floor,
        lines,
    )
    ok &= check_faults(
        load(ROOT / "BENCH_faults.json"),
        load(args.fresh / "BENCH_faults.json"),
        args.floor,
        lines,
    )
    print("\n".join(lines))
    if not ok:
        print(f"perf regression beyond the {args.floor}x floor", file=sys.stderr)
        return 1
    print(f"all benchmarks within the {args.floor}x floor")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
