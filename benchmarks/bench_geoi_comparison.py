"""Cross-family comparison: distance releases (this paper) vs location
releases (Geo-I, the To et al. related-work family).

Not a paper figure — the paper argues for distance releases in prose
(Sections I-II); this bench makes the argument measurable.  At matched
nominal budgets, GEOI leaks once per worker but the server matches on
decoy-biased distances; PUCE leaks repeatedly but the effective distances
sharpen with spend.  The table reports matching quality (base utility —
task value minus true travel, before privacy-cost accounting, since the
two currencies differ) and realised travel across the epsilon range.
"""

import pytest

from benchmarks.conftest import bench_seed, bench_tasks, emit_table
from repro.core.geoi import GeoIndistinguishableSolver
from repro.core.nonprivate import UCESolver
from repro.core.puce import PUCESolver
from repro.experiments.sweeps import make_generator

EPSILONS = (0.5, 1.0, 2.0, 4.0)


def base_utility(result):
    """Mean task value minus true travel over matched pairs."""
    pairs = result.matched_pairs()
    if not pairs:
        return 0.0
    instance = result.instance
    return sum(
        instance.base_utility(p.task_index, p.worker_index) for p in pairs
    ) / len(pairs)


@pytest.fixture(scope="module")
def comparison():
    generator = make_generator("normal", bench_tasks(), 2 * bench_tasks(), bench_seed())
    instance = generator.instance(task_value=4.5, worker_range=1.4)

    rows = []
    for eps in EPSILONS:
        result = GeoIndistinguishableSolver(epsilon=eps).solve(instance, seed=5)
        rows.append(
            ("GEOI", eps, result.matched_count, base_utility(result), result.average_distance)
        )
    puce = PUCESolver().solve(instance, seed=5)
    rows.append(("PUCE", None, puce.matched_count, base_utility(puce), puce.average_distance))
    uce = UCESolver().solve(instance)
    rows.append(("UCE", None, uce.matched_count, base_utility(uce), uce.average_distance))

    lines = ["method  eps   matched  base_U  avg_km"]
    for method, eps, matched, utility, distance in rows:
        eps_text = f"{eps:4.1f}" if eps is not None else "  - "
        lines.append(f"{method:6s}  {eps_text}  {matched:7d}  {utility:6.3f}  {distance:6.3f}")
    emit_table("geoi_comparison", "\n".join(lines))
    return rows


def test_geoi_vs_distance_releases(benchmark, comparison):
    generator = make_generator("normal", bench_tasks(), 2 * bench_tasks(), bench_seed())
    instance = generator.instance()
    benchmark.pedantic(
        lambda: GeoIndistinguishableSolver(epsilon=1.0).solve(instance, seed=5),
        rounds=3,
        iterations=1,
    )

    geoi = {eps: (matched, utility) for m, eps, matched, utility, _ in comparison if m == "GEOI"}
    puce_utility = next(u for m, e, c, u, d in comparison if m == "PUCE")
    uce_utility = next(u for m, e, c, u, d in comparison if m == "UCE")

    # Matching quality improves with geo-I epsilon (less decoy error).
    assert geoi[4.0][1] > geoi[0.5][1]

    # At strict location privacy (eps = 0.5/km: expected decoy error 4 km
    # against a 1.4 km service radius), the one-shot location release
    # matches far worse than the paper's dynamic distance releases.
    assert geoi[0.5][1] < puce_utility

    # Nothing private beats the non-private ceiling.
    assert puce_utility <= uce_utility + 1e-9
    for eps in EPSILONS:
        assert geoi[eps][1] <= uce_utility + 1e-9
