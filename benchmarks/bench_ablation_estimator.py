"""Ablation: the effective-distance estimator (DESIGN.md §3.2 choice).

Section V-A restricts the MLE of a release set to the *released values*
(a weighted median) so the result stays PCF-comparable.  This ablation
measures what that design choice costs or buys against two alternatives an
implementer might reach for:

* ``last``  — just use the most recent (largest-budget) release,
* ``mean``  — the precision-weighted mean (the Gaussian-noise MLE, wrong
  for Laplace tails).

Estimation error |d_estimate - d_true| is measured as releases accumulate
under Table X budget vectors.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit_table
from repro.core.budgets import BudgetSampler
from repro.core.effective import Release, effective_pair_of
from repro.privacy.laplace import sample_laplace


def weighted_median_estimate(releases):
    return effective_pair_of(releases).distance


def last_release_estimate(releases):
    return releases[-1].value


def weighted_mean_estimate(releases):
    # Laplace variance is 2/eps^2: precision weights eps^2.
    weights = np.array([r.epsilon**2 for r in releases])
    values = np.array([r.value for r in releases])
    return float(np.average(values, weights=weights))


ESTIMATORS = {
    "median": weighted_median_estimate,
    "last": last_release_estimate,
    "mean": weighted_mean_estimate,
}


@pytest.fixture(scope="module")
def error_table():
    rng = np.random.default_rng(7)
    sampler = BudgetSampler()  # Table X: 7 draws from [0.5, 1.75], ascending
    trials = 3000
    true_distance = 1.0
    errors = {name: np.zeros(sampler.group_size) for name in ESTIMATORS}
    for _ in range(trials):
        vector = sampler.sample(rng)
        releases = []
        for u, eps in enumerate(vector.epsilons):
            releases.append(
                Release(true_distance + float(sample_laplace(rng, eps)), eps)
            )
            for name, estimator in ESTIMATORS.items():
                errors[name][u] += abs(estimator(releases) - true_distance)
    for name in errors:
        errors[name] /= trials

    lines = ["releases  " + "  ".join(f"{n:>8s}" for n in ESTIMATORS)]
    for u in range(sampler.group_size):
        lines.append(
            f"{u + 1:8d}  " + "  ".join(f"{errors[n][u]:8.4f}" for n in ESTIMATORS)
        )
    emit_table("ablation_estimator", "\n".join(lines))
    return errors


def test_estimator_ablation(benchmark, error_table):
    releases = [Release(1.2, 0.5), Release(0.9, 1.0), Release(1.1, 1.5)]
    benchmark(lambda: weighted_median_estimate(releases))

    median = error_table["median"]
    last = error_table["last"]
    mean = error_table["mean"]

    # All estimators improve (weakly) as releases accumulate overall.
    assert median[-1] < median[0]
    assert mean[-1] < mean[0]

    # The paper's released-value-restricted median beats the naive
    # last-release rule once several releases exist.
    assert median[-1] <= last[-1] + 1e-9

    # The precision-weighted mean is a strong estimator too — but it is
    # NOT a released value, so it cannot feed PCF comparisons; the table
    # records how much accuracy the comparability constraint costs.
    assert mean[-1] < 1.0  # sanity: it does estimate something
