"""Figures 17 / 25: PPCF vs non-PPCF under varying privacy budgets.

Paper claims: the PPCF-gated methods beat their nppcf ablations when the
privacy budget is small (noisy comparisons make the real-distance gate
valuable); the gap closes as the budget grows; and average utility falls
as budgets grow (each proposal costs more).
"""

import os

import pytest

from benchmarks.conftest import bench_batches, bench_seed, bench_tasks, emit_table
from repro.experiments.figures import run_figure
from repro.experiments.report import format_figure


@pytest.fixture(scope="module")
def figure():
    # The PPCF-vs-nppcf gap is a second-order effect (it only changes
    # re-challenge decisions), so this group needs >= 2 batches and a
    # denser batch than the other groups to rise above sampling noise —
    # especially on the sparse chengdu workload.
    result = run_figure(
        "fig17",
        num_tasks=max(250, bench_tasks()),
        num_batches=max(2, bench_batches()),
        seed=bench_seed(),
    )
    emit_table("fig17", format_figure(result))
    return result


@pytest.mark.parametrize("dataset", ["chengdu", "normal", "uniform"])
def test_fig17_ppcf_vs_nppcf(benchmark, figure, dataset):
    benchmark(lambda: figure.series(dataset, "PUCE"))

    # Shape 1: utility falls as the budget interval climbs (costlier
    # proposals), for both gated and ablated variants.
    for method in ("PUCE", "PDCE", "PUCE-nppcf", "PDCE-nppcf"):
        series = figure.series(dataset, method)
        assert series[-1] < series[0], f"{method} on {dataset}: {series}"

    # Shape 2: PPCF at or above its nppcf ablation over the sweep
    # aggregate (the paper's "continuously more effective" claim; single
    # points are noisy, the aggregate is stable across seeds).
    for gated, ablated in (("PUCE", "PUCE-nppcf"), ("PDCE", "PDCE-nppcf")):
        g = figure.series(dataset, gated)
        a = figure.series(dataset, ablated)
        assert sum(g) >= sum(a) - 0.03 * len(g), (
            f"{gated} {sum(g):.3f} should beat {ablated} {sum(a):.3f} on {dataset}"
        )

    # Note: the paper additionally reports the PPCF/nppcf *gap* vanishing
    # as budgets grow; in this reproduction the gap stays roughly constant
    # (see EXPERIMENTS.md, fig17 notes), so no assertion is made on it.
