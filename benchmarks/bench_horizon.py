"""Sliding-window accountant benchmark: O(log n) queries, liveliness.

The horizon PR replaces the tracker's flat per-worker float accumulation
with an accountant protocol (:mod:`repro.privacy.horizon`).  This bench
records the two numbers that keep it honest:

* **accountant op cost ratio** — nanoseconds per (record + in-window
  query) through a :class:`~repro.privacy.horizon.WindowAccountant`
  over the same ops through the default
  :class:`~repro.privacy.horizon.GlobalAccountant` (a dict add and a
  subtraction).  The window side pays two ``bisect`` calls and two
  O(log n) tree walks, so the ratio is small-double-digit and — the
  point — *flat in n*: a super-logarithmic implementation shows up as
  the ratio growing with the event count, which the perf gate's 3x
  floor catches across the committed-vs-fresh scale difference.
* **long-horizon liveliness ratio** — assigned tasks on
  ``examples/scenario_long_horizon.json`` (duty-cycle fleet, tight
  per-worker budgets) with its sliding window over the same scenario
  with the window knobs stripped (lifetime global accounting).  The
  window run keeps assigning as releases age out; the global run
  starves.  The ratio is dimensionless and transfers across hardware;
  at full scale the bench also asserts the ISSUE's acceptance shape —
  hour-24 matches under the window, none under the global cap.

``REPRO_BENCH_SMOKE=1`` keeps the run error-only and leaves the tracked
``BENCH_horizon.json`` untouched (``REPRO_BENCH_JSON_DIR`` collects the
fresh JSON elsewhere — the CI perf gate does exactly that).
"""

from __future__ import annotations

import dataclasses
import json
import os
import statistics
import time
from pathlib import Path

import pytest

from benchmarks.conftest import emit_table
from repro.api.scenario import ScenarioSpec
from repro.privacy.horizon import GlobalAccountant, HorizonPolicy, WindowAccountant

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_horizon.json"

SCENARIO = (
    Path(__file__).resolve().parent.parent
    / "examples"
    / "scenario_long_horizon.json"
)

FLEET = 50  # workers sharing the accountant in the micro-bench


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def _runs() -> int:
    return int(os.environ.get("REPRO_BENCH_RUNS", "3" if _smoke() else "7"))


def _events() -> int:
    return int(os.environ.get("REPRO_BENCH_EVENTS", "2000" if _smoke() else "20000"))


def _json_target() -> Path | None:
    out = os.environ.get("REPRO_BENCH_JSON_DIR")
    if out:
        return Path(out) / "BENCH_horizon.json"
    return None if _smoke() else BENCH_JSON


def _ns_per_op(accountant, events: int, runs: int) -> float:
    """Median ns for one record + one in-window total query."""
    for worker in range(FLEET):
        accountant.register(worker, 100.0)
    samples = []
    step = 0.01
    clock = 0.0
    for _ in range(runs):
        started = time.perf_counter()
        for index in range(events):
            clock += step
            accountant.record(index % FLEET, 0.05, clock)
            accountant.spend_in_window(index % FLEET)
        samples.append((time.perf_counter() - started) / events * 1e9)
    return statistics.median(samples)


@pytest.fixture(scope="module")
def horizon_rows():
    runs, events = _runs(), _events()
    rows = []

    # 1. Accountant op cost, window vs global, same op stream.
    window_ns = _ns_per_op(
        WindowAccountant(HorizonPolicy(window_seconds=events * 0.01 / 10)),
        events,
        runs,
    )
    global_ns = _ns_per_op(GlobalAccountant(), events, runs)
    rows.append(
        {
            "metric": "accountant_ops",
            "events": events,
            "global_ns": global_ns,
            "window_ns": window_ns,
            "window_over_global_ratio": window_ns / global_ns,
        }
    )

    # 2. Long-horizon liveliness: window vs global on the same stream.
    spec = ScenarioSpec.from_file(SCENARIO)
    if _smoke():
        spec = dataclasses.replace(spec, horizon=6.0)
    late_after = spec.horizon - 1.0  # the stream's final hour
    stats = {}
    for windowed in (False, True):
        options = spec.options
        if not windowed:
            options = options.replace(
                window_seconds=None, window_budget=None, timeline_limit=None
            )
        variant = dataclasses.replace(spec, options=options)
        stats[windowed] = variant.run()[spec.methods[0]]
    rows.append(
        {
            "metric": "long_horizon",
            "method": spec.methods[0],
            "horizon": spec.horizon,
            "assigned_global": stats[False].assigned,
            "assigned_window": stats[True].assigned,
            "assigned_ratio": (
                stats[True].assigned / max(stats[False].assigned, 1)
            ),
            "late_global": sum(
                f.matched for f in stats[False].flushes if f.time > late_after
            ),
            "late_window": sum(
                f.matched for f in stats[True].flushes if f.time > late_after
            ),
            "window_invariant_ok": stats[True].window_invariant_ok,
            "window_timeline_points": len(stats[True].window_timeline),
        }
    )

    return {"runs": runs, "events": events, "rows": rows}


def test_horizon_baseline(horizon_rows):
    """Record the accountant numbers and their invariants."""
    rows = horizon_rows["rows"]
    ops = next(r for r in rows if r["metric"] == "accountant_ops")
    live = next(r for r in rows if r["metric"] == "long_horizon")
    lines = [
        "metric          global        window        ratio",
        f"accountant_ops  {ops['global_ns']:>8.0f}ns    {ops['window_ns']:>8.0f}ns"
        f"    {ops['window_over_global_ratio']:>5.1f}x  ({ops['events']} events)",
        f"long_horizon    {live['assigned_global']:>8} tasks"
        f"  {live['assigned_window']:>8} tasks"
        f"    {live['assigned_ratio']:>5.2f}x  "
        f"(final-hour matches {live['late_global']} -> {live['late_window']})",
    ]
    if not _smoke():
        emit_table("horizon", "\n".join(lines))

    target = _json_target()
    if target is not None:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(horizon_rows, indent=2) + "\n")

    assert ops["global_ns"] > 0 and ops["window_ns"] > 0
    assert live["window_invariant_ok"], live
    # The window run must out-assign the starved global run.
    assert live["assigned_window"] > live["assigned_global"], live
    assert live["late_window"] > 0, live
    if not _smoke():
        # ISSUE acceptance at full scale: the duty-cycle fleet is
        # budget-dead in hour 24 under lifetime accounting but still
        # assigning under the sliding window.
        assert live["late_global"] == 0, live
