"""Figures 7 / 8 / 20: average utility vs worker range.

Paper claims: average utility falls as the service range grows; PGT decays
slowest (it avoids ineffective competition) and overtakes PUCE/PDCE at
large ranges on the synthetic datasets; PUCE/PDCE's relative deviations
grow with the range.
"""

import pytest

from benchmarks.conftest import mostly_monotone, run_group


@pytest.fixture(scope="module")
def figure():
    return run_group("fig07")


@pytest.mark.parametrize("dataset", ["chengdu", "normal", "uniform"])
def test_fig07_utility_vs_worker_range(benchmark, figure, dataset):
    benchmark(lambda: figure.series(dataset, "PGT"))

    # Shape 1: utility falls as the range grows (tolerate one noisy step).
    for method in ("PUCE", "PDCE", "PGT", "UCE", "GT"):
        series = figure.series(dataset, method)
        assert mostly_monotone(series, increasing=False, slack=0.08), (
            f"{method} on {dataset}: {series}"
        )

    # Shape 2: PGT decays more slowly than PUCE/PDCE: its drop from the
    # smallest to the largest range is smaller.
    pgt = figure.series(dataset, "PGT")
    pdce = figure.series(dataset, "PDCE")
    pgt_drop = pgt[0] - pgt[-1]
    pdce_drop = pdce[0] - pdce[-1]
    assert pgt_drop < pdce_drop + 0.05, (
        f"PGT should decay slowest on {dataset}: {pgt_drop:.3f} vs {pdce_drop:.3f}"
    )

    # Shape 3: at the largest range on the synthetic sets, PGT is on top
    # of the private methods (the paper's >= 1.4 crossover claim).
    if dataset in ("normal", "uniform"):
        puce = figure.series(dataset, "PUCE")
        assert pgt[-1] >= max(puce[-1], pdce[-1]) - 0.05

    # Shape 4: PUCE/PDCE relative deviations grow with the range.
    for method in ("PUCE", "PDCE"):
        deviations = figure.deviation_series(dataset, method)
        assert deviations[-1] > deviations[0], f"{method} U_RD on {dataset}"
