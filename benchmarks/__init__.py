"""Figure-regeneration benchmarks (see conftest for scale knobs)."""
