"""Figures 15 / 16 / 24: average travel distance vs worker-task ratio.

Paper claims: with more workers per task, competition drives the
non-private average distance *down*; the private methods decline less
(budget costs damp the competition); PDCE is the best private method once
the ratio exceeds ~1.5.
"""

import pytest

from benchmarks.conftest import run_group


@pytest.fixture(scope="module")
def figure():
    return run_group("fig15")


@pytest.mark.parametrize("dataset", ["chengdu", "normal", "uniform"])
def test_fig15_distance_vs_worker_ratio(benchmark, figure, dataset):
    benchmark(lambda: figure.series(dataset, "DCE"))

    # Shape 1: the non-private distance declines from ratio 1 to ratio 3
    # on the synthetic sets; on chengdu the paper's own Fig. 15a is nearly
    # flat (0.70-0.72 km), so require near-flatness there instead.
    for method in ("UCE", "DCE", "GT", "GRD"):
        series = figure.series(dataset, method)
        if dataset == "chengdu":
            assert abs(series[-1] - series[0]) < 0.12, f"{method}: {series}"
        else:
            assert series[-1] < series[0] + 1e-9, f"{method} on {dataset}: {series}"

    # Shape 2: private methods decline less than their counterparts
    # (relative drop comparison).
    for private, baseline in (("PUCE", "UCE"), ("PDCE", "DCE")):
        p = figure.series(dataset, private)
        np_ = figure.series(dataset, baseline)
        private_drop = (p[0] - p[-1]) / p[0]
        baseline_drop = (np_[0] - np_[-1]) / np_[0]
        assert private_drop < baseline_drop + 0.05, (
            f"{private} drop {private_drop:.2f} vs {baseline} {baseline_drop:.2f}"
        )

    # Shape 3: PDCE at or below PUCE at high ratios.
    assert (
        figure.series(dataset, "PDCE")[-1]
        <= figure.series(dataset, "PUCE")[-1] + 0.05
    )
