"""Figures 9 / 10 / 21: average utility vs worker-task ratio.

Paper claims: the ratio barely moves the average utility (more workers do
not proportionally increase proposing workers), and PUCE stays above PDCE
throughout.
"""

import pytest

from benchmarks.conftest import run_group


@pytest.fixture(scope="module")
def figure():
    return run_group("fig09")


@pytest.mark.parametrize("dataset", ["chengdu", "normal", "uniform"])
def test_fig09_utility_vs_worker_ratio(benchmark, figure, dataset):
    benchmark(lambda: figure.series(dataset, "PUCE"))

    # Shape 1: flatness — the whole sweep stays within a modest band
    # relative to its mean for every method.
    for method in figure.spec.methods:
        series = figure.series(dataset, method)
        mean = sum(series) / len(series)
        assert mean > 0
        spread = (max(series) - min(series)) / mean
        assert spread < 0.35, f"{method} on {dataset} varies {spread:.0%}: {series}"

    # Shape 2: PUCE above PDCE on the sweep aggregate.
    puce = sum(figure.series(dataset, "PUCE"))
    pdce = sum(figure.series(dataset, "PDCE"))
    assert puce >= pdce - 0.05 * len(figure.spec.values)

    # Shape 3: private stays below non-private at every ratio.
    for private, baseline in (("PUCE", "UCE"), ("PDCE", "DCE"), ("PGT", "GT")):
        p = figure.series(dataset, private)
        np_ = figure.series(dataset, baseline)
        assert all(a < b for a, b in zip(p, np_)), f"{private} vs {baseline}"
