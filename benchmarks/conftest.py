"""Shared infrastructure for the figure-regeneration benchmarks.

Every ``bench_figXX`` module:

1. regenerates its paper figure group via a module-scoped fixture (scale
   controlled by ``REPRO_BENCH_TASKS`` / ``REPRO_BENCH_BATCHES``; the
   paper's exact batch size is ``REPRO_BENCH_TASKS=1000``),
2. asserts the figure's qualitative shape (who wins, trend directions),
3. benchmarks a representative solve with ``pytest-benchmark``.

Measured series are written to ``benchmarks/results/*.txt`` and echoed in
the terminal summary, so ``pytest benchmarks/ --benchmark-only`` leaves a
full paper-vs-measured record behind.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Tables written by this run, echoed in the terminal summary.
_emitted: list[tuple[str, str]] = []


def bench_tasks() -> int:
    """Tasks per batch (paper: 1000; default here: 150 for speed)."""
    return int(os.environ.get("REPRO_BENCH_TASKS", "150"))


def bench_batches() -> int:
    """Batches per sweep point."""
    return int(os.environ.get("REPRO_BENCH_BATCHES", "1"))


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


def min_time(solver, instance, repeats: int = 3, seed_base: int = 0) -> float:
    """Best-of-N wall time of one solve (the benches' timing discipline)."""
    import time

    best = float("inf")
    for trial in range(repeats):
        start = time.perf_counter()
        solver.solve(instance, seed=seed_base + trial)
        best = min(best, time.perf_counter() - start)
    return best


def emit_table(name: str, text: str) -> None:
    """Persist one measured table and queue it for the summary."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    _emitted.append((name, text))


def run_group(figure_id: str, datasets: tuple[str, ...] | None = None):
    """Regenerate one figure group at bench scale and persist its tables."""
    from repro.experiments.figures import run_figure
    from repro.experiments.report import format_figure

    result = run_figure(
        figure_id,
        num_tasks=bench_tasks(),
        num_batches=bench_batches(),
        seed=bench_seed(),
        datasets=datasets,
    )
    emit_table(figure_id, format_figure(result))
    return result


def trend(series: list[float]) -> float:
    """Signed overall slope proxy: last minus first."""
    return series[-1] - series[0]


def mostly_monotone(series: list[float], increasing: bool, slack: float = 0.0) -> bool:
    """Whether the series trends in one direction, tolerating ``slack``
    per-step violations (sampling noise at bench scale)."""
    steps = list(zip(series, series[1:]))
    if increasing:
        ok = sum(1 for a, b in steps if b >= a - slack)
    else:
        ok = sum(1 for a, b in steps if b <= a + slack)
    return ok >= len(steps) - 1  # allow one noisy step


@pytest.hookimpl(trylast=True)
def pytest_terminal_summary(terminalreporter):
    if not _emitted:
        return
    terminalreporter.section("paper figure reproductions (also in benchmarks/results/)")
    for name, text in _emitted:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"==== {name} ====")
        for line in text.splitlines():
            terminalreporter.write_line(line)
