"""Observability overhead benchmark: tracing must be free when off.

The obs PR threads tracer calls through the whole flush path —
simulator, shard executor, engine rounds, workspace, cache — every one
of them defaulting to :data:`repro.obs.tracer.NULL_TRACER`.  This bench
records the two numbers that keep that honest:

* **null-tracer cost** — nanoseconds per instrumented point with
  tracing off (an attribute lookup plus an empty ``with`` block), the
  microscopic receipt behind "off is within noise";
* **end-to-end overhead ratio** — median duty-cycle scenario wall time
  with ``trace=True`` over ``trace=False``, per method
  (``examples/scenario_duty_cycle.json``, the same artifact the flush
  bench times).  The ratio is dimensionless, so it transfers across
  hardware; the perf gate holds it with the usual 3x noise floor.

The *absolute* obs-off wall clock is gated transitively: the stream and
flush benches run with tracing off against baselines committed before
the instrumentation landed, so a non-free off switch trips those gates.

``REPRO_BENCH_SMOKE=1`` keeps the run error-only and leaves the tracked
``BENCH_obs.json`` untouched (``REPRO_BENCH_JSON_DIR`` collects the
fresh JSON elsewhere — the CI perf gate does exactly that).
"""

from __future__ import annotations

import dataclasses
import json
import os
import statistics
import time
from pathlib import Path

import pytest

from benchmarks.conftest import emit_table
from repro.api.scenario import ScenarioSpec
from repro.obs import NULL_TRACER, Tracer

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

SCENARIO = (
    Path(__file__).resolve().parent.parent / "examples" / "scenario_duty_cycle.json"
)


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def _runs() -> int:
    return int(os.environ.get("REPRO_BENCH_RUNS", "3" if _smoke() else "7"))


def _span_reps() -> int:
    return int(os.environ.get("REPRO_BENCH_SPAN_REPS", "20000" if _smoke() else "200000"))


def _json_target() -> Path | None:
    out = os.environ.get("REPRO_BENCH_JSON_DIR")
    if out:
        return Path(out) / "BENCH_obs.json"
    return None if _smoke() else BENCH_JSON


def _ns_per_call(fn, reps: int, runs: int) -> float:
    samples = []
    for _ in range(runs):
        started = time.perf_counter()
        for _ in range(reps):
            fn()
        samples.append((time.perf_counter() - started) / reps * 1e9)
    return statistics.median(samples)


@pytest.fixture(scope="module")
def obs_rows():
    runs, reps = _runs(), _span_reps()
    rows = []

    # 1. Per-instrumentation-point cost, off vs on.
    def null_point():
        with NULL_TRACER.span("flush.solve"):
            pass

    def live_point(tracer=Tracer()):
        with tracer.span("flush.solve"):
            pass
        if len(tracer.spans) > 10000:
            tracer.spans.clear()

    null_ns = _ns_per_call(null_point, reps, runs)
    live_ns = _ns_per_call(live_point, reps, runs)
    rows.append(
        {
            "metric": "span_point",
            "null_ns": null_ns,
            "live_ns": live_ns,
            "on_off_ratio": live_ns / null_ns,
        }
    )

    # 2. End-to-end duty-cycle wall, trace off vs on, per method.
    spec = ScenarioSpec.from_file(SCENARIO)
    if _smoke():
        spec = dataclasses.replace(spec, horizon=1.0)
    for method in spec.methods:
        walls = {}
        reports = {}
        for trace in (False, True):
            variant = dataclasses.replace(
                spec,
                methods=(method,),
                options=spec.options.replace(trace=trace),
            )
            samples = []
            for _ in range(runs):
                started = time.perf_counter()
                reports[trace] = variant.run()
                samples.append(time.perf_counter() - started)
            walls[trace] = statistics.median(samples)
        stats_on = reports[True][method]
        rows.append(
            {
                "metric": "obs_overhead",
                "method": method,
                "wall_off_seconds": walls[False],
                "wall_on_seconds": walls[True],
                "overhead_ratio": walls[True] / walls[False],
                "flushes": len(stats_on.flushes),
                "spans": len(stats_on.spans),
                "phase_coverage": (
                    sum(sum(r.phase_seconds.values()) for r in stats_on.flushes)
                    / sum(r.flush_seconds for r in stats_on.flushes)
                ),
            }
        )

    return {"runs": runs, "span_reps": reps, "rows": rows}


def test_obs_overhead_baseline(obs_rows):
    """Record the obs overhead numbers and their invariants."""
    rows = obs_rows["rows"]
    lines = ["metric        method  off          on           ratio"]
    for row in rows:
        if row["metric"] == "span_point":
            lines.append(
                f"span_point    -       {row['null_ns']:>8.1f}ns   "
                f"{row['live_ns']:>8.1f}ns   {row['on_off_ratio']:>5.2f}x"
            )
        else:
            lines.append(
                f"obs_overhead  {row['method']:<6}  {row['wall_off_seconds']:>8.3f}s"
                f"    {row['wall_on_seconds']:>8.3f}s    "
                f"{row['overhead_ratio']:>5.2f}x  "
                f"({row['spans']} spans, {row['phase_coverage']:.0%} phase coverage)"
            )
    if not _smoke():
        emit_table("obs_overhead", "\n".join(lines))

    target = _json_target()
    if target is not None:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(obs_rows, indent=2) + "\n")

    point = next(r for r in rows if r["metric"] == "span_point")
    assert point["null_ns"] > 0
    overhead = [r for r in rows if r["metric"] == "obs_overhead"]
    assert overhead, "no end-to-end overhead rows measured"
    for row in overhead:
        assert row["spans"] > 0, row
        assert 0.5 <= row["phase_coverage"] <= 1.05, row
        if not _smoke():
            # Tracing on may cost real time (it records every span), but
            # the duty-cycle regime must stay within the same order.
            assert row["overhead_ratio"] < 3.0, row
