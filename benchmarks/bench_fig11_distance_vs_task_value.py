"""Figures 11 / 12 / 22: average travel distance vs task value.

Paper claims: small task values suppress far matches (short distances);
once the value exceeds ~3 the distance flattens; PDCE achieves the lowest
distance among the private methods (its objective *is* distance).
"""

import pytest

from benchmarks.conftest import run_group


@pytest.fixture(scope="module")
def figure():
    return run_group("fig11")


@pytest.mark.parametrize("dataset", ["chengdu", "normal", "uniform"])
def test_fig11_distance_vs_task_value(benchmark, figure, dataset):
    benchmark(lambda: figure.series(dataset, "PDCE"))

    values = list(figure.spec.values)
    flat_from = values.index(3.0)

    # Shape 1: distance at the smallest value is the minimum of the curve
    # (value 1.5 cuts off far pairs).
    for method in ("PUCE", "PDCE", "UCE", "GT"):
        series = figure.series(dataset, method)
        assert series[0] <= min(series[flat_from:]) + 1e-9, f"{method}: {series}"

    # Shape 2: flat beyond value 3 — the plateau varies within a band.
    for method in ("PUCE", "PDCE", "PGT"):
        plateau = figure.series(dataset, method)[flat_from:]
        mean = sum(plateau) / len(plateau)
        spread = (max(plateau) - min(plateau)) / mean
        assert spread < 0.25, f"{method} plateau varies {spread:.0%} on {dataset}"

    # Shape 3: PDCE's plateau distance does not exceed PUCE's by more than
    # noise (its objective is distance).
    puce = figure.series(dataset, "PUCE")[flat_from:]
    pdce = figure.series(dataset, "PDCE")[flat_from:]
    assert sum(pdce) <= sum(puce) + 0.03 * len(pdce), f"{pdce} vs {puce}"

    # Shape 4: non-private distances sit below private ones on the plateau.
    uce = figure.series(dataset, "UCE")[flat_from:]
    assert sum(uce) < sum(puce)
