"""Attack-surface measurement (the paper's conclusion, quantified).

Not a paper figure: the conclusion *warns* that enough effective
obfuscated distances let an attacker trilaterate a worker, and defers the
fix to future work.  This bench measures that exposure for each private
method — how many workers leak a multi-anchor surface, and how precisely
the trilateration attacker localises them — so the claimed weakness is
reproducible, not rhetorical.
"""

import statistics

import pytest

from benchmarks.conftest import bench_seed, bench_tasks, emit_table
from repro.core.registry import make_solver
from repro.experiments.sweeps import make_generator
from repro.privacy.attack import attack_assignment

METHODS = ("PUCE", "PDCE", "PGT")


@pytest.fixture(scope="module")
def attack_rows():
    generator = make_generator("normal", bench_tasks(), 2 * bench_tasks(), bench_seed())
    instance = generator.instance(task_value=4.5, worker_range=1.4)
    rows = []
    for method in METHODS:
        result = make_solver(method).solve(instance, seed=5)
        records = attack_assignment(result, min_anchors=3)
        errors = [r.error for r in records]
        rows.append(
            {
                "method": method,
                "publishes": result.publishes,
                "attacked": len(records),
                "median_error": statistics.median(errors) if errors else float("nan"),
                "within_radius": sum(r.localised_within_radius for r in records),
            }
        )
    lines = ["method  releases  attackable  median_err_km  localised<r"]
    for r in rows:
        lines.append(
            f"{r['method']:6s}  {r['publishes']:8d}  {r['attacked']:10d}  "
            f"{r['median_error']:13.3f}  {r['within_radius']:11d}"
        )
    emit_table("attack_surface", "\n".join(lines))
    return rows


def test_attack_surface(benchmark, attack_rows):
    generator = make_generator("normal", bench_tasks(), 2 * bench_tasks(), bench_seed())
    instance = generator.instance()
    result = make_solver("PUCE").solve(instance, seed=5)
    benchmark(lambda: attack_assignment(result, min_anchors=3))

    by_method = {r["method"]: r for r in attack_rows}
    # The elimination protocols (propose to every in-range task) expose a
    # large multi-anchor surface; PGT's targeted publishing exposes less.
    assert by_method["PUCE"]["attacked"] > 0
    assert by_method["PGT"]["attacked"] < by_method["PUCE"]["attacked"]
    # The conclusion's warning is real: attacked workers are localised to
    # roughly service-area scale.
    assert by_method["PUCE"]["median_error"] < 3.0
