"""Compare every Table IX method across the three evaluation datasets.

Runs PUCE, PDCE, PGT, their non-private counterparts, GRD, and the exact
OPT reference on one batch of each dataset and prints the Section VII-C
measures side by side — a miniature of the paper's whole evaluation.

Run:  python examples/method_comparison.py [num_tasks]
"""

import sys

from repro import available_methods, make_solver
from repro.experiments.sweeps import make_generator

METHODS = ("PUCE", "PDCE", "PGT", "UCE", "DCE", "GT", "GRD", "OPT")
DATASETS = ("chengdu", "normal", "uniform")


def main(num_tasks: int = 200) -> None:
    assert all(m in available_methods() for m in METHODS)
    for dataset in DATASETS:
        generator = make_generator(dataset, num_tasks, 2 * num_tasks, seed=17)
        instance = generator.instance(task_value=4.5, worker_range=1.4)
        print(
            f"\n=== {dataset}: {instance.num_tasks} tasks, "
            f"{instance.num_workers} workers, "
            f"{instance.mean_tasks_per_worker():.1f} tasks/service-circle ==="
        )
        header = (
            f"{'method':7s} {'matched':>8s} {'U_avg':>7s} {'D_avg':>7s} "
            f"{'rounds':>7s} {'releases':>9s} {'ms':>7s}"
        )
        print(header)
        print("-" * len(header))
        for name in METHODS:
            result = make_solver(name).solve(instance, seed=23)
            print(
                f"{name:7s} {result.matched_count:8d} "
                f"{result.average_utility:7.3f} {result.average_distance:7.3f} "
                f"{result.rounds:7d} {result.publishes:9d} "
                f"{result.elapsed_seconds * 1000:7.1f}"
            )

    print(
        "\nreading guide: PUCE edges out PDCE on utility; PGT posts the "
        "best private utility\non dense data with far fewer releases; OPT "
        "is the non-private exact ceiling."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200)
