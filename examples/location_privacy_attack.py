"""How much location do the distance releases actually leak?

The paper's conclusion warns that a worker who publishes obfuscated
distances to many known task locations can be localised by trilateration.
This example runs the attack against PUCE and PGT outcomes on the same
batch, contrasts their leak surfaces, and shows the planar-Laplace
(geo-indistinguishability) alternative the related work uses for
location-level protection.

Run:  python examples/location_privacy_attack.py
"""

import statistics

import numpy as np

from repro import NormalGenerator, PGTSolver, PUCESolver, PlanarLaplaceMechanism
from repro.privacy.attack import attack_assignment


def main() -> None:
    instance = NormalGenerator(200, 400, seed=19).instance(
        task_value=4.5, worker_range=1.4
    )
    print(f"batch: {instance.num_tasks} tasks, {instance.num_workers} workers, "
          f"{instance.mean_tasks_per_worker():.1f} tasks per service circle\n")

    print("attacking the release boards (>= 3 leaked pairs per worker):")
    header = (
        f"{'method':6s} {'releases':>9s} {'attackable':>11s} "
        f"{'median err':>11s} {'inside r_j':>11s}"
    )
    print(header)
    print("-" * len(header))
    for solver in (PUCESolver(), PGTSolver()):
        result = solver.solve(instance, seed=4)
        records = attack_assignment(result, min_anchors=3)
        errors = [r.error for r in records]
        inside = sum(r.localised_within_radius for r in records)
        median = f"{statistics.median(errors):8.2f} km" if errors else "       n/a"
        print(
            f"{solver.name:6s} {result.publishes:9d} {len(records):11d} "
            f"{median:>11s} {inside:11d}"
        )

    print(
        "\nreading: PUCE's propose-everywhere protocol hands the attacker a\n"
        "rich anchor set; PGT's targeted moves barely expose one.  This is\n"
        "the residual risk the paper defers to future work.\n"
    )

    # The related-work alternative: perturb the *location* once with
    # planar Laplace instead of releasing many distances.
    rng = np.random.default_rng(0)
    mechanism = PlanarLaplaceMechanism(epsilon=1.0)
    worker = instance.workers[0]
    decoy = mechanism.perturb(worker.location, rng)
    print("geo-indistinguishability (related work) on one worker:")
    print(f"  true location  : ({worker.location.x:7.2f}, {worker.location.y:7.2f})")
    print(f"  released decoy : ({decoy.x:7.2f}, {decoy.y:7.2f})")
    print(f"  expected error : {mechanism.expected_error():.2f} km, "
          f"90% within {mechanism.error_quantile(0.9):.2f} km")
    print("\na location release leaks once; distance releases accumulate —")
    print("the trade this paper's dynamic-budget scheme navigates.")


if __name__ == "__main__":
    main()
