"""Quickstart: privately assign one batch of tasks.

Builds a Gaussian-city batch (the paper's `normal` dataset), runs the
paper's PUCE mechanism, and inspects the outcome: who got matched, what it
cost in privacy budget, and what local-DP level each worker ended up with.

Run:  python examples/quickstart.py
"""

from repro import NormalGenerator, PUCESolver, UCESolver


def main() -> None:
    # One batch: 200 tasks, 400 workers (the paper's default ratio 2),
    # task value 4.5, service radius 1.4 km, budget vectors of 7 draws
    # from [0.5, 1.75] per feasible pair — Table X's bold defaults.
    generator = NormalGenerator(num_tasks=200, num_workers=400, seed=7)
    instance = generator.instance(task_value=4.5, worker_range=1.4)
    print(
        f"instance: {instance.num_tasks} tasks x {instance.num_workers} workers, "
        f"{instance.num_feasible_pairs} feasible pairs, "
        f"{instance.mean_tasks_per_worker():.1f} tasks per service circle"
    )

    # Private assignment: workers publish only Laplace-obfuscated
    # distances and spend budget to out-compete each other.
    result = PUCESolver().solve(instance, seed=11)
    print(f"\nPUCE matched {result.matched_count} tasks "
          f"in {result.rounds} rounds ({result.publishes} published releases)")
    print(f"  average utility   : {result.average_utility:.3f}")
    print(f"  average distance  : {result.average_distance:.3f} km")
    print(f"  total budget spent: {result.total_privacy_spend:.1f}")

    # The non-private ceiling: same protocol with exact distances.
    baseline = UCESolver().solve(instance)
    deviation = (baseline.average_utility - result.average_utility) / baseline.average_utility
    print(f"\nnon-private UCE utility: {baseline.average_utility:.3f} "
          f"(privacy costs {deviation:.0%} of it)")

    # Per-worker privacy audit (Theorem V.2): spend * service radius.
    print("\nfive sample matched pairs:")
    for pair in result.matched_pairs()[:5]:
        bound = result.worker_ldp_bound(pair.worker_id)
        spend = result.ledger.worker_spend(pair.worker_id)
        print(
            f"  task {pair.task_id:4d} <- worker {pair.worker_id:4d}  "
            f"d={pair.distance:5.2f} km  U={pair.utility:5.2f}  "
            f"spent eps={spend:4.2f}  LDP bound={bound:5.2f}"
        )


if __name__ == "__main__":
    main()
