"""Online dispatch demo: private assignment over a live task stream.

The offline examples replay Section VII-B's fixed batches; this one runs
the streaming layer end to end instead:

1. a rush-hour arrival process releases tasks over a simulated morning,
   while reinforcement drivers trickle in on top of the starting fleet;
2. the micro-batcher flushes the pending buffer every ``max_wait`` time
   units (or at ``max_batch_size``), carrying every driver's remaining
   shift privacy budget across flushes;
3. PUCE (private) and UCE (its non-private counterpart) replay the same
   timeline, so the printout shows what privacy costs *online*: utility,
   latency, expiry and cumulative budget spend.

Run with ``PYTHONPATH=src python examples/streaming_dispatch.py``.
"""

from repro import (
    NormalGenerator,
    PoissonProcess,
    RushHourProcess,
    StreamConfig,
    StreamRunner,
    StreamWorkload,
)


def main() -> None:
    morning = RushHourProcess(
        base_rate=15.0,   # background demand (tasks/hour)
        peak_rate=60.0,   # extra demand at the peak
        horizon=4.0,      # 06:00-10:00, peak at 08:30
        peaks=(2.5,),
        width=0.8,
    )
    workload = StreamWorkload(
        task_process=morning,
        worker_process=PoissonProcess(rate=10.0, horizon=4.0),
        spatial=NormalGenerator(num_tasks=200, num_workers=400, seed=3),
        initial_workers=70,
        task_deadline=0.75,   # riders give up after 45 simulated minutes
        worker_budget=30.0,   # each driver's whole-shift privacy budget
        seed=11,
    )
    config = StreamConfig(max_batch_size=40, max_wait=0.15)
    report = StreamRunner(["PUCE", "UCE"], config=config).run_workload(
        workload, seed=11
    )

    for method in report.methods():
        stats = report[method]
        print(f"== {method} ==")
        print(f"  tasks arrived        {stats.arrived_tasks}")
        print(
            f"  assigned / expired   {stats.assigned} / {stats.expired}"
            f"  (expiry rate {stats.expiry_rate:.1%})"
        )
        print(
            f"  assignment latency   p50 {stats.latency_p50:.3f}h, "
            f"p95 {stats.latency_p95:.3f}h"
        )
        print(f"  micro-batches        {len(stats.flushes)}")
        print(f"  throughput           {stats.throughput_tasks_per_sec:,.0f} tasks/s")
        print(f"  privacy spend        {stats.total_privacy_spend:.1f} eps total")
        print(f"  average utility      {stats.average_utility:.2f}")

    puce, uce = report["PUCE"], report["UCE"]
    if uce.average_utility:
        cost = (uce.average_utility - puce.average_utility) / uce.average_utility
        print(f"\nonline utility cost of privacy (vs UCE): {cost:.1%}")
    busiest = max(puce.flushes, key=lambda f: f.matched, default=None)
    if busiest is not None:
        print(
            f"busiest micro-batch: t={busiest.time:.2f}h, "
            f"{busiest.pending_tasks} pending x {busiest.idle_workers} idle "
            f"-> {busiest.matched} matches"
        )


if __name__ == "__main__":
    main()
