"""One worker's privacy-for-utility trade, step by step.

The paper's Example 1 mechanism in miniature: a worker who *loses* a task
under his first obfuscated distance can spend more budget — publishing a
fresh, more accurate release — until he wins it or it stops being worth
it.  This script shows the release board, the effective obfuscated
distance converging toward the truth, and the PPCF decision quality
improving with spend; then audits the worker's accumulated local-DP level.

Run:  python examples/privacy_tradeoff.py
"""

import numpy as np

from repro import Point, ppcf, Task, Worker
from repro.core.budgets import BudgetVector
from repro.core.effective import ReleaseSet
from repro.privacy.accountant import PrivacyLedger
from repro.privacy.laplace import sample_laplace


def main() -> None:
    rng = np.random.default_rng(13)

    # A task worth 10 at distance 2.0 from our worker; a rival currently
    # holds it with an effective obfuscated distance of 2.6.
    task = Task(id=0, location=Point(0.0, 0.0), value=10.0)
    worker = Worker(id=0, location=Point(2.0, 0.0), radius=5.0)
    true_distance = worker.location.distance_to(task.location)
    rival_effective, rival_epsilon = 2.6, 1.0

    budgets = BudgetVector((0.5, 0.8, 1.1, 1.4, 1.7))
    releases = ReleaseSet()
    ledger = PrivacyLedger()

    print(f"true distance {true_distance:.2f}; rival's effective distance "
          f"{rival_effective:.2f} (eps {rival_epsilon})")
    print("\nthe worker knows his own true distance, so he first checks the")
    print("PPCF gate (Pr[my distance < rival's] from his exact distance):")
    confidence = ppcf(true_distance, rival_effective, rival_epsilon)
    print(f"  PPCF = {confidence:.3f} > 0.5 -> worth competing\n")

    print(f"{'step':>4s} {'eps':>5s} {'release':>8s} {'effective':>10s} "
          f"{'|error|':>8s} {'spent':>6s}")
    for step, epsilon in enumerate(budgets.epsilons, start=1):
        release = true_distance + float(sample_laplace(rng, epsilon))
        releases.add(release, epsilon)
        ledger.record(worker.id, task.id, epsilon)
        effective = releases.effective_pair()
        error = abs(effective.distance - true_distance)
        print(
            f"{step:4d} {epsilon:5.2f} {release:8.3f} {effective.distance:10.3f} "
            f"{error:8.3f} {ledger.worker_spend(worker.id):6.2f}"
        )
        # Stop once the effective distance credibly undercuts the rival
        # (the server-side PCF comparison reduces to this by Lemma X.1).
        if effective.distance < rival_effective:
            print(f"\nwins the task at step {step}: effective "
                  f"{effective.distance:.3f} < rival {rival_effective:.2f}")
            break
    else:
        print("\nbudget exhausted without overtaking the rival")

    # What did the win cost?  Utility (Eq. 2, pair-level spend) and the
    # worker's realised local-DP level (Theorem V.2).
    spend = ledger.pair_spend(worker.id, task.id).total
    utility = task.value - true_distance - spend
    print(f"\nutility  = v - f_d(d) - f_p(spend) = "
          f"{task.value} - {true_distance:.2f} - {spend:.2f} = {utility:.2f}")
    print(f"LDP level = spend x radius = {spend:.2f} x {worker.radius} = "
          f"{ledger.worker_ldp_bound(worker.id, worker.radius):.2f}")

    print("\nwhy dynamic budgets help: a confidential-minded worker stops at")
    print("step 1 (high privacy, lower win rate); an income-minded worker")
    print("keeps publishing until the effective distance reflects reality.")


if __name__ == "__main__":
    main()
