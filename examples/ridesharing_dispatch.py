"""Ride-sharing dispatch over a simulated Chengdu day.

The paper's motivating workload: taxi orders stream in over a day; the
platform dispatches in time-window batches of at most `BATCH_SIZE` orders,
cycling fixed taxi groups across batches (Section VII-B's protocol).
Drivers guard their locations, publishing only obfuscated distances, and
may spend extra budget to win better orders.

Compares PUCE, PGT and the distance-based PDCE baseline over the day.

Run:  python examples/ridesharing_dispatch.py
"""

from repro import (
    BatchRunner,
    ChengduLikeGenerator,
    ProblemInstance,
    WorkerGroupCycle,
    split_batches,
)

NUM_ORDERS = 600
NUM_TAXIS = 900
BATCH_SIZE = 200
TAXI_GROUPS = 3


def main() -> None:
    import numpy as np

    # A day of orders and a fleet of taxis over the simulated city.
    generator = ChengduLikeGenerator(NUM_ORDERS, NUM_TAXIS, seed=42)
    rng = np.random.default_rng(42)
    orders = generator.tasks(task_value=4.5, rng=rng)
    taxis = generator.workers(worker_range=1.4, rng=rng)

    # Section VII-B protocol: release-time batches, cycled taxi groups.
    groups = WorkerGroupCycle.split(taxis, TAXI_GROUPS)
    batches = split_batches(orders, BATCH_SIZE, groups)
    print(f"{len(orders)} orders -> {len(batches)} batches; "
          f"{TAXI_GROUPS} taxi groups of {len(groups.groups[0])}")
    for batch in batches:
        first = min(t.release_time for t in batch.tasks)
        last = max(t.release_time for t in batch.tasks)
        print(f"  batch {batch.index}: {len(batch.tasks)} orders, "
              f"window {first:05.2f}h - {last:05.2f}h")

    instances = [
        ProblemInstance.from_batch(batch, seed=100 + batch.index)
        for batch in batches
    ]

    report = BatchRunner(["PUCE", "PGT", "PDCE", "UCE", "GT", "DCE"]).run(
        instances, seed=7
    )

    print("\nday summary (all batches):")
    header = f"{'method':6s} {'matched':>8s} {'avg utility':>12s} {'avg km':>7s} {'ms/batch':>9s}"
    print(header)
    print("-" * len(header))
    for method in report.methods():
        stats = report[method]
        print(
            f"{method:6s} {stats.matched:8d} {stats.average_utility:12.3f} "
            f"{stats.average_distance:7.3f} {stats.elapsed_ms_per_batch:9.1f}"
        )

    print("\nprivacy cost of the dynamic mechanisms (U_RD vs non-private):")
    for method in ("PUCE", "PGT", "PDCE"):
        print(f"  {method}: {report.utility_deviation(method):6.1%}")

    # Settlement: Vickrey payments for the first batch's PUCE outcome
    # (the paper's "extract the payment from the task value" future work).
    from repro.core.payments import payments_for_result
    from repro.core.puce import PUCESolver

    first = PUCESolver().solve(instances[0], seed=7)
    payments = payments_for_result(first)
    total_paid = sum(p.amount for p in payments)
    total_profit = sum(p.worker_profit for p in payments)
    print(f"\nVickrey settlement of batch 0 under PUCE: "
          f"{len(payments)} payments, {total_paid:.1f} paid, "
          f"{total_profit:.1f} total driver surplus")
    for payment in payments[:3]:
        print(f"  order {payment.task_id:3d}: driver {payment.worker_id:3d} "
              f"paid {payment.amount:5.2f} (cost {payment.winner_cost:5.2f})")


if __name__ == "__main__":
    main()
