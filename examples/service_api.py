"""Service API demo: the unified facade in its two interaction modes.

Part 1 drives dispatch *request-by-request* through a
:class:`repro.DispatchSession` — the interaction model of a live
platform: submit workers and tasks as they appear, advance the clock,
drain typed :class:`repro.Assignment` events as decisions land.

Part 2 runs the *same experiment idea declaratively*: load the checked-in
``examples/scenario_rush_hour.json`` artifact, tweak nothing, and let
:meth:`repro.ScenarioSpec.run` replay it for every method.  The artifact
is the experiment — share the JSON, share the result.

Run with ``PYTHONPATH=src python examples/service_api.py``.
"""

from pathlib import Path

from repro import (
    DispatchSession,
    Point,
    ScenarioSpec,
    SessionConfig,
    SolveOptions,
    Task,
    Worker,
)

SCENARIO_FILE = Path(__file__).with_name("scenario_rush_hour.json")


def drive_a_session() -> None:
    print("=== DispatchSession: request-by-request dispatch ===")
    options = SolveOptions(seed=7, max_batch_size=8, max_wait=0.1)
    config = SessionConfig(options=options, default_deadline=0.6)
    with DispatchSession("PUCE", config) as session:
        # The morning fleet comes on duty.
        for j in range(6):
            session.submit_worker(
                Worker(id=100 + j, location=Point(0.8 * j, 0.4), radius=2.5),
                budget=20.0,
            )
        # Ride requests trickle in; the platform never sees the future.
        for i in range(10):
            session.submit_task(
                Task(id=i, location=Point(0.5 * i, 0.0), value=4.5),
                at=0.05 * (i + 1),
            )
        session.advance(to_time=0.8)
        for event in session.drain():
            print(
                f"  t={event.time:.2f}  task {event.task_id:2d} -> "
                f"worker {event.worker_id}  (latency {event.latency:.2f}, "
                f"utility {event.utility:.2f})"
            )
        stats = session.finish()
    print(
        f"  session over: {stats.assigned} assigned, {stats.expired} expired, "
        f"eps spent {stats.total_privacy_spend:.1f}\n"
    )


def run_the_artifact() -> None:
    print(f"=== ScenarioSpec: replaying {SCENARIO_FILE.name} ===")
    spec = ScenarioSpec.from_file(SCENARIO_FILE)
    report = spec.run()
    for method in report.methods():
        stats = report[method]
        print(
            f"  {method:<12} assigned {stats.assigned:3d}/{stats.arrived_tasks}"
            f"  p95 latency {stats.latency_p95:.3f}"
            f"  avg utility {stats.average_utility:.2f}"
            f"  eps spent {stats.total_privacy_spend:.1f}"
        )
    print(
        "\n  same run from the shell:\n"
        f"  python -m repro.experiments scenario {SCENARIO_FILE}"
    )


if __name__ == "__main__":
    drive_a_session()
    run_the_artifact()
