"""Setuptools shim.

Metadata lives in ``pyproject.toml``; this file exists so the package can
be installed in environments without the ``wheel`` package (offline CI),
where PEP 660 editable installs are unavailable:

    python setup.py develop
"""

from setuptools import setup

setup()
