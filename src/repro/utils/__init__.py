"""Small shared utilities (random-number plumbing)."""

from repro.utils.rng import ensure_rng, spawn_rng

__all__ = ["ensure_rng", "spawn_rng"]
