"""Random-number-generator plumbing.

Every stochastic entry point of the library accepts either an integer seed
or a ready :class:`numpy.random.Generator`; :func:`ensure_rng` normalises
the two.  Internal components that need independent streams derive them
with :func:`spawn_rng` so that a single top-level seed reproduces an entire
experiment regardless of evaluation order.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rng", "stable_hash"]


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a non-deterministic generator; an integer yields a
    seeded one; an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    The child's seed is drawn from ``rng``, so repeated calls yield
    distinct, reproducible streams.
    """
    return np.random.default_rng(rng.integers(0, 2**63 - 1))


def stable_hash(name: str) -> int:
    """A process-independent small hash (builtin ``hash()`` is salted).

    Both experiment runners derive per-(method, batch) noise streams from
    this value, so it must stay identical across layers and processes for
    results to reproduce.
    """
    value = 0
    for ch in name:
        value = (value * 131 + ord(ch)) % (2**31 - 1)
    return value
