"""repro — Dynamic Private Task Assignment under Differential Privacy.

A from-scratch reproduction of Du et al., ICDE 2023 (arXiv:2302.09511):
spatial-crowdsourcing task assignment where workers publish only
Laplace-obfuscated distances and *dynamically* trade extra privacy budget
for better assignments.

Quickstart::

    from repro import NormalGenerator, PUCESolver

    gen = NormalGenerator(num_tasks=200, num_workers=400, seed=7)
    inst = gen.instance(task_value=4.5, worker_range=1.4)
    result = PUCESolver().solve(inst, seed=11)
    print(result.average_utility, result.matched_count)

Packages:

* :mod:`repro.core`       -- PPCF/PCF, effective distances, budgets,
  CEA, PUCE, PGT, PDCE and the Table IX baselines,
* :mod:`repro.privacy`    -- Laplace mechanism, LDP accounting, geo-I,
* :mod:`repro.spatial`    -- geometry and range queries,
* :mod:`repro.matching`   -- Hungarian / greedy matching,
* :mod:`repro.game`       -- potential games, best response, PoA/PoS,
* :mod:`repro.datasets`   -- workloads: uniform, normal, Chengdu-like,
* :mod:`repro.simulation` -- instances, untrusted server, batch runner,
* :mod:`repro.stream`     -- online dispatch: continuous-time arrivals
  (Poisson / rush-hour / bursty / trace-driven), deadlines and duty
  cycles, micro-batching with cross-flush budget carry, streaming runner,
* :mod:`repro.api`        -- the unified service facade: `SolveOptions`,
  `MethodSpec`, `DispatchSession`, `ScenarioSpec`,
* :mod:`repro.obs`        -- observability: flush span tracing, online
  windowed stream indicators, metrics registry + Prometheus/JSONL export,
* :mod:`repro.service`    -- the multi-tenant dispatch service: many
  concurrent sessions on one asyncio loop, typed wire records, a shared
  persistent flush cache, per-tenant budgets and admission shedding,
  crash-safe write-ahead tenant journals and recovery,
* :mod:`repro.faults`     -- deterministic fault injection: a seeded
  `FaultPlan` drives pool crashes, shm failures, watchdog timeouts,
  snapshot corruption, consumer stalls and worker departures,
* :mod:`repro.experiments`-- the per-figure reproduction harness and the
  ``stream`` / ``scenario`` / ``profile`` / ``serve`` CLIs.

Service quickstart (drive dispatch request-by-request)::

    from repro import DispatchSession, SolveOptions, Task, Worker, Point

    with DispatchSession("PUCE", options=SolveOptions(seed=7)) as session:
        session.submit_worker(Worker(id=0, location=Point(0, 0), radius=2.0))
        session.submit_task(Task(id=0, location=Point(1, 0), value=4.5), at=0.1)
        session.advance(to_time=0.5)
        for event in session.drain():
            print(event.task_id, "->", event.worker_id, event.latency)

Streaming quickstart (replay a materialised workload)::

    from repro import (
        NormalGenerator, PoissonProcess, StreamWorkload, StreamRunner,
    )

    workload = StreamWorkload(
        task_process=PoissonProcess(rate=40.0, horizon=3.0),
        worker_process=PoissonProcess(rate=15.0, horizon=3.0),
        spatial=NormalGenerator(num_tasks=200, num_workers=400, seed=3),
        initial_workers=60,
    )
    report = StreamRunner(["PUCE", "UCE"]).run_workload(workload, seed=7)
    print(report["PUCE"].latency_p95, report["PUCE"].expiry_rate)

Declarative scenarios (shareable experiment artifacts)::

    from repro import ScenarioSpec

    report = ScenarioSpec.from_file("examples/scenario_rush_hour.json").run()
"""

from repro.api import (
    WIRE_VERSION,
    AckReply,
    Advance,
    AssignmentRecord,
    AssignmentsReply,
    BudgetReply,
    BudgetStatus,
    DispatchSession,
    Drain,
    ErrorReply,
    Finish,
    FinishedReply,
    MethodSpec,
    OpenSession,
    ScenarioSpec,
    SessionConfig,
    ShedReply,
    SolveOptions,
    SubmitTask,
    SubmitWorker,
    decode_record,
    encode_record,
    run_scenario,
)
from repro.core import (
    NON_PRIVATE_COUNTERPART,
    AssignmentResult,
    BudgetSampler,
    BudgetVector,
    DCESolver,
    GreedySolver,
    GTSolver,
    LinearValue,
    OptimalSolver,
    PDCESolver,
    PGTSolver,
    PUCESolver,
    UCESolver,
    UtilityModel,
    available_methods,
    make_solver,
    pcf,
    ppcf,
)
from repro.datasets import (
    Batch,
    ChengduLikeGenerator,
    NormalGenerator,
    Task,
    UniformGenerator,
    Worker,
    WorkerGroupCycle,
    split_batches,
)
from repro.errors import (
    BudgetExhaustedError,
    ConfigurationError,
    ConvergenceError,
    DatasetError,
    FlushBudgetError,
    FlushTimeoutError,
    InjectedFault,
    InvalidInstanceError,
    JournalError,
    MatchingError,
    ReproError,
    ServiceError,
)
from repro.faults import (
    FAULT_KINDS,
    MASKED_FAULT_KINDS,
    FaultPlan,
    fault_injection,
    set_fault_plan,
    smoke_plan,
)
from repro.datasets import load_tasks, load_workers, save_tasks, save_workers
from repro.matching import Matching
from repro.obs import (
    Ewma,
    MetricsRegistry,
    NullTracer,
    RollingQuantile,
    Span,
    Stopwatch,
    Tracer,
    WarmupZScore,
    format_profile,
    write_metrics_prometheus,
    write_trace_jsonl,
)
from repro.privacy import (
    HorizonPolicy,
    PlanarLaplaceMechanism,
    PrivacyLedger,
    TrilaterationAttack,
    WindowAccountant,
    attack_assignment,
)
from repro.service import (
    DispatchService,
    ServiceClient,
    ServiceConfig,
    TenantJournal,
    journal_tenants,
)
from repro.simulation import BatchRunner, ProblemInstance, RunReport, Server
from repro.spatial import Point
from repro.core import EngineWorkspace
from repro.stream import (
    AdaptiveBatchController,
    Assignment,
    BurstyProcess,
    DispatchSimulator,
    FlushSolverCache,
    MicroBatcher,
    PoissonProcess,
    RushHourProcess,
    ShardedFlushExecutor,
    ShardSeedSchedule,
    StreamConfig,
    StreamReport,
    StreamRunner,
    StreamStats,
    StreamWorkload,
    TaskArrival,
    TraceProcess,
    WorkerArrival,
    WorkerBudgetTracker,
    WorkerDeparture,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # workload
    "Task",
    "Worker",
    "Batch",
    "split_batches",
    "WorkerGroupCycle",
    "Point",
    "UniformGenerator",
    "NormalGenerator",
    "ChengduLikeGenerator",
    # problem + platform
    "ProblemInstance",
    "Server",
    "Matching",
    "UtilityModel",
    "LinearValue",
    "BudgetVector",
    "BudgetSampler",
    # methods
    "PUCESolver",
    "PDCESolver",
    "PGTSolver",
    "UCESolver",
    "DCESolver",
    "GTSolver",
    "GreedySolver",
    "OptimalSolver",
    "make_solver",
    "available_methods",
    "NON_PRIVATE_COUNTERPART",
    # primitives
    "pcf",
    "ppcf",
    "PrivacyLedger",
    "HorizonPolicy",
    "WindowAccountant",
    "PlanarLaplaceMechanism",
    "TrilaterationAttack",
    "attack_assignment",
    # workload persistence
    "save_tasks",
    "load_tasks",
    "save_workers",
    "load_workers",
    # running experiments
    "BatchRunner",
    "RunReport",
    "AssignmentResult",
    # service facade
    "SolveOptions",
    "MethodSpec",
    "DispatchSession",
    "SessionConfig",
    "ScenarioSpec",
    "run_scenario",
    "Assignment",
    # wire records
    "WIRE_VERSION",
    "OpenSession",
    "SubmitTask",
    "SubmitWorker",
    "Advance",
    "Drain",
    "Finish",
    "BudgetStatus",
    "AckReply",
    "BudgetReply",
    "AssignmentRecord",
    "AssignmentsReply",
    "FinishedReply",
    "ErrorReply",
    "ShedReply",
    "encode_record",
    "decode_record",
    # dispatch service
    "DispatchService",
    "ServiceClient",
    "ServiceConfig",
    # fault tolerance
    "FAULT_KINDS",
    "MASKED_FAULT_KINDS",
    "FaultPlan",
    "fault_injection",
    "set_fault_plan",
    "smoke_plan",
    "TenantJournal",
    "journal_tenants",
    # online dispatch
    "PoissonProcess",
    "RushHourProcess",
    "BurstyProcess",
    "TraceProcess",
    "StreamWorkload",
    "TaskArrival",
    "WorkerArrival",
    "WorkerDeparture",
    "MicroBatcher",
    "AdaptiveBatchController",
    "WorkerBudgetTracker",
    "ShardedFlushExecutor",
    "ShardSeedSchedule",
    "StreamConfig",
    "DispatchSimulator",
    "StreamRunner",
    "StreamReport",
    "StreamStats",
    # flush hot path
    "EngineWorkspace",
    "FlushSolverCache",
    # observability
    "Tracer",
    "NullTracer",
    "Span",
    "Stopwatch",
    "RollingQuantile",
    "Ewma",
    "WarmupZScore",
    "MetricsRegistry",
    "format_profile",
    "write_trace_jsonl",
    "write_metrics_prometheus",
    # errors
    "ReproError",
    "ConfigurationError",
    "InvalidInstanceError",
    "FlushBudgetError",
    "FlushTimeoutError",
    "InjectedFault",
    "JournalError",
    "BudgetExhaustedError",
    "MatchingError",
    "ConvergenceError",
    "DatasetError",
    "ServiceError",
]
