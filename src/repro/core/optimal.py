"""OPT: the offline optimal assignment (Hungarian on true utilities).

Section V notes a trusted platform could solve PA-TA exactly with the
Kuhn-Munkres algorithm; privately that is impractical (summed obfuscated
comparisons), which motivates PUCE/PGT.  We keep the exact solver as the
upper-bound reference used by the EPoS/EPoA analyses (Theorem VI.3) and as
a test oracle.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.result import AssignmentResult
from repro.obs.tracer import stopwatch
from repro.matching.bipartite import Matching
from repro.matching.hungarian import max_weight_matching
from repro.privacy.accountant import PrivacyLedger
from repro.simulation.instance import ProblemInstance

__all__ = ["OptimalSolver"]


class OptimalSolver:
    """Maximum-total-utility matching over the feasible pairs.

    Only pairs with positive utility ``v_i - f_d(d_ij)`` are eligible; a
    worker or task may stay unmatched (the paper's objective never forms
    unprofitable pairs).
    """

    name = "OPT"
    is_private = False

    def solve(
        self,
        instance: ProblemInstance,
        seed: int | np.random.Generator | None = None,
        options=None,
    ) -> AssignmentResult:
        with stopwatch() as watch:
            m, n = instance.num_tasks, instance.num_workers
            weights = np.full((m, n), -math.inf)
            for i, j in instance.feasible_pairs():
                weights[i, j] = instance.base_utility(i, j)
            index_match = max_weight_matching(weights) if m and n else {}
            pairs = {
                instance.tasks[i].id: instance.workers[j].id
                for i, j in index_match.items()
            }
        return AssignmentResult(
            method=self.name,
            instance=instance,
            matching=Matching(pairs),
            ledger=PrivacyLedger(),
            rounds=1,
            publishes=0,
            elapsed_seconds=watch.seconds,
        )
