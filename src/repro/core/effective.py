"""Effective obfuscated distance and effective privacy budget (Section V-A).

When a worker proposes to a task several times he publishes a *release set*
``DE = {(d_hat_1, eps_1), ..., (d_hat_u, eps_u)}``.  The server (and rival
workers) summarise it into a single comparable value: the maximum-
likelihood estimate of the true distance under independent Laplace noise,

    d_check = argmin_d  sum_k eps_k * |d_hat_k - d|,

i.e. a *weighted median* of the released values.  Because the minimiser can
be a whole segment, the paper restricts the domain to the released values
themselves; the chosen release's budget becomes the *effective privacy
budget* so the pair keeps supporting PCF comparisons.

Tie-breaking (under-specified in the paper, see DESIGN.md §3.2): among
releases attaining the minimum we prefer the largest budget (the most
accurate release), then the most recent.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, InvalidInstanceError
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["Release", "EffectivePair", "ReleaseSet", "effective_pair_of"]


@dataclass(frozen=True, slots=True)
class Release:
    """One published (obfuscated distance, privacy budget) pair."""

    value: float
    epsilon: float

    def __post_init__(self) -> None:
        if not self.epsilon > 0:
            raise ConfigurationError(f"release budget must be positive, got {self.epsilon}")


@dataclass(frozen=True, slots=True)
class EffectivePair:
    """The effective obfuscated distance and its effective budget."""

    distance: float
    epsilon: float


def effective_pair_of(releases: Iterable[Release]) -> EffectivePair:
    """Weighted-median MLE over ``releases`` restricted to released values.

    Raises
    ------
    InvalidInstanceError
        If ``releases`` is empty (an unproposed pair has no effective
        distance).
    """
    items = list(releases)
    if not items:
        raise InvalidInstanceError("effective pair of an empty release set is undefined")
    best_idx = -1
    best_obj = float("inf")
    for idx, candidate in enumerate(items):
        objective = sum(r.epsilon * abs(r.value - candidate.value) for r in items)
        if _improves(objective, idx, best_obj, best_idx, items):
            best_obj = objective
            best_idx = idx
    chosen = items[best_idx]
    return EffectivePair(chosen.value, chosen.epsilon)


def _improves(
    objective: float,
    idx: int,
    best_obj: float,
    best_idx: int,
    items: list[Release],
) -> bool:
    """Tie-break: lower objective, then larger budget, then more recent."""
    if best_idx < 0 or objective < best_obj - 1e-12:
        return True
    if objective > best_obj + 1e-12:
        return False
    current_best = items[best_idx]
    candidate = items[idx]
    if candidate.epsilon != current_best.epsilon:
        return candidate.epsilon > current_best.epsilon
    return idx > best_idx


class ReleaseSet:
    """Mutable, append-only release set for one worker-task pair.

    The effective pair is memoised and invalidated on append, since solvers
    query it many times between publishes.
    """

    __slots__ = ("_releases", "_cached")

    def __init__(self, releases: Iterable[Release] = ()):
        self._releases: list[Release] = list(releases)
        self._cached: EffectivePair | None = None

    def add(self, value: float, epsilon: float) -> Release:
        """Append a new published release and return it."""
        release = Release(float(value), float(epsilon))
        self._releases.append(release)
        self._cached = None
        return release

    def __len__(self) -> int:
        return len(self._releases)

    def __bool__(self) -> bool:
        return bool(self._releases)

    def __iter__(self) -> Iterator[Release]:
        return iter(self._releases)

    @property
    def releases(self) -> tuple[Release, ...]:
        return tuple(self._releases)

    def effective_pair(self) -> EffectivePair:
        """The effective (distance, budget) of the published releases."""
        if self._cached is None:
            self._cached = effective_pair_of(self._releases)
        return self._cached

    def effective_pair_with(self, value: float, epsilon: float) -> EffectivePair:
        """The effective pair *if* ``(value, epsilon)`` were also published.

        Used by workers to evaluate a tentative proposal without leaking
        (nothing is added to the set).
        """
        return effective_pair_of([*self._releases, Release(float(value), float(epsilon))])

    def total_spend(self) -> float:
        """Total published budget of this pair (``b_ij . eps_ij``)."""
        return sum(r.epsilon for r in self._releases)
