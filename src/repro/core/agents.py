"""Worker-local state: true distances, budget consumption, tentative draws.

The division of knowledge follows the threat model: a
:class:`WorkerAgent` holds the worker's *private* inputs (his true
distances and unspent budget vector) and performs the only operations that
touch them — evaluating a tentative proposal and, if the worker decides to
go ahead, publishing it to the :class:`~repro.simulation.server.Server`.

Tentative noise draws are **memoized per (task, budget-index)** (DESIGN.md
§3.4): a worker who evaluates a proposal, declines, and re-evaluates it
later sees the same would-be release.  This keeps PGT's utilities fixed
between publishes — the property its potential-game convergence argument
needs — and reproduces the deterministic effective-pair timeline of the
paper's Table VIII.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import BudgetExhaustedError
from repro.core.budgets import PairBudget
from repro.core.effective import EffectivePair
from repro.privacy.laplace import sample_laplace
from repro.simulation.instance import ProblemInstance
from repro.simulation.server import Server

__all__ = ["TentativeProposal", "WorkerAgent", "build_agents"]


@dataclass(frozen=True, slots=True)
class TentativeProposal:
    """What a worker's next proposal to one task would publish."""

    task_index: int
    epsilon: float
    obfuscated_distance: float
    effective: EffectivePair
    budget_index: int


class WorkerAgent:
    """The worker-side of the protocol for one worker."""

    __slots__ = (
        "index",
        "worker",
        "tasks_in_range",
        "_instance",
        "_rng",
        "_pair_budgets",
        "_draws",
        "_tentative_cache",
        "spent",
    )

    def __init__(self, index: int, instance: ProblemInstance, rng: np.random.Generator):
        self.index = index
        self.worker = instance.workers[index]
        self.tasks_in_range = instance.reachable[index]
        self._instance = instance
        self._rng = rng
        # Budget vectors read straight off the worker's CSR slice: going
        # through ``instance.budget_vector`` would materialise the whole
        # O(P) dict view just to build one agent — a real cost when every
        # streaming micro-flush builds a fresh agent set.
        pairs = instance.pairs
        sl = pairs.worker_slice(index)
        self._pair_budgets = {
            i: PairBudget(pairs.budget_vector(p))
            for p, i in zip(range(sl.start, sl.stop), self.tasks_in_range)
        }
        self._draws: dict[tuple[int, int], float] = {}
        # Only this agent publishes toward his own pairs, so the tentative
        # proposal for a task stays valid until he publishes it (which
        # advances the budget index); memoising it by task makes repeated
        # best-response scans a single dict hit.
        self._tentative_cache: dict[int, TentativeProposal] = {}
        self.spent = 0.0  # total published budget across all tasks

    def true_distance(self, task_index: int) -> float:
        """The worker's private distance to a task in his range."""
        return self._instance.distance(task_index, self.index)

    def preload_draw(self, task_index: int, budget_index: int, value: float) -> None:
        """Pin the obfuscated distance a future proposal will release.

        Test/replay support: the paper's worked examples (Tables IV-VIII)
        fix the released values; preloading them lets the solvers replay
        those traces deterministically.
        """
        self._draws[(task_index, budget_index)] = float(value)
        self._tentative_cache.pop(task_index, None)

    def pair_budget(self, task_index: int) -> PairBudget:
        return self._pair_budgets[task_index]

    def can_propose(self, task_index: int) -> bool:
        """Whether unspent budget remains for the pair."""
        return not self._pair_budgets[task_index].exhausted

    def peek_proposal(self, task_index: int, server: Server) -> TentativeProposal:
        """Evaluate (without publishing) the worker's next proposal.

        The obfuscated distance is drawn once per budget index and cached;
        the effective pair is what the release board would show after the
        publish.

        Raises
        ------
        BudgetExhaustedError
            If the pair's budget vector is fully spent.
        """
        cached = self._tentative_cache.get(task_index)
        if cached is not None:
            return cached
        budget = self._pair_budgets[task_index]
        epsilon = budget.peek()
        u = budget.next_index
        key = (task_index, u)
        if key not in self._draws:
            noise = float(sample_laplace(self._rng, epsilon))
            self._draws[key] = self.true_distance(task_index) + noise
        obfuscated = self._draws[key]
        effective = server.release_set(task_index, self.index).effective_pair_with(
            obfuscated, epsilon
        )
        proposal = TentativeProposal(task_index, epsilon, obfuscated, effective, u)
        self._tentative_cache[task_index] = proposal
        return proposal

    def try_peek(self, task_index: int, server: Server) -> TentativeProposal | None:
        """:meth:`peek_proposal`, or ``None`` when the budget is exhausted.

        The hot path of the best-response loops: a cached evaluation is a
        single dictionary hit.
        """
        cached = self._tentative_cache.get(task_index)
        if cached is not None:
            return cached
        if self._pair_budgets[task_index].exhausted:
            return None
        return self.peek_proposal(task_index, server)

    def publish(self, proposal: TentativeProposal, server: Server) -> None:
        """Commit a previously peeked proposal: spend the budget, go public."""
        budget = self._pair_budgets[proposal.task_index]
        if budget.next_index != proposal.budget_index:
            raise BudgetExhaustedError(
                f"stale proposal: budget index {proposal.budget_index} already spent"
            )
        budget.consume()
        self._tentative_cache.pop(proposal.task_index, None)
        server.publish(
            proposal.task_index, self.index, proposal.obfuscated_distance, proposal.epsilon
        )
        self.spent += proposal.epsilon


def build_agents(instance: ProblemInstance, rng: np.random.Generator) -> list[WorkerAgent]:
    """One agent per worker, sharing a single noise stream."""
    return [WorkerAgent(j, instance, rng) for j in range(instance.num_workers)]
