"""Assignment results and the paper's evaluation measures.

:class:`AssignmentResult` carries the matching, the privacy audit trail and
run statistics, and evaluates the Section VII-C measures:

* **average utility** ``U_AVG = sum_{(i,j) in M} U_j(i) / |M|`` where
  ``U_j(i)`` uses the *true* distance and, for private methods, the
  worker's realised privacy spend;
* **average travel distance** ``D_AVG`` over matched pairs.

The relative deviations (``U_RD``, ``D_RD``) compare a private result to
its non-private counterpart and live in
:mod:`repro.simulation.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.effective import ReleaseSet
from repro.matching.bipartite import Matching
from repro.privacy.accountant import PrivacyLedger
from repro.simulation.instance import ProblemInstance

__all__ = ["MatchedPair", "AssignmentResult"]


@dataclass(frozen=True, slots=True)
class MatchedPair:
    """One matched (task, worker) pair with its evaluated measures."""

    task_index: int
    worker_index: int
    task_id: int
    worker_id: int
    distance: float
    utility: float


@dataclass
class AssignmentResult:
    """Outcome of one solver run on one instance."""

    method: str
    instance: ProblemInstance
    matching: Matching
    ledger: PrivacyLedger
    rounds: int = 0
    publishes: int = 0
    elapsed_seconds: float = 0.0
    #: The world-readable release board at the end of the run:
    #: ``{(task_id, worker_id): ReleaseSet}``.  Empty for non-private
    #: methods.  This is *public* state under the paper's threat model —
    #: it is what the trilateration attacker consumes.
    release_board: dict[tuple[int, int], ReleaseSet] = field(default_factory=dict)
    _pairs: tuple[MatchedPair, ...] | None = field(default=None, repr=False)

    def matched_pairs(self) -> tuple[MatchedPair, ...]:
        """Matched pairs with true distance and realised utility.

        The utility of pair (i, j) is Eq. 2 with the pair's cumulative
        *published* budget: ``v_i - f_d(d_ij) - f_p(spend_ij)`` (pair-level
        spend semantics pinned by Table IV; DESIGN.md §3.1).  For
        non-private methods the ledger is empty and the spend term is 0.
        """
        if self._pairs is None:
            task_index_of = {t.id: idx for idx, t in enumerate(self.instance.tasks)}
            worker_index_of = {w.id: idx for idx, w in enumerate(self.instance.workers)}
            pairs = []
            for task_id, worker_id in self.matching:
                i = task_index_of[task_id]
                j = worker_index_of[worker_id]
                distance = self.instance.distance(i, j)
                spend = self.ledger.pair_spend(worker_id, task_id).total
                utility = self.instance.model.utility(
                    self.instance.tasks[i].value, distance, spend
                )
                pairs.append(MatchedPair(i, j, task_id, worker_id, distance, utility))
            self._pairs = tuple(sorted(pairs, key=lambda p: p.task_index))
        return self._pairs

    def __iter__(self) -> Iterator[MatchedPair]:
        return iter(self.matched_pairs())

    @property
    def matched_count(self) -> int:
        return len(self.matching)

    @property
    def total_utility(self) -> float:
        return sum(p.utility for p in self.matched_pairs())

    @property
    def total_distance(self) -> float:
        return sum(p.distance for p in self.matched_pairs())

    @property
    def average_utility(self) -> float:
        """``U_AVG``; 0.0 for an empty matching (no pairs to average)."""
        pairs = self.matched_pairs()
        return sum(p.utility for p in pairs) / len(pairs) if pairs else 0.0

    @property
    def average_distance(self) -> float:
        """``D_AVG``; 0.0 for an empty matching."""
        pairs = self.matched_pairs()
        return sum(p.distance for p in pairs) / len(pairs) if pairs else 0.0

    @property
    def total_privacy_spend(self) -> float:
        """Total published budget across all workers (matched or not)."""
        return self.ledger.total_spend()

    def worker_ldp_bound(self, worker_id: int) -> float:
        """The Theorem V.2 / VI.4 LDP level realised for one worker."""
        worker = next(w for w in self.instance.workers if w.id == worker_id)
        return self.ledger.worker_ldp_bound(worker_id, worker.radius)
