"""Method registry: names to solver factories, and baseline pairings.

The experiment harness addresses methods by the paper's names (Table IX).
``NON_PRIVATE_COUNTERPART`` pairs each private method with the baseline its
relative deviations are computed against (Section VII-C).
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.core.nonprivate import DCESolver, GreedySolver, UCESolver
from repro.core.optimal import OptimalSolver
from repro.core.pdce import PDCESolver
from repro.core.pgt import GTSolver, PGTSolver
from repro.core.puce import PUCESolver
from repro.errors import ConfigurationError

__all__ = ["Solver", "make_solver", "available_methods", "NON_PRIVATE_COUNTERPART"]


class Solver(Protocol):
    """The interface every method implements."""

    name: str
    is_private: bool

    def solve(self, instance, seed=None): ...


_FACTORIES: dict[str, Callable[[], Solver]] = {
    "PUCE": lambda: PUCESolver(),
    "PUCE-nppcf": lambda: PUCESolver(use_ppcf=False),
    "PDCE": lambda: PDCESolver(),
    "PDCE-nppcf": lambda: PDCESolver(use_ppcf=False),
    "PGT": lambda: PGTSolver(),
    "UCE": lambda: UCESolver(),
    "DCE": lambda: DCESolver(),
    "GT": lambda: GTSolver(),
    "GRD": lambda: GreedySolver(),
    "OPT": lambda: OptimalSolver(),
}

#: Private method -> the non-private baseline used for U_RD / D_RD.
NON_PRIVATE_COUNTERPART: dict[str, str] = {
    "PUCE": "UCE",
    "PUCE-nppcf": "UCE",
    "PDCE": "DCE",
    "PDCE-nppcf": "DCE",
    "PGT": "GT",
}


def make_solver(name: str) -> Solver:
    """Instantiate a method by its Table IX name.

    Raises
    ------
    ConfigurationError
        For unknown names; the message lists the valid ones.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown method {name!r}; available: {', '.join(sorted(_FACTORIES))}"
        ) from None
    return factory()


def available_methods() -> tuple[str, ...]:
    """All registered method names, sorted."""
    return tuple(sorted(_FACTORIES))
