"""Method registry: names to solver factories, and baseline pairings.

The experiment harness addresses methods by the paper's names (Table IX).
``NON_PRIVATE_COUNTERPART`` pairs each private method with the baseline its
relative deviations are computed against (Section VII-C).

Configured variants beyond the pre-registered names are addressed by
:class:`~repro.api.methods.MethodSpec` strings — ``make_solver`` accepts
``"PDCE(ppcf=off)"`` and friends, and a
:class:`~repro.api.options.SolveOptions` to fill in engine knobs
(``sweep``, ``max_rounds``) uniformly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol

from repro.core.nonprivate import DCESolver, GreedySolver, UCESolver
from repro.core.optimal import OptimalSolver
from repro.core.pdce import PDCESolver
from repro.core.pgt import GTSolver, PGTSolver
from repro.core.puce import PUCESolver
from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.api.methods import MethodSpec
    from repro.api.options import SolveOptions

__all__ = ["Solver", "make_solver", "available_methods", "NON_PRIVATE_COUNTERPART"]


class Solver(Protocol):
    """The interface every method implements."""

    name: str
    is_private: bool

    def solve(self, instance, seed=None, options=None): ...


_FACTORIES: dict[str, Callable[[], Solver]] = {
    "PUCE": lambda: PUCESolver(),
    "PUCE-nppcf": lambda: PUCESolver(use_ppcf=False),
    "PDCE": lambda: PDCESolver(),
    "PDCE-nppcf": lambda: PDCESolver(use_ppcf=False),
    "PGT": lambda: PGTSolver(),
    "UCE": lambda: UCESolver(),
    "DCE": lambda: DCESolver(),
    "GT": lambda: GTSolver(),
    "GRD": lambda: GreedySolver(),
    "OPT": lambda: OptimalSolver(),
}

#: Private method -> the non-private baseline used for U_RD / D_RD.
NON_PRIVATE_COUNTERPART: dict[str, str] = {
    "PUCE": "UCE",
    "PUCE-nppcf": "UCE",
    "PDCE": "DCE",
    "PDCE-nppcf": "DCE",
    "PGT": "GT",
}


def make_solver(
    name: "str | MethodSpec", options: "SolveOptions | None" = None
) -> Solver:
    """Instantiate a method by Table IX name or method-spec string.

    Plain registered names (``"PUCE"``) without ``options`` take the
    factory path unchanged; spec strings (``"PDCE(ppcf=off)"``),
    :class:`~repro.api.methods.MethodSpec` objects, and any call with
    ``options`` route through the spec layer so engine knobs apply
    uniformly.

    Raises
    ------
    ConfigurationError
        For unknown names; the message lists the valid ones.
    """
    if not isinstance(name, str) or options is not None or "(" in name:
        from repro.api.methods import MethodSpec

        return MethodSpec.parse(name).make(options)
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown method {name!r}; available: {', '.join(sorted(_FACTORIES))}"
        ) from None
    return factory()


def available_methods() -> tuple[str, ...]:
    """All registered method names, sorted."""
    return tuple(sorted(_FACTORIES))
