"""PDCE — Private Distance Conflict-Elimination (the Section VII baseline).

The paper's main competitor: Wang et al.'s distance-based allocation,
altered exactly as Section VII-B describes — workers propose only inside
their service areas and the real-distance gate uses PPCF.  Its objective is
to minimise total travel distance, so its decisions ignore task values and
privacy costs entirely (which is precisely why PUCE beats it on utility).

``use_ppcf=False`` gives the PDCE-nppcf ablation of Table IX.
"""

from __future__ import annotations

from repro.core.engine import ConflictEliminationSolver, EliminationPolicy

__all__ = ["PDCESolver"]


class PDCESolver(ConflictEliminationSolver):
    """Private Distance Conflict-Elimination."""

    def __init__(
        self,
        use_ppcf: bool = True,
        max_rounds: int = 100_000,
        sweep: str = "auto",
        sweep_auto_threshold: int | None = None,
    ):
        name = "PDCE" if use_ppcf else "PDCE-nppcf"
        super().__init__(
            EliminationPolicy(
                name=name, objective="distance", private=True, use_ppcf=use_ppcf
            ),
            max_rounds=max_rounds,
            sweep=sweep,
            sweep_auto_threshold=sweep_auto_threshold,
        )
