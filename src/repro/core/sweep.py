"""Vectorized WorkerProposal sweep (Algorithm 1 over pair arrays).

:class:`VectorSweep` evaluates one proposal round for *every* not-winning
worker at once: the budget-remaining, positive-utility and beats-winner
gates of Algorithm 1 become boolean masks over the instance's CSR pair
arrays (:class:`~repro.simulation.pairs.PairArrays`), and only the pairs
that survive gating drop to the scalar per-pair path that actually
publishes a private release.

Exactness contract (what the equivalence property tests pin):

* **Identical floats.**  Every gate is computed with the same IEEE
  operations, in the same order, as the scalar reference sweep
  (``sweep="scalar"`` on the engine): utilities as ``(v - f_d(d)) -
  f_p(spend)``, spends as left-to-right prefix sums, PPCF through the
  same ``exp`` formula.
* **Identical noise stream.**  The scalar path draws a memoized Laplace
  noise for every pair that passes the budget gate — *before* the
  utility/winner gates — in (sorted worker, reachable-order) order.  The
  vectorized sweep batches those draws in exactly that order (flat CSR
  order); numpy fills array draws element-by-element from the generator,
  so the stream, and therefore every published release and the Table VIII
  timeline, is unchanged.  Draws stay memoized per (pair, budget index),
  which also preserves PGT's fixed-utility property for the shared agent
  machinery.
* **Scalar-publish fallback.**  The tentative *effective* pair of a
  re-proposing pair is a weighted median over its release set; that, the
  PCF gate against the winner, and the publish itself run per-pair on the
  server model — the boundary where array code hands back to the
  worker-local scalar path.

Candidates leave the sweep as a :class:`ProposalBatch` — flat arrays in
publish (CSR) order, never materialised as per-pair ``Candidate`` objects
— and the engine's array-form WinnerChosen consumes them directly.  The
scalar publish boundary therefore no longer includes candidate ranking or
winner propagation; only the release-set operations above remain scalar.

Buffers come from an optional :class:`~repro.core.workspace.
EngineWorkspace` so repeated flushes over similar instances reuse one
arena instead of allocating eight arrays per solve; a reused buffer is
re-filled with the same initial values a fresh allocation would carry, so
the workspace is invisible to results.
"""

from __future__ import annotations

import numpy as np

from repro.core.compare import pcf
from repro.core.effective import EffectivePair
from repro.core.workspace import EngineWorkspace
from repro.privacy.laplace import laplace_cdf_array
from repro.simulation.instance import ProblemInstance
from repro.simulation.server import Server

__all__ = ["ProposalBatch", "VectorSweep", "apply_value_fn", "apply_value_fn_inverse"]


def apply_value_fn(fn, xs: np.ndarray) -> np.ndarray:
    """Elementwise ``fn`` over an array, preferring a vectorized method.

    Falls back to per-element scalar calls for custom value functions, so
    any :class:`~repro.core.utility.ValueFunction` works unvectorized.
    """
    apply = getattr(fn, "apply", None)
    if apply is not None:
        return apply(xs)
    return np.fromiter((fn(float(x)) for x in xs), dtype=np.float64, count=len(xs))


def apply_value_fn_inverse(fn, vs: np.ndarray) -> np.ndarray:
    """Elementwise ``fn.inverse`` over an array (see :func:`apply_value_fn`)."""
    apply_inverse = getattr(fn, "apply_inverse", None)
    if apply_inverse is not None:
        return apply_inverse(vs)
    return np.fromiter(
        (fn.inverse(float(v)) for v in vs), dtype=np.float64, count=len(vs)
    )


class ProposalBatch:
    """One round's surviving candidates as flat arrays (publish order).

    The array-form counterpart of the scalar sweep's
    ``{task: [Candidate, ...]}`` mapping: row ``r`` says worker
    ``worker[r]`` stands as a candidate for task ``task[r]`` with
    comparison key ``key[r]``, via flat CSR pair ``pair[r]``.  Rows are in
    publish order — flat CSR order after gating — which is exactly the
    first-appearance order the mapping form's insertion order encodes,
    so the engine's WinnerChosen can reproduce the mapping path's
    decision order without ever building the dict.
    """

    __slots__ = ("pair", "task", "worker", "key")

    def __init__(
        self, pair: np.ndarray, task: np.ndarray, worker: np.ndarray, key: np.ndarray
    ):
        self.pair = pair
        self.task = task
        self.worker = worker
        self.key = key

    def __len__(self) -> int:
        return int(self.task.shape[0])

    def __bool__(self) -> bool:
        return self.task.shape[0] > 0


def _alloc(
    workspace: EngineWorkspace | None, name: str, size: int, dtype, fill
) -> np.ndarray:
    """A filled 1-D buffer: arena-backed when a workspace is leased."""
    if workspace is None:
        return np.full(size, fill, dtype=dtype)
    return workspace.request(name, size, dtype, fill)


class VectorSweep:
    """Mutable array state of one engine run's proposal sweeps."""

    def __init__(
        self,
        instance: ProblemInstance,
        server: Server,
        objective: str,
        use_ppcf: bool,
        private: bool,
        rng: np.random.Generator | None,
        workspace: EngineWorkspace | None = None,
    ):
        self.instance = instance
        self.server = server
        self.objective = objective
        self.use_ppcf = use_ppcf
        self.private = private
        self.rng = rng
        pairs = instance.pairs
        num_pairs = pairs.num_pairs
        ws = workspace

        # Worker-pool and winner state (satellite of the array refactor:
        # maintained incrementally instead of re-sorted / re-scanned).
        self.not_winning = _alloc(ws, "not_winning", instance.num_workers, bool, True)
        self.winner_pair = _alloc(ws, "winner_pair", instance.num_tasks, np.int64, -1)

        # Per-pair consumption state (the array form of PairBudget).
        self.used = _alloc(ws, "used", num_pairs, np.int64, 0)
        # Memoized tentative draw for the pair's *current* budget index.
        self.draw_value = _alloc(ws, "draw_value", num_pairs, np.float64, 0.0)
        self.draw_index = _alloc(ws, "draw_index", num_pairs, np.int64, -1)
        # Release-board summary mirrored per pair (matches the server's
        # memoized ReleaseSet.effective_pair()).
        self.eff_distance = _alloc(ws, "eff_distance", num_pairs, np.float64, 0.0)
        self.eff_epsilon = _alloc(ws, "eff_epsilon", num_pairs, np.float64, 0.0)
        self.release_count = _alloc(ws, "release_count", num_pairs, np.int64, 0)

    # -- winner bookkeeping -------------------------------------------------

    def note_assign_pair(
        self, task_index: int, pair_pos: int, vacated: int | None
    ) -> None:
        """Mirror one ``server.assign`` into the winner-pair index.

        ``pair_pos`` is the winner's flat CSR pair — the sweeps carry it
        through :class:`ProposalBatch`, so no ``(task, worker) -> pair``
        table lookup (or its lazy O(P) construction) ever happens on the
        vectorized path.
        """
        if vacated is not None:
            self.winner_pair[vacated] = -1
        self.winner_pair[task_index] = pair_pos

    # -- one proposal round -------------------------------------------------

    def proposal_round(self) -> ProposalBatch:
        """All of Algorithm 1 for one round; returns the candidate batch."""
        pairs = self.instance.pairs
        active = self.not_winning[pairs.worker]
        if self.private:
            active &= self.used < pairs.budget_len
        idx = np.flatnonzero(active)
        if idx.size == 0:
            return ProposalBatch(idx, idx, idx, idx.astype(np.float64))
        if self.private:
            return self._private_round(idx)
        return self._exact_round(idx)

    # -- non-private: fully array-evaluated ---------------------------------

    def _exact_round(self, idx: np.ndarray) -> ProposalBatch:
        pairs = self.instance.pairs
        model = self.instance.model
        task_i = pairs.task[idx]
        d_real = pairs.distance[idx]

        if self.objective == "utility":
            values = pairs.task_value[task_i]
            # model.utility(v, d, 0.0) evaluates (v - f_d(d)) - f_p(0.0).
            utility = (values - apply_value_fn(model.f_d, d_real)) - model.f_p(0.0)
            keep = utility > 0.0
            idx, task_i, d_real = idx[keep], task_i[keep], d_real[keep]
            values = values[keep]
            keys = d_real - apply_value_fn_inverse(model.f_d, values)
        else:
            keys = d_real

        contested = self.winner_pair[task_i] >= 0
        if np.any(contested):
            wp = self.winner_pair[task_i[contested]]
            win_d = pairs.distance[wp]
            if self.objective == "utility":
                win_keys = win_d - apply_value_fn_inverse(
                    model.f_d, pairs.task_value[task_i[contested]]
                )
            else:
                win_keys = win_d
            beats = np.ones(idx.shape[0], dtype=bool)
            beats[contested] = keys[contested] < win_keys
            idx, task_i, keys = idx[beats], task_i[beats], keys[beats]

        # Rows stay in flat CSR order — the same first-appearance order
        # the scalar sweep's proposal dict encodes — and are *not* sorted
        # here: the engine's array WinnerChosen sorts per task group once,
        # incumbents included.
        return ProposalBatch(idx, task_i, self.instance.pairs.worker[idx], keys)

    # -- private: array gates, scalar publishes -----------------------------

    def _private_round(self, idx: np.ndarray) -> ProposalBatch:
        pairs = self.instance.pairs
        model = self.instance.model
        used_now = self.used[idx]

        # Memoized tentative draws, batched in the scalar path's order
        # (flat CSR order == sorted worker, reachable order).  The scalar
        # path draws for every budget-gate-passing pair before any further
        # gate, so the batch must too — that is what keeps the shared
        # noise stream identical.
        stale = self.draw_index[idx] != used_now
        fresh = idx[stale]
        if fresh.size:
            eps_fresh = pairs.budget_matrix[fresh, self.used[fresh]]
            noise = self.rng.laplace(loc=0.0, scale=1.0 / eps_fresh)
            self.draw_value[fresh] = pairs.distance[fresh] + noise
            self.draw_index[fresh] = self.used[fresh]

        next_eps = pairs.budget_matrix[idx, used_now]
        pair_spend = pairs.budget_prefix[idx, used_now] + next_eps
        task_i = pairs.task[idx]
        d_real = pairs.distance[idx]

        if self.objective == "utility":
            values = pairs.task_value[task_i]
            utility = (values - apply_value_fn(model.f_d, d_real)) - model.f_p.apply(
                pair_spend
            )
            keep = utility > 0.0
            idx, task_i, d_real = idx[keep], task_i[keep], d_real[keep]
            next_eps, pair_spend = next_eps[keep], pair_spend[keep]
            own_value = values[keep] - model.f_p.apply(pair_spend)
        else:
            own_value = np.zeros(idx.shape[0])

        contested = self.winner_pair[task_i] >= 0
        rival = np.zeros(idx.shape[0])
        if np.any(contested):
            wp = self.winner_pair[task_i[contested]]
            if self.objective == "utility":
                winner_value = pairs.task_value[
                    task_i[contested]
                ] - model.f_p.apply(pairs.budget_prefix[wp, self.used[wp]])
                rival[contested] = (
                    self.eff_distance[wp]
                    + apply_value_fn_inverse(model.f_d, own_value[contested])
                ) - apply_value_fn_inverse(model.f_d, winner_value)
            else:
                rival[contested] = self.eff_distance[wp]
            if self.use_ppcf:
                # Algorithm 1 line 12: fail when PPCF <= 1/2.
                ppcf_val = laplace_cdf_array(
                    rival[contested] - d_real[contested], self.eff_epsilon[wp]
                )
                survive = np.ones(idx.shape[0], dtype=bool)
                survive[contested] = ppcf_val > 0.5
                idx, task_i, contested = idx[survive], task_i[survive], contested[survive]
                next_eps, own_value = next_eps[survive], own_value[survive]
                rival = rival[survive]

        return self._publish_survivors(idx, task_i, contested, next_eps, own_value, rival)

    def _publish_survivors(
        self,
        idx: np.ndarray,
        task_i: np.ndarray,
        contested: np.ndarray,
        next_eps: np.ndarray,
        own_value: np.ndarray,
        rival: np.ndarray,
    ) -> ProposalBatch:
        """Scalar tail of the sweep: PCF gate, publish, candidate keys.

        Everything that must see a release set — the tentative effective
        pair of a re-proposing worker, the PCF comparison, and the publish
        itself — stays on the per-pair scalar path so the server-side
        weighted-median semantics (and their tie-breaks) are untouched.
        Published rows accumulate into a :class:`ProposalBatch` in publish
        order.
        """
        pairs = self.instance.pairs
        model = self.instance.model
        server = self.server
        utility_objective = self.objective == "utility"
        flat = idx.tolist()
        tasks = task_i.tolist()
        workers = pairs.worker[idx].tolist()
        epsilons = next_eps.tolist()
        draws = self.draw_value[idx].tolist()
        contested_flags = contested.tolist()
        rivals = rival.tolist()
        values = own_value.tolist()
        has_releases = (self.release_count[idx] > 0).tolist()
        out_pair: list[int] = []
        out_task: list[int] = []
        out_worker: list[int] = []
        out_key: list[float] = []
        for pos, p in enumerate(flat):
            i = tasks[pos]
            j = workers[pos]
            epsilon = epsilons[pos]
            draw = draws[pos]
            if has_releases[pos]:
                effective = server.release_set(i, j).effective_pair_with(draw, epsilon)
            else:
                effective = EffectivePair(draw, epsilon)
            if contested_flags[pos]:
                # Lines 13-15: PCF on the would-be new effective pair.
                if (
                    pcf(
                        effective.distance,
                        rivals[pos],
                        effective.epsilon,
                        float(self.eff_epsilon[self.winner_pair[i]]),
                    )
                    <= 0.5
                ):
                    continue
            server.publish(i, j, draw, epsilon)
            self.used[p] += 1
            # The release board's post-publish effective pair is the
            # weighted median over exactly the releases `effective` was
            # computed from, so no recomputation is needed.
            self.eff_distance[p] = effective.distance
            self.eff_epsilon[p] = effective.epsilon
            self.release_count[p] += 1
            if utility_objective:
                key = effective.distance - model.distance_equivalent(values[pos])
            else:
                key = effective.distance
            out_pair.append(p)
            out_task.append(i)
            out_worker.append(j)
            out_key.append(key)
        return ProposalBatch(
            np.asarray(out_pair, dtype=np.int64),
            np.asarray(out_task, dtype=np.int64),
            np.asarray(out_worker, dtype=np.int64),
            np.asarray(out_key, dtype=np.float64),
        )
