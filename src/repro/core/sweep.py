"""Vectorized WorkerProposal sweep (Algorithm 1 over pair arrays).

:class:`VectorSweep` evaluates one proposal round for *every* not-winning
worker at once: the budget-remaining, positive-utility and beats-winner
gates of Algorithm 1 become boolean masks over the instance's CSR pair
arrays (:class:`~repro.simulation.pairs.PairArrays`), and only the pairs
that survive gating drop to the scalar per-pair path that actually
publishes a private release.

Exactness contract (what the equivalence property tests pin):

* **Identical floats.**  Every gate is computed with the same IEEE
  operations, in the same order, as the scalar reference sweep
  (``sweep="scalar"`` on the engine): utilities as ``(v - f_d(d)) -
  f_p(spend)``, spends as left-to-right prefix sums, PPCF through the
  same ``exp`` formula.
* **Identical noise stream.**  The scalar path draws a memoized Laplace
  noise for every pair that passes the budget gate — *before* the
  utility/winner gates — in (sorted worker, reachable-order) order.  The
  vectorized sweep batches those draws in exactly that order (flat CSR
  order); numpy fills array draws element-by-element from the generator,
  so the stream, and therefore every published release and the Table VIII
  timeline, is unchanged.  Draws stay memoized per (pair, budget index),
  which also preserves PGT's fixed-utility property for the shared agent
  machinery.
* **Scalar-publish fallback.**  The tentative *effective* pair of a
  re-proposing pair is a weighted median over its release set; that, the
  PCF gate against the winner, and the publish itself run per-pair on the
  server model — the boundary where array code hands back to the
  worker-local scalar path.
"""

from __future__ import annotations

import numpy as np

from repro.core.cea import Candidate
from repro.core.compare import pcf
from repro.core.effective import EffectivePair
from repro.privacy.laplace import laplace_cdf_array
from repro.simulation.instance import ProblemInstance
from repro.simulation.server import Server

__all__ = ["VectorSweep", "apply_value_fn", "apply_value_fn_inverse"]


def apply_value_fn(fn, xs: np.ndarray) -> np.ndarray:
    """Elementwise ``fn`` over an array, preferring a vectorized method.

    Falls back to per-element scalar calls for custom value functions, so
    any :class:`~repro.core.utility.ValueFunction` works unvectorized.
    """
    apply = getattr(fn, "apply", None)
    if apply is not None:
        return apply(xs)
    return np.fromiter((fn(float(x)) for x in xs), dtype=np.float64, count=len(xs))


def apply_value_fn_inverse(fn, vs: np.ndarray) -> np.ndarray:
    """Elementwise ``fn.inverse`` over an array (see :func:`apply_value_fn`)."""
    apply_inverse = getattr(fn, "apply_inverse", None)
    if apply_inverse is not None:
        return apply_inverse(vs)
    return np.fromiter(
        (fn.inverse(float(v)) for v in vs), dtype=np.float64, count=len(vs)
    )


class VectorSweep:
    """Mutable array state of one engine run's proposal sweeps."""

    def __init__(
        self,
        instance: ProblemInstance,
        server: Server,
        objective: str,
        use_ppcf: bool,
        private: bool,
        rng: np.random.Generator | None,
    ):
        self.instance = instance
        self.server = server
        self.objective = objective
        self.use_ppcf = use_ppcf
        self.private = private
        self.rng = rng
        pairs = instance.pairs
        num_pairs = pairs.num_pairs

        # Worker-pool and winner state (satellite of the array refactor:
        # maintained incrementally instead of re-sorted / re-scanned).
        self.not_winning = np.ones(instance.num_workers, dtype=bool)
        self.winner_pair = np.full(instance.num_tasks, -1, dtype=np.int64)

        # Per-pair consumption state (the array form of PairBudget).
        self.used = np.zeros(num_pairs, dtype=np.int64)
        # Memoized tentative draw for the pair's *current* budget index.
        self.draw_value = np.zeros(num_pairs, dtype=np.float64)
        self.draw_index = np.full(num_pairs, -1, dtype=np.int64)
        # Release-board summary mirrored per pair (matches the server's
        # memoized ReleaseSet.effective_pair()).
        self.eff_distance = np.zeros(num_pairs, dtype=np.float64)
        self.eff_epsilon = np.zeros(num_pairs, dtype=np.float64)
        self.release_count = np.zeros(num_pairs, dtype=np.int64)

    # -- winner bookkeeping -------------------------------------------------

    def note_assign(self, task_index: int, worker_index: int, vacated: int | None) -> None:
        """Mirror one ``server.assign`` into the winner-pair index."""
        if vacated is not None:
            self.winner_pair[vacated] = -1
        self.winner_pair[task_index] = self.instance.pair_index(task_index, worker_index)

    # -- one proposal round -------------------------------------------------

    def proposal_round(self) -> dict[int, list[Candidate]]:
        """All of Algorithm 1 for one round; returns per-task candidates."""
        pairs = self.instance.pairs
        active = self.not_winning[pairs.worker]
        if self.private:
            active &= self.used < pairs.budget_len
        idx = np.flatnonzero(active)
        if idx.size == 0:
            return {}
        if self.private:
            return self._private_round(idx)
        return self._exact_round(idx)

    # -- non-private: fully array-evaluated ---------------------------------

    def _exact_round(self, idx: np.ndarray) -> dict[int, list[Candidate]]:
        pairs = self.instance.pairs
        model = self.instance.model
        task_i = pairs.task[idx]
        d_real = pairs.distance[idx]

        if self.objective == "utility":
            values = pairs.task_value[task_i]
            # model.utility(v, d, 0.0) evaluates (v - f_d(d)) - f_p(0.0).
            utility = (values - apply_value_fn(model.f_d, d_real)) - model.f_p(0.0)
            keep = utility > 0.0
            idx, task_i, d_real = idx[keep], task_i[keep], d_real[keep]
            values = values[keep]
            keys = d_real - apply_value_fn_inverse(model.f_d, values)
        else:
            keys = d_real

        contested = self.winner_pair[task_i] >= 0
        if np.any(contested):
            wp = self.winner_pair[task_i[contested]]
            win_d = pairs.distance[wp]
            if self.objective == "utility":
                win_keys = win_d - apply_value_fn_inverse(
                    model.f_d, pairs.task_value[task_i[contested]]
                )
            else:
                win_keys = win_d
            beats = np.ones(idx.shape[0], dtype=bool)
            beats[contested] = keys[contested] < win_keys
            idx, task_i, keys = idx[beats], task_i[beats], keys[beats]

        # Emit per-task lists already sorted by (key, worker) so the
        # WinnerChosen step can skip its per-task sorts; the dict's key
        # *insertion* order still follows flat CSR order — the same
        # first-appearance order the scalar sweep produces — because the
        # decision loop's tie-behaviour depends on it.
        workers = self.instance.pairs.worker[idx]
        tasks = task_i.tolist()
        proposals: dict[int, list[Candidate]] = {}
        for i in tasks:
            if i not in proposals:
                proposals[i] = []
        worker_list = workers.tolist()
        key_list = keys.tolist()
        for pos in np.lexsort((workers, keys)).tolist():
            proposals[tasks[pos]].append(Candidate(worker_list[pos], key_list[pos]))
        return proposals

    # -- private: array gates, scalar publishes -----------------------------

    def _private_round(self, idx: np.ndarray) -> dict[int, list[Candidate]]:
        pairs = self.instance.pairs
        model = self.instance.model
        used_now = self.used[idx]

        # Memoized tentative draws, batched in the scalar path's order
        # (flat CSR order == sorted worker, reachable order).  The scalar
        # path draws for every budget-gate-passing pair before any further
        # gate, so the batch must too — that is what keeps the shared
        # noise stream identical.
        stale = self.draw_index[idx] != used_now
        fresh = idx[stale]
        if fresh.size:
            eps_fresh = pairs.budget_matrix[fresh, self.used[fresh]]
            noise = self.rng.laplace(loc=0.0, scale=1.0 / eps_fresh)
            self.draw_value[fresh] = pairs.distance[fresh] + noise
            self.draw_index[fresh] = self.used[fresh]

        next_eps = pairs.budget_matrix[idx, used_now]
        pair_spend = pairs.budget_prefix[idx, used_now] + next_eps
        task_i = pairs.task[idx]
        d_real = pairs.distance[idx]

        if self.objective == "utility":
            values = pairs.task_value[task_i]
            utility = (values - apply_value_fn(model.f_d, d_real)) - model.f_p.apply(
                pair_spend
            )
            keep = utility > 0.0
            idx, task_i, d_real = idx[keep], task_i[keep], d_real[keep]
            next_eps, pair_spend = next_eps[keep], pair_spend[keep]
            own_value = values[keep] - model.f_p.apply(pair_spend)
        else:
            own_value = np.zeros(idx.shape[0])

        contested = self.winner_pair[task_i] >= 0
        rival = np.zeros(idx.shape[0])
        if np.any(contested):
            wp = self.winner_pair[task_i[contested]]
            if self.objective == "utility":
                winner_value = pairs.task_value[
                    task_i[contested]
                ] - model.f_p.apply(pairs.budget_prefix[wp, self.used[wp]])
                rival[contested] = (
                    self.eff_distance[wp]
                    + apply_value_fn_inverse(model.f_d, own_value[contested])
                ) - apply_value_fn_inverse(model.f_d, winner_value)
            else:
                rival[contested] = self.eff_distance[wp]
            if self.use_ppcf:
                # Algorithm 1 line 12: fail when PPCF <= 1/2.
                ppcf_val = laplace_cdf_array(
                    rival[contested] - d_real[contested], self.eff_epsilon[wp]
                )
                survive = np.ones(idx.shape[0], dtype=bool)
                survive[contested] = ppcf_val > 0.5
                idx, task_i, contested = idx[survive], task_i[survive], contested[survive]
                next_eps, own_value = next_eps[survive], own_value[survive]
                rival = rival[survive]

        return self._publish_survivors(idx, task_i, contested, next_eps, own_value, rival)

    def _publish_survivors(
        self,
        idx: np.ndarray,
        task_i: np.ndarray,
        contested: np.ndarray,
        next_eps: np.ndarray,
        own_value: np.ndarray,
        rival: np.ndarray,
    ) -> dict[int, list[Candidate]]:
        """Scalar tail of the sweep: PCF gate, publish, candidate keys.

        Everything that must see a release set — the tentative effective
        pair of a re-proposing worker, the PCF comparison, and the publish
        itself — stays on the per-pair scalar path so the server-side
        weighted-median semantics (and their tie-breaks) are untouched.
        """
        pairs = self.instance.pairs
        model = self.instance.model
        server = self.server
        utility_objective = self.objective == "utility"
        proposals: dict[int, list[Candidate]] = {}
        flat = idx.tolist()
        tasks = task_i.tolist()
        workers = pairs.worker[idx].tolist()
        epsilons = next_eps.tolist()
        draws = self.draw_value[idx].tolist()
        contested_flags = contested.tolist()
        rivals = rival.tolist()
        values = own_value.tolist()
        has_releases = (self.release_count[idx] > 0).tolist()
        for pos, p in enumerate(flat):
            i = tasks[pos]
            j = workers[pos]
            epsilon = epsilons[pos]
            draw = draws[pos]
            if has_releases[pos]:
                effective = server.release_set(i, j).effective_pair_with(draw, epsilon)
            else:
                effective = EffectivePair(draw, epsilon)
            if contested_flags[pos]:
                # Lines 13-15: PCF on the would-be new effective pair.
                if (
                    pcf(
                        effective.distance,
                        rivals[pos],
                        effective.epsilon,
                        float(self.eff_epsilon[self.winner_pair[i]]),
                    )
                    <= 0.5
                ):
                    continue
            server.publish(i, j, draw, epsilon)
            self.used[p] += 1
            # The release board's post-publish effective pair is the
            # weighted median over exactly the releases `effective` was
            # computed from, so no recomputation is needed.
            self.eff_distance[p] = effective.distance
            self.eff_epsilon[p] = effective.epsilon
            self.release_count[p] += 1
            if utility_objective:
                key = effective.distance - model.distance_equivalent(values[pos])
            else:
                key = effective.distance
            proposals.setdefault(i, []).append(Candidate(worker=j, key=key))
        return proposals
