"""The utility-to-distance comparison transform (Eq. 4, Section V-A).

Comparing utilities directly would reveal real distances to the server, so
the paper folds everything except distance into an additive shift:

    V_a(x) = U_a(x) + f_d(d_x,a) = v_x - sum_t f_p(b_tj . eps_tj)

(``V`` is public: task value minus the worker's published privacy spend).
Then for workers ``a`` holding task ``x`` and ``b`` holding task ``y``::

    Pr[U_a(x) > U_b(y)] = PCF(da_hat, db_hat', eps_a, eps_b)
    with  db_hat' = db_hat + f_d^{-1}(V_a) - f_d^{-1}(V_b)        (Eq. 4)

Equivalently — and how the engines use it — each candidate carries the
*comparison key*  ``chi = d_hat - f_d^{-1}(V)``; smaller key means larger
utility, and ``chi_a - chi_b = da_hat - db_hat'``, so key differences feed
PCF/PPCF directly.
"""

from __future__ import annotations

from repro.core.utility import UtilityModel

__all__ = ["public_value", "adjusted_rival_distance", "comparison_key"]


def public_value(task_value: float, spent_budget: float, model: UtilityModel) -> float:
    """``V = v - f_p(spent_budget)``: the utility with distance stripped out."""
    return task_value - model.f_p(spent_budget)


def adjusted_rival_distance(
    rival_distance: float,
    own_value: float,
    rival_value: float,
    model: UtilityModel,
) -> float:
    """Eq. 4: shift the rival's distance so distance order = utility order.

    Parameters
    ----------
    rival_distance:
        The rival's (effective) obfuscated distance ``db_hat``.
    own_value, rival_value:
        The public values ``V_a`` and ``V_b`` from :func:`public_value`.

    Returns
    -------
    float
        ``db_hat' = db_hat + f_d^{-1}(V_a) - f_d^{-1}(V_b)``.  Comparing the
        caller's own distance against it (via PCF or PPCF) compares the
        utilities.
    """
    return (
        rival_distance
        + model.distance_equivalent(own_value)
        - model.distance_equivalent(rival_value)
    )


def comparison_key(distance: float, value: float, model: UtilityModel) -> float:
    """``chi = d - f_d^{-1}(V)``: ascending key equals descending utility."""
    return distance - model.distance_equivalent(value)
