"""PGT — the Private Game-Theoretic approach (Section VI, Algorithm 4).

PAA-TA is the PA-TA objective with real distances replaced by effective
obfuscated distances; Section VI shows it is an exact potential game whose
potential is the total matching utility, so round-robin best response
converges to a pure Nash equilibrium (Theorems VI.1-VI.2).

Each best-response evaluation of worker ``w_j`` moving to task ``t_i``
scores the move by Eq. 5, assembled from the three utility-change cases
(derivation pinned against Example 3, see DESIGN.md §3.6)::

    UT  = -f_d(d_new_eff) - f_p(eps_new)            # Winning change, minus
        + f_d(d_winner_eff)   if t_i has a winner   # Defeated change of the
          (else + v_i)                              #   displaced winner
        - v_cur + f_d(d_cur_eff)  if w_j holds t_cur  # Abandoned change

A move is taken only when ``UT > 0``; the accepted move *publishes* the
fresh (obfuscated distance, budget) release (the paper's Table VIII "red"
entries), while declined evaluations publish nothing and spend nothing
("green" entries).

:class:`GTSolver` is the non-private ablation (Table IX): real distances,
no privacy cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.agents import WorkerAgent, build_agents
from repro.core.result import AssignmentResult
from repro.errors import ConfigurationError, ConvergenceError
from repro.obs.tracer import stopwatch
from repro.simulation.instance import ProblemInstance
from repro.simulation.server import Server
from repro.utils.rng import ensure_rng

__all__ = ["PGTSolver", "GTSolver", "BestResponseStats"]


class BestResponseStats:
    """Trace of one best-response run (used by the convergence analyses)."""

    __slots__ = ("passes", "moves", "move_gains")

    def __init__(self) -> None:
        self.passes = 0
        self.moves = 0
        self.move_gains: list[float] = []


class _BestResponseSolver:
    """Shared round-robin best-response loop for PGT (private) and GT."""

    def __init__(self, name: str, private: bool, max_passes: int = 100_000):
        if max_passes < 1:
            raise ConfigurationError(f"max_passes must be >= 1, got {max_passes}")
        self.name = name
        self.is_private = private
        self.max_passes = max_passes

    def solve(
        self,
        instance: ProblemInstance,
        seed: int | np.random.Generator | None = None,
        options=None,
    ) -> AssignmentResult:
        """Run best-response dynamics to a pure Nash equilibrium."""
        if seed is None and options is not None:
            seed = options.seed
        result, _ = self.solve_with_stats(instance, seed)
        return result

    def solve_with_stats(
        self, instance: ProblemInstance, seed: int | np.random.Generator | None = None
    ) -> tuple[AssignmentResult, BestResponseStats]:
        """As :meth:`solve`, also returning the move trace."""
        with stopwatch() as watch:
            rng = ensure_rng(seed)
            server = Server(instance)
            agents = self._build_agents(instance, rng) if self.is_private else None
            stats = BestResponseStats()
            self.run_loop(instance, server, agents, stats)

        result = AssignmentResult(
            method=self.name,
            instance=instance,
            matching=server.matching(),
            ledger=server.ledger,
            rounds=stats.passes,
            publishes=server.publish_count,
            elapsed_seconds=watch.seconds,
            release_board=server.board(),
        )
        return result, stats

    def _build_agents(
        self, instance: ProblemInstance, rng: np.random.Generator
    ) -> list[WorkerAgent]:
        """Agent construction hook (overridden by replay/trace tests)."""
        return build_agents(instance, rng)

    def run_loop(
        self,
        instance: ProblemInstance,
        server: Server,
        agents: list[WorkerAgent] | None,
        stats: BestResponseStats,
    ) -> None:
        """Round-robin best response from the server's *current* state.

        Public so analyses can resume the dynamics from a prepared state —
        e.g. the paper's Example 3 starts at competition ``k`` with first
        releases already published and an initial allocation in place.
        """
        while True:
            stats.passes += 1
            if stats.passes > self.max_passes:
                raise ConvergenceError(
                    f"{self.name} exceeded max_passes={self.max_passes}"
                )
            moved = False
            for j in range(instance.num_workers):
                if self._best_response(instance, server, agents, j, stats):
                    moved = True
            if not moved:
                break

    # -- one worker's turn ---------------------------------------------------

    def _best_response(
        self,
        instance: ProblemInstance,
        server: Server,
        agents: list[WorkerAgent] | None,
        j: int,
        stats: BestResponseStats,
    ) -> bool:
        """Evaluate worker ``j``'s best move; take it if UT > 0."""
        model = instance.model
        f_d = model.f_d
        f_p = model.f_p
        tasks = instance.tasks
        winner_of = server.winner
        agent = agents[j] if agents is not None else None
        current = server.task_of(j)

        abandon_term = 0.0
        if current is not None:
            own_distance = (
                server.effective_pair(current, j).distance
                if agent is not None
                else instance.distance(current, j)
            )
            abandon_term = -tasks[current].value + f_d(own_distance)

        best_ut = 0.0
        best_task: int | None = None
        best_tentative = None
        for i in instance.reachable[j]:
            if i == current:
                continue
            if agent is not None:
                tentative = agent.try_peek(i, server)
                if tentative is None:
                    continue
                ut = -f_d(tentative.effective.distance) - f_p(tentative.epsilon)
            else:
                tentative = None
                ut = -f_d(instance.distance(i, j))

            winner = winner_of(i)
            if winner is not None:
                winner_distance = (
                    server.effective_pair(i, winner).distance
                    if agent is not None
                    else instance.distance(i, winner)
                )
                ut += f_d(winner_distance)
            else:
                ut += tasks[i].value

            ut += abandon_term
            if ut > best_ut:
                best_ut = ut
                best_task = i
                best_tentative = tentative

        if best_task is None:
            return False
        if agent is not None:
            agent.publish(best_tentative, server)
        server.assign(best_task, j)
        stats.moves += 1
        stats.move_gains.append(best_ut)
        return True


class PGTSolver(_BestResponseSolver):
    """The paper's PGT: private best-response over effective distances."""

    def __init__(self, max_passes: int = 100_000):
        super().__init__(name="PGT", private=True, max_passes=max_passes)


class GTSolver(_BestResponseSolver):
    """GT: the non-private game-theoretic baseline (Table IX)."""

    def __init__(self, max_passes: int = 100_000):
        super().__init__(name="GT", private=False, max_passes=max_passes)
