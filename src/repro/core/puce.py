"""PUCE — Private Utility Conflict-Elimination (Section V).

A thin, named configuration of the shared round-based engine
(:mod:`repro.core.engine`): utility objective, private releases, PPCF
gates.  ``use_ppcf=False`` yields the PUCE-nppcf ablation of Table IX
(every real-distance PPCF gate replaced by the PCF-only check), used by
the Figure 17/25 experiments.
"""

from __future__ import annotations

from repro.core.engine import ConflictEliminationSolver, EliminationPolicy

__all__ = ["PUCESolver"]


class PUCESolver(ConflictEliminationSolver):
    """Private Utility Conflict-Elimination (Algorithms 1-3)."""

    def __init__(
        self,
        use_ppcf: bool = True,
        max_rounds: int = 100_000,
        sweep: str = "auto",
        sweep_auto_threshold: int | None = None,
    ):
        name = "PUCE" if use_ppcf else "PUCE-nppcf"
        super().__init__(
            EliminationPolicy(
                name=name, objective="utility", private=True, use_ppcf=use_ppcf
            ),
            max_rounds=max_rounds,
            sweep=sweep,
            sweep_auto_threshold=sweep_auto_threshold,
        )
