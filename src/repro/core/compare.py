"""Probability compare functions: PCF (Definition 6) and PPCF (Section V-A).

Both answer "is the (hidden) distance ``d_a`` smaller than ``d_b``?" from
Laplace-obfuscated observations:

* **PCF** (Wang et al., the baseline primitive) sees two obfuscated values
  ``da_hat = d_a + Lap(eps_a)`` and ``db_hat = d_b + Lap(eps_b)`` and
  returns ``Pr[d_a < d_b]`` — the survival function of the Laplace
  difference at ``da_hat - db_hat``.
* **PPCF** (this paper's contribution) exploits that the *comparing worker
  knows his own true distance*: it sees the exact ``d_a`` and only ``d_b``
  obfuscated, returning ``Pr[d_a < d_b] = Pr[eta_b < db_hat - d_a]`` — the
  Laplace CDF at ``db_hat - d_a``.

Theorem V.1 states PPCF's decision (threshold 1/2) is correct at least as
often as PCF's; :func:`ppcf_correctness`/:func:`pcf_correctness` expose the
closed-form correctness probabilities used to verify that dominance in the
test-suite and the accuracy benchmark.

Half-point equivalences (Lemma X.1 and Eq. 3)::

    pcf(a, b, ea, eb) > 1/2   <=>  a < b        (obfuscated values)
    ppcf(d, b, eb)     > 1/2  <=>  d < b        (real vs obfuscated)
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.privacy.laplace import LaplaceDifference, laplace_cdf

__all__ = [
    "pcf",
    "ppcf",
    "pcf_prefers_first",
    "ppcf_prefers_first",
    "pcf_correctness",
    "ppcf_correctness",
]


def pcf(da_hat: float, db_hat: float, eps_a: float, eps_b: float) -> float:
    """``Pr[d_a < d_b]`` from two obfuscated distances (Definition 6).

    Parameters
    ----------
    da_hat, db_hat:
        The published obfuscated distances.
    eps_a, eps_b:
        The privacy budgets (Laplace rates) used to obfuscate them.
    """
    return LaplaceDifference(eps_a, eps_b).sf(da_hat - db_hat)


def ppcf(d_a: float, db_hat: float, eps_b: float) -> float:
    """``Pr[d_a < d_b]`` from a *real* ``d_a`` and an obfuscated ``db_hat``.

    This is the Partial Probability Compare Function (Eq. 3):
    ``PPCF = F_Lap(db_hat - d_a; eps_b)``.
    """
    return laplace_cdf(db_hat - d_a, eps_b)


def pcf_prefers_first(da_hat: float, db_hat: float, eps_a: float, eps_b: float) -> bool:
    """Decision form of PCF: ``PCF > 1/2``.

    By Lemma X.1 this is equivalent to ``da_hat < db_hat``; the library
    still evaluates the probability so callers can log and audit margins.
    """
    return pcf(da_hat, db_hat, eps_a, eps_b) > 0.5


def ppcf_prefers_first(d_a: float, db_hat: float, eps_b: float) -> bool:
    """Decision form of PPCF: ``PPCF > 1/2`` (equivalent to ``d_a < db_hat``)."""
    return ppcf(d_a, db_hat, eps_b) > 0.5


def pcf_correctness(gap: float, eps_x: float, eps_y: float) -> float:
    """``Pr[PCF decides correctly]`` for true distances ``d_y - d_x = gap > 0``.

    This is ``Pr[dx_hat < dy_hat] = Pr[eta_x - eta_y < gap]``, the CDF of
    the Laplace difference at ``gap`` — the function ``F(s)`` in the proof
    of Theorem V.1.
    """
    if gap <= 0:
        raise ConfigurationError(f"gap must be positive (d_x < d_y), got {gap}")
    return LaplaceDifference(eps_x, eps_y).cdf(gap)


def ppcf_correctness(gap: float, eps_y: float) -> float:
    """``Pr[PPCF decides correctly]`` for ``d_y - d_x = gap > 0``.

    This is ``Pr[d_x < dy_hat] = Pr[eta_y > -gap]``, the function ``G(s)``
    in the proof of Theorem V.1: ``1 - exp(-eps_y * gap) / 2``.
    """
    if gap <= 0:
        raise ConfigurationError(f"gap must be positive (d_x < d_y), got {gap}")
    return 1.0 - 0.5 * math.exp(-eps_y * gap)
