"""Conflict Elimination Algorithm (Section IV) and its round primitive.

When several tasks all prefer the same worker there is a *winner conflict*.
CEA resolves it with the paper's approximation: since a worker's first-rank
distances to his conflicting tasks are assumed close
(``D(a_cu,1) ~ D(a_cv,1)``), choosing where the conflict worker goes
reduces to comparing the conflicting tasks' *runner-up* alternatives — the
conflict worker keeps the task whose runner-up is worst (largest distance
key), because every other task can fall back more cheaply.

Two interfaces are exposed:

* :func:`conflict_eliminate` — the full one-shot CEA of Wang et al.:
  losing tasks fall through to their next-ranked candidate, iterating until
  everything resolvable is assigned.  This is the Table II reproduction and
  a general library primitive.
* :func:`resolve_top_conflicts` — the single-round form used inside the
  PUCE/PDCE engines (Algorithm 2): only the conflict worker is placed;
  losing tasks are *not* given their runner-up (they fall back to their
  previous winner and the runner-ups re-propose next round), exactly as in
  the paper's Example 2 (see DESIGN.md §3.5).

Keys are "smaller is better" (distances, or the Eq. 4 comparison keys that
encode utilities); in the private setting key comparisons coincide with
PCF decisions by Lemma X.1, so the same code serves both modes.
"""

from __future__ import annotations

import math
from typing import Hashable, Mapping, NamedTuple, Sequence

__all__ = [
    "Candidate",
    "rank_candidates",
    "conflict_eliminate",
    "resolve_top_conflicts",
    "resolve_top_conflicts_dense",
]

TaskKey = Hashable
WorkerKey = Hashable


class Candidate(NamedTuple):
    """One candidate worker for a task, with its comparison key.

    A named tuple rather than a dataclass: the engines construct one per
    surviving proposal per round, and tuple construction is measurably
    cheaper on that path.
    """

    worker: WorkerKey
    key: float


def rank_candidates(
    distances: Mapping[tuple[TaskKey, WorkerKey], float],
) -> dict[TaskKey, list[Candidate]]:
    """Build the distance rank matrix of Section IV.

    ``distances`` maps feasible ``(task, worker)`` pairs to their
    (possibly obfuscated-effective) distances; the result lists each task's
    candidates ascending by distance — row ``i`` of the matrix ``A``.
    """
    per_task: dict[TaskKey, list[Candidate]] = {}
    for (task, worker), distance in distances.items():
        per_task.setdefault(task, []).append(Candidate(worker, float(distance)))
    for task, row in per_task.items():
        row.sort(key=lambda c: (c.key, _order_token(c.worker)))
    return per_task


def _order_token(value: Hashable) -> tuple[str, str]:
    """A total order over heterogeneous ids for deterministic tie-breaks."""
    return (type(value).__name__, repr(value))


def conflict_eliminate(
    preferences: Mapping[TaskKey, Sequence[Candidate]],
) -> dict[TaskKey, WorkerKey]:
    """Full one-shot CEA over per-task ascending candidate lists.

    Iterates: every unassigned task points at its best still-free
    candidate; any worker pointed at by several tasks keeps the task whose
    runner-up alternative is worst; everyone else falls through to their
    next candidate.  Tasks that exhaust their list stay unassigned.
    """
    remaining: dict[TaskKey, list[Candidate]] = {
        task: list(row) for task, row in preferences.items() if row
    }
    assignment: dict[TaskKey, WorkerKey] = {}
    taken: set[WorkerKey] = set()

    while remaining:
        picks: dict[TaskKey, Candidate] = {}
        for task in list(remaining):
            row = remaining[task]
            while row and row[0].worker in taken:
                row.pop(0)
            if not row:
                del remaining[task]
                continue
            picks[task] = row[0]
        if not picks:
            break

        by_worker: dict[WorkerKey, list[TaskKey]] = {}
        for task, pick in picks.items():
            by_worker.setdefault(pick.worker, []).append(task)

        conflicts = {w: ts for w, ts in by_worker.items() if len(ts) > 1}
        if not conflicts:
            for task, pick in picks.items():
                assignment[task] = pick.worker
                taken.add(pick.worker)
                del remaining[task]
            continue

        for worker, tasks in conflicts.items():
            keeper = _keeper_task(tasks, remaining, taken)
            assignment[keeper] = worker
            taken.add(worker)
            del remaining[keeper]
        # Non-conflicted picks are re-derived next iteration: a just-taken
        # conflict worker may have been another task's pick.

    return assignment


def _runner_up_key(
    task: TaskKey,
    rows: Mapping[TaskKey, Sequence[Candidate]],
    taken: set[WorkerKey],
) -> float:
    """Key of the task's next available candidate; +inf when there is none.

    A task with no fallback is the most expensive to take the worker away
    from, so +inf makes the conflict worker keep it.
    """
    row = rows[task]
    for candidate in row[1:]:
        if candidate.worker not in taken:
            return candidate.key
    return math.inf


def _keeper_task(
    tasks: Sequence[TaskKey],
    rows: Mapping[TaskKey, Sequence[Candidate]],
    taken: set[WorkerKey],
) -> TaskKey:
    """The conflicting task the worker keeps: worst (max) runner-up key.

    Runner-up ties (notably: several tasks with *no* fallback at all) are
    broken toward the task where the conflict worker's own key is best —
    the exact Eq. 1 comparison without the first-rank approximation — and
    finally toward the smallest task id for determinism.
    """
    return max(
        tasks,
        key=lambda t: (
            _runner_up_key(t, rows, taken),
            -rows[t][0].key,
            _neg_order(t),
        ),
    )


class _Reversed:
    """Order-inverting wrapper around an :func:`_order_token`."""

    __slots__ = ("token",)

    def __init__(self, token):
        self.token = token

    def __lt__(self, other):
        return self.token > other.token

    def __gt__(self, other):
        return self.token < other.token

    def __eq__(self, other):
        return self.token == other.token


def _neg_order(task: TaskKey):
    """Inverse order token so max() breaks ties toward the smallest task."""
    return _Reversed(_order_token(task))


def resolve_top_conflicts(
    competing: Mapping[TaskKey, Sequence[Candidate]],
) -> dict[TaskKey, Candidate]:
    """Single-round resolution used by Algorithm 2.

    Each task in ``competing`` wants its first (best-key) entry.  A worker
    topping several tasks keeps the one whose runner-up entry is worst
    (max key; no runner-up counts as +inf); the other tasks get **no
    decision** this round — the engine leaves them with their previous
    winner and their candidates re-propose later.

    Returns the tasks whose top entry prevailed, mapped to that entry.
    """
    tops: dict[WorkerKey, list[TaskKey]] = {}
    for task, entries in competing.items():
        if not entries:
            continue
        tops.setdefault(entries[0].worker, []).append(task)

    decisions: dict[TaskKey, Candidate] = {}
    for worker, tasks in tops.items():
        if len(tasks) == 1:
            task = tasks[0]
            decisions[task] = competing[task][0]
            continue
        keeper = max(
            tasks,
            key=lambda t: (
                competing[t][1].key if len(competing[t]) > 1 else math.inf,
                -competing[t][0].key,
                _neg_order(t),
            ),
        )
        decisions[keeper] = competing[keeper][0]
    return decisions


def resolve_top_conflicts_dense(
    tasks: Sequence[TaskKey],
    top_worker: Sequence[WorkerKey],
    top_key: Sequence[float],
    runner_key: Sequence[float],
) -> list[int]:
    """:func:`resolve_top_conflicts` over pre-ranked per-task rows.

    The array-sweep engines keep candidate tables as flat arrays instead
    of per-task ``Candidate`` lists; after sorting they only need the
    group-level facts the single-round rule consumes: each task's top
    entry (worker + key) and the key of its runner-up entry
    (``math.inf`` when the table has a single row).  ``tasks`` must be in
    first-appearance (publish) order — the same order the mapping form
    iterates — and the returned list holds the *positions* of the tasks
    whose top entry prevailed, in exactly the decision order the mapping
    form produces (ties broken through the identical ``_order_token``
    machinery, so the two forms are bit-interchangeable).
    """
    tops: dict[WorkerKey, list[int]] = {}
    for g, worker in enumerate(top_worker):
        tops.setdefault(worker, []).append(g)
    decisions: list[int] = []
    for groups in tops.values():
        if len(groups) == 1:
            decisions.append(groups[0])
            continue
        keeper = max(
            groups,
            key=lambda g: (runner_key[g], -top_key[g], _neg_order(tasks[g])),
        )
        decisions.append(keeper)
    return decisions
