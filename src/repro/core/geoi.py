"""GEOI — the location-release baseline family (To et al., Geo-I).

The related work the paper positions against (Section II) protects
*locations* instead of distances: each worker publishes a single planar-
Laplace decoy of his location (eps-geo-indistinguishability), and the
untrusted server assigns tasks using distances computed from the decoys.

This solver implements that family so the paper's distance-release scheme
can be compared against it on identical instances:

* each worker leaks **once** (one location release), regardless of how
  many tasks he competes for — contrast the accumulating distance
  releases of PUCE/PGT;
* the server's view of every distance is biased by the same decoy
  displacement, so its matching quality degrades with 1/eps;
* candidate tasks are those within the service radius of the *decoy*
  plus an error buffer (the geocast-style slack of the To et al.
  framework), intersected with the true reachability the worker enforces
  on his side (he simply declines tasks he cannot serve).

The privacy currencies differ (eps per km of location vs the paper's
``sum b.eps.r_j`` distance-release LDP), so the comparison benchmark
matches them on outcome quality per nominal eps; see
``benchmarks/bench_geoi_comparison.py``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.result import AssignmentResult
from repro.errors import ConfigurationError
from repro.obs.tracer import stopwatch
from repro.matching.bipartite import Matching
from repro.matching.hungarian import max_weight_matching
from repro.privacy.accountant import PrivacyLedger
from repro.privacy.geo import PlanarLaplaceMechanism
from repro.simulation.instance import ProblemInstance
from repro.spatial.geometry import euclidean
from repro.utils.rng import ensure_rng

__all__ = ["GeoIndistinguishableSolver"]

#: Sentinel "task" id under which the single location release is recorded
#: in the privacy ledger (a location leak is not tied to any task).
LOCATION_RELEASE = "geo-location"


class GeoIndistinguishableSolver:
    """One-shot location obfuscation + server-side matching.

    Parameters
    ----------
    epsilon:
        Geo-indistinguishability level (per km).  Expected decoy error is
        ``2/epsilon``.
    buffer_quantile:
        The decoy-error quantile used to widen the candidate search
        around the decoy (the geocast-region slack); 0.9 by default.
    """

    is_private = True

    def __init__(self, epsilon: float = 1.0, buffer_quantile: float = 0.9):
        if not epsilon > 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        if not 0.0 < buffer_quantile < 1.0:
            raise ConfigurationError(
                f"buffer_quantile must be in (0, 1), got {buffer_quantile}"
            )
        self.epsilon = epsilon
        self.buffer_quantile = buffer_quantile
        self.name = f"GEOI(eps={epsilon:g})"

    def solve(
        self,
        instance: ProblemInstance,
        seed: int | np.random.Generator | None = None,
        options=None,
    ) -> AssignmentResult:
        """Assign from decoy locations; measure against true distances."""
        with stopwatch() as watch:
            if seed is None and options is not None:
                seed = options.seed
            rng = ensure_rng(seed)
            mechanism = PlanarLaplaceMechanism(self.epsilon)
            buffer = mechanism.error_quantile(self.buffer_quantile)
            ledger = PrivacyLedger()
            model = instance.model

            m, n = instance.num_tasks, instance.num_workers
            weights = np.full((m, n), -math.inf)
            for j, worker in enumerate(instance.workers):
                if not instance.reachable[j]:
                    continue
                decoy = mechanism.perturb(worker.location, rng)
                ledger.record(worker.id, LOCATION_RELEASE, self.epsilon)
                for i in instance.reachable[j]:
                    task = instance.tasks[i]
                    noisy_distance = euclidean(decoy, task.location)
                    if noisy_distance > worker.radius + buffer:
                        continue  # outside the decoy's geocast region
                    noisy_utility = model.utility(task.value, noisy_distance)
                    if noisy_utility > 0.0:
                        weights[i, j] = noisy_utility

            index_match = max_weight_matching(weights) if m and n else {}
            pairs = {
                instance.tasks[i].id: instance.workers[j].id
                for i, j in index_match.items()
            }
        return AssignmentResult(
            method=self.name,
            instance=instance,
            matching=Matching(pairs),
            ledger=ledger,
            rounds=1,
            publishes=len(ledger),
            elapsed_seconds=watch.seconds,
        )
