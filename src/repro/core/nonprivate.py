"""Non-private baselines of Table IX: UCE, DCE and GRD.

Each private solution's non-private counterpart "eliminates the privacy
budget cost in the utility function and replaces obfuscated distance with
real distance" (Section VII-B): same protocol, exact inputs.  GRD is the
global greedy that repeatedly takes the highest-utility remaining pair.
(GT, the non-private game baseline, lives in :mod:`repro.core.pgt` next to
PGT.)
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import ConflictEliminationSolver, EliminationPolicy
from repro.core.result import AssignmentResult
from repro.matching.bipartite import Matching
from repro.matching.greedy import greedy_max_weight
from repro.obs.tracer import stopwatch
from repro.privacy.accountant import PrivacyLedger
from repro.simulation.instance import ProblemInstance

__all__ = ["UCESolver", "DCESolver", "GreedySolver"]


class UCESolver(ConflictEliminationSolver):
    """UCE: PUCE with real distances and zero privacy cost."""

    def __init__(
        self,
        max_rounds: int = 100_000,
        sweep: str = "auto",
        sweep_auto_threshold: int | None = None,
    ):
        super().__init__(
            EliminationPolicy(name="UCE", objective="utility", private=False),
            max_rounds=max_rounds,
            sweep=sweep,
            sweep_auto_threshold=sweep_auto_threshold,
        )


class DCESolver(ConflictEliminationSolver):
    """DCE: PDCE with real distances (pure distance minimisation)."""

    def __init__(
        self,
        max_rounds: int = 100_000,
        sweep: str = "auto",
        sweep_auto_threshold: int | None = None,
    ):
        super().__init__(
            EliminationPolicy(name="DCE", objective="distance", private=False),
            max_rounds=max_rounds,
            sweep=sweep,
            sweep_auto_threshold=sweep_auto_threshold,
        )


class GreedySolver:
    """GRD: greedily take the globally best remaining worker-task pair.

    Pairs are ranked by non-private utility ``v_i - f_d(d_ij)``; pairs with
    non-positive utility are never formed.
    """

    name = "GRD"
    is_private = False

    def solve(
        self,
        instance: ProblemInstance,
        seed: int | np.random.Generator | None = None,
        options=None,
    ) -> AssignmentResult:
        with stopwatch() as watch:
            weights = {
                (i, j): instance.base_utility(i, j)
                for (i, j) in instance.feasible_pairs()
            }
            index_match = greedy_max_weight(weights)
            pairs = {
                instance.tasks[i].id: instance.workers[j].id
                for i, j in index_match.items()
            }
        return AssignmentResult(
            method=self.name,
            instance=instance,
            matching=Matching(pairs),
            ledger=PrivacyLedger(),
            rounds=1,
            publishes=0,
            elapsed_seconds=watch.seconds,
        )
