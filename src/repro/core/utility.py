"""Value functions ``f_d``/``f_p`` (Definitions 3-4) and utility (Eq. 2).

``f_d`` maps travel distance to value cost; any monotone function with
``f_d(0) = 0`` and an inverse qualifies (the inverse is needed by the
Eq. 4 comparison transform).  ``f_p`` maps privacy budget to value cost and
*must be additive* — the paper restricts it to linear functions, and the
additivity is what lets a spend total stand in for per-proposal costs.

The experiments use ``f_d(x) = alpha x`` and ``f_p(x) = beta x`` with
``alpha = beta = 1``.  :class:`PowerValue` is provided for the paper's
future-work direction (non-linear distance valuation) and the ablation
benchmark built on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ValueFunction", "LinearValue", "PowerValue", "UtilityModel"]


@runtime_checkable
class ValueFunction(Protocol):
    """A monotone value function with ``f(0) = 0`` and a true inverse."""

    def __call__(self, x: float) -> float: ...

    def inverse(self, v: float) -> float: ...


@dataclass(frozen=True, slots=True)
class LinearValue:
    """``f(x) = slope * x`` — the paper's experimental choice."""

    slope: float = 1.0

    def __post_init__(self) -> None:
        if not self.slope > 0:
            raise ConfigurationError(f"slope must be positive, got {self.slope}")

    def __call__(self, x: float) -> float:
        return self.slope * x

    def inverse(self, v: float) -> float:
        return v / self.slope

    def apply(self, xs: np.ndarray) -> np.ndarray:
        """Elementwise ``f``; bit-identical to scalar calls per element.

        (A single IEEE multiplication, so — unlike a general ufunc
        expression — array and scalar evaluation agree exactly; value
        functions that cannot offer that guarantee must not define
        ``apply``.)
        """
        return self.slope * xs

    def apply_inverse(self, vs: np.ndarray) -> np.ndarray:
        """Elementwise ``f^{-1}``; bit-identical to scalar calls."""
        return vs / self.slope


@dataclass(frozen=True, slots=True)
class PowerValue:
    """``f(x) = scale * x^exponent`` on ``x >= 0``, odd-extended below zero.

    The odd extension (``f(-x) = -f(x)``) keeps the function invertible on
    all of R, which the Eq. 4 transform requires when effective obfuscated
    distances go negative under heavy noise.
    """

    exponent: float = 2.0
    scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.exponent > 0:
            raise ConfigurationError(f"exponent must be positive, got {self.exponent}")
        if not self.scale > 0:
            raise ConfigurationError(f"scale must be positive, got {self.scale}")

    def __call__(self, x: float) -> float:
        if x < 0:
            return -self.scale * (-x) ** self.exponent
        return self.scale * x**self.exponent

    def inverse(self, v: float) -> float:
        if v < 0:
            return -((-v / self.scale) ** (1.0 / self.exponent))
        return (v / self.scale) ** (1.0 / self.exponent)

    # No ``apply``/``apply_inverse`` fast path on purpose: numpy's array
    # ``**`` differs from Python's scalar ``**`` in the last ulp on a few
    # percent of inputs, which would break the vectorized sweep's
    # bit-identity with the scalar reference.  Without the methods,
    # :func:`repro.core.sweep.apply_value_fn` falls back to per-element
    # scalar calls, which are identical by construction.


@dataclass(frozen=True, slots=True)
class UtilityModel:
    """Bundles ``f_d`` and ``f_p`` and evaluates Eq. 2 utilities.

    ``f_p`` must be linear (:class:`LinearValue`): Definition 4 demands
    additivity, and the algorithms sum budgets before valuing them.
    """

    f_d: ValueFunction = LinearValue(1.0)
    f_p: LinearValue = LinearValue(1.0)

    def __post_init__(self) -> None:
        if not isinstance(self.f_p, LinearValue):
            raise ConfigurationError(
                "f_p must be a LinearValue: Definition 4 requires additivity "
                f"(got {type(self.f_p).__name__})"
            )

    def utility(self, task_value: float, distance: float, spent_budget: float = 0.0) -> float:
        """``U_j(i) = v_i - f_d(d_ij) - f_p(spent_budget)`` (Eq. 2).

        ``spent_budget`` is the worker's total published budget
        ``sum_t b_tj . eps_tj`` (zero for the non-private baselines).
        """
        return task_value - self.f_d(distance) - self.f_p(spent_budget)

    def distance_equivalent(self, value: float) -> float:
        """``f_d^{-1}(value)`` — the Eq. 4 change of scale."""
        return self.f_d.inverse(value)
