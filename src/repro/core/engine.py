"""The round-based conflict-elimination engine (Algorithms 1-3).

PUCE, PDCE and their non-private counterparts UCE/DCE share one batch
protocol; only the *objective* (utility vs distance), the *privacy mode*
(obfuscated releases vs exact values) and the PPCF ablation flag differ.
:class:`ConflictEliminationSolver` implements the protocol once, driven by
an :class:`EliminationPolicy`:

Round structure (Algorithm 3):

1. **WorkerProposal** (Algorithm 1): every not-winning worker scans the
   tasks in his service area.  For each he checks, in order: remaining
   budget (private), positive utility (utility objective), and — when the
   task has a winner — that he beats that winner: a PPCF gate on his *real*
   distance and a PCF gate on his would-be new effective distance, both
   against the winner's Eq.-4-adjusted effective distance.  Passing all
   gates he *publishes* a fresh (obfuscated distance, budget) release and
   becomes a candidate.
2. **WinnerChosen** (Algorithm 2): per task, candidates plus the incumbent
   winner are sorted by comparison key (ascending key = descending
   utility / ascending distance); top-choice conflicts are resolved by the
   single-round CEA rule; only conflict-surviving top entries take tasks,
   losing tasks keep their previous winner, displaced winners rejoin the
   not-winning pool.
3. Halt when a round produces no proposal.

Fidelity notes (see DESIGN.md §3): utilities are evaluated against the
worker's round-start spend plus the tentative budget (matching Table IV);
candidates' comparison keys are frozen at proposal time; CEA losers are
not auto-assigned (Example 2).

Two sweep implementations share this protocol.  The vectorized sweep
(``sweep="vectorized"``) evaluates the WorkerProposal gates as boolean
masks over the instance's CSR pair arrays (:mod:`repro.core.sweep`) and
hands WinnerChosen a flat :class:`~repro.core.sweep.ProposalBatch` that
the array-form CEA resolution consumes — per-pair ``Candidate`` objects
and per-task Python sorts exist only on the scalar path now; only the
release-set operations (weighted medians, PCF, publishes) remain scalar.
``sweep="scalar"`` is the original agent-at-a-time reference.  The
default, ``sweep="auto"``, picks per instance: vectorized, except for
non-private policies on instances below the configured
``sweep_auto_threshold`` feasible pairs (streaming micro-batches), which
run scalar.  Both produce bit-identical results (the property tests
assert it), and solvers that override any scalar proposal hook
(``_build_agents`` — the Table IV-VIII replay harnesses that preload
noise draws — ``_worker_proposal``, ``_evaluate_pair``,
``_beats_winner_private``, ``_incumbent_entry``) automatically use the
scalar path.

Repeated solves (streaming micro-flushes, batch sweeps) can thread an
:class:`~repro.core.workspace.EngineWorkspace` through ``solve`` /
``solve_shards``: the sweep state's buffers then come from one reusable
arena instead of fresh allocations, with results unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from repro.api.options import validate_sweep, validate_sweep_threshold
from repro.core.agents import WorkerAgent, build_agents
from repro.core.cea import (
    Candidate,
    resolve_top_conflicts,
    resolve_top_conflicts_dense,
)
from repro.core.compare import pcf, ppcf
from repro.core.result import AssignmentResult
from repro.core.sweep import ProposalBatch, VectorSweep
from repro.core.transform import adjusted_rival_distance, comparison_key, public_value
from repro.core.workspace import EngineWorkspace
from repro.errors import ConfigurationError, ConvergenceError
from repro.obs.tracer import NULL_TRACER, stopwatch
from repro.simulation.instance import ProblemInstance
from repro.simulation.server import Server
from repro.utils.rng import ensure_rng

__all__ = ["EliminationPolicy", "ConflictEliminationSolver", "RoundRecord"]

Objective = Literal["utility", "distance"]


@dataclass(frozen=True, slots=True)
class RoundRecord:
    """Observability snapshot of one protocol round."""

    round_index: int
    proposals: int
    new_winners: tuple[int, ...]
    displaced: tuple[int, ...]
    assigned_tasks: int


@dataclass(frozen=True, slots=True)
class EliminationPolicy:
    """What flavour of conflict elimination to run.

    Parameters
    ----------
    name:
        Reported method name (``PUCE``, ``PDCE``, ``UCE``, ``DCE``, ...).
    objective:
        ``"utility"`` maximises Eq. 2 utilities (PUCE/UCE); ``"distance"``
        minimises travel distance, ignoring task value and privacy cost in
        its decisions (PDCE/DCE).
    private:
        Whether distances are published through the Laplace mechanism.
    use_ppcf:
        Private mode only: keep the real-distance PPCF gate of Algorithm 1
        line 12.  ``False`` gives the ``-nppcf`` ablations of Table IX.
    """

    name: str
    objective: Objective
    private: bool
    use_ppcf: bool = True

    def __post_init__(self) -> None:
        if self.objective not in ("utility", "distance"):
            raise ConfigurationError(f"unknown objective {self.objective!r}")
        if not self.private and not self.use_ppcf:
            raise ConfigurationError("use_ppcf only applies to private policies")


class ConflictEliminationSolver:
    """Round-based solver parameterised by an :class:`EliminationPolicy`.

    ``sweep`` selects the WorkerProposal implementation: ``"vectorized"``
    (mask-gated array sweep + array WinnerChosen), ``"scalar"`` (the
    per-agent reference path, kept for replay harnesses and as the
    equivalence / throughput baseline), or ``"auto"`` (default):
    vectorized, except for *non-private* policies on instances too small
    to amortise the fixed array-op cost per round — where the plain-float
    scalar path is faster.  (Private policies stay vectorized at every
    size: their scalar path carries per-pair agent machinery that loses
    even on tiny instances.)  Both sweeps are bit-identical, so the
    switch is purely a performance decision.

    ``sweep_auto_threshold`` is the crossover: below this many feasible
    pairs ``sweep="auto"`` picks the scalar path for non-private
    policies.  ``None`` keeps :attr:`VECTOR_MIN_PAIRS` (recalibrated for
    the array WinnerChosen path by ``benchmarks/bench_flush_overhead.py``
    — the vectorized sweep now profits far earlier than the PR-2 era
    value of 48).
    """

    #: Default ``sweep="auto"`` crossover (feasible pairs) below which
    #: non-private policies run scalar.  Exposed as the validated
    #: ``sweep_auto_threshold`` knob on :class:`~repro.api.options.
    #: SolveOptions`.  Recalibrated by ``benchmarks/bench_flush_overhead
    #: .py`` after the array WinnerChosen + small-round form landed
    #: (measured crossover ~25-30 pairs; the PR-2 era value was 48).
    VECTOR_MIN_PAIRS = 28

    def __init__(
        self,
        policy: EliminationPolicy,
        max_rounds: int = 100_000,
        sweep: Literal["auto", "vectorized", "scalar"] = "auto",
        sweep_auto_threshold: int | None = None,
    ):
        if max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {max_rounds}")
        validate_sweep(sweep)
        validate_sweep_threshold(sweep_auto_threshold)
        self.policy = policy
        self.max_rounds = max_rounds
        self.sweep = sweep
        self.sweep_auto_threshold = (
            self.VECTOR_MIN_PAIRS if sweep_auto_threshold is None else sweep_auto_threshold
        )

    @property
    def name(self) -> str:
        return self.policy.name

    @property
    def is_private(self) -> bool:
        return self.policy.private

    def solve(
        self,
        instance: ProblemInstance,
        seed: int | np.random.Generator | None = None,
        options=None,
        workspace: EngineWorkspace | None = None,
        tracer=NULL_TRACER,
    ) -> AssignmentResult:
        """Run the batch protocol to quiescence on ``instance``.

        ``options`` (a :class:`~repro.api.options.SolveOptions`) supplies
        the seed when ``seed`` is omitted — the facade's uniform calling
        convention.  ``workspace`` lends the solve a reusable buffer
        arena (results are unchanged; repeated solves skip per-run
        allocations).  ``tracer`` (a :class:`repro.obs.Tracer`) records
        ``solve.build`` / ``solve.sweep`` / ``solve.resolve`` spans under
        the caller's current span; the no-op default costs nothing.
        """
        if seed is None and options is not None:
            seed = options.seed
        result, _ = self.solve_with_trace(
            instance, seed, workspace=workspace, tracer=tracer
        )
        return result

    def solve_shards(
        self,
        instances: "Sequence[ProblemInstance]",
        seeds: "Sequence[int | np.random.Generator | None]",
        workspace: EngineWorkspace | None = None,
        tracer=NULL_TRACER,
    ) -> list[AssignmentResult]:
        """Run the batch protocol on precut shard instances, one run each.

        The engine-side entry point of the sharded flush executor
        (:mod:`repro.stream.shards`): each instance is an independent,
        conflict-free shard of a larger flush — no worker or task appears
        in two of them — and is solved as its own protocol episode with
        its own seed.  Results come back in input order; merging them is
        the caller's job (the shards layer owns the deterministic merge
        ordering).  The shards run sequentially here, so one
        ``workspace`` arena serves them all.
        """
        if len(instances) != len(seeds):
            raise ConfigurationError(
                f"{len(instances)} shard instances but {len(seeds)} seeds"
            )
        return [
            self.solve(instance, seed=seed, workspace=workspace, tracer=tracer)
            for instance, seed in zip(instances, seeds)
        ]

    def solve_with_trace(
        self,
        instance: ProblemInstance,
        seed: int | np.random.Generator | None = None,
        workspace: EngineWorkspace | None = None,
        tracer=NULL_TRACER,
    ) -> tuple[AssignmentResult, list[RoundRecord]]:
        """As :meth:`solve`, also returning a per-round observability trace."""
        watch = stopwatch()
        with watch:
            rng = ensure_rng(seed)
            server = Server(instance)
            # A busy arena (nested / cross-thread use) leases as None and the
            # sweep simply allocates fresh buffers — never two solves aliasing
            # one arena.
            arena = workspace.lease() if workspace is not None else None
            try:
                with tracer.span("solve.build"):
                    state = self._make_sweep_state(instance, server, rng, arena)
                    if state is not None:
                        agents = None
                        not_winning: set[int] | None = None
                    else:
                        agents = (
                            self._build_agents(instance, rng)
                            if self.policy.private
                            else None
                        )
                        not_winning = set(range(instance.num_workers))
                trace: list[RoundRecord] = []

                rounds = 0
                while True:
                    rounds += 1
                    if rounds > self.max_rounds:
                        raise ConvergenceError(
                            f"{self.name} exceeded max_rounds={self.max_rounds} "
                            f"on a {instance.num_tasks}x{instance.num_workers} instance"
                        )
                    with tracer.span("solve.sweep"):
                        if state is not None:
                            candidates = state.proposal_round()
                        else:
                            candidates = self._worker_proposal(
                                instance, server, agents, not_winning
                            )
                    if not candidates:
                        trace.append(
                            RoundRecord(rounds, 0, (), (), server.assigned_count)
                        )
                        break
                    with tracer.span("solve.resolve"):
                        if state is not None:
                            proposal_count = len(candidates)
                            new_winners, new_losers = self._winner_chosen_batch(
                                instance, server, state, candidates
                            )
                            # Incremental pool bookkeeping: scatter the round's
                            # churn into the worker mask instead of re-deriving /
                            # re-sorting the pool (mask order is worker order).
                            if new_winners:
                                state.not_winning[list(new_winners)] = False
                            if new_losers:
                                state.not_winning[list(new_losers)] = True
                        else:
                            proposal_count = sum(
                                len(entries) for entries in candidates.values()
                            )
                            new_winners, new_losers = self._winner_chosen(
                                instance, server, candidates
                            )
                            not_winning -= new_winners
                            not_winning |= new_losers
                    trace.append(
                        RoundRecord(
                            rounds,
                            proposal_count,
                            tuple(sorted(new_winners)),
                            tuple(sorted(new_losers)),
                            server.assigned_count,
                        )
                    )
                    if not self.policy.private and not new_winners and not new_losers:
                        # Non-private rounds are deterministic functions of
                        # (pool, allocation): an unchanged round is a fixed point
                        # and would repeat forever.  (Private rounds always make
                        # progress — every proposal consumes budget.)
                        break
            finally:
                if arena is not None:
                    arena.unlease()

        result = AssignmentResult(
            method=self.name,
            instance=instance,
            matching=server.matching(),
            ledger=server.ledger,
            rounds=rounds,
            publishes=server.publish_count,
            elapsed_seconds=watch.seconds,
            release_board=server.board(),
        )
        return result, trace

    def _build_agents(
        self, instance: ProblemInstance, rng: np.random.Generator
    ) -> list[WorkerAgent]:
        """Agent construction hook (overridden by replay/trace tests)."""
        return build_agents(instance, rng)

    def _make_sweep_state(
        self,
        instance: ProblemInstance,
        server: Server,
        rng: np.random.Generator,
        workspace: EngineWorkspace | None = None,
    ) -> VectorSweep | None:
        """The array sweep state, or ``None`` for the scalar path.

        Subclasses customise the proposal side through the scalar hooks —
        ``_build_agents`` (replay harnesses pinning noise draws),
        ``_worker_proposal``, ``_evaluate_pair``,
        ``_beats_winner_private``, ``_incumbent_entry``.  The vectorized
        sweep would silently bypass any of them, so an override on any of
        those hooks routes the run through the scalar path.
        """
        if self.sweep == "scalar":
            return None
        if (
            self.sweep == "auto"
            and not self.policy.private
            and instance.num_feasible_pairs < self.sweep_auto_threshold
        ):
            return None
        cls = type(self)
        base = ConflictEliminationSolver
        for hook in (
            "_build_agents",
            "_worker_proposal",
            "_evaluate_pair",
            "_beats_winner_private",
            "_incumbent_entry",
        ):
            if getattr(cls, hook) is not getattr(base, hook):
                return None
        return VectorSweep(
            instance,
            server,
            objective=self.policy.objective,
            use_ppcf=self.policy.use_ppcf,
            private=self.policy.private,
            rng=rng if self.policy.private else None,
            workspace=workspace,
        )

    # -- Algorithm 1: WorkerProposal ----------------------------------------

    def _worker_proposal(
        self,
        instance: ProblemInstance,
        server: Server,
        agents: list[WorkerAgent] | None,
        not_winning: set[int],
    ) -> dict[int, list[Candidate]]:
        """One proposal sweep; publishes private releases as a side effect."""
        proposals: dict[int, list[Candidate]] = {}
        for j in sorted(not_winning):
            agent = agents[j] if agents is not None else None
            for i in instance.reachable[j]:
                candidate = self._evaluate_pair(instance, server, agent, i, j)
                if candidate is not None:
                    proposals.setdefault(i, []).append(candidate)
        return proposals

    def _evaluate_pair(
        self,
        instance: ProblemInstance,
        server: Server,
        agent: WorkerAgent | None,
        i: int,
        j: int,
    ) -> Candidate | None:
        """Gates of Algorithm 1 for one (task, worker) pair.

        The utility privacy cost is the *pair's* cumulative published
        budget plus the tentative new element (the paper's Eq. 2 semantics
        as pinned by the Table IV worked values; DESIGN.md §3.1).
        """
        model = instance.model
        task = instance.tasks[i]
        d_real = instance.distance(i, j)
        private = agent is not None

        if private:
            if not agent.can_propose(i):
                return None
            tentative = agent.peek_proposal(i, server)
            pair_spend = agent.pair_budget(i).spent + tentative.epsilon
        else:
            tentative = None
            pair_spend = 0.0

        if self.policy.objective == "utility":
            utility = model.utility(task.value, d_real, pair_spend)
            if utility <= 0.0:
                return None
            own_value = public_value(task.value, pair_spend, model)
        else:
            own_value = 0.0  # distance objective: keys are raw distances

        winner = server.winner(i)
        if winner is not None:
            if private:
                if not self._beats_winner_private(
                    instance, server, i, winner, d_real, tentative, own_value
                ):
                    return None
            else:
                # Gate on the *same* key computation the competing table
                # sorts by: gating on raw distances while sorting on
                # shifted keys can disagree after floating-point
                # absorption, livelocking the round loop.
                challenger_key = (
                    comparison_key(d_real, task.value, model)
                    if self.policy.objective == "utility"
                    else d_real
                )
                if not challenger_key < self._incumbent_entry(
                    instance, server, i, winner
                ).key:
                    return None

        if private:
            agent.publish(tentative, server)
            effective = server.release_set(i, j).effective_pair()
            key = (
                comparison_key(effective.distance, own_value, model)
                if self.policy.objective == "utility"
                else effective.distance
            )
        else:
            key = (
                comparison_key(d_real, task.value, model)
                if self.policy.objective == "utility"
                else d_real
            )
        return Candidate(worker=j, key=key)

    def _beats_winner_private(
        self,
        instance: ProblemInstance,
        server: Server,
        i: int,
        winner: int,
        d_real: float,
        tentative,
        own_value: float,
    ) -> bool:
        """Lines 9-15 of Algorithm 1: PPCF then PCF against the winner."""
        model = instance.model
        win_pair = server.effective_pair(i, winner)
        if self.policy.objective == "utility":
            winner_value = public_value(
                instance.tasks[i].value,
                server.release_set(i, winner).total_spend(),
                model,
            )
            rival = adjusted_rival_distance(
                win_pair.distance, own_value, winner_value, model
            )
        else:
            rival = win_pair.distance
        if self.policy.use_ppcf and ppcf(d_real, rival, win_pair.epsilon) <= 0.5:
            return False
        if (
            pcf(
                tentative.effective.distance,
                rival,
                tentative.effective.epsilon,
                win_pair.epsilon,
            )
            <= 0.5
        ):
            return False
        return True

    # -- Algorithm 2: WinnerChosen ------------------------------------------

    def _winner_chosen(
        self,
        instance: ProblemInstance,
        server: Server,
        candidates: dict[int, list[Candidate]],
    ) -> tuple[set[int], set[int]]:
        """Assign round winners; returns (new winners, displaced losers).

        The scalar (mapping) form; array-sweep rounds go through
        :meth:`_winner_chosen_batch` instead.
        """
        competing: dict[int, list[Candidate]] = {}
        for i, entries in candidates.items():
            table = list(entries)
            incumbent = server.winner(i)
            if incumbent is not None:
                table.append(self._incumbent_entry(instance, server, i, incumbent))
            table.sort(key=lambda c: (c.key, c.worker))
            competing[i] = table

        decisions = resolve_top_conflicts(competing)

        new_winners: set[int] = set()
        new_losers: set[int] = set()
        for i, entry in decisions.items():
            if entry.worker == server.winner(i):
                continue  # incumbent held the top: nothing changes
            displaced = server.assign(i, entry.worker)
            new_winners.add(entry.worker)
            if displaced is not None:
                new_losers.add(displaced)
        # A displaced worker that immediately won elsewhere is not a loser.
        new_losers -= new_winners
        return new_winners, new_losers

    def _winner_chosen_batch(
        self,
        instance: ProblemInstance,
        server: Server,
        state: VectorSweep,
        batch: ProposalBatch,
    ) -> tuple[set[int], set[int]]:
        """Array-form Algorithm 2 over a :class:`ProposalBatch`.

        Bit-identical to :meth:`_winner_chosen` on the equivalent mapping:
        per-task tables are the candidate rows plus the incumbent, ranked
        by ``(key, worker)`` through one ``np.lexsort``; the single-round
        CEA rule runs on the group-level top/runner-up facts
        (:func:`~repro.core.cea.resolve_top_conflicts_dense`, sharing the
        scalar tie-break machinery); decisions apply in the mapping
        path's first-appearance order.  Only the handful of decided
        assignments touch Python objects — candidate ranking and winner
        propagation never leave the arrays.

        Rounds with only a handful of candidates take a plain-list form
        of the same computation (:meth:`_winner_chosen_small`): at
        micro-flush sizes the numpy group machinery costs more than the
        work it batches, and the small form is what lets ``sweep="auto"``
        profit from vectorization far below the PR-2 era threshold.
        """
        if len(batch) < self.SMALL_ROUND_CANDIDATES:
            return self._winner_chosen_small(instance, server, state, batch)
        pairs = instance.pairs
        # Task groups in first-appearance (publish) order — the order the
        # mapping form's dict insertion encodes.
        uniq, first_idx, inverse = np.unique(
            batch.task, return_index=True, return_inverse=True
        )
        appearance = np.argsort(first_idx, kind="stable")
        rank_of_uniq = np.empty(uniq.shape[0], dtype=np.int64)
        rank_of_uniq[appearance] = np.arange(uniq.shape[0], dtype=np.int64)
        rank = rank_of_uniq[inverse]
        group_tasks = uniq[appearance]

        # Incumbent rows for contested groups.  Private keys need the
        # release board (weighted medians) and stay scalar per incumbent;
        # non-private keys are the same floats `_incumbent_entry` computes,
        # read straight off the pair arrays.
        inc_pair = state.winner_pair[group_tasks]
        contested = np.flatnonzero(inc_pair >= 0)
        if contested.size:
            inc_rank = contested.astype(np.int64)
            inc_pair = inc_pair[contested]
            inc_worker = pairs.worker[inc_pair]
            if self.policy.private:
                inc_key = np.asarray(
                    [
                        self._incumbent_entry(instance, server, int(i), int(w)).key
                        for i, w in zip(
                            group_tasks[contested].tolist(), inc_worker.tolist()
                        )
                    ],
                    dtype=np.float64,
                )
            elif self.policy.objective == "utility":
                model = instance.model
                inc_key = np.asarray(
                    [
                        comparison_key(d, instance.tasks[i].value, model)
                        for i, d in zip(
                            group_tasks[contested].tolist(),
                            pairs.distance[inc_pair].tolist(),
                        )
                    ],
                    dtype=np.float64,
                )
            else:
                inc_key = pairs.distance[inc_pair].astype(np.float64)
            all_rank = np.concatenate([rank, inc_rank])
            all_worker = np.concatenate([batch.worker, inc_worker])
            all_key = np.concatenate([batch.key, inc_key])
            all_pair = np.concatenate([batch.pair, inc_pair])
        else:
            all_rank, all_worker = rank, batch.worker
            all_key, all_pair = batch.key, batch.pair

        # One ranking pass for every per-task table: groups by rank, each
        # sorted ascending (key, worker) — the scalar `table.sort` order.
        order = np.lexsort((all_worker, all_key, all_rank))
        sorted_worker = all_worker[order]
        sorted_key = all_key[order]
        sorted_pair = all_pair[order]
        counts = np.bincount(all_rank, minlength=group_tasks.shape[0])
        starts = np.zeros(group_tasks.shape[0], dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])

        runner_pos = np.minimum(starts + 1, sorted_key.shape[0] - 1)
        runner_key = np.where(counts > 1, sorted_key[runner_pos], np.inf)
        group_task_list = group_tasks.tolist()
        top_workers = sorted_worker[starts].tolist()
        decisions = resolve_top_conflicts_dense(
            group_task_list,
            top_workers,
            sorted_key[starts].tolist(),
            runner_key.tolist(),
        )

        top_pairs = sorted_pair[starts]
        return self._apply_decisions(
            server,
            state,
            [
                (group_task_list[g], top_workers[g], int(top_pairs[g]))
                for g in decisions
            ],
        )

    #: Candidate-count bound below which :meth:`_winner_chosen_batch`
    #: runs its plain-list form (numpy group setup costs more than the
    #: work it batches on micro rounds).
    SMALL_ROUND_CANDIDATES = 96

    def _winner_chosen_small(
        self,
        instance: ProblemInstance,
        server: Server,
        state: VectorSweep,
        batch: ProposalBatch,
    ) -> tuple[set[int], set[int]]:
        """Plain-list form of :meth:`_winner_chosen_batch` (small rounds).

        Same tables, same ranking, same single-round CEA rule and
        tie-breaks — built from Python lists because a micro round's
        candidate count is far below the numpy group machinery's
        break-even.  Sorting ``(key, worker, pair)`` tuples equals the
        ``(key, worker)`` order: a worker appears at most once per task,
        so the pair column never decides.
        """
        model = instance.model
        pairs = instance.pairs
        groups: dict[int, list[tuple[float, int, int]]] = {}
        for i, w, k, p in zip(
            batch.task.tolist(),
            batch.worker.tolist(),
            batch.key.tolist(),
            batch.pair.tolist(),
        ):
            rows = groups.get(i)
            if rows is None:
                groups[i] = [(k, w, p)]
            else:
                rows.append((k, w, p))
        winner_pair = state.winner_pair
        utility_objective = self.policy.objective == "utility"
        for i, rows in groups.items():
            wp = int(winner_pair[i])
            if wp >= 0:
                winner = int(pairs.worker[wp])
                if self.policy.private:
                    key = self._incumbent_entry(instance, server, i, winner).key
                elif utility_objective:
                    key = comparison_key(
                        float(pairs.distance[wp]), instance.tasks[i].value, model
                    )
                else:
                    key = float(pairs.distance[wp])
                rows.append((key, winner, wp))
            if len(rows) > 1:
                rows.sort()

        group_task_list = list(groups)
        tables = list(groups.values())
        decisions = resolve_top_conflicts_dense(
            group_task_list,
            [rows[0][1] for rows in tables],
            [rows[0][0] for rows in tables],
            [rows[1][0] if len(rows) > 1 else math.inf for rows in tables],
        )
        return self._apply_decisions(
            server,
            state,
            [
                (group_task_list[g], tables[g][0][1], tables[g][0][2])
                for g in decisions
            ],
        )

    def _apply_decisions(
        self,
        server: Server,
        state: VectorSweep,
        decisions: list[tuple[int, int, int]],
    ) -> tuple[set[int], set[int]]:
        """Commit ``(task, worker, pair)`` round decisions in order."""
        new_winners: set[int] = set()
        new_losers: set[int] = set()
        for i, winner, pair_pos in decisions:
            if winner == server.winner(i):
                continue  # incumbent held the top: nothing changes
            vacated = server.task_of(winner)
            displaced = server.assign(i, winner)
            state.note_assign_pair(i, pair_pos, vacated)
            new_winners.add(winner)
            if displaced is not None:
                new_losers.add(displaced)
        # A displaced worker that immediately won elsewhere is not a loser.
        new_losers -= new_winners
        return new_winners, new_losers

    def _incumbent_entry(
        self, instance: ProblemInstance, server: Server, i: int, winner: int
    ) -> Candidate:
        """The current winner's row in the competing table."""
        model = instance.model
        if self.policy.private:
            pair = server.effective_pair(i, winner)
            if self.policy.objective == "utility":
                value = public_value(
                    instance.tasks[i].value,
                    server.release_set(i, winner).total_spend(),
                    model,
                )
                key = comparison_key(pair.distance, value, model)
            else:
                key = pair.distance
        else:
            # Read straight from the pair arrays: the dict view would be
            # materialised (O(P)) just to serve a handful of incumbents.
            d_real = float(
                instance.pairs.distance[instance.pair_index(i, winner)]
            )
            key = (
                comparison_key(d_real, instance.tasks[i].value, model)
                if self.policy.objective == "utility"
                else d_real
            )
        return Candidate(worker=winner, key=key)
