"""The paper's contribution: comparison functions, effective distances,
budgets, the CEA engine, and the PUCE / PGT / PDCE solvers."""

from repro.core.agents import TentativeProposal, WorkerAgent, build_agents
from repro.core.budgets import BudgetSampler, BudgetVector, PairBudget
from repro.core.cea import (
    Candidate,
    conflict_eliminate,
    rank_candidates,
    resolve_top_conflicts,
)
from repro.core.compare import (
    pcf,
    pcf_correctness,
    pcf_prefers_first,
    ppcf,
    ppcf_correctness,
    ppcf_prefers_first,
)
from repro.core.effective import EffectivePair, Release, ReleaseSet, effective_pair_of
from repro.core.engine import ConflictEliminationSolver, EliminationPolicy, RoundRecord
from repro.core.workspace import EngineWorkspace
from repro.core.geoi import GeoIndistinguishableSolver
from repro.core.nonprivate import DCESolver, GreedySolver, UCESolver
from repro.core.optimal import OptimalSolver
from repro.core.payments import Payment, payments_for_result, vickrey_payment
from repro.core.pdce import PDCESolver
from repro.core.pgt import BestResponseStats, GTSolver, PGTSolver
from repro.core.puce import PUCESolver
from repro.core.registry import (
    NON_PRIVATE_COUNTERPART,
    Solver,
    available_methods,
    make_solver,
)
from repro.core.result import AssignmentResult, MatchedPair
from repro.core.transform import adjusted_rival_distance, comparison_key, public_value
from repro.core.utility import LinearValue, PowerValue, UtilityModel, ValueFunction

__all__ = [
    # comparison
    "pcf",
    "ppcf",
    "pcf_prefers_first",
    "ppcf_prefers_first",
    "pcf_correctness",
    "ppcf_correctness",
    # effective pairs
    "Release",
    "ReleaseSet",
    "EffectivePair",
    "effective_pair_of",
    # budgets
    "BudgetVector",
    "PairBudget",
    "BudgetSampler",
    # utility / transform
    "ValueFunction",
    "LinearValue",
    "PowerValue",
    "UtilityModel",
    "public_value",
    "adjusted_rival_distance",
    "comparison_key",
    # CEA
    "Candidate",
    "rank_candidates",
    "conflict_eliminate",
    "resolve_top_conflicts",
    # agents
    "WorkerAgent",
    "TentativeProposal",
    "build_agents",
    # engine + solvers
    "EliminationPolicy",
    "ConflictEliminationSolver",
    "RoundRecord",
    "EngineWorkspace",
    "GeoIndistinguishableSolver",
    "Payment",
    "vickrey_payment",
    "payments_for_result",
    "PUCESolver",
    "PDCESolver",
    "PGTSolver",
    "UCESolver",
    "DCESolver",
    "GTSolver",
    "GreedySolver",
    "OptimalSolver",
    "BestResponseStats",
    # registry / results
    "Solver",
    "make_solver",
    "available_methods",
    "NON_PRIVATE_COUNTERPART",
    "AssignmentResult",
    "MatchedPair",
]
