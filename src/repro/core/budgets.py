"""Privacy budget vectors ``eps_ij`` and their consumption state ``b_ij``.

Definition 5 equips every feasible worker-task pair with a budget vector
``eps_ij = <eps^(1), ..., eps^(Z)>``; the u-th proposal of the worker to
that task spends ``eps^(u)`` and flips ``b^(u)`` from 0 to 1.  Budgets are
spent strictly in order, matching the monotone timelines of Table IV.

:class:`BudgetSampler` realises Table X's experimental setting: ``Z``
("privacy budget group size", default 7) i.i.d. draws from a configured
interval, sorted ascending so later proposals spend more budget for more
accuracy — the shape of the worked examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import BudgetExhaustedError, ConfigurationError

__all__ = ["BudgetVector", "PairBudget", "BudgetSampler"]


@dataclass(frozen=True, slots=True)
class BudgetVector:
    """The immutable budget vector ``eps_ij`` of one pair."""

    epsilons: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.epsilons:
            raise ConfigurationError("a budget vector must have at least one element")
        if any(not e > 0 for e in self.epsilons):
            raise ConfigurationError(f"budgets must all be positive, got {self.epsilons}")

    def __len__(self) -> int:
        return len(self.epsilons)

    def __getitem__(self, u: int) -> float:
        return self.epsilons[u]

    @property
    def total(self) -> float:
        """The maximum leakable budget of the pair, ``sum_u eps^(u)``."""
        return sum(self.epsilons)


@dataclass
class PairBudget:
    """Consumption state of one pair: the vector plus the used prefix."""

    vector: BudgetVector
    used: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.used <= len(self.vector):
            raise ConfigurationError(
                f"used count {self.used} out of range for Z={len(self.vector)}"
            )

    @property
    def exhausted(self) -> bool:
        """Whether all ``Z`` proposals have been published."""
        return self.used >= len(self.vector)

    @property
    def remaining(self) -> int:
        return len(self.vector) - self.used

    @property
    def next_index(self) -> int:
        """The 0-based index ``u`` the next proposal would consume."""
        return self.used

    def peek(self) -> float:
        """The budget the next proposal would spend.

        Raises
        ------
        BudgetExhaustedError
            If all budget elements have been used.
        """
        if self.exhausted:
            raise BudgetExhaustedError(
                f"all {len(self.vector)} budget elements already spent"
            )
        return self.vector[self.used]

    def consume(self) -> float:
        """Spend the next budget element and return it."""
        epsilon = self.peek()
        self.used += 1
        return epsilon

    @property
    def spent(self) -> float:
        """Total published budget of this pair, ``b_ij . eps_ij``."""
        return sum(self.vector.epsilons[: self.used])


@dataclass(frozen=True, slots=True)
class BudgetSampler:
    """Draws per-pair budget vectors per Table X.

    Parameters
    ----------
    low, high:
        The privacy-budget interval (default [0.5, 1.75], the paper's bold
        default).
    group_size:
        ``Z``, the number of proposals available per pair (default 7).
    sort_ascending:
        Sort each vector ascending (default), matching the worked examples
        where successive proposals spend increasing budgets.
    """

    low: float = 0.5
    high: float = 1.75
    group_size: int = 7
    sort_ascending: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.low <= self.high:
            raise ConfigurationError(
                f"need 0 < low <= high, got [{self.low}, {self.high}]"
            )
        if self.group_size < 1:
            raise ConfigurationError(f"group_size must be >= 1, got {self.group_size}")

    def sample(self, rng: np.random.Generator) -> BudgetVector:
        """Draw one budget vector."""
        draws = rng.uniform(self.low, self.high, size=self.group_size)
        if self.sort_ascending:
            draws = np.sort(draws)
        return BudgetVector(tuple(float(x) for x in draws))

    def sample_matrix(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` budget vectors as a ``(count, Z)`` array.

        One batched ``uniform`` call fills the array in the same order as
        ``count`` successive :meth:`sample` calls, so the generator stream
        (and therefore every seeded instance) is unchanged by batching.
        """
        draws = rng.uniform(self.low, self.high, size=(count, self.group_size))
        if self.sort_ascending:
            draws = np.sort(draws, axis=1)
        return draws
