"""Vickrey payment determination (Wang et al.'s mechanism; future work §VIII).

The paper's objective folds the task value straight into worker utility
and defers payments to future work ("our subsequent work will extract the
payment from the task value").  Wang et al. [3] — the source of the PDCE
baseline — pair their winner selection with a *Vickrey Payment
Determination Mechanism*: the platform runs a reverse auction per task,
workers' costs are their travel-distance values, and the winner is paid
the cost of the **second-best** candidate (capped by the task value as the
reserve price).

Classic second-price properties, which the test-suite verifies:

* **truthfulness** — reporting the true distance is a dominant strategy:
  the payment does not depend on the winner's own report;
* **individual rationality** — the winner's payment covers his true cost
  whenever he truly is the best candidate;
* **profitability** — the platform never pays above the task value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import AssignmentResult
from repro.errors import ConfigurationError

__all__ = ["Payment", "vickrey_payment", "payments_for_result"]


@dataclass(frozen=True, slots=True)
class Payment:
    """The payment awarded to one matched worker."""

    task_id: int
    worker_id: int
    amount: float
    winner_cost: float

    @property
    def worker_profit(self) -> float:
        """Payment minus the winner's true travel cost."""
        return self.amount - self.winner_cost


def vickrey_payment(
    winner_cost: float, rival_costs: list[float], reserve: float
) -> float:
    """Second-price payment for one task's reverse auction.

    Parameters
    ----------
    winner_cost:
        The winner's true cost ``f_d(d)`` (unused by design — that is the
        point of Vickrey payments — but validated against the reserve).
    rival_costs:
        The other candidates' costs.  The payment is the smallest of them
        (the price at which the winner would stop being chosen), capped by
        ``reserve``.
    reserve:
        The platform's reserve price — the task value ``v_i``; with no
        rival the winner is paid the full reserve.

    Raises
    ------
    ConfigurationError
        If the reserve is not positive (the task would never be posted).
    """
    if not reserve > 0:
        raise ConfigurationError(f"reserve must be positive, got {reserve}")
    if not rival_costs:
        return reserve
    return min(min(rival_costs), reserve)


def payments_for_result(result: AssignmentResult) -> list[Payment]:
    """Vickrey payments for every matched pair of a finished assignment.

    For each matched task the rival set is the task's other *feasible*
    candidates (its true competition).  Payments are computed from true
    distances — this is the platform-side settlement step that runs after
    assignment, when winners reveal themselves to collect.
    """
    instance = result.instance
    model = instance.model
    worker_index_of = {w.id: j for j, w in enumerate(instance.workers)}
    task_index_of = {t.id: i for i, t in enumerate(instance.tasks)}

    payments = []
    for task_id, worker_id in sorted(result.matching, key=lambda p: str(p[0])):
        i = task_index_of[task_id]
        j = worker_index_of[worker_id]
        task = instance.tasks[i]
        winner_cost = model.f_d(instance.distance(i, j))
        rival_costs = [
            model.f_d(instance.distance(i, k))
            for k in instance.candidates[i]
            if k != j
        ]
        amount = vickrey_payment(winner_cost, rival_costs, reserve=task.value)
        payments.append(
            Payment(
                task_id=task_id,
                worker_id=worker_id,
                amount=amount,
                winner_cost=winner_cost,
            )
        )
    return payments
