"""`EngineWorkspace` — a reusable buffer arena for the flush hot path.

Steady-state streaming solves thousands of small, similar instances: every
micro-flush used to allocate a fresh set of numpy buffers (sweep masks,
noise-draw memos, winner state) just to throw them away a millisecond
later.  :class:`EngineWorkspace` is the arena that amortises those
allocations: a long-lived owner (:class:`~repro.stream.simulator.
DispatchSimulator`, :class:`~repro.simulation.runner.BatchRunner`, a
:class:`~repro.stream.shards.ShardedFlushExecutor` running sequentially)
creates one workspace and threads it through
:meth:`~repro.core.engine.ConflictEliminationSolver.solve`; each solve
*leases* the arena, draws named buffers from it, and releases the lease on
the way out.

Correctness contract:

* **Bit-identical reuse.**  :meth:`request` always returns a view filled
  with the caller's ``fill`` value, so a reused buffer is
  indistinguishable from a fresh ``np.full`` allocation.  The property
  suite pins workspace-on == workspace-off for every registry method.
* **Single lease.**  The arena backs exactly one solve at a time.  A
  nested or concurrent :meth:`lease` does not raise — it simply yields
  ``None`` and the inner solve falls back to fresh allocations — so
  sharing a workspace across threads degrades to the old behaviour
  instead of corrupting state.
* **Released means empty.**  :meth:`release` drops every buffer;
  lifecycle owners call it from their ``close()`` (the same pooled-
  executor guarantee the shard pools have), so a finished
  :class:`~repro.api.session.DispatchSession` holds no arena memory.

The module's second arena, :class:`ShmArena`, serves the *cross-process*
hot path: it stages named numpy planes into one growable
``multiprocessing.shared_memory`` segment so pool workers receive
(offset, length) views (:func:`attach_planes`) instead of pickled
copies.  Ownership rules: the staging side (the
:class:`~repro.stream.shards.ShardedFlushExecutor`) creates and unlinks
the segment — on close, on stream finish, and on the failure path alike
— while workers only ever attach, cache the mapping per segment name,
and never unlink.  On Linux an unlinked segment stays valid for already-
attached workers, which is what makes the grow-by-replacing lifecycle
safe.
"""

from __future__ import annotations

import atexit
import os
import tempfile
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.tracer import NULL_TRACER

try:  # pragma: no cover - present on every supported platform
    import multiprocessing
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - platforms without POSIX shm
    multiprocessing = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]

__all__ = [
    "EngineWorkspace",
    "ShmArena",
    "ShmHandle",
    "attach_planes",
    "detach_all_planes",
    "shm_available",
    "sweep_stale_segments",
]


class EngineWorkspace:
    """Named, growable numpy scratch buffers reused across solves.

    Buffers are keyed by name (re-allocated if the requested dtype ever
    changes) and grown geometrically, so after the first few flushes of a
    stream the steady state performs **zero** buffer allocations per
    solve.
    ``reuses`` / ``allocations`` count buffer requests served from the
    arena vs freshly allocated — the observability hook the flush-overhead
    benchmark reads.  ``tracer`` (settable by the stream owner) records a
    ``workspace.lease`` / ``workspace.contention`` point event per
    :meth:`lease` attempt; the no-op default costs one attribute call.
    """

    __slots__ = ("_buffers", "_leased", "reuses", "allocations", "leases", "tracer")

    def __init__(self, tracer=NULL_TRACER) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self._leased = False
        self.reuses = 0
        self.allocations = 0
        self.leases = 0
        self.tracer = tracer

    # -- lease lifecycle ----------------------------------------------------

    def lease(self) -> "EngineWorkspace | None":
        """Claim the arena for one solve; ``None`` if already claimed.

        The engine calls this at the top of a solve and falls back to
        fresh per-solve allocations when the arena is busy, which makes
        accidental sharing across threads safe (just not faster).
        """
        if self._leased:
            self.tracer.event("workspace.contention")
            return None
        self._leased = True
        self.leases += 1
        self.tracer.event("workspace.lease")
        return self

    def unlease(self) -> None:
        """Return the arena (idempotent)."""
        self._leased = False

    def release(self) -> None:
        """Drop every buffer (idempotent).  The arena stays usable:
        later requests simply re-allocate."""
        self._buffers.clear()
        self._leased = False

    @property
    def held_bytes(self) -> int:
        """Total bytes currently held by the arena's buffers."""
        return sum(buf.nbytes for buf in self._buffers.values())

    # -- buffer requests ----------------------------------------------------

    def request(self, name: str, size: int, dtype, fill) -> np.ndarray:
        """A length-``size`` 1-D view filled with ``fill``.

        The backing buffer persists across solves under ``(name, dtype)``
        and grows geometrically when ``size`` outruns it; the returned
        view is always freshly filled, so callers see exactly what
        ``np.full(size, fill, dtype)`` would have given them.
        """
        if size < 0:
            raise ConfigurationError(f"buffer size must be >= 0, got {size}")
        buf = self._buffers.get(name)
        if buf is None or buf.shape[0] < size or buf.dtype != dtype:
            capacity = max(size, 2 * buf.shape[0] if buf is not None else size, 1)
            buf = np.empty(capacity, dtype=dtype)
            self._buffers[name] = buf
            self.allocations += 1
        else:
            self.reuses += 1
        view = buf[:size]
        view[...] = fill
        return view


# -- shared-memory plane transport ------------------------------------------


@dataclass(frozen=True, slots=True)
class ShmHandle:
    """A picklable description of planes staged in one shm segment.

    ``layout`` rows are ``(name, dtype_str, shape, byte_offset)``; the
    handle plus the segment name is everything a worker process needs to
    rebuild zero-copy views (:func:`attach_planes`).  Handles are tiny
    (they replace the pickled arrays themselves), which is the whole
    point of the transport.
    """

    segment: str
    layout: tuple[tuple[str, str, tuple[int, ...], int], ...]

    @property
    def total_bytes(self) -> int:
        """Bytes spanned by the staged planes (diagnostics only)."""
        if not self.layout:
            return 0
        name, dtype, shape, offset = self.layout[-1]
        count = 1
        for dim in shape:
            count *= dim
        return offset + count * np.dtype(dtype).itemsize


_SHM_OK: bool | None = None


def shm_available() -> bool:
    """Whether POSIX shared memory actually works here (probed once).

    ``multiprocessing.shared_memory`` can be importable yet unusable
    (no ``/dev/shm``, sandboxed runtimes), so availability is settled by
    creating and unlinking a tiny real segment.  The shard transport
    falls back to the pickle path when this is ``False``.
    """
    global _SHM_OK
    if _SHM_OK is None:
        if shared_memory is None:
            _SHM_OK = False
        else:
            try:
                probe = shared_memory.SharedMemory(create=True, size=16)
                probe.close()
                probe.unlink()
                _SHM_OK = True
            except (OSError, ValueError):
                _SHM_OK = False
    return _SHM_OK


# -- stale-segment manifest --------------------------------------------------
#
# A normally-exiting run unlinks its segments (ShmArena.close runs on the
# executor's close *and* failure paths), but a SIGKILL / hard crash strands
# them in /dev/shm.  Each process therefore mirrors the names of the
# segments it owns into a tiny per-pid manifest file; the next run's
# `sweep_stale_segments` (called from `shutdown_warm_pools` and atexit)
# unlinks any segment listed in a manifest whose pid is dead.  The
# manifest is best-effort — a failure to write it never fails a stage.

_OWNED_SEGMENTS: set[str] = set()


def _manifest_dir() -> str:
    return os.path.join(tempfile.gettempdir(), "repro-shm")


def _manifest_path(pid: int) -> str:
    return os.path.join(_manifest_dir(), f"{pid}.segments")


def _write_manifest() -> None:
    path = _manifest_path(os.getpid())
    try:
        if not _OWNED_SEGMENTS:
            if os.path.exists(path):
                os.unlink(path)
            return
        os.makedirs(_manifest_dir(), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            handle.write("".join(f"{name}\n" for name in sorted(_OWNED_SEGMENTS)))
        os.replace(tmp, path)
    except OSError:  # pragma: no cover - manifest is advisory
        pass


def _register_segment(name: str) -> None:
    _OWNED_SEGMENTS.add(name)
    _write_manifest()


def _unregister_segment(name: str) -> None:
    if name in _OWNED_SEGMENTS:
        _OWNED_SEGMENTS.discard(name)
        _write_manifest()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:  # pragma: no cover - exists but not ours
        return True
    return True


def sweep_stale_segments() -> int:
    """Unlink shm segments leaked by crashed runs; returns the count.

    Scans the manifest directory for per-pid manifests whose owner is no
    longer alive, unlinks every segment they name, and removes the
    manifest.  Safe to call at any time — live processes' manifests are
    left alone, and already-gone segments are skipped silently.  Wired
    into :func:`repro.stream.shards.shutdown_warm_pools` (and thereby
    atexit), so any run that uses pools also janitors its predecessors.
    """
    if shared_memory is None:
        return 0
    removed = 0
    try:
        entries = os.listdir(_manifest_dir())
    except OSError:
        return 0
    for entry in entries:
        stem, dot, ext = entry.partition(".")
        if ext != "segments" or not stem.isdigit():
            continue
        pid = int(stem)
        if pid == os.getpid() or _pid_alive(pid):
            continue
        path = os.path.join(_manifest_dir(), entry)
        try:
            with open(path) as handle:
                names = [line.strip() for line in handle if line.strip()]
        except OSError:
            continue
        for name in names:
            try:
                stale = shared_memory.SharedMemory(name=name)
            except (FileNotFoundError, OSError, ValueError):
                continue
            try:
                stale.close()
                stale.unlink()
                removed += 1
            except (FileNotFoundError, OSError):  # pragma: no cover - raced
                pass
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - raced
            pass
    return removed


@atexit.register
def _drop_own_manifest() -> None:  # pragma: no cover - interpreter teardown
    """Remove this process's manifest; normal exits leave no tombstone."""
    _OWNED_SEGMENTS.clear()
    try:
        os.unlink(_manifest_path(os.getpid()))
    except OSError:
        pass


class ShmArena:
    """One growable shared-memory segment staging named numpy planes.

    The staging side of the zero-copy shard transport: per flush,
    :meth:`stage` packs the flush's planes (64-byte aligned, contiguous)
    into the segment — reusing it while it is big enough, replacing it
    (create new, unlink old) when the flush outgrows it — and returns a
    :class:`ShmHandle`.  Overwriting is safe because the executor joins
    every worker future before the next stage.

    The arena *owns* its segment: :meth:`close` unlinks it, and the
    executor calls close from its normal close path **and** its failure
    path, so a solver crash never leaks ``/dev/shm`` space.  ``close``
    is idempotent and the arena stays usable afterwards (the next stage
    re-creates a segment).
    """

    __slots__ = (
        "_shm",
        "_capacity",
        "stages",
        "segments_created",
        "stage_attempts",
        "fault_plan",
    )

    def __init__(self, fault_plan=None) -> None:
        self._shm = None
        self._capacity = 0
        #: Observability counters: plane-sets staged / segments created.
        self.stages = 0
        self.segments_created = 0
        #: Every `stage` call, including ones an injected fault aborted —
        #: the fault key, so a failed attempt does not doom the next one.
        self.stage_attempts = 0
        #: Optional :class:`~repro.faults.FaultPlan`; when set, `stage`
        #: may raise a deterministic injected shm failure that the
        #: executor's ladder absorbs.
        self.fault_plan = fault_plan

    @property
    def segment_name(self) -> str | None:
        return self._shm.name if self._shm is not None else None

    def stage(self, planes: "dict[str, np.ndarray]") -> ShmHandle:
        """Copy ``planes`` into the segment; return the attach handle."""
        if shared_memory is None:
            raise ConfigurationError("shared memory is unavailable on this platform")
        self.stage_attempts += 1
        if self.fault_plan is not None:
            self.fault_plan.fire(
                "shm_attach", key=(self.stage_attempts,), site="arena.stage"
            )
        layout: list[tuple[str, str, tuple[int, ...], int]] = []
        staged: list[tuple[int, np.ndarray]] = []
        offset = 0
        for name, array in planes.items():
            array = np.ascontiguousarray(array)
            offset = -(-offset // 64) * 64
            layout.append((name, array.dtype.str, array.shape, offset))
            staged.append((offset, array))
            offset += array.nbytes
        total = max(offset, 1)
        if self._shm is None or self._capacity < total:
            self.close()
            capacity = max(total, 2 * self._capacity)
            self._shm = shared_memory.SharedMemory(create=True, size=capacity)
            self._capacity = capacity
            self.segments_created += 1
            _register_segment(self._shm.name)
        buf = self._shm.buf
        for start, array in staged:
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=buf, offset=start)
            view[...] = array
        self.stages += 1
        return ShmHandle(segment=self._shm.name, layout=tuple(layout))

    def close(self) -> None:
        """Unlink and drop the segment (idempotent)."""
        if self._shm is not None:
            name = self._shm.name
            try:
                self._shm.close()
                self._shm.unlink()
            except (FileNotFoundError, OSError):  # already gone: fine
                pass
            _unregister_segment(name)
            self._shm = None
            self._capacity = 0


#: Worker-process attach cache: segment name -> open SharedMemory.  One
#: attach per (worker, segment) generation; entries for superseded
#: segments are pruned oldest-first so a grow-happy stream cannot pin
#: unbounded unlinked segments in a long-lived pool worker.
_ATTACHED: "dict[str, object]" = {}
_ATTACH_CACHE_LIMIT = 4


def attach_planes(handle: ShmHandle, tracer=NULL_TRACER) -> "dict[str, np.ndarray]":
    """Zero-copy numpy views over a staged segment (worker side).

    The first call for a segment opens and caches the mapping (the
    ``shard.shm_attach`` span; later calls are dict hits).  Python 3.11
    has no ``track=False``, and attaching registers the segment with the
    worker's resource tracker, so the attach compensates by start
    method: under ``spawn`` the worker has its *own* tracker that would
    warn about (and unlink!) "leaked" segments it does not own, so the
    registration is removed; under ``fork`` the tracker is shared with
    the staging process — the attach-registration is a set no-op there,
    and unregistering would strip the owner's entry instead.
    """
    if shared_memory is None:
        raise ConfigurationError("shared memory is unavailable on this platform")
    shm = _ATTACHED.get(handle.segment)
    if shm is None:
        with tracer.span("shard.shm_attach"):
            shm = shared_memory.SharedMemory(name=handle.segment)
            try:
                if multiprocessing.get_start_method(allow_none=True) != "fork":
                    resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # tracker internals shifted: views still work
                pass
            while len(_ATTACHED) >= _ATTACH_CACHE_LIMIT:
                oldest = next(iter(_ATTACHED))
                old = _ATTACHED.pop(oldest)
                try:
                    old.close()
                except OSError:
                    pass
            _ATTACHED[handle.segment] = shm
    buf = shm.buf
    return {
        name: np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf, offset=offset)
        for name, dtype, shape, offset in handle.layout
    }


def detach_all_planes() -> None:
    """Drop the worker-side attach cache (tests / pool recycling)."""
    for shm in _ATTACHED.values():
        try:
            shm.close()
        except OSError:
            pass
    _ATTACHED.clear()
