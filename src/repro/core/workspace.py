"""`EngineWorkspace` — a reusable buffer arena for the flush hot path.

Steady-state streaming solves thousands of small, similar instances: every
micro-flush used to allocate a fresh set of numpy buffers (sweep masks,
noise-draw memos, winner state) just to throw them away a millisecond
later.  :class:`EngineWorkspace` is the arena that amortises those
allocations: a long-lived owner (:class:`~repro.stream.simulator.
DispatchSimulator`, :class:`~repro.simulation.runner.BatchRunner`, a
:class:`~repro.stream.shards.ShardedFlushExecutor` running sequentially)
creates one workspace and threads it through
:meth:`~repro.core.engine.ConflictEliminationSolver.solve`; each solve
*leases* the arena, draws named buffers from it, and releases the lease on
the way out.

Correctness contract:

* **Bit-identical reuse.**  :meth:`request` always returns a view filled
  with the caller's ``fill`` value, so a reused buffer is
  indistinguishable from a fresh ``np.full`` allocation.  The property
  suite pins workspace-on == workspace-off for every registry method.
* **Single lease.**  The arena backs exactly one solve at a time.  A
  nested or concurrent :meth:`lease` does not raise — it simply yields
  ``None`` and the inner solve falls back to fresh allocations — so
  sharing a workspace across threads degrades to the old behaviour
  instead of corrupting state.
* **Released means empty.**  :meth:`release` drops every buffer;
  lifecycle owners call it from their ``close()`` (the same pooled-
  executor guarantee the shard pools have), so a finished
  :class:`~repro.api.session.DispatchSession` holds no arena memory.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.tracer import NULL_TRACER

__all__ = ["EngineWorkspace"]


class EngineWorkspace:
    """Named, growable numpy scratch buffers reused across solves.

    Buffers are keyed by name (re-allocated if the requested dtype ever
    changes) and grown geometrically, so after the first few flushes of a
    stream the steady state performs **zero** buffer allocations per
    solve.
    ``reuses`` / ``allocations`` count buffer requests served from the
    arena vs freshly allocated — the observability hook the flush-overhead
    benchmark reads.  ``tracer`` (settable by the stream owner) records a
    ``workspace.lease`` / ``workspace.contention`` point event per
    :meth:`lease` attempt; the no-op default costs one attribute call.
    """

    __slots__ = ("_buffers", "_leased", "reuses", "allocations", "leases", "tracer")

    def __init__(self, tracer=NULL_TRACER) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self._leased = False
        self.reuses = 0
        self.allocations = 0
        self.leases = 0
        self.tracer = tracer

    # -- lease lifecycle ----------------------------------------------------

    def lease(self) -> "EngineWorkspace | None":
        """Claim the arena for one solve; ``None`` if already claimed.

        The engine calls this at the top of a solve and falls back to
        fresh per-solve allocations when the arena is busy, which makes
        accidental sharing across threads safe (just not faster).
        """
        if self._leased:
            self.tracer.event("workspace.contention")
            return None
        self._leased = True
        self.leases += 1
        self.tracer.event("workspace.lease")
        return self

    def unlease(self) -> None:
        """Return the arena (idempotent)."""
        self._leased = False

    def release(self) -> None:
        """Drop every buffer (idempotent).  The arena stays usable:
        later requests simply re-allocate."""
        self._buffers.clear()
        self._leased = False

    @property
    def held_bytes(self) -> int:
        """Total bytes currently held by the arena's buffers."""
        return sum(buf.nbytes for buf in self._buffers.values())

    # -- buffer requests ----------------------------------------------------

    def request(self, name: str, size: int, dtype, fill) -> np.ndarray:
        """A length-``size`` 1-D view filled with ``fill``.

        The backing buffer persists across solves under ``(name, dtype)``
        and grows geometrically when ``size`` outruns it; the returned
        view is always freshly filled, so callers see exactly what
        ``np.full(size, fill, dtype)`` would have given them.
        """
        if size < 0:
            raise ConfigurationError(f"buffer size must be >= 0, got {size}")
        buf = self._buffers.get(name)
        if buf is None or buf.shape[0] < size or buf.dtype != dtype:
            capacity = max(size, 2 * buf.shape[0] if buf is not None else size, 1)
            buf = np.empty(capacity, dtype=dtype)
            self._buffers[name] = buf
            self.allocations += 1
        else:
            self.reuses += 1
        view = buf[:size]
        view[...] = fill
        return view
