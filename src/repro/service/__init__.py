"""The multi-tenant dispatch service.

:class:`DispatchService` multiplexes many concurrent tenant
:class:`~repro.api.session.DispatchSession`s on one asyncio loop — one
bounded inbound queue per tenant carrying the typed wire records of
:mod:`repro.api.wire`, a process-wide shared flush-fingerprint cache
with LRU/byte eviction and snapshot persistence, per-tenant
privacy-budget accounting surfaced as service metrics, and admission
shedding driven by the observed-vs-target flush-time signal.  With
``ServiceConfig.journal_dir`` set, accepted requests are written ahead
to per-tenant crash-safe journals (:class:`~repro.service.journal.
TenantJournal`) and :meth:`DispatchService.recover` rebuilds every
tenant session bit-identically after a kill.

Quickstart::

    from repro.service import DispatchService, ServiceClient, ServiceConfig

    service = DispatchService(ServiceConfig(queue_limit=32))
    client = ServiceClient(service, "tenant-0")
    await client.open("PUCE", options={"cache": True})
    await client.submit_worker(worker)
    await client.submit_task(task)
    await client.advance(1.0)
    events = await client.drain()
    final = await client.finish()
    await service.close()

Or from a shell: ``python -m repro.experiments serve`` reads JSONL
envelopes ``{"tenant": ..., "request": ...}`` on stdin and writes one
reply envelope per line.
"""

from repro.errors import JournalError, ServiceError
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.journal import TenantJournal, journal_tenants
from repro.service.server import DispatchService, serve_jsonl

__all__ = [
    "DispatchService",
    "JournalError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "TenantJournal",
    "journal_tenants",
    "serve_jsonl",
]
