"""`DispatchService` — many tenant sessions multiplexed on one process.

The first layer of the system that is a *server* rather than a
simulator.  Each tenant owns one :class:`~repro.api.session.
DispatchSession` behind an inbound :class:`asyncio.Queue`; a per-tenant
consumer task applies typed wire requests (:mod:`repro.api.wire`) to the
session strictly in order, so one tenant's requests never interleave —
the session's ordering contract — while thousands of tenants interleave
freely at the queue boundary.

What the service adds on top of the sessions it hosts:

* a **process-wide shared flush cache**
  (:class:`~repro.stream.cache.FlushSolverCache`): LRU + byte-bounded,
  snapshot-persisted across restarts via ``ServiceConfig.snapshot_path``;
* **admission control**: ``SubmitTask`` requests are shed (a
  :class:`~repro.api.wire.ShedReply`, never an exception) when the
  tenant's queue is full, its privacy budget is exhausted, or its
  observed flush service time exceeds the adaptive target
  (``backpressure_ratio`` × ``target_flush_seconds``, fed by the same
  per-flush ``solver_seconds`` signal the PR 6/7 controllers consume).
  Control requests (advance/drain/finish) are never shed — they wait;
* **per-tenant accounting as metrics**: request/shed/assignment
  counters, per-tenant privacy spend and latency gauges, an aggregate
  flush-seconds histogram — all on a
  :class:`~repro.obs.metrics.MetricsRegistry` rendering Prometheus text;
* **crash safety** (``ServiceConfig.journal_dir``): accepted requests
  are journaled ahead of being applied
  (:class:`~repro.service.journal.TenantJournal`), request sequence
  numbers make client retries idempotent, and :meth:`DispatchService.
  recover` rebuilds every tenant session bit-identically after a kill
  by replaying its journal through the one request path.

Everything runs on one event loop; session work executes synchronously
inside the consumer tasks (the solvers are CPU-bound numpy — a thread
pool would add GIL contention, not parallelism).  Fairness comes from
the one-request-per-loop-step queue discipline.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.api.options import SolveOptions
from repro.api.session import DispatchSession, SessionConfig
from repro.api.wire import (
    AckReply,
    AssignmentRecord,
    AssignmentsReply,
    BudgetReply,
    BudgetStatus,
    Drain,
    ErrorReply,
    Finish,
    FinishedReply,
    OpenSession,
    ShedReply,
    SubmitTask,
    WireRecord,
    decode_record,
    encode_record,
)
from repro.errors import ConfigurationError, JournalError, ReproError
from repro.faults import active_fault_plan
from repro.obs.indicators import Ewma
from repro.obs.metrics import MetricsRegistry
from repro.service.config import ServiceConfig
from repro.service.journal import TenantJournal, journal_tenants
from repro.stream.cache import FlushSolverCache

__all__ = ["DispatchService", "serve_jsonl"]


@dataclass
class _Tenant:
    """One tenant session and its service-side bookkeeping."""

    name: str
    session: DispatchSession
    queue: asyncio.Queue
    target_flush_seconds: float
    #: EWMA of non-cached flush solve times — the backpressure signal.
    flush_signal: Ewma = field(default_factory=lambda: Ewma(alpha=0.3, warmup=3))
    #: Flush records already folded into the signal/metrics.
    flushes_seen: int = 0
    #: Crash-safe write-ahead journal (``None`` = journaling off).
    journal: TenantJournal | None = None
    #: Highest request sequence number accepted — the idempotency
    #: high-water mark; a retry at or below it is a duplicate no-op.
    last_seq: int = 0
    consumer: asyncio.Task | None = None
    closed: bool = False


class DispatchService:
    """A long-lived asyncio dispatch server for many tenant sessions.

    Use :meth:`open_session` / :meth:`submit` from coroutines on one
    event loop (the in-process :class:`~repro.service.ServiceClient`
    wraps them per tenant), and :meth:`close` to wind the service down —
    remaining consumers stop, and the shared cache snapshots to
    ``config.snapshot_path`` if set.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        metrics: MetricsRegistry | None = None,
        cache: FlushSolverCache | None = None,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if cache is not None:
            self.cache = cache
        else:
            snapshot = self.config.snapshot_path
            if snapshot is not None and Path(snapshot).is_file():
                self.cache = FlushSolverCache.load(
                    snapshot,
                    max_entries=self.config.cache_entries,
                    max_bytes=self.config.cache_bytes,
                )
            else:
                self.cache = FlushSolverCache(
                    max_entries=self.config.cache_entries,
                    max_bytes=self.config.cache_bytes,
                )
        self._tenants: dict[str, _Tenant] = {}
        self._closed = False

    # -- introspection -----------------------------------------------------

    @property
    def open_sessions(self) -> int:
        """Tenant sessions currently open (not yet finished)."""
        return sum(1 for tenant in self._tenants.values() if not tenant.closed)

    def tenant_stats(self, tenant: str):
        """The live :class:`~repro.stream.metrics.StreamStats` of one tenant."""
        state = self._tenants.get(tenant)
        if state is None:
            raise ConfigurationError(f"tenant {tenant!r} has no session")
        return state.session.stats

    def render_metrics(self) -> str:
        """The service metrics as Prometheus text exposition."""
        self.metrics.gauge(
            "service_open_sessions", "tenant sessions currently open"
        ).set(self.open_sessions)
        self.metrics.gauge(
            "service_cache_entries", "entries in the shared flush cache"
        ).set(len(self.cache))
        self.metrics.gauge(
            "service_cache_bytes", "estimated bytes held by the shared flush cache"
        ).set(self.cache.total_bytes)
        self.metrics.gauge(
            "service_cache_evictions", "entries evicted from the shared flush cache"
        ).set(self.cache.evictions)
        return self.metrics.render_prometheus()

    # -- session lifecycle -------------------------------------------------

    async def open_session(
        self,
        tenant: str,
        record: OpenSession,
        *,
        _replay_journal: TenantJournal | None = None,
    ) -> WireRecord:
        """Open one tenant session; returns Ack, Shed, or Error.

        With journaling on, the ``OpenSession`` record is the journal's
        sequence-1 entry — the first thing :meth:`recover` replays.  A
        fresh open over stale journal files from an earlier incarnation
        truncates them: the client chose to start over rather than
        recover.  (``_replay_journal`` is :meth:`recover`'s private way
        to hand the already-read journal in without re-journaling.)
        """
        if self._closed:
            return ErrorReply(code="ConfigurationError", message="service is closed")
        existing = self._tenants.get(tenant)
        if existing is not None and not existing.closed:
            return ErrorReply(
                code="ConfigurationError",
                message=f"tenant {tenant!r} already has an open session",
            )
        if self.open_sessions >= self.config.max_sessions:
            self._count_shed(tenant, "max_sessions")
            return ShedReply(reason="max_sessions")
        try:
            options = (
                SolveOptions.from_mapping(record.options)
                if record.options is not None
                else self.config.default_options
            )
            session = DispatchSession(
                record.method,
                SessionConfig(
                    options=options,
                    default_deadline=record.default_deadline,
                    cache=self.cache,
                ),
            )
        except ReproError as exc:
            return ErrorReply(code=type(exc).__name__, message=str(exc))
        except Exception as exc:  # hostile wire values must not kill the loop
            return ErrorReply(code=type(exc).__name__, message=str(exc))
        journal = _replay_journal
        last_seq = journal.last_seq if journal is not None else 0
        if journal is None and self.config.journal_dir is not None:
            try:
                journal = TenantJournal(
                    self.config.journal_dir,
                    tenant,
                    fsync_every=self.config.journal_fsync_every,
                )
                journal.delete()  # stale files from an earlier incarnation
                journal.append(1, encode_record(record))
                last_seq = 1
            except (JournalError, OSError) as exc:
                session.close()
                return ErrorReply(code=type(exc).__name__, message=str(exc))
        state = _Tenant(
            name=tenant,
            session=session,
            queue=asyncio.Queue(maxsize=self.config.queue_limit),
            target_flush_seconds=options.target_flush_seconds,
            journal=journal,
            last_seq=last_seq,
        )
        state.consumer = asyncio.create_task(self._consume(state))
        self._tenants[tenant] = state
        self.metrics.counter(
            "service_sessions_opened_total", "tenant sessions opened"
        ).inc()
        return AckReply()

    async def submit(
        self, tenant: str, record: WireRecord, *, seq: int | None = None
    ) -> WireRecord:
        """Route one wire request to a tenant session and await its reply.

        ``SubmitTask`` requests pass admission control first and may come
        back as :class:`~repro.api.wire.ShedReply`; control requests
        (advance/drain/finish) always queue, waiting for room if needed.

        ``seq`` is the client's per-tenant request sequence number for
        at-least-once retries: a request at or below the tenant's
        accepted high-water mark is a duplicate and comes back as a
        plain :class:`~repro.api.wire.AckReply` without being applied —
        the retry of a journaled-but-unacknowledged request after a
        crash is a no-op.  Omitted, the service numbers the request
        itself (journaling still dedups on replay).
        """
        if seq is not None and (not isinstance(seq, int) or seq < 1):
            return ErrorReply(
                code="ConfigurationError",
                message=f"seq must be a positive integer, got {seq!r}",
            )
        state = self._tenants.get(tenant)
        if (
            seq is not None
            and state is not None
            and not state.closed
            and seq <= state.last_seq
        ):
            self.metrics.counter(
                "service_duplicates_total",
                "retried requests suppressed by sequence number",
                tenant=tenant,
            ).inc()
            return AckReply()
        if isinstance(record, OpenSession):
            return await self.open_session(tenant, record)
        if state is None or state.closed:
            return ErrorReply(
                code="ConfigurationError",
                message=f"tenant {tenant!r} has no open session",
            )
        if isinstance(record, SubmitTask):
            reason = self._admission(state)
            if reason is not None:
                self._count_shed(tenant, reason)
                return ShedReply(reason=reason)
        if seq is None:
            seq = state.last_seq + 1
        state.last_seq = max(state.last_seq, seq)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await state.queue.put((record, seq, future))
        return await future

    async def close(self) -> None:
        """Stop every consumer and snapshot the shared cache."""
        self._closed = True
        for state in list(self._tenants.values()):
            if state.consumer is not None and not state.consumer.done():
                await state.queue.join()
                state.consumer.cancel()
                try:
                    await state.consumer
                except asyncio.CancelledError:
                    pass
            if not state.closed:
                state.session.close()
                state.closed = True
                if state.journal is not None:
                    # Compact on clean shutdown; the files stay so the
                    # next incarnation can recover() the session.
                    state.journal.checkpoint()
                    state.journal.close()
        if self.config.snapshot_path is not None:
            self.cache.save(self.config.snapshot_path)

    # -- crash recovery ----------------------------------------------------

    async def recover(self) -> list[str]:
        """Rebuild tenant sessions from the journals in ``journal_dir``.

        For every tenant with journal files, replays the journaled
        record sequence through the session's one request path
        (:meth:`~repro.api.session.DispatchSession.apply`) — sessions
        are deterministic functions of their accepted records, so the
        rebuilt session is bit-identical to the one the crash took
        (the wire-equivalence property).  Tenants whose journal ends in
        a ``Finish`` (the crash hit between the final apply and the
        journal cleanup) are finished again and their journals removed.
        Returns the recovered tenant names.

        Call this once, after construction and before serving; a tenant
        that already has a live session is skipped.
        """
        directory = self.config.journal_dir
        if directory is None:
            return []
        recovered: list[str] = []
        for tenant in journal_tenants(directory):
            existing = self._tenants.get(tenant)
            if existing is not None and not existing.closed:
                continue
            journal = TenantJournal(
                directory, tenant, fsync_every=self.config.journal_fsync_every
            )
            entries = journal.entries()
            if not entries:
                journal.delete()
                continue
            first = decode_record(entries[0][1])
            if not isinstance(first, OpenSession):
                journal.close()
                raise JournalError(
                    f"tenant {tenant!r} journal does not start with an "
                    f"open_session record"
                )
            reply = await self.open_session(
                tenant, first, _replay_journal=journal
            )
            if not isinstance(reply, AckReply):
                journal.close()
                raise JournalError(
                    f"cannot reopen tenant {tenant!r} from its journal: "
                    f"{encode_record(reply)}"
                )
            state = self._tenants[tenant]
            finished = False
            for _seq, payload in entries[1:]:
                replayed = decode_record(payload)
                try:
                    state.session.apply(replayed)
                except Exception:
                    # The live consumer answered this request with an
                    # ErrorReply and carried on; replay must reproduce
                    # the same deterministic (non-)mutation and move on.
                    pass
                if isinstance(replayed, Finish):
                    finished = True
            # Replayed flushes are history, not live signal — keep them
            # out of the backpressure EWMA and the service metrics.
            state.flushes_seen = len(state.session.stats.flushes)
            if finished:
                state.closed = True
                state.session.close()
                if state.consumer is not None:
                    state.consumer.cancel()
                    try:
                        await state.consumer
                    except asyncio.CancelledError:
                        pass
                journal.delete()
            recovered.append(tenant)
            self.metrics.counter(
                "service_sessions_recovered_total",
                "tenant sessions rebuilt from journals",
            ).inc()
        return recovered

    # -- admission control -------------------------------------------------

    def _admission(self, state: _Tenant) -> str | None:
        """Why a ``SubmitTask`` must be shed right now (``None`` = admit).

        The budget gate prices against :meth:`DispatchSession.
        budget_spend` — lifetime spend under the global accountant
        (exactly the old ``total_privacy_spend`` check), *in-window*
        spend under a sliding-window accountant: a tenant shed for
        budget is admitted again once its releases age out.
        """
        budget = self.config.tenant_budget
        if budget is not None and state.session.budget_spend() >= budget:
            return "budget"
        ratio = self.config.backpressure_ratio
        if (
            ratio is not None
            and state.flush_signal.ready
            and state.flush_signal.value > ratio * state.target_flush_seconds
        ):
            return "backpressure"
        if state.queue.full():
            return "queue_full"
        return None

    def _overlay_tenant_budget(self, reply: BudgetReply) -> BudgetReply:
        """Fold ``config.tenant_budget`` into a tenant-level budget reply."""
        budget = self.config.tenant_budget
        if budget is None:
            return reply
        remaining = max(0.0, budget - reply.spend)
        if reply.remaining is not None:
            remaining = min(remaining, reply.remaining)
        return BudgetReply(
            spend=reply.spend,
            lifetime_spend=reply.lifetime_spend,
            remaining=remaining,
            window_seconds=reply.window_seconds,
            worker_id=reply.worker_id,
        )

    def _count_shed(self, tenant: str, reason: str) -> None:
        self.metrics.counter(
            "service_shed_total",
            "requests refused at admission",
            tenant=tenant,
            reason=reason,
        ).inc()

    # -- the per-tenant consumer -------------------------------------------

    async def _consume(self, state: _Tenant) -> None:
        """Apply queued requests to the tenant's session, strictly in order.

        With journaling on, each request is journaled *before* it is
        applied (write-ahead): a crash after the journal write replays
        the request on recovery, and the client's retry of its
        unacknowledged request dedups by sequence number.  A request
        the journal cannot make durable is refused with an error — the
        session must never run ahead of its own recovery log.
        """
        while True:
            record, seq, future = await state.queue.get()
            plan = active_fault_plan()
            if plan is not None and plan.should_fire(
                "queue_stall", key=(seq,), site="service.consume"
            ):
                # A stalled consumer: yield the loop a few extra times
                # before applying.  Order within the tenant is
                # preserved, so results are unchanged — only latency.
                self.metrics.counter(
                    "service_faults_total",
                    "injected faults observed",
                    kind="queue_stall",
                ).inc()
                for _ in range(8):
                    await asyncio.sleep(0)
            if state.journal is not None:
                try:
                    state.journal.append(seq, encode_record(record))
                    checkpoint_every = self.config.journal_checkpoint_every
                    if state.journal.since_checkpoint >= checkpoint_every:
                        state.journal.checkpoint()
                except (JournalError, OSError) as exc:
                    reply = ErrorReply(
                        code=type(exc).__name__, message=str(exc)
                    )
                    if not future.done():
                        future.set_result(reply)
                    state.queue.task_done()
                    continue
            try:
                outcome = state.session.apply(record)
                if isinstance(record, Finish):
                    # The finishing flush lands after the last explicit
                    # Drain a tenant could send; ship its decisions home.
                    leftovers = tuple(
                        AssignmentRecord.from_assignment(event)
                        for event in state.session.drain()
                    )
                    reply: WireRecord = FinishedReply.from_stats(
                        outcome, leftovers
                    )
                elif isinstance(record, BudgetStatus) and record.worker_id is None:
                    # Tenant-level readings get the service's admission
                    # cap folded in — the reply's `remaining` is what
                    # admission actually sheds against.
                    reply = self._overlay_tenant_budget(outcome)
                else:
                    reply = _reply_for(record, outcome)
            except ReproError as exc:
                reply = ErrorReply(code=type(exc).__name__, message=str(exc))
            except Exception as exc:  # solver bugs must not kill the loop
                reply = ErrorReply(code=type(exc).__name__, message=str(exc))
            self._observe(state, record, reply)
            if not future.done():
                future.set_result(reply)
            state.queue.task_done()
            if isinstance(record, Finish) and not isinstance(reply, ErrorReply):
                state.closed = True
                state.session.close()
                if state.journal is not None:
                    # The session reached its natural end: there is
                    # nothing left to recover, so the journal goes too.
                    state.journal.delete()
                return

    def _observe(
        self, state: _Tenant, record: WireRecord, reply: WireRecord
    ) -> None:
        """Fold one applied request into metrics and the flush signal."""
        self.metrics.counter(
            "service_requests_total",
            "wire requests applied",
            tenant=state.name,
            kind=record.kind,
        ).inc()
        if isinstance(reply, AssignmentsReply) and reply.assignments:
            self.metrics.counter(
                "service_assignments_total",
                "assignments delivered to tenants",
                tenant=state.name,
            ).inc(len(reply.assignments))
        stats = state.session.stats
        flushes = stats.flushes
        if len(flushes) > state.flushes_seen:
            histogram = self.metrics.histogram(
                "service_flush_seconds", "per-flush wall clock across all tenants"
            )
            for flush in flushes[state.flushes_seen :]:
                histogram.observe(flush.flush_seconds or flush.solver_seconds)
                if not flush.cache_hit:
                    state.flush_signal.update(flush.solver_seconds)
                if flush.degraded:
                    self.metrics.counter(
                        "service_degraded_flushes_total",
                        "flushes that walked the degradation ladder",
                        tenant=state.name,
                    ).inc()
            state.flushes_seen = len(flushes)
            self.metrics.gauge(
                "service_tenant_privacy_spend",
                "cumulative published privacy budget",
                tenant=state.name,
            ).set(stats.total_privacy_spend)
            if stats.window_timeline:
                self.metrics.gauge(
                    "service_tenant_window_spend",
                    "fleet in-window privacy spend",
                    tenant=state.name,
                ).set(stats.current_window_spend)
            if stats.latencies:
                self.metrics.gauge(
                    "service_tenant_latency_p95",
                    "rolling p95 assignment latency",
                    tenant=state.name,
                ).set(stats.online.latency_p95)


def _reply_for(record: WireRecord, outcome: Any) -> WireRecord:
    """The wire reply matching one applied request's domain outcome.

    ``Finish`` is handled inline by the consumer (its reply needs the
    post-finish drain), as are tenant-level ``BudgetStatus`` readings
    (their reply needs the service's tenant cap); everything else maps
    here.
    """
    if isinstance(record, Drain):
        return AssignmentsReply(
            assignments=tuple(
                AssignmentRecord.from_assignment(event) for event in outcome
            )
        )
    if isinstance(record, BudgetStatus):
        return outcome
    return AckReply()


async def serve_jsonl(
    service: DispatchService,
    lines: Iterable[str],
    write: Callable[[str], None],
) -> int:
    """Drive a service from JSONL envelopes; returns requests served.

    Each input line is ``{"tenant": <str>, "request": <wire dict>}``
    with an optional ``"seq"`` retry sequence number; each output line
    is ``{"tenant": <str>, "reply": <wire dict>}``.  Malformed lines
    come back as :class:`~repro.api.wire.ErrorReply` envelopes instead
    of killing the loop — a server must outlive its worst client.
    """
    served = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        tenant = None
        try:
            envelope = json.loads(line)
            tenant = envelope.get("tenant")
            if not isinstance(tenant, str):
                raise ConfigurationError(
                    f"envelope tenant must be a string, got {tenant!r}"
                )
            seq = envelope.get("seq")
            if seq is not None and (not isinstance(seq, int) or seq < 1):
                raise ConfigurationError(
                    f"envelope seq must be a positive integer, got {seq!r}"
                )
            record = decode_record(envelope["request"])
        except (json.JSONDecodeError, KeyError, TypeError, AttributeError) as exc:
            reply: WireRecord = ErrorReply(
                code=type(exc).__name__, message=str(exc)
            )
            write(json.dumps({"tenant": tenant, "reply": encode_record(reply)}))
            continue
        except ReproError as exc:
            reply = ErrorReply(code=type(exc).__name__, message=str(exc))
            write(json.dumps({"tenant": tenant, "reply": encode_record(reply)}))
            continue
        reply = await service.submit(tenant, record, seq=seq)
        write(json.dumps({"tenant": tenant, "reply": encode_record(reply)}))
        served += 1
    return served
