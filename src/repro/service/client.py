"""`ServiceClient` — the in-process tenant-side view of the service.

One client per tenant, wrapping :class:`~repro.service.DispatchService`
coroutines in the same verbs :class:`~repro.api.session.DispatchSession`
speaks (``submit_task`` / ``submit_worker`` / ``advance`` / ``drain`` /
``finish``), but going through the typed wire records — so a workload
driven through a client exercises exactly the bytes a remote tenant
would send.  Domain objects in, domain objects out: ``drain`` returns
:class:`~repro.stream.simulator.Assignment` events rebuilt from the
reply, not wire dicts.

Error handling: with ``raise_errors=True`` (default) an
:class:`~repro.api.wire.ErrorReply` raises
:class:`~repro.errors.ServiceError` carrying the server-side exception
class name as ``code``.  :class:`~repro.api.wire.ShedReply` is *never*
an exception — shedding is the service working as designed, and callers
must see it to back off.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Mapping

from repro.api.wire import (
    Advance,
    BudgetStatus,
    Drain,
    ErrorReply,
    Finish,
    FinishedReply,
    OpenSession,
    ShedReply,
    SubmitTask,
    SubmitWorker,
    WireRecord,
)
from repro.errors import ServiceError

if TYPE_CHECKING:
    from repro.datasets.workload import Task, Worker
    from repro.service.server import DispatchService
    from repro.stream.simulator import Assignment

__all__ = ["ServiceClient"]


class ServiceClient:
    """One tenant's handle on an in-process dispatch service."""

    def __init__(
        self,
        service: "DispatchService",
        tenant: str,
        *,
        raise_errors: bool = True,
    ):
        self.service = service
        self.tenant = tenant
        self.raise_errors = raise_errors
        #: SubmitTask requests the service refused at admission.
        self.shed = 0

    async def request(self, record: WireRecord) -> WireRecord:
        """Send one wire record; returns the raw wire reply."""
        reply = await self.service.submit(self.tenant, record)
        if isinstance(reply, ShedReply):
            self.shed += 1
        elif isinstance(reply, ErrorReply) and self.raise_errors:
            raise ServiceError(reply.message, code=reply.code)
        return reply

    async def open(
        self,
        method: str,
        *,
        options: Mapping[str, Any] | None = None,
        default_deadline: float = 1.0,
    ) -> WireRecord:
        """Open this tenant's session on the service."""
        return await self.request(
            OpenSession(
                method=method,
                options=dict(options) if options is not None else None,
                default_deadline=default_deadline,
            )
        )

    async def submit_task(
        self,
        task: "Task",
        *,
        at: float | None = None,
        deadline: float | None = None,
    ) -> WireRecord:
        """Submit one task arrival; the reply may be a ShedReply."""
        return await self.request(
            SubmitTask.from_task(task, at=at, deadline=deadline)
        )

    async def submit_worker(
        self,
        worker: "Worker",
        *,
        at: float = 0.0,
        budget: float = math.inf,
    ) -> WireRecord:
        """Submit one worker arrival."""
        return await self.request(
            SubmitWorker.from_worker(worker, at=at, budget=budget)
        )

    async def advance(self, to_time: float) -> WireRecord:
        """Advance this tenant's session clock."""
        return await self.request(Advance(to_time=to_time))

    async def drain(self) -> tuple["Assignment", ...]:
        """Collect assignment events since the last drain."""
        reply = await self.request(Drain())
        if isinstance(reply, (ErrorReply, ShedReply)):
            return ()
        return tuple(record.to_assignment() for record in reply.assignments)

    async def budget_status(self, worker_id: int | None = None) -> WireRecord:
        """Query remaining (window) budget without submitting work.

        Returns a :class:`~repro.api.wire.BudgetReply`: one worker's
        reading with ``worker_id``, the tenant-level admission reading
        (``tenant_budget`` folded in) without.
        """
        return await self.request(BudgetStatus(worker_id=worker_id))

    async def finish(self) -> FinishedReply | WireRecord:
        """Flush leftovers, close the session, return the final stats."""
        return await self.request(Finish())
