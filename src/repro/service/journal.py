"""Crash-safe per-tenant dispatch journals — write-ahead wire records.

The service's durability layer: every accepted wire request is appended
to the tenant's journal *before* it is applied, so a service process
killed mid-run can be restarted and every tenant session rebuilt
bit-identically by replaying the journal through the one request path
(:meth:`~repro.api.session.DispatchSession.apply`) the live service
uses.  Sessions are deterministic functions of their accepted record
sequence — that is the wire-equivalence property the test suite pins —
so replay *is* recovery; no session state is ever serialized.

On-disk format (``<journal_dir>/<quoted tenant>.wal`` / ``.ckpt``): one
framed line per entry ::

    <length:08x> <crc32:08x> {"record": {...}, "seq": N}\\n

``length`` and ``crc32`` cover the JSON payload bytes, so a torn tail —
the half-written line a crash leaves behind — fails its frame check and
is truncated away on open instead of poisoning the replay.  Sequence
numbers are per-tenant, strictly increasing, and deduplicated on read:
a client retry of an already-journaled request is a no-op.

``checkpoint()`` folds the write-ahead log into the ``.ckpt`` file with
an atomic tmp-write + ``os.replace`` and truncates the log, bounding
the number of loose frames a restart must scan.  Both files use the
same framing; replay reads the checkpoint first, then the log, skipping
any sequence number already seen (a crash between the replace and the
truncate double-records entries; the dedup makes that window harmless).
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Mapping
from urllib.parse import quote, unquote

from repro.errors import ConfigurationError, JournalError

__all__ = ["TenantJournal", "journal_tenants"]

#: Bytes of ``"<length:08x> <crc32:08x> "`` preceding every payload.
_FRAME_HEADER = 18


def _frame(payload: bytes) -> bytes:
    """One framed journal line: length + crc32 guard the payload."""
    return b"%08x %08x " % (len(payload), zlib.crc32(payload)) + payload + b"\n"


def _encode_entry(seq: int, record: Mapping[str, Any]) -> bytes:
    payload = json.dumps(
        {"record": dict(record), "seq": seq},
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    return _frame(payload)


def _parse_frames(data: bytes) -> "tuple[list[Any], int]":
    """Decode framed lines; returns ``(payloads, clean_byte_length)``.

    Parsing stops at the first frame that fails any check — a short
    header, a length or crc32 mismatch, or unparsable JSON.  That is
    the torn tail a crash mid-append leaves; everything before it was
    fully written (each frame self-verifies), everything at and after
    it is suspect and must be truncated, never replayed.
    """
    payloads: list[Any] = []
    offset = 0
    while offset < len(data):
        end = data.find(b"\n", offset)
        if end < 0:
            break
        line = data[offset:end]
        if len(line) < _FRAME_HEADER or line[8:9] != b" " or line[17:18] != b" ":
            break
        try:
            length = int(line[0:8], 16)
            checksum = int(line[9:17], 16)
        except ValueError:
            break
        body = line[_FRAME_HEADER:]
        if len(body) != length or zlib.crc32(body) != checksum:
            break
        try:
            payloads.append(json.loads(body.decode("utf-8")))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        offset = end + 1
    return payloads, offset


def journal_tenants(directory: "str | Path") -> list[str]:
    """Tenant names with journal files under ``directory``, sorted.

    The inverse of the filename quoting: a tenant named ``"a/b"``
    journals to ``a%2Fb.wal`` and comes back as ``"a/b"`` here.
    """
    root = Path(directory)
    if not root.is_dir():
        return []
    names = {
        unquote(path.stem)
        for path in root.iterdir()
        if path.suffix in (".wal", ".ckpt")
    }
    return sorted(names)


class TenantJournal:
    """One tenant's append-only write-ahead journal.

    Not thread-safe — the service's per-tenant consumer is the single
    writer, which is exactly the ordering the journal must capture.

    ``fsync_every`` batches fsyncs: 1 (the default) syncs every append
    before it returns — an acknowledged request is durable; larger
    values trade the tail of a crash (at most ``fsync_every - 1``
    acknowledged entries) for fewer disk round-trips.
    """

    def __init__(
        self,
        directory: "str | Path",
        tenant: str,
        *,
        fsync_every: int = 1,
    ):
        if fsync_every < 1:
            raise ConfigurationError(
                f"fsync_every must be >= 1, got {fsync_every}"
            )
        self.tenant = tenant
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise JournalError(
                f"cannot create journal directory {self.directory}: {exc}"
            ) from exc
        stem = quote(tenant, safe="")
        self.wal_path = self.directory / (stem + ".wal")
        self.ckpt_path = self.directory / (stem + ".ckpt")
        self.fsync_every = fsync_every
        #: Highest sequence number written or replayed so far.
        self.last_seq = 0
        #: Entries appended since the last :meth:`checkpoint`.
        self.since_checkpoint = 0
        self._handle: Any = None
        self._pending = 0

    # -- reading -----------------------------------------------------------

    def entries(self) -> "list[tuple[int, dict[str, Any]]]":
        """Every journaled ``(seq, wire_record_dict)`` in replay order.

        Reads the checkpoint then the write-ahead log, truncating any
        torn tail in place and skipping duplicate sequence numbers.
        Updates :attr:`last_seq` to the highest sequence seen.
        """
        combined: list[tuple[int, dict[str, Any]]] = []
        last = 0
        for path in (self.ckpt_path, self.wal_path):
            try:
                data = path.read_bytes()
            except FileNotFoundError:
                continue
            payloads, clean = _parse_frames(data)
            if clean < len(data):
                with open(path, "r+b") as handle:
                    handle.truncate(clean)
            for payload in payloads:
                if (
                    not isinstance(payload, dict)
                    or not isinstance(payload.get("seq"), int)
                    or not isinstance(payload.get("record"), dict)
                ):
                    # A checksummed frame with the wrong shape is a
                    # writer bug, not a crash — refuse to guess.
                    raise JournalError(
                        f"tenant {self.tenant!r} journal entry is not a "
                        f"seq/record pair: {payload!r}"
                    )
                seq = payload["seq"]
                if seq > last:
                    combined.append((seq, payload["record"]))
                    last = seq
        self.last_seq = max(self.last_seq, last)
        return combined

    # -- writing -----------------------------------------------------------

    def append(self, seq: int, record: Mapping[str, Any]) -> None:
        """Journal one accepted wire record under sequence ``seq``.

        Sequence numbers must strictly increase — deduplicating retries
        is the caller's (the service's) admission job, so a regression
        here is a bug, not a retry.
        """
        if seq <= self.last_seq:
            raise JournalError(
                f"tenant {self.tenant!r} journal sequence must increase: "
                f"got {seq} after {self.last_seq}"
            )
        if self._handle is None:
            self._handle = open(self.wal_path, "ab")
        self._handle.write(_encode_entry(seq, record))
        self.last_seq = seq
        self.since_checkpoint += 1
        self._pending += 1
        if self._pending >= self.fsync_every:
            self.sync()

    def sync(self) -> None:
        """Flush buffered appends to disk (fsync)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self._pending = 0

    def checkpoint(self) -> None:
        """Fold the write-ahead log into the checkpoint file.

        The new checkpoint is written to a temp file, fsynced, and
        atomically renamed over the old one before the log is
        truncated — a crash at any point leaves either the old
        checkpoint + full log or the new checkpoint (+ a log whose
        entries the sequence dedup skips on replay).
        """
        self.sync()
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        entries = self.entries()
        tmp = self.ckpt_path.with_name(self.ckpt_path.name + ".tmp")
        with open(tmp, "wb") as handle:
            for seq, record in entries:
                handle.write(_encode_entry(seq, record))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.ckpt_path)
        with open(self.wal_path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        self.since_checkpoint = 0

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Sync and release the write handle (files stay for recovery)."""
        self.sync()
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def delete(self) -> None:
        """Remove the tenant's journal files (the session finished)."""
        self.close()
        for path in (self.wal_path, self.ckpt_path):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "TenantJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
