"""`ServiceConfig` — the multi-tenant dispatch service's knobs.

Validated once on construction (the same single-validation-path idiom as
:class:`~repro.api.options.SolveOptions`); every knob fails with a typed
:class:`~repro.errors.ConfigurationError` wherever it enters — the
constructor, :meth:`ServiceConfig.from_mapping`, or the ``serve`` CLI.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping

from repro.api.options import SolveOptions, reject_unknown_keys
from repro.errors import ConfigurationError

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Admission, backpressure, cache and accounting knobs of the service.

    Parameters
    ----------
    max_sessions:
        Open sessions the service will hold at once; an
        :class:`~repro.api.wire.OpenSession` past the cap is shed.
    queue_limit:
        Inbound-queue depth per tenant session.  A ``SubmitTask`` that
        would overflow it is shed; control requests (advance, drain,
        finish) instead wait for room — they must never be dropped, or
        the tenant could not wind its session down.
    backpressure_ratio:
        Shed ``SubmitTask`` requests while a tenant's observed flush
        solve time (EWMA over its non-cached flushes) exceeds this
        multiple of its ``target_flush_seconds`` — the same adaptive
        target the PR 6/7 batching controller steers toward.  ``None``
        disables backpressure shedding.
    tenant_budget:
        Per-tenant privacy-spend cap: once a session's charged spend
        reaches it, further ``SubmitTask`` requests are shed (workers on
        that session stop accruing spend for new work).  The charged
        spend is the session accountant's reading
        (:meth:`~repro.api.session.DispatchSession.budget_spend`):
        lifetime total under the default global accountant, *in-window*
        total when the session's options set ``window_seconds`` — a
        windowed tenant shed for budget is admitted again once its
        releases age out of the window.  ``None`` disables the cap.
    cache_entries, cache_bytes:
        Bounds of the process-wide shared flush-fingerprint cache
        (:class:`~repro.stream.cache.FlushSolverCache`): entry count and
        estimated resident bytes (``None`` = no byte bound).
    snapshot_path:
        Where the shared cache persists across restarts: loaded at
        service construction when the file exists, written on
        :meth:`~repro.service.DispatchService.close`.  ``None`` disables
        persistence.
    journal_dir:
        Directory of per-tenant crash-safe journals
        (:class:`~repro.service.journal.TenantJournal`): every accepted
        request is written ahead of being applied, and
        :meth:`~repro.service.DispatchService.recover` rebuilds every
        tenant session bit-identically after a crash by replaying it.
        ``None`` (the default) disables journaling.
    journal_fsync_every:
        Fsync the journal every N appends.  1 (the default) makes every
        acknowledged request durable before its reply; larger values
        batch syncs and risk at most the last ``N - 1`` acknowledged
        entries on a crash.
    journal_checkpoint_every:
        Fold the write-ahead log into the checkpoint file after this
        many appended entries, bounding the loose frames a restart
        scans.
    default_options:
        :class:`~repro.api.options.SolveOptions` applied to sessions
        whose :class:`~repro.api.wire.OpenSession` carries no options.
    """

    max_sessions: int = 10_000
    queue_limit: int = 64
    backpressure_ratio: float | None = 4.0
    tenant_budget: float | None = None
    cache_entries: int = 1024
    cache_bytes: int | None = 256 * 2**20
    snapshot_path: str | None = None
    journal_dir: str | None = None
    journal_fsync_every: int = 1
    journal_checkpoint_every: int = 256
    default_options: SolveOptions = SolveOptions()

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be >= 1, got {self.max_sessions}"
            )
        if self.queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.backpressure_ratio is not None and not self.backpressure_ratio > 0:
            raise ConfigurationError(
                f"backpressure_ratio must be positive or None, "
                f"got {self.backpressure_ratio}"
            )
        if self.tenant_budget is not None and not self.tenant_budget > 0:
            raise ConfigurationError(
                f"tenant_budget must be positive or None, got {self.tenant_budget}"
            )
        if self.cache_entries < 1:
            raise ConfigurationError(
                f"cache_entries must be >= 1, got {self.cache_entries}"
            )
        if self.cache_bytes is not None and self.cache_bytes < 1:
            raise ConfigurationError(
                f"cache_bytes must be >= 1 or None, got {self.cache_bytes}"
            )
        if self.journal_fsync_every < 1:
            raise ConfigurationError(
                f"journal_fsync_every must be >= 1, "
                f"got {self.journal_fsync_every}"
            )
        if self.journal_checkpoint_every < 1:
            raise ConfigurationError(
                f"journal_checkpoint_every must be >= 1, "
                f"got {self.journal_checkpoint_every}"
            )
        if not isinstance(self.default_options, SolveOptions):
            raise ConfigurationError(
                f"default_options must be a SolveOptions, "
                f"got {type(self.default_options).__name__}"
            )

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ServiceConfig":
        """Build from a plain dict (JSON), rejecting unknown keys."""
        data = reject_unknown_keys(cls, mapping, "service")
        options = data.get("default_options")
        if isinstance(options, Mapping):
            data["default_options"] = SolveOptions.from_mapping(options)
        return cls(**data)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict that :meth:`from_mapping` round-trips."""
        payload = dataclasses.asdict(self)
        payload["default_options"] = self.default_options.to_dict()
        return payload

    def replace(self, **changes: Any) -> "ServiceConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)
