"""`MethodSpec` — parseable, canonical names for configured method variants.

The registry's Table IX names (``"PUCE"``, ``"PDCE-nppcf"``) cover only
the variants someone thought to pre-register.  :class:`MethodSpec` makes
the *configuration* part of the name: ``"PDCE(ppcf=off)"`` or
``"UCE(sweep=scalar, max_rounds=500)"`` parse into a spec, format back
canonically, and build the corresponding solver — so the registry, CLI,
benchmarks and reports all name configured variants the same way.

Grammar::

    spec   := base | base "(" param ("," param)* ")"
    param  := key "=" value
    value  := "on" | "off" | "true" | "false" | integer | identifier

Legacy registry names (``"PUCE-nppcf"``) parse as their spec equivalents
(``MethodSpec("PUCE", ppcf=False)``), and a spec's
:meth:`~MethodSpec.registry_name` is always the name the built solver
reports — so nothing downstream of a solver ever sees a new name.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.api.options import SolveOptions, validate_sweep
from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.core.registry import Solver

__all__ = ["MethodSpec"]

#: base name -> (takes ppcf, takes sweep/max_rounds, takes max_passes)
_BASES: dict[str, tuple[bool, bool, bool]] = {
    "PUCE": (True, True, False),
    "PDCE": (True, True, False),
    "UCE": (False, True, False),
    "DCE": (False, True, False),
    "PGT": (False, False, True),
    "GT": (False, False, True),
    "GRD": (False, False, False),
    "OPT": (False, False, False),
}

_PRIVATE_BASES = frozenset({"PUCE", "PDCE", "PGT"})

_SPEC_RE = re.compile(r"^\s*([A-Za-z]+(?:-nppcf)?)\s*(?:\((.*)\))?\s*$")


def _parse_value(key: str, raw: str) -> "bool | int | str":
    raw = raw.strip()
    lowered = raw.lower()
    if lowered in ("on", "true"):
        return True
    if lowered in ("off", "false"):
        return False
    if re.fullmatch(r"-?\d+", raw):
        return int(raw)
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", raw):
        return raw
    raise ConfigurationError(f"cannot parse value {raw!r} for {key!r}")


@dataclass(frozen=True)
class MethodSpec:
    """One method variant: a Table IX base plus its configuration.

    ``ppcf=None`` / ``sweep=None`` / ``max_rounds=None`` /
    ``max_passes=None`` mean "the method default" (PPCF on, ``sweep`` and
    round caps from :class:`~repro.api.options.SolveOptions` or the
    engine defaults).  ``ppcf=True`` normalises to ``None`` so equal
    configurations compare and format equal.
    """

    base: str
    ppcf: bool | None = None
    sweep: str | None = None
    max_rounds: int | None = None
    max_passes: int | None = None

    def __post_init__(self) -> None:
        caps = _BASES.get(self.base)
        if caps is None:
            raise ConfigurationError(
                f"unknown method {self.base!r}; "
                f"available: {', '.join(sorted(_BASES))}"
            )
        takes_ppcf, takes_sweep, takes_passes = caps
        if self.ppcf is not None and not takes_ppcf:
            raise ConfigurationError(
                f"{self.base} has no PPCF gate; ppcf= only applies to PUCE/PDCE"
            )
        if not takes_sweep:
            if self.sweep is not None:
                raise ConfigurationError(
                    f"{self.base} is not a conflict-elimination method; "
                    f"sweep= does not apply"
                )
            if self.max_rounds is not None:
                raise ConfigurationError(
                    f"{self.base} is not a conflict-elimination method; "
                    f"max_rounds= does not apply"
                )
        if self.max_passes is not None and not takes_passes:
            raise ConfigurationError(
                f"max_passes= only applies to PGT/GT, not {self.base}"
            )
        if self.sweep is not None:
            validate_sweep(self.sweep)
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be >= 1, got {self.max_rounds}"
            )
        if self.max_passes is not None and self.max_passes < 1:
            raise ConfigurationError(
                f"max_passes must be >= 1, got {self.max_passes}"
            )
        if self.ppcf is True:  # "ppcf=on" is the default: normalise away
            object.__setattr__(self, "ppcf", None)

    # -- parsing / formatting ----------------------------------------------

    @classmethod
    def parse(cls, text: "str | MethodSpec") -> "MethodSpec":
        """Parse ``"PUCE"``, ``"PDCE(ppcf=off)"``, or a legacy name."""
        if isinstance(text, MethodSpec):
            return text
        match = _SPEC_RE.match(text)
        if match is None:
            raise ConfigurationError(f"cannot parse method spec {text!r}")
        base, arglist = match.group(1), match.group(2)
        params: dict[str, bool | int | str] = {}
        if base.endswith("-nppcf"):
            base = base[: -len("-nppcf")]
            params["ppcf"] = False
        if arglist is not None and arglist.strip():
            for item in arglist.split(","):
                if "=" not in item:
                    raise ConfigurationError(
                        f"method parameter {item.strip()!r} is not key=value"
                    )
                key, raw = item.split("=", 1)
                key = key.strip()
                if key not in ("ppcf", "sweep", "max_rounds", "max_passes"):
                    raise ConfigurationError(
                        f"unknown method parameter {key!r}; "
                        f"valid: ppcf, sweep, max_rounds, max_passes"
                    )
                if key in params:
                    raise ConfigurationError(f"duplicate method parameter {key!r}")
                params[key] = _parse_value(key, raw)
        try:
            return cls(base, **params)  # type: ignore[arg-type]
        except TypeError as exc:
            raise ConfigurationError(str(exc)) from None

    def canonical(self) -> str:
        """The minimal spec string that parses back to an equal spec."""
        parts = []
        if self.ppcf is False:
            parts.append("ppcf=off")
        if self.sweep is not None:
            parts.append(f"sweep={self.sweep}")
        if self.max_rounds is not None:
            parts.append(f"max_rounds={self.max_rounds}")
        if self.max_passes is not None:
            parts.append(f"max_passes={self.max_passes}")
        return f"{self.base}({', '.join(parts)})" if parts else self.base

    def __str__(self) -> str:
        return self.canonical()

    # -- semantics ---------------------------------------------------------

    @property
    def is_private(self) -> bool:
        return self.base in _PRIVATE_BASES

    def registry_name(self) -> str:
        """The Table IX name the built solver reports (``.name``)."""
        return f"{self.base}-nppcf" if self.ppcf is False else self.base

    def make(self, options: SolveOptions | None = None) -> "Solver":
        """Build the configured solver.

        Spec-level parameters win over ``options``; ``options`` fills the
        gaps (``sweep``, ``max_rounds``, and — for PUCE/PDCE — ``ppcf``).
        """
        from repro.core.nonprivate import DCESolver, GreedySolver, UCESolver
        from repro.core.optimal import OptimalSolver
        from repro.core.pdce import PDCESolver
        from repro.core.pgt import GTSolver, PGTSolver
        from repro.core.puce import PUCESolver

        sweep = self.sweep or (options.sweep if options is not None else "auto")
        threshold = options.sweep_auto_threshold if options is not None else None
        max_rounds = (
            self.max_rounds
            or (options.max_rounds if options is not None else None)
            or 100_000
        )
        use_ppcf = self.ppcf
        if use_ppcf is None and options is not None:
            use_ppcf = options.ppcf
        if use_ppcf is None:
            use_ppcf = True
        if self.base == "PUCE":
            return PUCESolver(
                use_ppcf=use_ppcf,
                max_rounds=max_rounds,
                sweep=sweep,
                sweep_auto_threshold=threshold,
            )
        if self.base == "PDCE":
            return PDCESolver(
                use_ppcf=use_ppcf,
                max_rounds=max_rounds,
                sweep=sweep,
                sweep_auto_threshold=threshold,
            )
        if self.base == "UCE":
            return UCESolver(
                max_rounds=max_rounds, sweep=sweep, sweep_auto_threshold=threshold
            )
        if self.base == "DCE":
            return DCESolver(
                max_rounds=max_rounds, sweep=sweep, sweep_auto_threshold=threshold
            )
        if self.base == "PGT":
            return PGTSolver(max_passes=self.max_passes or 100_000)
        if self.base == "GT":
            return GTSolver(max_passes=self.max_passes or 100_000)
        if self.base == "GRD":
            return GreedySolver()
        return OptimalSolver()
