"""`DispatchSession` — drive dispatch request-by-request.

The streaming layer's native interaction model is *replay*: materialise a
whole :class:`~repro.stream.arrivals.StreamWorkload` timeline, hand it to
:class:`~repro.stream.runner.StreamRunner`.  A platform, however, learns
about tasks and workers one request at a time.  :class:`DispatchSession`
is the long-lived stateful facade for that mode::

    from repro import DispatchSession, SolveOptions, Task, Worker, Point

    with DispatchSession("PUCE", options=SolveOptions(seed=7)) as session:
        session.submit_worker(Worker(id=0, location=Point(0, 0), radius=2.0))
        session.submit_task(Task(id=0, location=Point(1, 0), value=4.5),
                            at=0.1, deadline=1.1)
        session.advance(to_time=0.5)
        for event in session.drain():       # typed Assignment events
            print(event.task_id, "->", event.worker_id, event.latency)
        stats = session.finish()            # StreamStats, as a replay run

The session is a thin veneer over
:class:`~repro.stream.simulator.DispatchSimulator`'s incremental mode
(``push_event`` / ``advance`` / ``finalize``), which is the *same* loop
the replay path runs — so a session fed a workload's events is
bit-identical to ``StreamRunner.run_workload`` on the same seed (the
``tests/properties/test_prop_session.py`` property).

Ordering contract: submit everything you know up to time ``t`` before
calling ``advance(t)`` — the simulator refuses arrivals earlier than the
clock's high-water mark.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable

from repro.api.methods import MethodSpec
from repro.api.options import SolveOptions
from repro.datasets.workload import Task, Worker
from repro.errors import ConfigurationError
from repro.stream.cache import FlushSolverCache
from repro.stream.events import Assignment, StreamEvent, TaskArrival, WorkerArrival
from repro.stream.metrics import StreamStats
from repro.stream.simulator import DispatchSimulator, StreamConfig

if TYPE_CHECKING:
    from repro.core.registry import Solver

__all__ = ["DispatchSession"]


class DispatchSession:
    """A long-lived dispatch endpoint for one method.

    Parameters
    ----------
    method:
        A method name (``"PUCE"``), a spec string (``"PDCE(ppcf=off)"``),
        a :class:`~repro.api.methods.MethodSpec`, or a ready solver.
    options:
        The unified knobs (seed, batching, sharding, sweep).  The
        session's :class:`~repro.stream.simulator.StreamConfig` is
        derived from them unless ``config`` overrides it wholesale.
    config:
        Full control over the online layer (duty cycles, budget sampler);
        mutually exclusive with the streaming fields of ``options`` in
        spirit — when given, it wins.
    seed:
        Override of ``options.seed`` for this session's noise streams.
    default_deadline:
        Patience given to ``submit_task`` calls that omit ``deadline``.
    cache:
        A :class:`~repro.stream.cache.FlushSolverCache` to share across
        sessions (repeated runs of one scenario hit it even for private
        methods, whose per-flush noise keys recur run to run).  Omitted,
        ``options.cache`` decides whether the session owns a private one.
    """

    def __init__(
        self,
        method: "str | MethodSpec | Solver",
        *,
        options: SolveOptions | None = None,
        config: StreamConfig | None = None,
        seed: int | None = None,
        default_deadline: float = 1.0,
        record_assignments: bool = True,
        cache: "FlushSolverCache | None" = None,
    ):
        self.options = options if options is not None else SolveOptions()
        if not default_deadline > 0:
            raise ConfigurationError(
                f"default_deadline must be positive, got {default_deadline}"
            )
        self.default_deadline = float(default_deadline)
        if isinstance(method, (str, MethodSpec)):
            solver = MethodSpec.parse(method).make(self.options)
        else:
            solver = method
        self._simulator = DispatchSimulator(
            solver,
            config=config if config is not None else self.options.stream_config(),
            seed=self.options.seed if seed is None else seed,
            record_assignments=record_assignments,
            cache=cache,
        )

    # -- introspection -----------------------------------------------------

    @property
    def method(self) -> str:
        """The configured method's reported (Table IX) name."""
        return self._simulator.solver.name

    @property
    def clock(self) -> float:
        """The time the session has advanced to."""
        return self._simulator.clock

    @property
    def stats(self) -> StreamStats:
        """Live streaming stats (final after :meth:`finish`)."""
        return self._simulator.stats

    @property
    def pending_tasks(self) -> int:
        """Tasks buffered and still waiting for a flush."""
        return len(self._simulator.batcher)

    # -- intake ------------------------------------------------------------

    def submit(self, event: StreamEvent) -> None:
        """Feed one raw arrival event (the workload-replay primitive)."""
        self._simulator.push_event(event)

    def submit_task(
        self,
        task: Task,
        *,
        at: float | None = None,
        deadline: float | None = None,
    ) -> None:
        """Release ``task`` at ``at`` (default: its ``release_time``).

        ``deadline`` is absolute; omitted it defaults to the release time
        plus the session's ``default_deadline``.
        """
        release = task.release_time if at is None else float(at)
        self.submit(
            TaskArrival(
                time=release,
                task=task,
                deadline=release + self.default_deadline
                if deadline is None
                else float(deadline),
            )
        )

    def submit_worker(
        self,
        worker: Worker,
        *,
        at: float = 0.0,
        budget: float = math.inf,
    ) -> None:
        """Put ``worker`` on duty at ``at`` with a shift budget capacity."""
        self.submit(
            WorkerArrival(time=float(at), worker=worker, budget_capacity=budget)
        )

    # -- driving -----------------------------------------------------------

    def advance(self, to_time: float) -> None:
        """Move the clock to ``to_time``: flushes fire, workers rejoin,
        overdue tasks expire — exactly as the replay loop would."""
        self._simulator.advance(to_time)

    def drain(self) -> tuple[Assignment, ...]:
        """Assignments decided since the last drain, in decision order.

        Drained events are released — a long-lived session that drains
        regularly holds only the undrained backlog, never the full
        history.
        """
        log = self._simulator.assignment_log
        events = tuple(log)
        log.clear()
        return events

    def run(self, events: Iterable[StreamEvent]) -> StreamStats:
        """Replay a whole timeline: the workload path as a thin loop.

        Pooled resources are released even if the solver raises mid-run
        (the guarantee the replay path has always had).
        """
        try:
            for event in events:
                self.submit(event)
            return self.finish()
        finally:
            self.close()

    def finish(self) -> StreamStats:
        """Process everything still queued and close the session."""
        self._simulator.advance(math.inf)
        return self._simulator.finalize()

    def close(self) -> None:
        """Release pooled resources without finalising stats."""
        self._simulator.close()

    def __enter__(self) -> "DispatchSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
