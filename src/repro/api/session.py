"""`DispatchSession` — drive dispatch request-by-request.

The streaming layer's native interaction model is *replay*: materialise a
whole :class:`~repro.stream.arrivals.StreamWorkload` timeline, hand it to
:class:`~repro.stream.runner.StreamRunner`.  A platform, however, learns
about tasks and workers one request at a time.  :class:`DispatchSession`
is the long-lived stateful facade for that mode::

    from repro import DispatchSession, SolveOptions, Task, Worker, Point

    with DispatchSession("PUCE", options=SolveOptions(seed=7)) as session:
        session.submit_worker(Worker(id=0, location=Point(0, 0), radius=2.0))
        session.submit_task(Task(id=0, location=Point(1, 0), value=4.5),
                            at=0.1, deadline=1.1)
        session.advance(to_time=0.5)
        for event in session.drain():       # typed Assignment events
            print(event.task_id, "->", event.worker_id, event.latency)
        stats = session.finish()            # StreamStats, as a replay run

Session-level knobs beyond :class:`~repro.api.options.SolveOptions` —
stream-config override, seed override, default task patience, a shared
flush cache — live in one validated :class:`SessionConfig`::

    config = SessionConfig(options=SolveOptions(seed=7), default_deadline=0.6)
    session = DispatchSession("PUCE", config)

``submit_task`` / ``submit_worker`` build typed wire records
(:mod:`repro.api.wire`) and route them through :meth:`DispatchSession.
apply` — the same request path the multi-tenant service
(:mod:`repro.service`) drives, so the facade and the service share one
schema and one semantics (the wire-equivalence property test pins it).

The session is a thin veneer over
:class:`~repro.stream.simulator.DispatchSimulator`'s incremental mode
(``push_event`` / ``advance`` / ``finalize``), which is the *same* loop
the replay path runs — so a session fed a workload's events is
bit-identical to ``StreamRunner.run_workload`` on the same seed (the
``tests/properties/test_prop_session.py`` property).

Ordering contract: submit everything you know up to time ``t`` before
calling ``advance(t)`` — the simulator refuses arrivals earlier than the
clock's high-water mark.
"""

from __future__ import annotations

import dataclasses
import math
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.api.methods import MethodSpec
from repro.api.options import (
    SolveOptions,
    reject_unknown_keys,
    validate_default_deadline,
)
from repro.api.wire import (
    Advance,
    BudgetReply,
    BudgetStatus,
    Drain,
    Finish,
    SubmitTask,
    SubmitWorker,
    WireRecord,
)
from repro.datasets.workload import Task, Worker
from repro.errors import ConfigurationError
from repro.stream.cache import FlushSolverCache
from repro.stream.events import Assignment, StreamEvent, TaskArrival, WorkerArrival
from repro.stream.metrics import StreamStats
from repro.stream.simulator import DispatchSimulator, StreamConfig

if TYPE_CHECKING:
    from repro.core.registry import Solver

__all__ = ["SessionConfig", "DispatchSession"]


@dataclass(frozen=True)
class SessionConfig:
    """Every session-level knob, validated once.

    Parameters
    ----------
    options:
        The unified dispatch knobs (seed, batching, sharding, sweep).
        The session's :class:`~repro.stream.simulator.StreamConfig` is
        derived from them unless ``stream`` overrides it wholesale.
    stream:
        Full control over the online layer (duty cycles, budget
        sampler); when given, it wins over the streaming fields of
        ``options``.
    seed:
        Override of ``options.seed`` for the session's noise streams.
    default_deadline:
        Patience given to ``submit_task`` calls that omit ``deadline``.
    record_assignments:
        Keep per-assignment events for :meth:`DispatchSession.drain`
        (off for pure-stats replay runs).
    cache:
        A :class:`~repro.stream.cache.FlushSolverCache` to share across
        sessions (repeated runs of one scenario hit it even for private
        methods, whose per-flush noise keys recur run to run).  Omitted,
        ``options.cache`` decides whether the session owns a private
        one.  Process-local — it does not serialize; use the cache's own
        snapshot persistence to move it between processes.
    """

    options: SolveOptions = SolveOptions()
    stream: StreamConfig | None = None
    seed: int | None = None
    default_deadline: float = 1.0
    record_assignments: bool = True
    cache: FlushSolverCache | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.options, SolveOptions):
            raise ConfigurationError(
                f"options must be a SolveOptions, got {type(self.options).__name__}"
            )
        if self.stream is not None and not isinstance(self.stream, StreamConfig):
            raise ConfigurationError(
                f"stream must be a StreamConfig or None, "
                f"got {type(self.stream).__name__}"
            )
        if self.seed is not None and not isinstance(self.seed, int):
            raise ConfigurationError(
                f"seed must be an int or None, got {self.seed!r}"
            )
        if self.cache is not None and not isinstance(self.cache, FlushSolverCache):
            raise ConfigurationError(
                f"cache must be a FlushSolverCache or None, "
                f"got {type(self.cache).__name__}"
            )
        validate_default_deadline(self.default_deadline)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "SessionConfig":
        """Build from a plain dict (JSON), rejecting unknown keys.

        ``options`` may itself be a mapping (validated through
        :meth:`SolveOptions.from_mapping`).  The process-local fields
        (``stream``, ``cache``) have no JSON form and are refused.
        """
        data = reject_unknown_keys(cls, mapping, "session")
        for local in ("stream", "cache"):
            if data.get(local) is not None:
                raise ConfigurationError(
                    f"session key {local!r} is process-local and cannot be "
                    f"built from a mapping"
                )
        options = data.get("options")
        if isinstance(options, Mapping):
            data["options"] = SolveOptions.from_mapping(options)
        return cls(**data)

    def to_dict(self) -> dict[str, Any]:
        """The JSON-able fields (``stream``/``cache`` stay process-local)."""
        return {
            "options": self.options.to_dict(),
            "seed": self.seed,
            "default_deadline": self.default_deadline,
            "record_assignments": self.record_assignments,
        }

    def replace(self, **changes: Any) -> "SessionConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)


#: The pre-`SessionConfig` constructor keywords, kept as shims.
_LEGACY_SESSION_KEYS = frozenset(
    {"config", "seed", "default_deadline", "record_assignments", "cache"}
)


class DispatchSession:
    """A long-lived dispatch endpoint for one method.

    Parameters
    ----------
    method:
        A method name (``"PUCE"``), a spec string (``"PDCE(ppcf=off)"``),
        a :class:`~repro.api.methods.MethodSpec`, or a ready solver.
    session:
        The validated :class:`SessionConfig` of session-level knobs.
    options:
        Shorthand for ``SessionConfig(options=...)`` — the common case
        of a session that only sets dispatch knobs.  Mutually exclusive
        with ``session``.

    The historical keyword forms (``config=``, ``seed=``,
    ``default_deadline=``, ``record_assignments=``, ``cache=``) still
    work but emit :class:`DeprecationWarning`; they fold into a
    :class:`SessionConfig` with bit-identical semantics.
    """

    def __init__(
        self,
        method: "str | MethodSpec | Solver",
        session: SessionConfig | None = None,
        *,
        options: SolveOptions | None = None,
        **legacy: Any,
    ):
        if legacy:
            unknown = sorted(set(legacy) - _LEGACY_SESSION_KEYS)
            if unknown:
                raise ConfigurationError(
                    f"unknown DispatchSession argument(s) {unknown}; "
                    f"valid session knobs live on SessionConfig"
                )
            if session is not None:
                raise ConfigurationError(
                    "pass session-level knobs inside SessionConfig, not as "
                    "separate keywords alongside session="
                )
            warnings.warn(
                f"DispatchSession keyword(s) {sorted(legacy)} are deprecated; "
                f"fold them into a SessionConfig (bit-identical semantics)",
                DeprecationWarning,
                stacklevel=2,
            )
            session = SessionConfig(
                options=options if options is not None else SolveOptions(),
                stream=legacy.get("config"),
                seed=legacy.get("seed"),
                default_deadline=legacy.get("default_deadline", 1.0),
                record_assignments=legacy.get("record_assignments", True),
                cache=legacy.get("cache"),
            )
        elif session is None:
            session = SessionConfig(
                options=options if options is not None else SolveOptions()
            )
        elif not isinstance(session, SessionConfig):
            raise ConfigurationError(
                f"session must be a SessionConfig, got {type(session).__name__}"
            )
        elif options is not None:
            raise ConfigurationError(
                "pass either session= or options=, not both "
                "(SessionConfig already carries the options)"
            )
        self.session = session
        self.options = session.options
        self.default_deadline = session.default_deadline
        if isinstance(method, (str, MethodSpec)):
            solver = MethodSpec.parse(method).make(self.options)
        else:
            solver = method
        self._simulator = DispatchSimulator(
            solver,
            config=session.stream
            if session.stream is not None
            else self.options.stream_config(),
            seed=self.options.seed if session.seed is None else session.seed,
            record_assignments=session.record_assignments,
            cache=session.cache,
        )

    # -- introspection -----------------------------------------------------

    @property
    def method(self) -> str:
        """The configured method's reported (Table IX) name."""
        return self._simulator.solver.name

    @property
    def clock(self) -> float:
        """The time the session has advanced to."""
        return self._simulator.clock

    @property
    def stats(self) -> StreamStats:
        """Live streaming stats (final after :meth:`finish`)."""
        return self._simulator.stats

    @property
    def pending_tasks(self) -> int:
        """Tasks buffered and still waiting for a flush."""
        return len(self._simulator.batcher)

    @property
    def accountant(self):
        """The session's budget accountant (:mod:`repro.privacy.horizon`):
        global by default, windowed when the options set a window."""
        return self._simulator.tracker.accountant

    def budget_spend(self) -> float:
        """The spend that currently counts against the budget cap.

        Under the global accountant this is the lifetime total (equal to
        ``stats.total_privacy_spend`` — spend only moves at flushes);
        under a window accountant it is the fleet's in-window spend at
        the session clock, which *falls* as releases age out.  This is
        the number the service's per-tenant admission sheds against.
        """
        accountant = self.accountant
        if accountant.windowed:
            return accountant.total_in_window(max(self.clock, accountant.now))
        return accountant.total_spend()

    def budget_status(self, worker_id: int | None = None) -> BudgetReply:
        """One worker's (or the whole tenant's) live budget reading."""
        reply = self.apply(BudgetStatus(worker_id=worker_id))
        assert isinstance(reply, BudgetReply)
        return reply

    # -- intake ------------------------------------------------------------

    def submit(self, event: StreamEvent) -> None:
        """Feed one raw arrival event (the workload-replay primitive)."""
        self._simulator.push_event(event)

    def apply(
        self, record: WireRecord
    ) -> "None | tuple[Assignment, ...] | StreamStats | BudgetReply":
        """Apply one typed wire request; the service's single entry point.

        Returns the request's domain outcome: ``None`` for submits and
        advances, the drained :class:`~repro.stream.events.Assignment`
        events for :class:`~repro.api.wire.Drain`, the final
        :class:`~repro.stream.metrics.StreamStats` for
        :class:`~repro.api.wire.Finish`, a
        :class:`~repro.api.wire.BudgetReply` for
        :class:`~repro.api.wire.BudgetStatus`.  ``submit_task`` /
        ``submit_worker`` route through here too, so wire-driven and
        direct sessions share one request path.
        """
        if isinstance(record, SubmitTask):
            task = record.to_task()
            release = task.release_time if record.at is None else record.at
            self.submit(
                TaskArrival(
                    time=release,
                    task=task,
                    deadline=release + self.default_deadline
                    if record.deadline is None
                    else record.deadline,
                )
            )
            return None
        if isinstance(record, SubmitWorker):
            self.submit(
                WorkerArrival(
                    time=record.at,
                    worker=record.to_worker(),
                    budget_capacity=record.budget_capacity,
                )
            )
            return None
        if isinstance(record, Advance):
            self.advance(record.to_time)
            return None
        if isinstance(record, Drain):
            return self.drain()
        if isinstance(record, BudgetStatus):
            return self._budget_reply(record)
        if isinstance(record, Finish):
            return self.finish()
        raise ConfigurationError(
            f"cannot apply wire record {type(record).__name__} to a session"
        )

    def _budget_reply(self, record: BudgetStatus) -> BudgetReply:
        """The live accountant reading behind a ``BudgetStatus`` request.

        Windowed sessions answer at ``max(clock, last flush time)`` — the
        clock may have advanced past the last flush, and releases that
        aged out in between must not count.  Tenant-level ``remaining``
        is ``None`` here (the session knows no tenant cap); the service
        overlays its ``tenant_budget`` before replying.
        """
        accountant = self.accountant
        windowed = accountant.windowed
        window = accountant.policy.window_seconds if windowed else None
        when = max(self.clock, accountant.now) if windowed else None
        if record.worker_id is not None:
            remaining = accountant.remaining(record.worker_id, when)
            return BudgetReply(
                spend=accountant.spend_in_window(record.worker_id, when),
                lifetime_spend=accountant.lifetime_spend(record.worker_id),
                remaining=None if math.isinf(remaining) else remaining,
                window_seconds=window,
                worker_id=record.worker_id,
            )
        return BudgetReply(
            spend=(
                accountant.total_in_window(when)
                if windowed
                else accountant.total_spend()
            ),
            lifetime_spend=accountant.total_spend(),
            remaining=None,
            window_seconds=window,
        )

    def submit_task(
        self,
        task: Task,
        *,
        at: float | None = None,
        deadline: float | None = None,
    ) -> None:
        """Release ``task`` at ``at`` (default: its ``release_time``).

        ``deadline`` is absolute; omitted it defaults to the release time
        plus the session's ``default_deadline``.
        """
        self.apply(SubmitTask.from_task(task, at=at, deadline=deadline))

    def submit_worker(
        self,
        worker: Worker,
        *,
        at: float = 0.0,
        budget: float = math.inf,
    ) -> None:
        """Put ``worker`` on duty at ``at`` with a shift budget capacity."""
        self.apply(SubmitWorker.from_worker(worker, at=at, budget=budget))

    # -- driving -----------------------------------------------------------

    def advance(self, to_time: float) -> None:
        """Move the clock to ``to_time``: flushes fire, workers rejoin,
        overdue tasks expire — exactly as the replay loop would."""
        self._simulator.advance(to_time)

    def drain(self) -> tuple[Assignment, ...]:
        """Assignments decided since the last drain, in decision order.

        Drained events are released — a long-lived session that drains
        regularly holds only the undrained backlog, never the full
        history.
        """
        log = self._simulator.assignment_log
        events = tuple(log)
        log.clear()
        return events

    def run(self, events: Iterable[StreamEvent]) -> StreamStats:
        """Replay a whole timeline: the workload path as a thin loop.

        Pooled resources are released even if the solver raises mid-run
        (the guarantee the replay path has always had).
        """
        try:
            for event in events:
                self.submit(event)
            return self.finish()
        finally:
            self.close()

    def finish(self) -> StreamStats:
        """Process everything still queued and close the session."""
        self._simulator.advance(math.inf)
        return self._simulator.finalize()

    def close(self) -> None:
        """Release pooled resources without finalising stats."""
        self._simulator.close()

    def __enter__(self) -> "DispatchSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
