"""The unified dispatch API: one stable facade over every layer.

Four pieces (ICDE'23 reproduction grown into a dispatch service):

* :class:`~repro.api.options.SolveOptions` — every knob (seed, sweep,
  shards, batching, method overrides) in one validated, frozen record,
  accepted by ``make_solver``, ``Solver.solve``, ``BatchRunner``,
  ``StreamRunner`` and the CLI;
* :class:`~repro.api.methods.MethodSpec` — parseable method identifiers
  (``"PUCE"``, ``"PDCE(ppcf=off)"``) naming configured variants
  uniformly across registry, CLI, benchmarks and reports;
* :class:`~repro.api.session.DispatchSession` — a long-lived stateful
  facade over the event-driven simulator: ``submit_task`` /
  ``submit_worker`` / ``advance(to_time)`` / ``drain()`` of typed
  :class:`~repro.stream.events.Assignment` events;
* :class:`~repro.api.scenario.ScenarioSpec` — declarative JSON scenarios
  (arrivals, spatial law, methods, options) with ``from_file`` /
  ``to_workload`` and the ``python -m repro.experiments scenario``
  subcommand;
* :mod:`repro.api.wire` — the versioned, JSON-round-trippable wire
  records (``SubmitTask``, ``Advance``, ``AssignmentsReply``, ...)
  spoken by :class:`~repro.api.session.DispatchSession.apply` and the
  multi-tenant :mod:`repro.service` frontend.

Layering rule: lower layers (core / stream / simulation) may import
:mod:`repro.api.options` — it depends only on :mod:`repro.errors`, and
this package initialiser is lazy (PEP 562), so nothing else is pulled
in.  Everything heavier lives behind attribute access.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "SolveOptions": "repro.api.options",
    "SWEEP_MODES": "repro.api.options",
    "PARALLEL_MODES": "repro.api.options",
    "MethodSpec": "repro.api.methods",
    "DispatchSession": "repro.api.session",
    "SessionConfig": "repro.api.session",
    "Assignment": "repro.stream.events",
    "ScenarioSpec": "repro.api.scenario",
    "run_scenario": "repro.api.scenario",
    "WIRE_VERSION": "repro.api.wire",
    "WireRecord": "repro.api.wire",
    "OpenSession": "repro.api.wire",
    "SubmitTask": "repro.api.wire",
    "SubmitWorker": "repro.api.wire",
    "Advance": "repro.api.wire",
    "Drain": "repro.api.wire",
    "Finish": "repro.api.wire",
    "BudgetStatus": "repro.api.wire",
    "AckReply": "repro.api.wire",
    "BudgetReply": "repro.api.wire",
    "AssignmentRecord": "repro.api.wire",
    "AssignmentsReply": "repro.api.wire",
    "FinishedReply": "repro.api.wire",
    "ErrorReply": "repro.api.wire",
    "ShedReply": "repro.api.wire",
    "encode_record": "repro.api.wire",
    "decode_record": "repro.api.wire",
}

__all__ = list(_EXPORTS)

if TYPE_CHECKING:  # static importers see the real names
    from repro.api.methods import MethodSpec
    from repro.api.options import (
        PARALLEL_MODES,
        SWEEP_MODES,
        SolveOptions,
    )
    from repro.api.scenario import ScenarioSpec, run_scenario
    from repro.api.session import DispatchSession, SessionConfig
    from repro.api.wire import (
        WIRE_VERSION,
        AckReply,
        Advance,
        AssignmentRecord,
        AssignmentsReply,
        BudgetReply,
        BudgetStatus,
        Drain,
        ErrorReply,
        Finish,
        FinishedReply,
        OpenSession,
        ShedReply,
        SubmitTask,
        SubmitWorker,
        WireRecord,
        decode_record,
        encode_record,
    )
    from repro.stream.events import Assignment


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
