"""`ScenarioSpec` — whole streaming experiments as declarative artifacts.

A scenario names everything a streaming run needs: the arrival process,
the spatial law, the fleet, the methods, and the unified
:class:`~repro.api.options.SolveOptions`.  As JSON it is a shareable,
diffable experiment description::

    {
      "name": "rush_hour",
      "arrivals": "rushhour",
      "dataset": "normal",
      "horizon": 3.0,
      "task_rate": 40.0,
      "methods": ["PUCE", "PDCE(ppcf=off)", "UCE"],
      "options": {"seed": 7, "max_batch_size": 50}
    }

``ScenarioSpec.from_file(path).run()`` reproduces the experiment; the
``python -m repro.experiments scenario`` subcommand does the same from
the shell.  Unknown keys are rejected (typos must not silently produce a
different experiment), and the spec's seed lives in exactly one place —
``options.seed`` — which feeds both the arrival draws and the noise
streams (the normalization half of the one-validation-path rule).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from repro.api.methods import MethodSpec
from repro.api.options import SolveOptions, reject_unknown_keys
from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.stream.arrivals import StreamWorkload
    from repro.stream.runner import StreamReport

__all__ = ["ScenarioSpec", "run_scenario"]

#: Arrival regimes a scenario may name — the single source of truth
#: (``experiments.streaming`` and the CLI re-use this tuple).
ARRIVAL_KINDS = ("poisson", "rushhour", "bursty", "trace")


@dataclass(frozen=True)
class ScenarioSpec:
    """One named streaming experiment at a reproducible scale.

    Field semantics match
    :class:`~repro.experiments.streaming.StreamScenario` (rates are
    arrivals per time unit; ``trace`` replays a chengdu-like day and
    ignores ``task_rate``), plus the method list and unified options.
    ``horizon=None`` normalises to the arrival kind's default (24 hours
    for ``trace``, 3 otherwise).
    """

    name: str = "scenario"
    arrivals: str = "poisson"
    dataset: str = "normal"
    horizon: float | None = None
    task_rate: float = 40.0
    worker_rate: float = 15.0
    initial_workers: int = 60
    trace_orders: int = 300
    task_deadline: float = 1.0
    worker_budget: float = 40.0
    task_value: float = 4.5
    worker_range: float = 1.4
    departures: float = 0.0
    methods: tuple[str, ...] = ("PUCE", "UCE")
    options: SolveOptions = field(default_factory=SolveOptions)

    def __post_init__(self) -> None:
        if self.arrivals not in ARRIVAL_KINDS:
            raise ConfigurationError(
                f"unknown arrivals {self.arrivals!r}; choose from {ARRIVAL_KINDS}"
            )
        if self.horizon is None:
            object.__setattr__(
                self, "horizon", 24.0 if self.arrivals == "trace" else 3.0
            )
        if not self.horizon > 0:
            raise ConfigurationError(
                f"horizon must be positive, got {self.horizon}"
            )
        if not self.methods:
            raise ConfigurationError("need at least one method")
        object.__setattr__(self, "methods", tuple(self.methods))
        for method in self.methods:
            MethodSpec.parse(method)  # typos fail at spec time, not run time

    # -- (de)serialisation -------------------------------------------------

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "ScenarioSpec":
        """Build from a plain dict (JSON), rejecting unknown keys."""
        data = reject_unknown_keys(cls, mapping, "scenario")
        options = data.get("options")
        if isinstance(options, Mapping):
            data["options"] = SolveOptions.from_mapping(options)
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: "str | Path") -> "ScenarioSpec":
        """Load a scenario artifact (see ``examples/scenario_rush_hour.json``)."""
        return cls.from_json(Path(path).read_text())

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict that :meth:`from_dict` round-trips."""
        data = dataclasses.asdict(self)
        data["methods"] = list(self.methods)
        data["options"] = self.options.to_dict()
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_file(self, path: "str | Path") -> None:
        Path(path).write_text(self.to_json() + "\n")

    # -- derived views -----------------------------------------------------

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """A copy whose single seed (``options.seed``) is ``seed``."""
        return dataclasses.replace(self, options=self.options.replace(seed=seed))

    def to_scenario(self):
        """The :class:`~repro.experiments.streaming.StreamScenario` view."""
        from repro.experiments.streaming import StreamScenario

        return StreamScenario(
            arrivals=self.arrivals,
            dataset=self.dataset,
            horizon=self.horizon,
            task_rate=self.task_rate,
            worker_rate=self.worker_rate,
            initial_workers=self.initial_workers,
            trace_orders=self.trace_orders,
            task_deadline=self.task_deadline,
            worker_budget=self.worker_budget,
            task_value=self.task_value,
            worker_range=self.worker_range,
            departures=self.departures,
            seed=self.options.seed,
        )

    def to_workload(self) -> "StreamWorkload":
        """Materialise the scenario into a runnable workload."""
        from repro.experiments.streaming import build_workload

        return build_workload(self.to_scenario())

    def run(self, seed: int | None = None) -> "StreamReport":
        """Run every method over the scenario's shared timeline."""
        from repro.stream.runner import StreamRunner

        spec = self if seed is None else self.with_seed(seed)
        runner = StreamRunner(list(spec.methods), options=spec.options)
        return runner.run_workload(spec.to_workload(), seed=spec.options.seed)


def run_scenario(
    spec: "ScenarioSpec | str | Path", seed: int | None = None
) -> "StreamReport":
    """Run a scenario given as a spec object or a JSON file path."""
    if not isinstance(spec, ScenarioSpec):
        spec = ScenarioSpec.from_file(spec)
    return spec.run(seed=seed)
