"""Typed wire records — the one request/response schema of dispatch.

A platform talks to dispatch in *requests*: release a task, put a worker
on duty, advance the clock, collect decided assignments, finish.  Before
the service layer those verbs only existed as Python method calls on
:class:`~repro.api.session.DispatchSession`; this module freezes them
into versioned, JSON-serializable records so the in-process facade, the
multi-tenant service (:mod:`repro.service`) and any future client/server
split all speak one schema:

* **requests** — :class:`OpenSession`, :class:`SubmitTask`,
  :class:`SubmitWorker`, :class:`Advance`, :class:`Drain`,
  :class:`Finish`, :class:`BudgetStatus`;
* **replies** — :class:`AckReply`, :class:`AssignmentsReply` (carrying
  :class:`AssignmentRecord` items), :class:`FinishedReply`,
  :class:`BudgetReply`, :class:`ErrorReply`, :class:`ShedReply`.

Every record round-trips through ``to_dict`` / ``from_dict``: the dict
form carries a ``kind`` discriminator and the schema version ``v``
(:data:`WIRE_VERSION`); decoding rejects unknown kinds, version
mismatches, and unknown keys (via the shared
:func:`~repro.api.options.reject_unknown_keys` helper), so a typo or a
newer peer fails loudly instead of being silently dropped.
``DispatchSession.submit_task`` / ``submit_worker`` build these records
and route them through :meth:`~repro.api.session.DispatchSession.apply`
— the facade and the service share one request path, which is what the
wire-equivalence property test pins.

Floats survive JSON bit-exactly (``json`` emits ``repr`` and parses it
back to the same IEEE double), so a record decoded from its own JSON
drives a session to bit-identical results.  The one non-JSON value —
an unlimited worker budget (``math.inf``) — is spelled ``null``:
:attr:`SubmitWorker.budget` is ``None`` for "no shift cap".
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, ClassVar, Mapping

from repro.api.options import reject_unknown_keys
from repro.datasets.workload import Task, Worker
from repro.errors import ConfigurationError
from repro.spatial.geometry import Point
from repro.stream.events import Assignment

if TYPE_CHECKING:
    from repro.stream.metrics import StreamStats

__all__ = [
    "WIRE_VERSION",
    "WireRecord",
    "OpenSession",
    "SubmitTask",
    "SubmitWorker",
    "Advance",
    "Drain",
    "Finish",
    "BudgetStatus",
    "AssignmentRecord",
    "AckReply",
    "AssignmentsReply",
    "FinishedReply",
    "BudgetReply",
    "ErrorReply",
    "ShedReply",
    "RECORD_TYPES",
    "encode_record",
    "decode_record",
]

#: Schema version stamped into every encoded record.  Bump on any
#: incompatible field change; decoders refuse records from another
#: version rather than guessing.
WIRE_VERSION = 1


def _strip_envelope(cls: type, mapping: Mapping[str, Any]) -> dict[str, Any]:
    """Peel ``kind`` / ``v`` off a wire dict and guard the remainder."""
    data = dict(mapping)
    kind = data.pop("kind", cls.kind)
    if kind != cls.kind:
        raise ConfigurationError(
            f"wire record kind {kind!r} does not match {cls.kind!r}"
        )
    version = data.pop("v", WIRE_VERSION)
    if version != WIRE_VERSION:
        raise ConfigurationError(
            f"unsupported wire version {version!r} for {cls.kind!r} record "
            f"(this build speaks v{WIRE_VERSION})"
        )
    return reject_unknown_keys(cls, data, f"{cls.kind} wire")


@dataclass(frozen=True, slots=True)
class WireRecord:
    """Base of every wire record: the versioned dict round-trip."""

    #: The ``kind`` discriminator of the concrete record.
    kind: ClassVar[str] = ""

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict: ``kind`` + ``v`` + every field."""
        payload: dict[str, Any] = {"kind": self.kind, "v": WIRE_VERSION}
        for spec in dataclasses.fields(self):
            payload[spec.name] = getattr(self, spec.name)
        return payload

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "WireRecord":
        """Decode one record, rejecting version/kind/key mismatches."""
        return cls(**_strip_envelope(cls, mapping))


# -- requests ---------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class OpenSession(WireRecord):
    """Open one tenant session for ``method``.

    ``options`` is a :meth:`~repro.api.options.SolveOptions.to_dict`
    mapping (``None`` = defaults); it is validated by the receiving side
    through the usual single validation path.
    """

    kind: ClassVar[str] = "open_session"

    method: str
    options: dict[str, Any] | None = None
    default_deadline: float = 1.0


@dataclass(frozen=True, slots=True)
class SubmitTask(WireRecord):
    """Release one task.

    ``at`` is the release instant (``None`` = the task's own
    ``release_time``); ``deadline`` is absolute (``None`` = release plus
    the session's ``default_deadline``) — exactly the semantics of
    :meth:`DispatchSession.submit_task`, of which this record is the
    serialized form.
    """

    kind: ClassVar[str] = "submit_task"

    task_id: int
    x: float
    y: float
    value: float
    at: float | None = None
    deadline: float | None = None
    release_time: float = 0.0

    @classmethod
    def from_task(
        cls,
        task: Task,
        *,
        at: float | None = None,
        deadline: float | None = None,
    ) -> "SubmitTask":
        return cls(
            task_id=task.id,
            x=float(task.location[0]),
            y=float(task.location[1]),
            value=task.value,
            at=None if at is None else float(at),
            deadline=None if deadline is None else float(deadline),
            release_time=task.release_time,
        )

    def to_task(self) -> Task:
        return Task(
            id=self.task_id,
            location=Point(self.x, self.y),
            value=self.value,
            release_time=self.release_time,
        )


@dataclass(frozen=True, slots=True)
class SubmitWorker(WireRecord):
    """Put one worker on duty at ``at``.

    ``budget`` is the shift's privacy-budget capacity; ``None`` means
    unlimited (``math.inf`` has no JSON spelling).
    """

    kind: ClassVar[str] = "submit_worker"

    worker_id: int
    x: float
    y: float
    radius: float
    at: float = 0.0
    budget: float | None = None

    @classmethod
    def from_worker(
        cls,
        worker: Worker,
        *,
        at: float = 0.0,
        budget: float = math.inf,
    ) -> "SubmitWorker":
        return cls(
            worker_id=worker.id,
            x=float(worker.location[0]),
            y=float(worker.location[1]),
            radius=worker.radius,
            at=float(at),
            budget=None if math.isinf(budget) else float(budget),
        )

    def to_worker(self) -> Worker:
        return Worker(
            id=self.worker_id, location=Point(self.x, self.y), radius=self.radius
        )

    @property
    def budget_capacity(self) -> float:
        """The domain-side capacity (``inf`` when ``budget`` is null)."""
        return math.inf if self.budget is None else self.budget


@dataclass(frozen=True, slots=True)
class Advance(WireRecord):
    """Move the session clock to ``to_time``."""

    kind: ClassVar[str] = "advance"

    to_time: float


@dataclass(frozen=True, slots=True)
class Drain(WireRecord):
    """Collect assignments decided since the last drain."""

    kind: ClassVar[str] = "drain"


@dataclass(frozen=True, slots=True)
class Finish(WireRecord):
    """Process everything still queued and finalize the session."""

    kind: ClassVar[str] = "finish"


@dataclass(frozen=True, slots=True)
class BudgetStatus(WireRecord):
    """Query remaining (window) budget without submitting work.

    With ``worker_id`` set the reply covers that worker's per-window
    budget; omitted, it covers the whole tenant (the admission gauge the
    service sheds against).  A control request like ``Drain`` — never
    shed, answered in queue order, and read-only on the session.
    """

    kind: ClassVar[str] = "budget_status"

    worker_id: int | None = None


# -- replies ----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class AssignmentRecord(WireRecord):
    """One decided assignment — the wire form of
    :class:`~repro.stream.events.Assignment`."""

    kind: ClassVar[str] = "assignment"

    time: float
    flush_index: int
    task_id: int
    worker_id: int
    distance: float
    utility: float
    latency: float
    method: str

    @classmethod
    def from_assignment(cls, event: Assignment) -> "AssignmentRecord":
        return cls(
            time=event.time,
            flush_index=event.flush_index,
            task_id=event.task_id,
            worker_id=event.worker_id,
            distance=event.distance,
            utility=event.utility,
            latency=event.latency,
            method=event.method,
        )

    def to_assignment(self) -> Assignment:
        return Assignment(
            time=self.time,
            flush_index=self.flush_index,
            task_id=self.task_id,
            worker_id=self.worker_id,
            distance=self.distance,
            utility=self.utility,
            latency=self.latency,
            method=self.method,
        )


@dataclass(frozen=True, slots=True)
class AckReply(WireRecord):
    """The request was applied; nothing to return."""

    kind: ClassVar[str] = "ack"


@dataclass(frozen=True, slots=True)
class AssignmentsReply(WireRecord):
    """A drain's harvest, in decision order."""

    kind: ClassVar[str] = "assignments"

    assignments: tuple[AssignmentRecord, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "v": WIRE_VERSION,
            "assignments": [record.to_dict() for record in self.assignments],
        }

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "AssignmentsReply":
        data = _strip_envelope(cls, mapping)
        return cls(
            assignments=tuple(
                AssignmentRecord.from_dict(item)
                for item in data.get("assignments", ())
            )
        )


@dataclass(frozen=True, slots=True)
class FinishedReply(WireRecord):
    """The session's final summary (the wire face of ``StreamStats``).

    ``assignments`` carries the decisions of the finishing flush — the
    leftovers a final explicit :class:`Drain` could never collect, since
    ``finish`` both triggers that flush and closes the session.
    """

    kind: ClassVar[str] = "finished"

    method: str
    arrived_tasks: int
    assigned: int
    expired: int
    leftover: int
    total_utility: float
    total_distance: float
    privacy_spend: float
    flushes: int
    cache_hit_rate: float
    assignments: tuple[AssignmentRecord, ...] = ()

    @classmethod
    def from_stats(
        cls,
        stats: "StreamStats",
        assignments: tuple[AssignmentRecord, ...] = (),
    ) -> "FinishedReply":
        return cls(
            method=stats.method,
            arrived_tasks=stats.arrived_tasks,
            assigned=stats.assigned,
            expired=stats.expired,
            leftover=stats.leftover,
            total_utility=stats.total_utility,
            total_distance=stats.total_distance,
            privacy_spend=stats.total_privacy_spend,
            flushes=len(stats.flushes),
            cache_hit_rate=stats.cache_hit_rate,
            assignments=assignments,
        )

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "kind": self.kind,
            "v": WIRE_VERSION,
            **dataclasses.asdict(self),
        }
        payload["assignments"] = [
            record.to_dict() for record in self.assignments
        ]
        return payload

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "FinishedReply":
        data = _strip_envelope(cls, mapping)
        data["assignments"] = tuple(
            AssignmentRecord.from_dict(item)
            for item in data.get("assignments", ())
        )
        return cls(**data)


@dataclass(frozen=True, slots=True)
class BudgetReply(WireRecord):
    """A :class:`BudgetStatus` answer — the accountant's live reading.

    ``spend`` is what currently counts against the cap: the in-window
    spend under a sliding-window accountant, the lifetime spend under
    the global one (``window_seconds`` tells which regime answered —
    ``None`` means global).  ``lifetime_spend`` is always the Theorem
    V.2 audit total.  ``remaining`` is ``None`` when no cap binds
    (unlimited has no JSON spelling, same convention as
    :attr:`SubmitWorker.budget`); on tenant-level replies the service
    overlays its ``tenant_budget`` admission cap, so the number is the
    one admission actually sheds against.
    """

    kind: ClassVar[str] = "budget"

    spend: float
    lifetime_spend: float
    remaining: float | None = None
    window_seconds: float | None = None
    worker_id: int | None = None


@dataclass(frozen=True, slots=True)
class ErrorReply(WireRecord):
    """The request failed; ``code`` is the raising exception class."""

    kind: ClassVar[str] = "error"

    code: str
    message: str


@dataclass(frozen=True, slots=True)
class ShedReply(WireRecord):
    """The request was refused at admission (backpressure/budget/caps)."""

    kind: ClassVar[str] = "shed"

    reason: str


#: ``kind`` -> record class, for :func:`decode_record` dispatch.
RECORD_TYPES: dict[str, type[WireRecord]] = {
    cls.kind: cls
    for cls in (
        OpenSession,
        SubmitTask,
        SubmitWorker,
        Advance,
        Drain,
        Finish,
        BudgetStatus,
        AssignmentRecord,
        AckReply,
        AssignmentsReply,
        FinishedReply,
        BudgetReply,
        ErrorReply,
        ShedReply,
    )
}


def encode_record(record: WireRecord) -> dict[str, Any]:
    """The JSON-ready dict form of any wire record."""
    return record.to_dict()


def decode_record(mapping: Mapping[str, Any]) -> WireRecord:
    """Decode a wire dict by its ``kind`` discriminator.

    Raises
    ------
    ConfigurationError
        On a missing/unknown ``kind``, a version mismatch, or keys the
        record does not declare.
    """
    kind = mapping.get("kind")
    cls = RECORD_TYPES.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown wire record kind {kind!r}; valid: {sorted(RECORD_TYPES)}"
        )
    return cls.from_dict(mapping)
