"""`SolveOptions` — the one place dispatch knobs are declared and checked.

Before the facade, configuration was scattered: ``use_ppcf`` lived in
solver constructors, ``sweep`` in :class:`ConflictEliminationSolver`,
shard/parallel/adaptive knobs in :class:`StreamConfig`, seeds in
``solve(instance, seed)`` — each layer re-validating its own slice.
:class:`SolveOptions` unifies them into one frozen record that every
entry point accepts (``make_solver``, ``Solver.solve``, ``BatchRunner``,
``StreamRunner``, :class:`~repro.api.session.DispatchSession`, the CLI),
and this module owns the *single* validation + normalization path: the
``validate_*`` functions below are called by ``SolveOptions`` itself and
by the lower layers (``StreamConfig``, ``MicroBatcher``, the engine), so
an invalid knob fails with the same typed
:class:`~repro.errors.ConfigurationError` no matter where it enters.

This module deliberately imports nothing above :mod:`repro.errors`, so
any layer may import it without cycles.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ConfigurationError

__all__ = [
    "SWEEP_MODES",
    "PARALLEL_MODES",
    "COMPOSITION_RULES",
    "SolveOptions",
    "reject_unknown_keys",
    "validate_sweep",
    "validate_sweep_threshold",
    "validate_sharding",
    "validate_batching",
    "validate_service",
    "validate_default_deadline",
    "validate_horizon",
    "validate_timeline_limit",
    "validate_flush_timeout",
    "validate_faults",
]

#: WorkerProposal sweep implementations of the conflict-elimination engine.
SWEEP_MODES = ("auto", "vectorized", "scalar")

#: How shard groups of one flush are executed.
PARALLEL_MODES = ("off", "thread", "process")

#: How in-window releases compose into one per-window guarantee
#: (see :mod:`repro.privacy.horizon`).
COMPOSITION_RULES = ("sequential", "tree")


# -- the single validation path -------------------------------------------


def reject_unknown_keys(
    cls: type, mapping: Mapping[str, Any], kind: str
) -> dict[str, Any]:
    """Guard a JSON-shaped mapping against keys ``cls`` does not declare.

    Shared by every ``from_dict``-style constructor in the facade, so a
    typo fails with the same message shape wherever it enters.  Returns
    a mutable copy of ``mapping``.
    """
    valid = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(mapping) - valid)
    if unknown:
        raise ConfigurationError(
            f"unknown {kind} key(s) {unknown}; valid: {sorted(valid)}"
        )
    return dict(mapping)


def validate_sweep(sweep: str) -> str:
    """Check an engine sweep mode; returns it for chaining."""
    if sweep not in SWEEP_MODES:
        raise ConfigurationError(f"unknown sweep implementation {sweep!r}")
    return sweep


def validate_sweep_threshold(threshold: int | None) -> int | None:
    """Check the ``sweep="auto"`` vectorization crossover (pairs).

    ``None`` means "the engine default"; otherwise a non-negative pair
    count (0 = always vectorize).  Returns the value for chaining.
    """
    if threshold is not None and (not isinstance(threshold, int) or threshold < 0):
        raise ConfigurationError(
            f"sweep_auto_threshold must be a non-negative int or None, "
            f"got {threshold!r}"
        )
    return threshold


def validate_sharding(
    shards: int | str, parallel: str, max_shard_workers: int | None = None
) -> None:
    """Check the shard-count / parallel-mode / pool-size combination.

    ``shards`` is either an explicit slot count (``0`` = forced single
    execution unit, ``>= 1`` = fixed slots) or the string ``"auto"`` —
    the cost-model-planned mode, where the
    :class:`~repro.stream.costmodel.FlushPlanner` picks the execution
    strategy per flush.  With ``"auto"``, ``parallel`` restricts the
    planner (``"off"`` leaves it free to choose).
    """
    if isinstance(shards, str):
        if shards != "auto":
            raise ConfigurationError(
                f"shards must be an int >= 0 or 'auto', got {shards!r}"
            )
    elif shards < 0:
        raise ConfigurationError(f"shards must be >= 0, got {shards}")
    if parallel not in PARALLEL_MODES:
        raise ConfigurationError(
            f"unknown parallel mode {parallel!r}; choose from {PARALLEL_MODES}"
        )
    if parallel != "off" and shards != "auto" and shards < 1:
        raise ConfigurationError(
            f"parallel={parallel!r} requires shards >= 1 or shards='auto'"
        )
    if max_shard_workers is not None and max_shard_workers < 1:
        raise ConfigurationError(
            f"max_shard_workers must be >= 1, got {max_shard_workers}"
        )


def validate_batching(max_batch_size: int, max_wait: float) -> None:
    """Check the micro-batch flush triggers."""
    if max_batch_size < 1:
        raise ConfigurationError(
            f"max_batch_size must be >= 1, got {max_batch_size}"
        )
    if not max_wait > 0:
        raise ConfigurationError(f"max_wait must be positive, got {max_wait}")


def validate_service(speed: float, min_service: float) -> None:
    """Check the duty-cycle timing parameters."""
    if not speed > 0:
        raise ConfigurationError(f"speed must be positive, got {speed}")
    if min_service < 0:
        raise ConfigurationError(f"min_service must be >= 0, got {min_service}")


def validate_default_deadline(default_deadline: float) -> float:
    """Check a session's default task patience; returns it for chaining."""
    numeric = isinstance(default_deadline, (int, float)) and not isinstance(
        default_deadline, bool
    )
    if not numeric or not default_deadline > 0:
        raise ConfigurationError(
            f"default_deadline must be positive, got {default_deadline!r}"
        )
    return float(default_deadline)


def validate_horizon(
    window_seconds: float | None,
    window_budget: float | None,
    composition: str,
    decay: float | None,
) -> None:
    """Check the sliding-window accounting knobs as one combination.

    ``window_seconds=None`` means global (fixed-budget) accounting, in
    which case the dependent knobs must stay at their defaults — a
    ``window_budget`` without a window is a configuration the accountant
    cannot honour, not a silent no-op.
    """
    if window_seconds is not None and not (
        window_seconds > 0 and math.isfinite(window_seconds)
    ):
        raise ConfigurationError(
            f"window_seconds must be positive and finite or None, "
            f"got {window_seconds}"
        )
    if composition not in COMPOSITION_RULES:
        raise ConfigurationError(
            f"unknown window composition {composition!r}; "
            f"choose from {COMPOSITION_RULES}"
        )
    if window_budget is not None:
        if not window_budget > 0:
            raise ConfigurationError(
                f"window_budget must be positive or None, got {window_budget}"
            )
        if window_seconds is None:
            raise ConfigurationError("window_budget requires window_seconds")
    if decay is not None:
        if not 0.0 < decay < 1.0:
            raise ConfigurationError(
                f"window_decay must be in (0, 1) or None, got {decay}"
            )
        if window_seconds is None:
            raise ConfigurationError("window_decay requires window_seconds")
        if composition != "sequential":
            raise ConfigurationError(
                "window_decay composes only with the 'sequential' rule "
                "(the tree bound has no decayed form)"
            )


def validate_timeline_limit(timeline_limit: int | None) -> int | None:
    """Check a stats-timeline length cap; returns it for chaining.

    ``None`` keeps the timelines unbounded (the historical behaviour);
    otherwise at least 4 points, so downsampling always has interior
    points to thin while keeping both endpoints.
    """
    if timeline_limit is not None and (
        not isinstance(timeline_limit, int)
        or isinstance(timeline_limit, bool)
        or timeline_limit < 4
    ):
        raise ConfigurationError(
            f"timeline_limit must be an int >= 4 or None, got {timeline_limit!r}"
        )
    return timeline_limit


def validate_flush_timeout(flush_timeout: float | None) -> float | None:
    """Check the pooled-solve watchdog deadline; returns it for chaining.

    ``None`` disables the watchdog (the historical behaviour); otherwise
    a positive number of seconds after which a pooled flush is abandoned
    and the execution ladder degrades.
    """
    if flush_timeout is not None and not flush_timeout > 0:
        raise ConfigurationError(
            f"flush_timeout must be positive or None, got {flush_timeout!r}"
        )
    return flush_timeout


def validate_faults(faults: Any) -> Any:
    """Check a fault-injection spec; returns the *raw* spec for chaining.

    Accepts ``None``, a :class:`~repro.faults.FaultPlan`, a plan mapping,
    or a string (``"smoke"`` / ``"off"`` / JSON).  Resolution is lazy so
    this module keeps its no-imports-above-errors rule; an invalid spec
    still fails here, at construction time, with the usual
    :class:`~repro.errors.ConfigurationError`.
    """
    from repro.faults import FaultPlan

    FaultPlan.resolve(faults)
    return faults


@dataclass(frozen=True)
class SolveOptions:
    """Every dispatch knob, validated once, accepted everywhere.

    Parameters
    ----------
    seed:
        Base seed for noise streams and arrival draws.  Entry points that
        also take an explicit ``seed`` argument treat it as an override.
    sweep:
        WorkerProposal implementation of the conflict-elimination engine
        (``"auto"`` / ``"vectorized"`` / ``"scalar"``).
    sweep_auto_threshold:
        ``sweep="auto"`` crossover: non-private engine runs on instances
        with fewer feasible pairs than this take the scalar path.
        ``None`` keeps the engine default
        (:attr:`~repro.core.engine.ConflictEliminationSolver.
        VECTOR_MIN_PAIRS`, recalibrated from the flush-overhead bench).
    ppcf:
        Method override: force the real-distance PPCF gate on (``True``)
        or off (``False``) for PUCE/PDCE.  ``None`` keeps each method's
        default (on).  Ignored by methods without the gate.
    max_rounds:
        Round cap for the conflict-elimination engine (``None`` = the
        engine default).
    max_batch_size, max_wait:
        Micro-batch flush triggers of the streaming layer.
    shards, parallel, max_shard_workers:
        Sharded-flush execution (see :mod:`repro.stream.shards`).  The
        default ``shards="auto"`` lets the per-flush cost model
        (:mod:`repro.stream.costmodel`) pick the execution strategy —
        single-unit, sequential-sharded, or process-parallel — per
        flush; an explicit int forces that many execution slots.  All
        settings produce bit-identical results (the shard cut, not the
        execution mode, defines every noise stream).
    adaptive, target_flush_seconds:
        Adaptive micro-batch sizing (see
        :class:`~repro.stream.batcher.AdaptiveBatchController`).
    cache:
        Enable the flush-fingerprint solver cache
        (:mod:`repro.stream.cache`): flushes whose fingerprint — pair
        arrays, method, noise schedule, per-worker remaining budgets —
        has been solved before skip the solve.  Results are bit-identical
        to ``cache=False`` (deterministic configs; adaptive batching is
        wall-clock-driven either way).
    workspace:
        Reuse one :class:`~repro.core.engine.ConflictEliminationSolver`
        buffer arena (:class:`~repro.core.workspace.EngineWorkspace`)
        across flushes instead of allocating per solve.  Purely a
        performance knob; results are unchanged.
    trace:
        Record per-flush span trees (:mod:`repro.obs`): phase breakdowns
        in ``FlushRecord.phase_seconds`` and the ``--trace-out`` /
        ``profile`` artifacts.  Off by default (the no-op tracer keeps
        the hot path within noise); results are unchanged either way.
    window_seconds, window_budget, window_composition, window_decay:
        Sliding-window privacy accounting (:mod:`repro.privacy.horizon`).
        ``window_seconds=None`` (the default) keeps the global
        fixed-budget accountant — bit-identical to every pre-horizon
        run.  With a window set, each worker's guarantee is stated per
        window of that width: spends age out, exhausted workers regain
        eligibility, and ``window_budget`` (``None`` = only the
        registered shift capacities bind, reinterpreted per window) caps
        the in-window spend under the ``window_composition`` rule
        (``"sequential"`` sums in-window releases; ``"tree"`` applies
        the binary-mechanism bound ``max_eps * (floor(log2 n) + 1)``).
        ``window_decay`` (sequential only) discounts a release by
        ``decay ** (age / window_seconds)``.
    timeline_limit:
        Cap on the per-run stats timelines (privacy/window spend over
        time): once a timeline exceeds the cap it is thinned by dropping
        every other interior point.  ``None`` = unbounded (historical
        behaviour); long-horizon replays should set it.
    flush_timeout:
        Watchdog deadline (seconds) for pooled shard solves.  A pooled
        flush that exceeds it is abandoned and re-run one rung down the
        degradation ladder (shm → pickle → sequential → unsharded), so a
        hung pool worker costs latency, never the run.  ``None`` (the
        default) disables the watchdog.  Results are unchanged either
        way — every ladder rung is bit-identical.
    faults:
        Deterministic fault injection (:mod:`repro.faults`): ``None``
        (off), ``"smoke"`` (the low-rate CI plan), a
        :class:`~repro.faults.FaultPlan`, or its mapping/JSON form.
        Injected faults fire reproducibly from ``(seed, flush, site)``;
        all kinds except ``worker_departure`` are masked by the
        degradation ladder and never change results.
    """

    seed: int = 0
    sweep: str = "auto"
    sweep_auto_threshold: int | None = None
    ppcf: bool | None = None
    max_rounds: int | None = None
    max_batch_size: int = 200
    max_wait: float = 0.25
    shards: int | str = "auto"
    parallel: str = "off"
    max_shard_workers: int | None = None
    adaptive: bool = False
    target_flush_seconds: float = 0.02
    cache: bool = False
    workspace: bool = True
    trace: bool = False
    window_seconds: float | None = None
    window_budget: float | None = None
    window_composition: str = "sequential"
    window_decay: float | None = None
    timeline_limit: int | None = None
    flush_timeout: float | None = None
    faults: Any = None

    def __post_init__(self) -> None:
        validate_sweep(self.sweep)
        validate_sweep_threshold(self.sweep_auto_threshold)
        validate_sharding(self.shards, self.parallel, self.max_shard_workers)
        validate_batching(self.max_batch_size, self.max_wait)
        validate_horizon(
            self.window_seconds,
            self.window_budget,
            self.window_composition,
            self.window_decay,
        )
        validate_timeline_limit(self.timeline_limit)
        validate_flush_timeout(self.flush_timeout)
        validate_faults(self.faults)
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be >= 1, got {self.max_rounds}"
            )
        if not self.target_flush_seconds > 0:
            raise ConfigurationError(
                f"target_flush_seconds must be positive, "
                f"got {self.target_flush_seconds}"
            )

    # -- construction ------------------------------------------------------

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "SolveOptions":
        """Build from a plain dict (JSON), rejecting unknown keys."""
        return cls(**reject_unknown_keys(cls, mapping, "option"))

    def replace(self, **changes: Any) -> "SolveOptions":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict that :meth:`from_mapping` round-trips."""
        return dataclasses.asdict(self)

    # -- projection onto the lower layers ----------------------------------

    def horizon_policy(self):
        """The :class:`~repro.privacy.horizon.HorizonPolicy` these options
        describe, or ``None`` for global (fixed-budget) accounting."""
        if self.window_seconds is None:
            return None
        from repro.privacy.horizon import HorizonPolicy

        return HorizonPolicy(
            window_seconds=self.window_seconds,
            window_budget=self.window_budget,
            composition=self.window_composition,
            decay=self.window_decay,
        )

    def fault_plan(self):
        """The resolved :class:`~repro.faults.FaultPlan`, or ``None``."""
        from repro.faults import FaultPlan

        return FaultPlan.resolve(self.faults)

    def stream_config(self, **extra: Any):
        """The :class:`~repro.stream.simulator.StreamConfig` these options
        describe.  ``extra`` passes through knobs outside the unified set
        (``budget_sampler``, ``model``, ``speed``, ...)."""
        from repro.stream.simulator import StreamConfig

        return StreamConfig(
            max_batch_size=self.max_batch_size,
            max_wait=self.max_wait,
            shards=self.shards,
            parallel=self.parallel,
            max_shard_workers=self.max_shard_workers,
            adaptive=self.adaptive,
            target_flush_seconds=self.target_flush_seconds,
            cache=self.cache,
            workspace=self.workspace,
            trace=self.trace,
            horizon=self.horizon_policy(),
            timeline_limit=self.timeline_limit,
            flush_timeout=self.flush_timeout,
            faults=self.fault_plan(),
            **extra,
        )
