"""Streaming experiment assembly and reporting.

Builds :class:`~repro.stream.arrivals.StreamWorkload` scenarios by name
(``poisson`` / ``rushhour`` / ``bursty`` / ``trace``) over the paper's
datasets and formats the streaming measures as a terminal table.  The
public entry point for running scenarios is the declarative
:class:`repro.api.ScenarioSpec` (whose :meth:`~repro.api.ScenarioSpec.run`
backs both the ``stream`` and ``scenario`` CLI subcommands).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.scenario import ARRIVAL_KINDS
from repro.datasets.chengdu import ChengduLikeGenerator
from repro.errors import ConfigurationError
from repro.experiments.sweeps import make_generator
from repro.stream.arrivals import (
    ArrivalProcess,
    BurstyProcess,
    PoissonProcess,
    RushHourProcess,
    StreamWorkload,
    TraceProcess,
)
from repro.stream.runner import StreamReport

__all__ = [
    "ARRIVAL_KINDS",
    "StreamScenario",
    "build_workload",
    "format_stream_report",
]

@dataclass(frozen=True)
class StreamScenario:
    """One named streaming scenario at a reproducible scale.

    ``task_rate`` / ``worker_rate`` are arrivals per time unit (hours for
    ``rushhour`` and ``trace``).  ``trace`` ignores ``task_rate`` and
    replays a chengdu-like day of ``trace_orders`` release times instead,
    clipped to ``horizon`` hours of the day.  ``departures`` is the
    probability each worker leaves mid-stream (the ROADMAP worker-churn
    family; see :attr:`~repro.stream.arrivals.StreamWorkload.departures`).
    """

    arrivals: str = "poisson"
    dataset: str = "normal"
    horizon: float = 3.0
    task_rate: float = 40.0
    worker_rate: float = 15.0
    initial_workers: int = 60
    trace_orders: int = 300
    task_deadline: float = 1.0
    worker_budget: float = 40.0
    task_value: float = 4.5
    worker_range: float = 1.4
    departures: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrivals not in ARRIVAL_KINDS:
            raise ConfigurationError(
                f"unknown arrivals {self.arrivals!r}; choose from {ARRIVAL_KINDS}"
            )


def _task_process(scenario: StreamScenario) -> ArrivalProcess:
    if scenario.arrivals == "poisson":
        return PoissonProcess(scenario.task_rate, scenario.horizon)
    if scenario.arrivals == "rushhour":
        # Peaks scale off the base rate; horizon < 24 clips to the morning.
        return RushHourProcess(
            base_rate=0.4 * scenario.task_rate,
            peak_rate=1.2 * scenario.task_rate,
            horizon=scenario.horizon,
            peaks=tuple(p for p in (8.5, 18.0) if p < scenario.horizon)
            or (scenario.horizon / 2.0,),
        )
    if scenario.arrivals == "bursty":
        return BurstyProcess(
            burst_rate=scenario.task_rate / 8.0,
            mean_burst_size=8.0,
            horizon=scenario.horizon,
        )
    generator = ChengduLikeGenerator(
        num_tasks=scenario.trace_orders,
        num_workers=max(2 * scenario.trace_orders, 1),
        seed=scenario.seed,
    )
    return TraceProcess.from_chengdu(
        generator,
        seed=scenario.seed,
        task_value=scenario.task_value,
        horizon=scenario.horizon,
    )


def build_workload(scenario: StreamScenario) -> StreamWorkload:
    """Materialise one scenario into a runnable workload."""
    task_process = _task_process(scenario)
    horizon = task_process.horizon
    spatial = make_generator(
        scenario.dataset,
        max(scenario.trace_orders, 200),
        max(2 * scenario.trace_orders, 400),
        scenario.seed,
    )
    return StreamWorkload(
        task_process=task_process,
        worker_process=PoissonProcess(scenario.worker_rate, horizon),
        spatial=spatial,
        initial_workers=scenario.initial_workers,
        task_value=scenario.task_value,
        worker_range=scenario.worker_range,
        task_deadline=scenario.task_deadline,
        worker_budget=scenario.worker_budget,
        departures=scenario.departures,
        seed=scenario.seed,
    )


def format_stream_report(report: StreamReport, scenario: StreamScenario) -> str:
    """A terminal table of the streaming measures, one row per method.

    ``top_phase`` is the costliest tracer phase of the method's run
    (``"-"`` when tracing was off); the full breakdown lives in the
    ``profile`` subcommand (:func:`repro.obs.format_profile`).  ``plan``
    counts flushes by the execution strategy the cost model chose for
    them (:attr:`~repro.stream.metrics.StreamStats.plan_summary`).
    """
    header = (
        f"stream[{scenario.arrivals}/{scenario.dataset}] "
        f"horizon={scenario.horizon:g} deadline={scenario.task_deadline:g} "
        f"budget={scenario.worker_budget:g} seed={scenario.seed}"
    )
    columns = (
        f"{'method':<12} {'arrived':>7} {'assigned':>8} {'expired':>7} "
        f"{'left':>5} {'flushes':>7} {'p50_lat':>8} {'p95_lat':>8} "
        f"{'tasks/s':>9} {'eps_spent':>9} {'U_avg':>7} {'cache':>6} "
        f"{'plan':>12} {'top_phase':>11}"
    )
    lines = [header, columns, "-" * len(columns)]
    for method in report.methods():
        stats = report[method]
        cache = (
            f"{stats.cache_hit_rate:>5.0%}"
            if stats.cache_hits or stats.cache_misses
            else f"{'off':>5}"
        )
        lines.append(
            f"{method:<12} {stats.arrived_tasks:>7} {stats.assigned:>8} "
            f"{stats.expired:>7} {stats.leftover:>5} {len(stats.flushes):>7} "
            f"{stats.latency_p50:>8.3f} {stats.latency_p95:>8.3f} "
            f"{stats.throughput_tasks_per_sec:>9.0f} "
            f"{stats.total_privacy_spend:>9.1f} {stats.average_utility:>7.2f} "
            f"{cache} {stats.plan_summary:>12} {stats.top_phase:>11}"
        )
    return "\n".join(lines)
