"""Per-figure experiment specs (Section VII-D + Appendix D).

Each :class:`FigureSpec` regenerates one *figure group*: the paper plots
the same sweep once per dataset under different figure numbers (e.g. the
task-value/utility sweep is Fig. 5 on chengdu, Fig. 6 on normal and
Fig. 19 on uniform), so one spec carries the whole group and records the
mapping in ``paper_figures``.

``expected_shape`` states the qualitative claim the paper makes for the
group; EXPERIMENTS.md tracks paper-vs-measured for each.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.experiments.sweeps import SweepConfig, SweepPoint, run_sweep

__all__ = ["FigureSpec", "FigureResult", "FIGURES", "run_figure"]

_ALL_METHODS = ("PUCE", "PDCE", "PGT", "UCE", "DCE", "GT", "GRD")
_PPCF_METHODS = ("PUCE", "PDCE", "PUCE-nppcf", "PDCE-nppcf", "UCE", "DCE")

_RATIOS = (1.0, 1.5, 2.0, 2.5, 3.0)
_VALUES = (1.5, 3.0, 4.5, 6.0, 7.5)
_RANGES = (0.8, 1.1, 1.4, 1.7, 2.0)
_BUDGETS = ((0.5, 0.75), (0.75, 1.0), (1.0, 1.25), (1.25, 1.5), (1.5, 1.75))


@dataclass(frozen=True)
class FigureSpec:
    """One reproducible figure group."""

    figure_id: str
    paper_figures: dict[str, str]  # dataset -> paper figure number
    parameter: str
    values: tuple
    measure: str  # "time" | "utility" | "distance"
    methods: tuple[str, ...] = _ALL_METHODS
    expected_shape: str = ""

    @property
    def datasets(self) -> tuple[str, ...]:
        return tuple(self.paper_figures)


@dataclass
class FigureResult:
    """Measured series for one figure group."""

    spec: FigureSpec
    points: dict[str, list[SweepPoint]] = field(default_factory=dict)  # by dataset

    def series(self, dataset: str, method: str) -> list[float]:
        """The measured y-values of one curve, in sweep order."""
        sweep = self.points[dataset]
        if self.spec.measure == "time":
            return [p.report[method].elapsed_ms_per_batch for p in sweep]
        if self.spec.measure == "utility":
            return [p.report[method].average_utility for p in sweep]
        if self.spec.measure == "distance":
            return [p.report[method].average_distance for p in sweep]
        raise ConfigurationError(f"unknown measure {self.spec.measure!r}")

    def deviation_series(self, dataset: str, method: str) -> list[float]:
        """The paired relative-deviation curve (U_RD or D_RD)."""
        sweep = self.points[dataset]
        if self.spec.measure == "utility":
            return [p.report.utility_deviation(method) for p in sweep]
        if self.spec.measure == "distance":
            return [p.report.distance_deviation(method) for p in sweep]
        raise ConfigurationError(f"{self.spec.measure!r} has no deviation series")

    def labels(self, dataset: str) -> list[str]:
        return [p.label for p in self.points[dataset]]


FIGURES: dict[str, FigureSpec] = {
    spec.figure_id: spec
    for spec in (
        FigureSpec(
            figure_id="fig04",
            paper_figures={"chengdu": "Fig. 4a", "normal": "Fig. 4b", "uniform": "Fig. 18"},
            parameter="worker_ratio",
            values=_RATIOS,
            measure="time",
            expected_shape=(
                "running time grows ~linearly with worker ratio; "
                "PGT runs 50-63% below PDCE"
            ),
        ),
        FigureSpec(
            figure_id="fig05",
            paper_figures={"chengdu": "Fig. 5", "normal": "Fig. 6", "uniform": "Fig. 19"},
            parameter="task_value",
            values=_VALUES,
            measure="utility",
            expected_shape=(
                "utility grows ~linearly with task value; PUCE >= PDCE; "
                "PGT > PUCE on normal; U_RD shrinks as value grows"
            ),
        ),
        FigureSpec(
            figure_id="fig07",
            paper_figures={"chengdu": "Fig. 7", "normal": "Fig. 8", "uniform": "Fig. 20"},
            parameter="worker_range",
            values=_RANGES,
            measure="utility",
            expected_shape=(
                "utility falls as range grows; PGT decays slowest and "
                "overtakes PUCE/PDCE at large ranges (>=1.4 on normal); "
                "PGT's U_RD shrinks with range while PUCE/PDCE's grow"
            ),
        ),
        FigureSpec(
            figure_id="fig09",
            paper_figures={"chengdu": "Fig. 9", "normal": "Fig. 10", "uniform": "Fig. 21"},
            parameter="worker_ratio",
            values=_RATIOS,
            measure="utility",
            expected_shape="worker ratio barely moves utility; PUCE >= PDCE throughout",
        ),
        FigureSpec(
            figure_id="fig11",
            paper_figures={"chengdu": "Fig. 11", "normal": "Fig. 12", "uniform": "Fig. 22"},
            parameter="task_value",
            values=_VALUES,
            measure="distance",
            expected_shape=(
                "distance ~flat once value > 3 (small values suppress far "
                "matches); PDCE lowest among private methods"
            ),
        ),
        FigureSpec(
            figure_id="fig13",
            paper_figures={"chengdu": "Fig. 13", "normal": "Fig. 14", "uniform": "Fig. 23"},
            parameter="worker_range",
            values=_RANGES,
            measure="distance",
            expected_shape=(
                "distance grows with range; PDCE <= PUCE ~= PGT among "
                "private methods"
            ),
        ),
        FigureSpec(
            figure_id="fig15",
            paper_figures={"chengdu": "Fig. 15", "normal": "Fig. 16", "uniform": "Fig. 24"},
            parameter="worker_ratio",
            values=_RATIOS,
            measure="distance",
            expected_shape=(
                "non-private distance falls as ratio grows (fiercer "
                "competition); private methods fall less"
            ),
        ),
        FigureSpec(
            figure_id="fig17",
            paper_figures={"chengdu": "Fig. 17a", "normal": "Fig. 17b", "uniform": "Fig. 25"},
            parameter="budget_interval",
            values=_BUDGETS,
            measure="utility",
            methods=_PPCF_METHODS,
            expected_shape=(
                "PPCF beats the nppcf ablations at small budgets; the gap "
                "closes as budgets grow; utility falls as budgets grow "
                "(costlier proposals)"
            ),
        ),
    )
}


def run_figure(
    figure_id: str,
    num_tasks: int = 200,
    num_batches: int = 2,
    seed: int = 0,
    datasets: tuple[str, ...] | None = None,
) -> FigureResult:
    """Regenerate one figure group at the requested scale.

    ``num_tasks=1000`` reproduces the paper's batch size exactly; the
    default 200 keeps the full suite laptop-fast while preserving spatial
    density (see the generator docs).
    """
    try:
        spec = FIGURES[figure_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown figure {figure_id!r}; available: {', '.join(sorted(FIGURES))}"
        ) from None
    result = FigureResult(spec)
    for dataset in datasets or spec.datasets:
        config = SweepConfig(
            dataset=dataset,
            methods=spec.methods,
            num_tasks=num_tasks,
            num_batches=num_batches,
            seed=seed,
        )
        result.points[dataset] = run_sweep(config, spec.parameter, spec.values)
    return result
