"""Experiment harness: the Section VII evaluation, figure by figure.

* :mod:`repro.experiments.sweeps`  -- generator construction + parameter
  sweep driver,
* :mod:`repro.experiments.figures` -- one spec per paper figure group, and
  ``run_figure`` to regenerate it,
* :mod:`repro.experiments.report`  -- text tables of the measured series.

Command line::

    python -m repro.experiments list
    python -m repro.experiments run fig07 --tasks 200 --batches 2
"""

from repro.experiments.figures import FIGURES, FigureResult, FigureSpec, run_figure
from repro.experiments.report import format_figure, format_series
from repro.experiments.sweeps import (
    DATASETS,
    SweepConfig,
    SweepPoint,
    make_generator,
    run_sweep,
)

__all__ = [
    "DATASETS",
    "SweepConfig",
    "SweepPoint",
    "make_generator",
    "run_sweep",
    "FigureSpec",
    "FigureResult",
    "FIGURES",
    "run_figure",
    "format_series",
    "format_figure",
]
